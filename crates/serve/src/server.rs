//! The `quvad` daemon: socket transport, admission control, worker
//! pool, and graceful drain.
//!
//! Thread model: one nonblocking accept loop, one thread per accepted
//! connection (bounded by `max_connections`), and a fixed worker pool
//! consuming the bounded job queue. Connection threads resolve specs,
//! consult the result cache, and run admission control; workers do the
//! heavy compile/simulate/audit work inside `catch_unwind`, so a
//! panicking job becomes a structured error response and a re-armed
//! worker, never a dead daemon.
//!
//! Failure containment invariants (chaos-tested in `quva-bench`):
//!
//! * every delivered well-formed frame gets exactly one response line;
//! * malformed frames get an `error` response, not a dropped socket;
//! * a full queue answers `overloaded` + `retry_after_ms`, where the
//!   hint is derived from the predicted drain time of the queued work
//!   (the configured value is only a floor);
//! * a job whose deadline is statically infeasible — the *optimistic*
//!   cost-envelope bound already exceeds it — answers `infeasible`
//!   before it is queued, spending no worker time;
//! * a worker panic answers `error` and bumps `serve.worker.respawn`;
//! * drain stops intake (`shutting_down`), finishes or
//!   deadline-expires in-flight jobs, and flushes every thread's obs
//!   buffers before exit.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use quva_analysis::{envelope_of, CostModel};
use quva_sim::{McEngine, McKernel};

use crate::cache::ResultCache;
use crate::dump::DumpSink;
use crate::exec::{execute, execute_with, resolve, ResolvedJob};
use crate::expo::{self, LatencyRecorder};
use crate::journal::{Journal, JournalRecord};
use crate::metrics::ServeMetrics;
use crate::protocol::{
    json_escape, parse_request, progress_frame, JobKind, JobSpec, RequestKind, Response, MAX_FRAME_BYTES,
};
use crate::queue::{BoundedQueue, Pop, Push};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// TCP socket; `127.0.0.1:0` picks an ephemeral port.
    Tcp(String),
    /// Unix-domain socket at this path (removed and re-created).
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Daemon tuning knobs. `Default` is sized for tests and smoke runs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listening transport and address.
    pub listen: Listen,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Monte-Carlo engine threads per worker (results are
    /// thread-count-independent; this is wall-clock only).
    pub engine_threads: usize,
    /// Monte-Carlo trial kernel the workers run. The default
    /// bit-parallel kernel and the scalar oracle are distinct
    /// deterministic samples of the same model, so this knob changes
    /// rendered estimates — keep it fixed across a fleet that shares
    /// a result cache.
    pub engine_kernel: McKernel,
    /// Bounded queue capacity — the admission-control limit.
    pub queue_capacity: usize,
    /// Deadline applied to jobs that do not carry `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Floor of the backpressure hint attached to `overloaded`
    /// responses; the actual hint grows with the predicted drain time
    /// of the queued work.
    pub retry_after_ms: u64,
    /// Cost model powering envelope-based admission control. Replace
    /// it with a [`CostModel::from_bench`]-calibrated model when a
    /// measured baseline is available.
    pub cost_model: CostModel,
    /// Hard per-frame byte limit.
    pub max_line_bytes: usize,
    /// Close connections idle (or stalled mid-frame) this long.
    pub idle_timeout_ms: u64,
    /// Maximum concurrently open connections.
    pub max_connections: usize,
    /// Result-cache shard count.
    pub cache_shards: usize,
    /// Result-cache entries per shard.
    pub cache_capacity_per_shard: usize,
    /// Honor `panic` frames (fault injection). Off in production.
    pub chaos_panics: bool,
    /// Flight-recorder ring capacity in events; `0` selects the
    /// `quva-obs` default. The ring is always armed while the daemon
    /// runs — anomaly dumps need history from *before* the trigger.
    pub flight_capacity: usize,
    /// Directory receiving anomaly-triggered flight dumps (`None`
    /// disables dumping; the ring still records).
    pub dump_dir: Option<PathBuf>,
    /// Per-dump-file byte cap (oldest events truncated first).
    pub dump_max_file_bytes: u64,
    /// Total byte cap across the dump directory; oldest dump files
    /// are deleted to stay under it.
    pub dump_max_total_bytes: u64,
    /// Path of the per-job JSONL audit journal (`None` disables).
    pub journal_path: Option<PathBuf>,
    /// Journal size-rotation threshold in bytes.
    pub journal_max_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: Listen::Tcp("127.0.0.1:0".to_string()),
            workers: 2,
            engine_threads: 1,
            engine_kernel: McKernel::default(),
            queue_capacity: 64,
            default_deadline_ms: 10_000,
            retry_after_ms: 50,
            cost_model: CostModel::default(),
            max_line_bytes: MAX_FRAME_BYTES,
            idle_timeout_ms: 10_000,
            max_connections: 64,
            cache_shards: 8,
            cache_capacity_per_shard: 64,
            chaos_panics: false,
            flight_capacity: 0,
            dump_dir: None,
            dump_max_file_bytes: 256 * 1024,
            dump_max_total_bytes: 4 * 1024 * 1024,
            journal_path: None,
            journal_max_bytes: 4 * 1024 * 1024,
        }
    }
}

/// What a worker hands back to the waiting connection thread.
enum JobOutcome {
    Done(Arc<str>),
    Failed(String),
    Shed,
    /// Chunk-boundary progress from a streaming simulate job; the
    /// connection thread forwards it as a `progress` frame and keeps
    /// waiting for a terminal outcome.
    Progress {
        done: u64,
        total: u64,
    },
}

/// Work items flowing through the queue.
enum Work {
    Run(Box<ResolvedJob>),
    InjectedPanic,
}

struct QueuedJob {
    /// Client-supplied request id — labels anomaly dumps and flight
    /// notes for the job.
    id: String,
    work: Work,
    reply: mpsc::Sender<JobOutcome>,
}

enum FrameOutcome {
    Reply(String),
    ReplyThenDrain(String),
}

enum WorkerExit {
    Drained,
    Respawn,
}

struct Shared {
    config: ServerConfig,
    queue: BoundedQueue<QueuedJob>,
    cache: ResultCache,
    metrics: ServeMetrics,
    draining: AtomicBool,
    active_connections: AtomicUsize,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
    started: Instant,
    latency: LatencyRecorder,
    dump: Option<DumpSink>,
    journal: Option<Journal>,
    workers_alive: AtomicU64,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        quva_obs::counter("serve.drain", 1);
    }

    /// Backpressure hint for `overloaded` responses: the configured
    /// floor, raised to the predicted wall-clock (ms) for the worker
    /// pool to drain the currently queued work. Queue weights are the
    /// jobs' pessimistic cost bounds in nanoseconds, so the drain
    /// estimate is total weight over pool parallelism.
    fn retry_hint_ms(&self) -> u64 {
        let workers = self.config.workers.max(1) as u64;
        let drain_ms = self.queue.queued_weight() / (workers * 1_000_000);
        self.config.retry_after_ms.max(drain_ms)
    }

    /// Refreshes the metric fields that mirror external telemetry
    /// sources (flight-ring drops, journal size). Called immediately
    /// before every `stats` / exposition render so both read current
    /// values.
    fn sync_telemetry(&self) {
        self.metrics
            .dropped_events
            .store(quva_obs::flight::dropped(), Ordering::Relaxed);
        let journal_bytes = self.journal.as_ref().map_or(0, |j| j.bytes_written());
        self.metrics.journal_bytes.store(journal_bytes, Ordering::Relaxed);
    }

    /// Renders the Prometheus-style text exposition for the `metrics`
    /// verb — byte-deterministic modulo timing-valued lines.
    fn render_exposition(&self) -> String {
        self.sync_telemetry();
        let dumps = match &self.dump {
            Some(d) => d.counts(),
            None => crate::dump::TRIGGERS.iter().map(|t| (*t, 0)).collect(),
        };
        expo::render_exposition(&expo::ExpoInputs {
            metrics: &self.metrics,
            latency: &self.latency,
            queue_depth: self.queue.len(),
            workers_alive: self.workers_alive.load(Ordering::Relaxed),
            flight_dropped: quva_obs::flight::dropped(),
            journal_bytes: self.metrics.journal_bytes.load(Ordering::Relaxed),
            dumps,
            uptime_us: self.started.elapsed().as_micros() as u64,
        })
    }

    /// Decodes and answers one frame. Always produces a response line.
    /// `emit` writes an out-of-band frame (streaming progress) to the
    /// client ahead of the final response.
    fn handle_frame(&self, line: &str, emit: &mut dyn FnMut(&str) -> io::Result<()>) -> FrameOutcome {
        let _span = quva_obs::span("serve", "request");
        let frame_started = Instant::now();
        ServeMetrics::bump(&self.metrics.requests);
        quva_obs::counter("serve.requests", 1);
        let request = match parse_request(line) {
            Err(e) => {
                ServeMetrics::bump(&self.metrics.malformed_frames);
                ServeMetrics::bump(&self.metrics.errors);
                quva_obs::counter("serve.malformed", 1);
                return FrameOutcome::Reply(
                    Response::Error {
                        id: e.id,
                        message: e.message,
                    }
                    .render(),
                );
            }
            Ok(r) => r,
        };
        let id = request.id;
        let verb: &'static str = match &request.kind {
            RequestKind::Ping => "ping",
            RequestKind::Stats => "stats",
            RequestKind::Metrics => "metrics",
            RequestKind::Shutdown => "shutdown",
            RequestKind::Panic => "panic",
            RequestKind::Job(spec) => spec.kind.name(),
        };
        let outcome = match request.kind {
            RequestKind::Ping => {
                ServeMetrics::bump(&self.metrics.ok);
                FrameOutcome::Reply(
                    Response::Ok {
                        id,
                        result: "{\"pong\":true}".to_string(),
                    }
                    .render(),
                )
            }
            RequestKind::Stats => {
                ServeMetrics::bump(&self.metrics.ok);
                self.sync_telemetry();
                FrameOutcome::Reply(
                    Response::Ok {
                        id,
                        result: self.metrics.render_json(),
                    }
                    .render(),
                )
            }
            RequestKind::Metrics => {
                ServeMetrics::bump(&self.metrics.ok);
                let exposition = self.render_exposition();
                FrameOutcome::Reply(
                    Response::Ok {
                        id,
                        result: format!("{{\"exposition\":\"{}\"}}", json_escape(&exposition)),
                    }
                    .render(),
                )
            }
            RequestKind::Shutdown => {
                ServeMetrics::bump(&self.metrics.ok);
                FrameOutcome::ReplyThenDrain(
                    Response::Ok {
                        id,
                        result: "{\"draining\":true}".to_string(),
                    }
                    .render(),
                )
            }
            RequestKind::Panic => {
                if !self.config.chaos_panics {
                    ServeMetrics::bump(&self.metrics.errors);
                    return FrameOutcome::Reply(
                        Response::Error {
                            id,
                            message: "panic injection disabled (start with --chaos)".to_string(),
                        }
                        .render(),
                    );
                }
                let (rendered, _status) = self.submit(
                    id,
                    9,
                    1,
                    self.config.default_deadline_ms,
                    Work::InjectedPanic,
                    false,
                    emit,
                );
                FrameOutcome::Reply(rendered)
            }
            RequestKind::Job(spec) => FrameOutcome::Reply(self.handle_job(id, spec, emit)),
        };
        self.latency
            .record(verb, frame_started.elapsed().as_micros() as u64);
        outcome
    }

    /// Resolves, cache-checks, admits, and awaits one job, writing an
    /// audit-journal record describing what happened to it.
    fn handle_job(&self, id: String, spec: JobSpec, emit: &mut dyn FnMut(&str) -> io::Result<()>) -> String {
        let job_started = Instant::now();
        let mut record = JournalRecord {
            id: id.clone(),
            kind: spec.kind.name().to_string(),
            device: spec.device.clone(),
            policy: spec.policy.clone(),
            benchmark: spec.benchmark.clone(),
            admission: "error",
            cache_hit: false,
            envelope_lo_ms: 0,
            envelope_hi_ms: 0,
            kernel: format!("{:?}", self.config.engine_kernel),
            outcome: String::new(),
            elapsed_us: 0,
        };
        let rendered = self.handle_job_inner(id, spec, emit, &mut record);
        if let Some(journal) = &self.journal {
            record.elapsed_us = job_started.elapsed().as_micros() as u64;
            journal.append(&record);
        }
        rendered
    }

    /// The job path proper; fills `record` as admission decisions are
    /// made so [`Shared::handle_job`] can journal the job on every
    /// exit path.
    fn handle_job_inner(
        &self,
        id: String,
        spec: JobSpec,
        emit: &mut dyn FnMut(&str) -> io::Result<()>,
        record: &mut JournalRecord,
    ) -> String {
        if self.draining() {
            ServeMetrics::bump(&self.metrics.shutting_down);
            record.admission = "draining";
            record.outcome = "shutting_down".to_string();
            return Response::ShuttingDown { id }.render();
        }
        let resolved = match resolve(&spec) {
            Err(message) => {
                ServeMetrics::bump(&self.metrics.errors);
                record.outcome = "error".to_string();
                return Response::Error { id, message }.render();
            }
            Ok(r) => r,
        };
        // cache first: saturation cannot delay a result we already have
        if let Some(hit) = self.cache.get(&resolved.key) {
            ServeMetrics::bump(&self.metrics.cache_hits);
            quva_obs::counter("serve.cache.hit", 1);
            ServeMetrics::bump(&self.metrics.ok);
            record.admission = "cache";
            record.cache_hit = true;
            record.outcome = "ok".to_string();
            return Response::Ok {
                id,
                result: hit.to_string(),
            }
            .render();
        }
        quva_obs::counter("serve.cache.miss", 1);
        let deadline_ms = spec.deadline_ms.unwrap_or(self.config.default_deadline_ms);
        // static admission: a job whose *optimistic* cost bound already
        // exceeds its deadline is answered typed-infeasible here, on
        // the connection thread — it never occupies a queue slot or a
        // worker. Rejecting on `lo` (never `hi`) keeps loose
        // pessimistic bounds from causing false rejections.
        let envelope = envelope_of(
            &resolved.device,
            resolved.benchmark.circuit(),
            spec.trials,
            &self.config.cost_model,
        );
        record.envelope_lo_ms = envelope.predicted_ms_lo();
        record.envelope_hi_ms = (envelope.total_ns().hi / 1e6).ceil() as u64;
        if envelope.infeasible_for(deadline_ms) {
            ServeMetrics::bump(&self.metrics.jobs_infeasible);
            quva_obs::counter("serve.infeasible", 1);
            record.admission = "infeasible";
            record.outcome = "infeasible".to_string();
            return Response::Infeasible {
                id,
                predicted_ms: envelope.predicted_ms_lo(),
                deadline_ms,
            }
            .render();
        }
        let weight = (envelope.total_ns().hi.ceil() as u64).max(1);
        let progress = spec.progress;
        let (rendered, status) = self.submit(
            id,
            spec.priority,
            weight,
            deadline_ms,
            Work::Run(Box::new(resolved)),
            progress,
            emit,
        );
        record.admission = match status {
            "overloaded" => "overloaded",
            "shutting_down" => "draining",
            _ => "admitted",
        };
        record.outcome = status.to_string();
        rendered
    }

    /// Pushes work through admission control and waits for its
    /// outcome or deadline, forwarding streamed progress frames via
    /// `emit` when `progress` is set. `weight` is the job's
    /// pessimistic cost bound in nanoseconds (it steers shed choice
    /// and drain-time retry hints). Returns the rendered response and
    /// a short status label for the audit journal.
    #[allow(clippy::too_many_arguments)]
    fn submit(
        &self,
        id: String,
        priority: u8,
        weight: u64,
        deadline_ms: u64,
        work: Work,
        progress: bool,
        emit: &mut dyn FnMut(&str) -> io::Result<()>,
    ) -> (String, &'static str) {
        quva_obs::flight::note("serve", &format!("job {id} submit"));
        let (reply, outcome) = mpsc::channel();
        match self.queue.push_weighted(
            priority,
            weight,
            QueuedJob {
                id: id.clone(),
                work,
                reply,
            },
        ) {
            Push::Admitted => {}
            Push::Shed(loser) => {
                // lower-priority queued job evicted to make room
                ServeMetrics::bump(&self.metrics.shed);
                quva_obs::counter("serve.shed", 1);
                if let Some(dump) = &self.dump {
                    dump.record("shed_weakest", &loser.id);
                }
                let _ = loser.reply.send(JobOutcome::Shed);
            }
            Push::Rejected(_) => {
                ServeMetrics::bump(&self.metrics.overloaded);
                quva_obs::counter("serve.retry_after", 1);
                if let Some(dump) = &self.dump {
                    dump.record("queue_flood", &id);
                }
                return (
                    Response::Overloaded {
                        id,
                        retry_after_ms: self.retry_hint_ms(),
                    }
                    .render(),
                    "overloaded",
                );
            }
            Push::Closed(_) => {
                ServeMetrics::bump(&self.metrics.shutting_down);
                return (Response::ShuttingDown { id }.render(), "shutting_down");
            }
        }
        ServeMetrics::bump(&self.metrics.cache_misses);
        quva_obs::observe("serve.queue.depth", self.queue.len() as f64);
        let deadline_at = Instant::now() + Duration::from_millis(deadline_ms);
        loop {
            let remaining = deadline_at.saturating_duration_since(Instant::now());
            return match outcome.recv_timeout(remaining) {
                Ok(JobOutcome::Progress { done, total }) => {
                    // not terminal: forward (best-effort — a client
                    // that stopped reading still gets its final
                    // response attempt) and keep waiting
                    if progress {
                        let _ = emit(&progress_frame(&id, done, total));
                    }
                    continue;
                }
                Ok(JobOutcome::Done(result)) => {
                    ServeMetrics::bump(&self.metrics.ok);
                    (
                        Response::Ok {
                            id,
                            result: result.to_string(),
                        }
                        .render(),
                        "ok",
                    )
                }
                Ok(JobOutcome::Failed(message)) => {
                    ServeMetrics::bump(&self.metrics.errors);
                    (Response::Error { id, message }.render(), "error")
                }
                Ok(JobOutcome::Shed) => {
                    ServeMetrics::bump(&self.metrics.overloaded);
                    (
                        Response::Overloaded {
                            id,
                            retry_after_ms: self.retry_hint_ms(),
                        }
                        .render(),
                        "overloaded",
                    )
                }
                Err(RecvTimeoutError::Timeout) => {
                    ServeMetrics::bump(&self.metrics.deadline_exceeded);
                    quva_obs::counter("serve.deadline_exceeded", 1);
                    if let Some(dump) = &self.dump {
                        dump.record("deadline_exceeded", &id);
                    }
                    (
                        Response::DeadlineExceeded { id, deadline_ms }.render(),
                        "deadline_exceeded",
                    )
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // worker died between pop and reply — backstop path
                    ServeMetrics::bump(&self.metrics.errors);
                    (
                        Response::Error {
                            id,
                            message: "worker unavailable".to_string(),
                        }
                        .render(),
                        "error",
                    )
                }
            };
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// One worker's pop-execute loop. Returns on drain or after a caught
/// job panic (so the supervisor can count the respawn).
fn worker_iterations(shared: &Shared) -> WorkerExit {
    let engine = McEngine::new(shared.config.engine_threads.max(1)).with_kernel(shared.config.engine_kernel);
    loop {
        let job = match shared.queue.pop(Duration::from_millis(100)) {
            Pop::Item(job) => job,
            Pop::TimedOut => continue,
            Pop::Drained => return WorkerExit::Drained,
        };
        quva_obs::observe("serve.queue.depth", shared.queue.len() as f64);
        quva_obs::flight::note("serve", &format!("job {} start", job.id));
        let _span = quva_obs::span("serve", "job");
        match job.work {
            Work::InjectedPanic => {
                let caught = catch_unwind(AssertUnwindSafe(|| -> () { panic!("injected chaos panic") }));
                if let Err(payload) = caught {
                    ServeMetrics::bump(&shared.metrics.worker_panics);
                    quva_obs::counter("serve.worker.panic", 1);
                    if let Some(dump) = &shared.dump {
                        dump.record("worker_panic", &job.id);
                    }
                    let _ = job.reply.send(JobOutcome::Failed(format!(
                        "worker panicked: {}",
                        panic_text(payload.as_ref())
                    )));
                    return WorkerExit::Respawn;
                }
            }
            Work::Run(resolved) => {
                let want_progress = resolved.spec.progress && resolved.spec.kind == JobKind::Simulate;
                let caught = if want_progress {
                    // Sender is !Sync and the engine calls back from
                    // its trial threads, so the clone lives behind a
                    // mutex. Frames are throttled to decile
                    // boundaries; the decile check and the send share
                    // one lock so the stream stays strictly monotone
                    // even when work-stealing completes chunks out of
                    // order.
                    let progress_state = Mutex::new((job.reply.clone(), 0u64));
                    let callback = |done: u64, total: u64| {
                        let decile = (done * 10).checked_div(total).unwrap_or(10);
                        let mut state = progress_state.lock().unwrap_or_else(PoisonError::into_inner);
                        if decile > state.1 {
                            state.1 = decile;
                            let _ = state.0.send(JobOutcome::Progress { done, total });
                        }
                    };
                    catch_unwind(AssertUnwindSafe(|| {
                        execute_with(&resolved, engine, Some(&callback))
                    }))
                } else {
                    catch_unwind(AssertUnwindSafe(|| execute(&resolved, engine)))
                };
                match caught {
                    Ok(Ok(text)) => {
                        let rendered: Arc<str> = Arc::from(text.as_str());
                        shared.cache.insert(resolved.key.clone(), Arc::clone(&rendered));
                        quva_obs::counter("serve.cache.insert", 1);
                        let _ = job.reply.send(JobOutcome::Done(rendered));
                    }
                    Ok(Err(message)) => {
                        let _ = job.reply.send(JobOutcome::Failed(message));
                    }
                    Err(payload) => {
                        ServeMetrics::bump(&shared.metrics.worker_panics);
                        quva_obs::counter("serve.worker.panic", 1);
                        let _ = job.reply.send(JobOutcome::Failed(format!(
                            "worker panicked: {}",
                            panic_text(payload.as_ref())
                        )));
                        return WorkerExit::Respawn;
                    }
                }
            }
        }
    }
}

/// Worker supervisor: re-arms the loop after every caught panic and
/// flushes this thread's obs buffers before exiting.
fn worker_main(shared: &Arc<Shared>) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_iterations(shared))) {
            Ok(WorkerExit::Drained) => break,
            Ok(WorkerExit::Respawn) => {
                ServeMetrics::bump(&shared.metrics.worker_respawns);
                quva_obs::counter("serve.worker.respawn", 1);
                // flush *before* the replacement loop starts: the
                // respawn counter and any records buffered before the
                // panic must be visible to a mid-run drain, not parked
                // in this thread's TLS until final exit
                quva_obs::flush();
            }
            Err(_) => {
                // a panic escaped the per-job guard (supervisor backstop)
                ServeMetrics::bump(&shared.metrics.worker_panics);
                ServeMetrics::bump(&shared.metrics.worker_respawns);
                quva_obs::counter("serve.worker.respawn", 1);
                if let Some(dump) = &shared.dump {
                    dump.record("worker_panic", "");
                }
                quva_obs::flush();
            }
        }
    }
    quva_obs::flush();
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn set_read_timeout(&self, timeout: Duration) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(Some(timeout)),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(Some(timeout)),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true); // latency over batching
                Stream::Tcp(s)
            }),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(true),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn write_line(stream: &mut Stream, line: &str) -> io::Result<()> {
    // one write per frame: a separate 1-byte newline write interacts
    // with Nagle + delayed ACK and costs ~40ms per response on TCP
    let mut framed = Vec::with_capacity(line.len() + 1);
    framed.extend_from_slice(line.as_bytes());
    framed.push(b'\n');
    stream.write_all(&framed)?;
    stream.flush()
}

/// Reads frames off one connection until EOF, error, idle timeout, or
/// drain; answers every complete frame.
fn handle_connection(mut stream: Stream, shared: &Arc<Shared>) {
    let poll = Duration::from_millis(shared.config.idle_timeout_ms.clamp(1, 250));
    if stream.set_read_timeout(poll).is_err() {
        return;
    }
    let idle_limit = Duration::from_millis(shared.config.idle_timeout_ms.max(1));
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    let mut last_activity = Instant::now();
    loop {
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = pending.drain(..=pos).collect();
            line.pop(); // strip '\n'
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            last_activity = Instant::now();
            if line.is_empty() {
                continue;
            }
            let outcome = match String::from_utf8(line) {
                Ok(text) => {
                    // progress frames stream through this closure while
                    // the connection thread waits on the job outcome
                    let mut emit = |frame: &str| write_line(&mut stream, frame);
                    shared.handle_frame(&text, &mut emit)
                }
                Err(_) => {
                    ServeMetrics::bump(&shared.metrics.malformed_frames);
                    ServeMetrics::bump(&shared.metrics.errors);
                    FrameOutcome::Reply(
                        Response::Error {
                            id: String::new(),
                            message: "frame is not valid UTF-8".to_string(),
                        }
                        .render(),
                    )
                }
            };
            match outcome {
                FrameOutcome::Reply(text) => {
                    if write_line(&mut stream, &text).is_err() {
                        return;
                    }
                }
                FrameOutcome::ReplyThenDrain(text) => {
                    // drain first: once the client reads this reply,
                    // the daemon must already report itself draining
                    shared.begin_drain();
                    let _ = write_line(&mut stream, &text);
                    return;
                }
            }
        }
        if pending.len() > shared.config.max_line_bytes {
            ServeMetrics::bump(&shared.metrics.malformed_frames);
            ServeMetrics::bump(&shared.metrics.errors);
            let _ = write_line(
                &mut stream,
                &Response::Error {
                    id: String::new(),
                    message: format!("frame exceeds {} bytes", shared.config.max_line_bytes),
                }
                .render(),
            );
            return;
        }
        if shared.draining() && pending.is_empty() {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // client closed; any queued work still completes
            Ok(n) => {
                pending.extend_from_slice(&buf[..n]);
                last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
                if last_activity.elapsed() >= idle_limit {
                    if !pending.is_empty() {
                        // slow-loris: a frame stalled mid-line
                        let _ = write_line(
                            &mut stream,
                            &Response::Error {
                                id: String::new(),
                                message: "connection idle mid-frame".to_string(),
                            }
                            .render(),
                        );
                    }
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn accept_loop(listener: Listener, shared: &Arc<Shared>) {
    loop {
        if shared.draining() {
            break;
        }
        match listener.accept() {
            Ok(mut stream) => {
                let open = shared.active_connections.fetch_add(1, Ordering::SeqCst) + 1;
                if open > shared.config.max_connections {
                    ServeMetrics::bump(&shared.metrics.connections_rejected);
                    let _ = write_line(
                        &mut stream,
                        &Response::Overloaded {
                            id: String::new(),
                            retry_after_ms: shared.retry_hint_ms(),
                        }
                        .render(),
                    );
                    shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                ServeMetrics::bump(&shared.metrics.connections);
                quva_obs::counter("serve.connections", 1);
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || {
                    handle_connection(stream, &conn_shared);
                    conn_shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                    quva_obs::flush();
                });
                shared
                    .conn_handles
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // transient accept errors (e.g. aborted handshake)
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    drop(listener); // removes a unix socket file
    quva_obs::flush();
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (or send a `shutdown` frame) and
/// then [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    local_addr: Option<SocketAddr>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("local_addr", &self.local_addr)
            .field("draining", &self.shared.draining())
            .finish()
    }
}

impl ServerHandle {
    /// The bound TCP address (None for unix-socket servers). With a
    /// `127.0.0.1:0` config this is where the ephemeral port lives.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Begins graceful drain: stop accepting, refuse new jobs, let
    /// in-flight jobs finish or deadline-expire. Idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Whether drain has begun (via [`ServerHandle::shutdown`] or a
    /// client `shutdown` frame).
    pub fn draining(&self) -> bool {
        self.shared.draining()
    }

    /// A point-in-time snapshot of the server metrics as JSON.
    pub fn metrics_json(&self) -> String {
        self.shared.sync_telemetry();
        self.shared.metrics.render_json()
    }

    /// A point-in-time Prometheus-style text exposition — the same
    /// bytes the `metrics` verb returns (modulo timing-valued lines).
    pub fn exposition(&self) -> String {
        self.shared.render_exposition()
    }

    /// Blocks until the daemon has fully drained: accept loop stopped,
    /// every connection closed, the queue drained, every worker exited
    /// (each flushing its obs buffers). Returns the final metrics
    /// snapshot.
    ///
    /// Without a prior [`ServerHandle::shutdown`] this blocks until a
    /// client sends a `shutdown` frame — that is the daemon's normal
    /// "run until asked to stop" mode.
    pub fn join(mut self) -> String {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut guard = self
                    .shared
                    .conn_handles
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                guard.drain(..).collect()
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        quva_obs::flush();
        self.shared.sync_telemetry();
        self.shared.metrics.render_json()
    }
}

/// A `quva-serve` daemon instance.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds the configured socket and spawns the accept loop and
    /// worker pool.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the socket cannot be bound.
    pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
        let (listener, local_addr) = match &config.listen {
            Listen::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                let local = l.local_addr()?;
                (Listener::Tcp(l), Some(local))
            }
            #[cfg(unix)]
            Listen::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                (Listener::Unix(l, path.clone()), None)
            }
        };
        listener.set_nonblocking()?;

        // the flight recorder is always on while a daemon runs: anomaly
        // dumps need the history from *before* the trigger
        quva_obs::flight::arm(config.flight_capacity);
        let dump = match &config.dump_dir {
            Some(dir) => Some(DumpSink::new(
                dir.clone(),
                config.dump_max_file_bytes,
                config.dump_max_total_bytes,
            )?),
            None => None,
        };
        let journal = match &config.journal_path {
            Some(path) => Some(Journal::new(path.clone(), config.journal_max_bytes)?),
            None => None,
        };

        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            cache: ResultCache::new(config.cache_shards, config.cache_capacity_per_shard),
            metrics: ServeMetrics::default(),
            draining: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            conn_handles: Mutex::new(Vec::new()),
            started: Instant::now(),
            latency: LatencyRecorder::default(),
            dump,
            journal,
            workers_alive: AtomicU64::new(0),
            config,
        });

        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let worker_shared = Arc::clone(&shared);
                worker_shared.workers_alive.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    worker_main(&worker_shared);
                    worker_shared.workers_alive.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(listener, &accept_shared));

        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            workers,
            local_addr,
        })
    }
}
