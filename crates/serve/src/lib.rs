//! # quva-serve — compilation-as-a-service for the quva pipeline
//!
//! The paper's central operational claim is that variability-aware
//! policies must recompile against *each day's* calibration data
//! (§5–§6): mapping is not a one-shot build step but a recurring
//! service that runs every calibration cycle, for every queued
//! program. This crate is that service: `quvad`, a long-running
//! daemon that accepts compile / simulate / audit jobs over a
//! line-delimited JSON protocol on a TCP or Unix socket.
//!
//! Robustness is the design center, not an afterthought:
//!
//! * **Admission control** — a bounded priority queue fed by static
//!   cost envelopes (`quva-analysis`): a job whose *optimistic* cost
//!   bound already exceeds its deadline is answered `infeasible`
//!   before queueing, spending no worker time; a full queue answers
//!   `overloaded` with a `retry_after_ms` hint derived from the
//!   predicted drain time of the queued work, or sheds the outranked
//!   queued job with the worst predicted-cost-per-priority ratio.
//! * **Deadlines** — every job has one (its own `deadline_ms` or the
//!   server default); a missed deadline is a typed response, and the
//!   worker's eventual result still lands in the cache.
//! * **Panic isolation** — workers run jobs inside `catch_unwind`; a
//!   panicking job becomes a structured `error` response and a
//!   re-armed worker, never a dead daemon.
//! * **Graceful drain** — shutdown stops intake, finishes or
//!   deadline-expires in-flight jobs, and flushes every thread's
//!   `quva-obs` buffers before exit.
//! * **Determinism** — results are pure functions of the job spec, so
//!   the sharded cache (keyed by `Device::fingerprint` ×
//!   `Circuit::fingerprint`) replays byte-identical response lines.
//! * **Observability** — an always-on flight recorder mirrors spans
//!   and warnings into a bounded in-memory ring; anomalies (deadline
//!   misses, worker panics, shed and queue-flood events) snapshot it
//!   into size-capped rotated JSONL dumps; a `metrics` verb serves a
//!   Prometheus-style text exposition with exact per-verb latency
//!   quantiles; a per-job JSONL audit journal records every admission
//!   decision; and `"progress":true` simulate jobs stream
//!   chunk-boundary progress frames ahead of the final response.
//!
//! ```no_run
//! use quva_serve::{Listen, Server, ServerConfig};
//! use std::io::{BufRead, BufReader, Write};
//!
//! # fn main() -> std::io::Result<()> {
//! let handle = Server::spawn(ServerConfig {
//!     listen: Listen::Tcp("127.0.0.1:0".into()),
//!     ..ServerConfig::default()
//! })?;
//! let addr = handle.local_addr().ok_or(std::io::ErrorKind::AddrNotAvailable)?;
//! let mut conn = std::net::TcpStream::connect(addr)?;
//! writeln!(
//!     conn,
//!     r#"{{"id":"r1","kind":"audit","device":"q20","policy":"vqm","benchmark":"bv:8"}}"#
//! )?;
//! let mut line = String::new();
//! BufReader::new(conn).read_line(&mut line)?;
//! assert!(line.contains("\"status\":\"ok\""));
//! handle.shutdown();
//! handle.join();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backoff;
pub mod cache;
pub mod dump;
pub mod exec;
pub mod expo;
pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod spec;

pub use backoff::Backoff;
pub use cache::{CacheKey, ResultCache};
pub use dump::{DumpSink, DUMP_HEADER_FIELDS, DUMP_SCHEMA, TRIGGERS};
pub use expo::{is_timing_line, render_exposition, ExpoInputs, LatencyRecorder};
pub use journal::{Journal, JournalRecord, JOURNAL_FIELDS, JOURNAL_SCHEMA};
pub use metrics::ServeMetrics;
pub use protocol::{
    parse_request, progress_frame, JobKind, JobSpec, ProtocolError, Request, RequestKind, Response,
    MAX_FRAME_BYTES,
};
pub use queue::{BoundedQueue, Pop, Push};
pub use server::{Listen, Server, ServerConfig, ServerHandle};
pub use spec::{parse_benchmark, parse_device, parse_policy, SpecError};
