//! Job resolution and execution: from spec strings to a rendered
//! result fragment.
//!
//! Resolution (spec strings → device/policy/circuit) runs on the
//! connection thread so the cache can be consulted before admission;
//! execution (compile/simulate/audit) runs on a worker. Both are
//! hardened: resolution wraps the benchmark generators in
//! `catch_unwind` because degenerate sizes (e.g. `bv:1`) assert, and
//! execution is wrapped again by the worker loop as the last line of
//! panic isolation.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock};

use quva::{CheckedPipeline, MappingPolicy, Pipeline};
use quva_analysis::audit_compiled;
use quva_benchmarks::Benchmark;
use quva_device::Device;
use quva_sim::{monte_carlo_pst_progress, monte_carlo_pst_with, CoherenceModel, McEngine};

use crate::cache::CacheKey;
use crate::protocol::{JobKind, JobSpec};
use crate::spec::{parse_benchmark, parse_device, parse_policy};

/// A job whose specs resolved to concrete pipeline inputs.
#[derive(Debug, Clone)]
pub struct ResolvedJob {
    /// The original wire spec.
    pub spec: JobSpec,
    /// Resolved target device.
    pub device: Device,
    /// Resolved workload.
    pub benchmark: Benchmark,
    /// Resolved mapping policy.
    pub policy: MappingPolicy,
    /// Fingerprint-derived cache identity.
    pub key: CacheKey,
}

/// Resolves a job's spec strings into pipeline inputs and its cache
/// key.
///
/// # Errors
///
/// Returns a message naming the offending spec on parse failure, or a
/// generic message if a generator asserted on a degenerate parameter.
pub fn resolve(spec: &JobSpec) -> Result<ResolvedJob, String> {
    let spec = spec.clone();
    catch_unwind(AssertUnwindSafe(move || -> Result<ResolvedJob, String> {
        let device = parse_device(&spec.device).map_err(|e| e.to_string())?;
        let policy = parse_policy(&spec.policy).map_err(|e| e.to_string())?;
        let benchmark = parse_benchmark(&spec.benchmark).map_err(|e| e.to_string())?;
        let key = CacheKey {
            device_fp: device.fingerprint(),
            circuit_fp: benchmark.circuit().fingerprint(),
            policy: spec.policy.clone(),
            kind: spec.kind,
            trials: spec.trials,
            seed: spec.seed,
        };
        Ok(ResolvedJob {
            spec,
            device,
            benchmark,
            policy,
            key,
        })
    }))
    .unwrap_or_else(|_| Err("job spec rejected: workload parameters out of range".to_string()))
}

/// The constructed-and-contract-checked pipeline for a policy, built
/// once per process and shared across every job and worker thread
/// (`CheckedPipeline` is `Sync`: passes are stateless, all mutable
/// compile state lives in the per-run `PassContext`). Validation —
/// the invariant-lattice walk — therefore happens once per distinct
/// policy, not once per job; the `serve.pipeline.hit` /
/// `serve.pipeline.miss` counters expose the reuse rate.
fn checked_pipeline(policy: &MappingPolicy) -> Result<Arc<CheckedPipeline<'static>>, String> {
    static PIPELINES: OnceLock<Mutex<HashMap<String, Arc<CheckedPipeline<'static>>>>> = OnceLock::new();
    let cache = PIPELINES.get_or_init(|| Mutex::new(HashMap::new()));
    // Debug form, not name(): it carries every policy parameter
    // (MAH hop limit, native-policy seed), so distinct policies can
    // never share a checked pipeline
    let key = format!("{policy:?}");
    let mut map = cache.lock().map_err(|_| "pipeline cache poisoned".to_string())?;
    if let Some(pipeline) = map.get(&key) {
        quva_obs::counter("serve.pipeline.hit", 1);
        return Ok(Arc::clone(pipeline));
    }
    let checked = Pipeline::for_policy(policy)
        .validate()
        .map_err(|e| format!("pipeline rejected: {e}"))?;
    quva_obs::counter("serve.pipeline.miss", 1);
    let pipeline = Arc::new(checked);
    map.insert(key, Arc::clone(&pipeline));
    Ok(pipeline)
}

/// Runs a resolved job and renders its result as a one-line JSON
/// object fragment (fixed key order — identical jobs render identical
/// bytes).
///
/// # Errors
///
/// Returns a message on compile or simulation failure. Panics are the
/// caller's job to contain (the worker loop wraps this in
/// `catch_unwind`).
pub fn execute(job: &ResolvedJob, engine: McEngine) -> Result<String, String> {
    execute_with(job, engine, None)
}

/// [`execute`] with an optional chunk-boundary progress callback,
/// invoked as `f(done_trials, total_trials)` during `simulate` jobs
/// (compile and audit finish in one step and never call it). Progress
/// observes the run without altering it — the rendered result is
/// byte-identical to [`execute`].
///
/// # Errors
///
/// Returns a message on compile or simulation failure, like
/// [`execute`].
pub fn execute_with(
    job: &ResolvedJob,
    engine: McEngine,
    progress: Option<&(dyn Fn(u64, u64) + Sync)>,
) -> Result<String, String> {
    let pipeline = checked_pipeline(&job.policy)?;
    let compiled = {
        // same span compile_with emits, so serve traces keep the
        // compile.total > compile.allocate/route nesting
        let _total = quva_obs::span("compile", "compile.total");
        pipeline
            .run(job.benchmark.circuit(), &job.device)
            .map_err(|e| format!("compile failed: {e}"))?
    };
    let physical = compiled.physical();
    let head = format!(
        "{{\"benchmark\":\"{}\",\"device_fp\":\"{:016x}\",\"circuit_fp\":\"{:016x}\",\
         \"gates\":{},\"depth\":{},\"swaps\":{}",
        job.benchmark.name(),
        job.key.device_fp,
        job.key.circuit_fp,
        physical.len(),
        physical.depth(),
        compiled.inserted_swaps()
    );
    match job.spec.kind {
        JobKind::Compile => {
            let pst = compiled
                .analytic_pst(&job.device, CoherenceModel::Disabled)
                .map_err(|e| format!("analytic PST failed: {e}"))?;
            Ok(format!("{head},\"analytic_pst\":{}}}", pst.pst))
        }
        JobKind::Simulate => {
            let est = match progress {
                Some(f) => monte_carlo_pst_progress(
                    &job.device,
                    physical,
                    job.spec.trials,
                    job.spec.seed,
                    CoherenceModel::Disabled,
                    engine,
                    f,
                ),
                None => monte_carlo_pst_with(
                    &job.device,
                    physical,
                    job.spec.trials,
                    job.spec.seed,
                    CoherenceModel::Disabled,
                    engine,
                ),
            }
            .map_err(|e| format!("simulation failed: {e}"))?;
            Ok(format!(
                "{head},\"pst\":{},\"successes\":{},\"trials\":{},\"std_error\":{}}}",
                est.pst,
                est.successes,
                est.trials,
                est.std_error()
            ))
        }
        JobKind::Audit => {
            let report = audit_compiled(job.benchmark.circuit(), &job.device, &compiled);
            Ok(format!(
                "{head},\"esp_lo\":{},\"esp_hi\":{},\"esp_point\":{},\"errors\":{},\"warnings\":{},\
                 \"clean\":{}}}",
                report.esp.lo,
                report.esp.hi,
                report.esp.point,
                report.findings.error_count(),
                report.findings.warning_count(),
                report.findings.is_clean()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva_obs::parse_json;

    fn spec(kind: JobKind) -> JobSpec {
        JobSpec {
            kind,
            device: "q20".into(),
            policy: "vqm".into(),
            benchmark: "bv:8".into(),
            trials: if kind == JobKind::Simulate { 2_000 } else { 0 },
            seed: 7,
            priority: 5,
            deadline_ms: None,
            progress: false,
        }
    }

    #[test]
    fn resolve_builds_fingerprint_key() {
        let job = resolve(&spec(JobKind::Compile)).unwrap();
        assert_eq!(job.key.device_fp, job.device.fingerprint());
        assert_eq!(job.key.circuit_fp, job.benchmark.circuit().fingerprint());
        assert_eq!(job.key.kind, JobKind::Compile);
    }

    #[test]
    fn resolve_rejects_bad_specs_without_panicking() {
        let mut s = spec(JobKind::Compile);
        s.device = "hexagon:9".into();
        assert!(resolve(&s).is_err());
        // bv:1 asserts inside the generator — must come back as Err
        let mut s = spec(JobKind::Compile);
        s.benchmark = "bv:1".into();
        assert!(resolve(&s).is_err());
    }

    #[test]
    fn execute_renders_parseable_deterministic_results() {
        for kind in [JobKind::Compile, JobKind::Simulate, JobKind::Audit] {
            let job = resolve(&spec(kind)).unwrap();
            let a = execute(&job, McEngine::sequential()).unwrap();
            let b = execute(&job, McEngine::new(4)).unwrap();
            assert_eq!(a, b, "{kind:?} result must be engine-independent");
            let doc = parse_json(&a).unwrap_or_else(|e| panic!("{kind:?}: {e}\n{a}"));
            assert_eq!(doc.get("benchmark").and_then(|v| v.as_str()), Some("bv-8"));
            assert!(doc.get("gates").and_then(|v| v.as_f64()).unwrap() > 0.0);
        }
    }

    #[test]
    fn checked_pipeline_is_shared_across_jobs() {
        let a = checked_pipeline(&quva::MappingPolicy::vqm()).unwrap();
        let b = checked_pipeline(&quva::MappingPolicy::vqm()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same policy must reuse the checked pipeline");
        let c = checked_pipeline(&quva::MappingPolicy::baseline()).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "distinct policies must not share");
    }

    #[test]
    fn pipeline_reuse_matches_fresh_compile_bytes() {
        // the cached CheckedPipeline must compile byte-identically to
        // the one-shot MappingPolicy::compile path
        let job = resolve(&spec(JobKind::Compile)).unwrap();
        let via_pipeline = checked_pipeline(&job.policy)
            .unwrap()
            .run(job.benchmark.circuit(), &job.device)
            .unwrap();
        let via_policy = job.policy.compile(job.benchmark.circuit(), &job.device).unwrap();
        assert_eq!(
            quva_circuit::qasm::to_qasm(via_pipeline.physical()),
            quva_circuit::qasm::to_qasm(via_policy.physical())
        );
        assert_eq!(via_pipeline.inserted_swaps(), via_policy.inserted_swaps());
    }

    #[test]
    fn progress_callback_leaves_result_bytes_unchanged() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let mut s = spec(JobKind::Simulate);
        s.trials = 40_000; // several chunks at the default granularity
        let job = resolve(&s).unwrap();
        let plain = execute(&job, McEngine::sequential()).unwrap();
        let calls = AtomicU64::new(0);
        let peak = AtomicU64::new(0);
        let cb = |done: u64, total: u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            peak.fetch_max(done, Ordering::Relaxed);
            assert_eq!(total, 40_000);
        };
        let streamed = execute_with(&job, McEngine::sequential(), Some(&cb)).unwrap();
        assert_eq!(plain, streamed);
        assert!(calls.load(Ordering::Relaxed) >= 3, "expected one call per chunk");
        assert_eq!(peak.load(Ordering::Relaxed), 40_000);
        // compile jobs never invoke the callback
        let compile = resolve(&spec(JobKind::Compile)).unwrap();
        let before = calls.load(Ordering::Relaxed);
        execute_with(&compile, McEngine::sequential(), Some(&cb)).unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), before);
    }

    #[test]
    fn simulate_result_carries_estimate() {
        let job = resolve(&spec(JobKind::Simulate)).unwrap();
        let out = execute(&job, McEngine::sequential()).unwrap();
        let doc = parse_json(&out).unwrap();
        let pst = doc.get("pst").and_then(|v| v.as_f64()).unwrap();
        assert!(pst > 0.0 && pst < 1.0, "{out}");
        assert_eq!(doc.get("trials").and_then(|v| v.as_f64()), Some(2_000.0));
    }
}
