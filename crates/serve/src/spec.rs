//! Textual specifications for devices, policies, and workloads — the
//! shared vocabulary of the `quva` CLI and the `quvad` wire protocol.
//!
//! This module is the canonical parser; `quva-cli::spec` delegates
//! here. Every function returns a typed [`SpecError`] — spec strings
//! arrive over the network, so nothing in this module may panic.

use std::error::Error;
use std::fmt;

use quva::{AllocationStrategy, MappingPolicy, RoutingMetric};
use quva_benchmarks::Benchmark;
use quva_device::{CalibrationGenerator, Device, Topology, VariationProfile};

/// A device, policy, or benchmark spec string could not be understood.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl SpecError {
    fn new(msg: impl Into<String>) -> Self {
        SpecError(msg.into())
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for SpecError {}

/// Builds a device from a spec string.
///
/// Supported specs:
/// * `q20` — IBM-Q20 Tokyo with the paper's average error map;
/// * `q5` — IBM-Q5 Tenerife with the §7 error map;
/// * `melbourne` — IBM-Q16 with a seeded synthetic calibration;
/// * `linear:N`, `ring:N`, `grid:RxC`, `heavyhex:RxC`, `full:N` —
///   generic layouts with a seeded synthetic calibration (append
///   `@SEED` to change the seed, e.g. `grid:4x5@7`).
///
/// # Errors
///
/// Fails on unknown names or malformed dimensions.
pub fn parse_device(spec: &str) -> Result<Device, SpecError> {
    match spec {
        "q20" | "ibm-q20" => return Ok(Device::ibm_q20()),
        "q5" | "ibm-q5" => return Ok(Device::ibm_q5()),
        "melbourne" | "ibm-q16" => {
            let topo = Topology::ibm_q16_melbourne();
            let mut generator = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), 1);
            let cal = generator.snapshot(&topo);
            return Device::from_parts(topo, cal).map_err(|e| SpecError::new(e.to_string()));
        }
        _ => {}
    }
    let (shape, seed) = match spec.split_once('@') {
        Some((s, seed)) => {
            let seed: u64 = seed
                .parse()
                .map_err(|_| SpecError::new(format!("bad calibration seed in device spec '{spec}'")))?;
            (s, seed)
        }
        None => (spec, 1),
    };
    let (kind, dims) = shape.split_once(':').ok_or_else(|| {
        SpecError::new(format!(
            "unknown device '{spec}' (try q20, q5, linear:N, grid:RxC)"
        ))
    })?;
    let topology = match kind {
        "linear" => Topology::linear(parse_dim(spec, dims)?),
        "ring" => Topology::ring(parse_dim(spec, dims)?),
        "full" => Topology::fully_connected(parse_dim(spec, dims)?),
        "grid" => {
            let (r, c) = dims
                .split_once('x')
                .ok_or_else(|| SpecError::new(format!("grid spec needs RxC, got '{spec}'")))?;
            Topology::grid(parse_dim(spec, r)?, parse_dim(spec, c)?)
        }
        "heavyhex" => {
            let (r, c) = dims
                .split_once('x')
                .ok_or_else(|| SpecError::new(format!("heavyhex spec needs RxC, got '{spec}'")))?;
            Topology::heavy_hex(parse_dim(spec, r)?, parse_dim(spec, c)?)
        }
        _ => {
            return Err(SpecError::new(format!(
                "unknown device kind '{kind}' in '{spec}'"
            )))
        }
    };
    let mut generator = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), seed);
    let calibration = generator.snapshot(&topology);
    Device::from_parts(topology, calibration).map_err(|e| SpecError::new(e.to_string()))
}

fn parse_dim(spec: &str, text: &str) -> Result<usize, SpecError> {
    let d: usize = text
        .parse()
        .map_err(|_| SpecError::new(format!("bad dimension '{text}' in device spec '{spec}'")))?;
    if d == 0 || d > 1000 {
        return Err(SpecError::new(format!("dimension {d} out of range in '{spec}'")));
    }
    Ok(d)
}

/// Builds a mapping policy from a spec string: `baseline`, `vqm`,
/// `vqm-mah:K`, `vqa-vqm`, `vqa`, `native:SEED`.
///
/// # Errors
///
/// Fails on unknown names or malformed parameters.
pub fn parse_policy(spec: &str) -> Result<MappingPolicy, SpecError> {
    Ok(match spec {
        "baseline" => MappingPolicy::baseline(),
        "vqm" => MappingPolicy::vqm(),
        "vqm-mah4" => MappingPolicy::vqm_hop_limited(),
        "vqa-vqm" | "vqa+vqm" => MappingPolicy::vqa_vqm(),
        "vqa-ro-vqm" => MappingPolicy {
            allocation: AllocationStrategy::vqa_readout_aware(),
            routing: RoutingMetric::reliability(),
        },
        "vqa" => MappingPolicy {
            allocation: AllocationStrategy::vqa(),
            routing: RoutingMetric::Hops,
        },
        _ => {
            if let Some(k) = spec.strip_prefix("vqm-mah:") {
                let mah: u32 = k
                    .parse()
                    .map_err(|_| SpecError::new(format!("bad MAH value in policy '{spec}'")))?;
                MappingPolicy {
                    allocation: AllocationStrategy::GreedyInteraction,
                    routing: RoutingMetric::Reliability {
                        max_additional_hops: Some(mah),
                        optimize_meeting_edge: false,
                    },
                }
            } else if let Some(seed) = spec.strip_prefix("native:") {
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| SpecError::new(format!("bad seed in policy '{spec}'")))?;
                MappingPolicy::native(seed)
            } else {
                return Err(SpecError::new(format!(
                    "unknown policy '{spec}' (try baseline, vqm, vqm-mah:K, vqa-vqm, native:SEED)"
                )));
            }
        }
    })
}

/// Builds a named benchmark workload: `bv:N`, `qft:N`, `ghz:N`, `alu`,
/// `triswap`, `w:N`, `grover2:N`, `mirror:N:DEPTH`, `rnd-sd:N:CNOTS`,
/// `rnd-ld:N:CNOTS`.
///
/// # Errors
///
/// Fails on unknown names or malformed parameters.
pub fn parse_benchmark(spec: &str) -> Result<Benchmark, SpecError> {
    let bad = |what: &str| SpecError::new(format!("bad {what} in benchmark '{spec}'"));
    if spec == "alu" {
        return Ok(Benchmark::alu());
    }
    if spec == "triswap" {
        return Ok(Benchmark::triswap());
    }
    if let Some((kind, rest)) = spec.split_once(':') {
        return match kind {
            "bv" => Ok(Benchmark::bv(rest.parse().map_err(|_| bad("size"))?)),
            "w" => Ok(Benchmark::w_state(rest.parse().map_err(|_| bad("size"))?)),
            "grover2" => Ok(Benchmark::grover2(rest.parse().map_err(|_| bad("marked item"))?)),
            "mirror" => {
                let (n, depth) = rest.split_once(':').ok_or_else(|| bad("shape (want N:DEPTH)"))?;
                Ok(Benchmark::mirror(
                    n.parse().map_err(|_| bad("size"))?,
                    depth.parse().map_err(|_| bad("depth"))?,
                    1,
                ))
            }
            "qft" => Ok(Benchmark::qft(rest.parse().map_err(|_| bad("size"))?)),
            "ghz" => Ok(Benchmark::ghz(rest.parse().map_err(|_| bad("size"))?)),
            "rnd-sd" | "rnd-ld" => {
                let (n, cnots) = rest.split_once(':').ok_or_else(|| bad("shape (want N:CNOTS)"))?;
                let n = n.parse().map_err(|_| bad("size"))?;
                let cnots = cnots.parse().map_err(|_| bad("cnot count"))?;
                Ok(if kind == "rnd-sd" {
                    Benchmark::rnd_sd(n, cnots, 1)
                } else {
                    Benchmark::rnd_ld(n, cnots, 2)
                })
            }
            _ => Err(SpecError::new(format!("unknown benchmark '{spec}'"))),
        };
    }
    Err(SpecError::new(format!(
        "unknown benchmark '{spec}' (try bv:16, qft:12, ghz:3, alu, triswap)"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_devices() {
        assert_eq!(parse_device("q20").unwrap().num_qubits(), 20);
        assert_eq!(parse_device("q5").unwrap().num_qubits(), 5);
        assert_eq!(parse_device("melbourne").unwrap().num_qubits(), 14);
    }

    #[test]
    fn parametric_devices_and_seeds() {
        assert_eq!(parse_device("linear:7").unwrap().num_qubits(), 7);
        assert_eq!(parse_device("grid:3x4").unwrap().num_qubits(), 12);
        let a = parse_device("grid:3x4@1").unwrap();
        let b = parse_device("grid:3x4@2").unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), parse_device("grid:3x4@1").unwrap().fingerprint());
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        assert!(parse_device("mesh").is_err());
        assert!(parse_device("grid:3").is_err());
        assert!(parse_device("linear:0").is_err());
        assert!(parse_policy("qiskit").is_err());
        assert!(parse_policy("vqm-mah:x").is_err());
        assert!(parse_benchmark("shor:2048").is_err());
        assert!(parse_benchmark("bv").is_err());
    }

    #[test]
    fn policies_and_benchmarks_parse() {
        assert_eq!(parse_policy("baseline").unwrap(), MappingPolicy::baseline());
        assert_eq!(parse_policy("native:7").unwrap(), MappingPolicy::native(7));
        assert_eq!(parse_benchmark("bv:16").unwrap().name(), "bv-16");
        assert_eq!(parse_benchmark("ghz:4").unwrap().name(), "GHZ-4");
    }
}
