//! The per-job audit journal: one JSONL record for every job frame the
//! daemon answers.
//!
//! Where the flight recorder answers "what was the daemon doing just
//! now?", the journal answers "what happened to job X?" — admission
//! decision, cost envelope, cache hit/miss, kernel, outcome, and
//! elapsed time, one line per job, in arrival-completion order per
//! connection thread. Records use schema `quva-serve-journal/v1` with
//! the fixed key order in [`JOURNAL_FIELDS`].
//!
//! The journal rotates by size: when appending a record would push the
//! active file past `max_bytes`, the file is renamed to `<path>.1`
//! (replacing any previous rotation) and a fresh file is started — at
//! most two files, bounded disk. [`Journal::bytes_written`] is
//! lifetime-monotonic across rotations; it backs the `journal_bytes`
//! stats field and the `quvad_journal_bytes_total` exposition line.
//! Writes are best-effort: an I/O failure loses the record, never the
//! daemon.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::protocol::json_escape;

/// Fixed key order of one journal record, kept in lockstep with the
/// DESIGN.md §17 table by the `doc_sync` test.
pub const JOURNAL_FIELDS: &[&str] = &[
    "schema",
    "id",
    "kind",
    "device",
    "policy",
    "benchmark",
    "admission",
    "cache_hit",
    "envelope_lo_ms",
    "envelope_hi_ms",
    "kernel",
    "outcome",
    "elapsed_us",
];

/// Schema marker on every journal record.
pub const JOURNAL_SCHEMA: &str = "quva-serve-journal/v1";

/// One job's journal record, rendered with fixed key order.
#[derive(Debug, Clone)]
pub struct JournalRecord {
    /// Echoed request id.
    pub id: String,
    /// Job kind wire name (`compile` / `simulate` / `audit`).
    pub kind: String,
    /// Device spec string as received.
    pub device: String,
    /// Policy spec string as received.
    pub policy: String,
    /// Benchmark spec string as received.
    pub benchmark: String,
    /// Admission decision: `cache`, `admitted`, `infeasible`,
    /// `overloaded`, `draining`, or `error` (spec rejected).
    pub admission: &'static str,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// Optimistic static cost bound, ms (0 when admission never got
    /// that far).
    pub envelope_lo_ms: u64,
    /// Pessimistic static cost bound, ms.
    pub envelope_hi_ms: u64,
    /// Monte-Carlo kernel the worker pool runs.
    pub kernel: String,
    /// Final response status for the job.
    pub outcome: String,
    /// Wall-clock from frame decode to response render, µs.
    pub elapsed_us: u64,
}

impl JournalRecord {
    /// Renders the record as one JSON line with [`JOURNAL_FIELDS`] key
    /// order.
    pub fn render(&self) -> String {
        format!(
            "{{\"schema\":\"{JOURNAL_SCHEMA}\",\"id\":\"{}\",\"kind\":\"{}\",\"device\":\"{}\",\
             \"policy\":\"{}\",\"benchmark\":\"{}\",\"admission\":\"{}\",\"cache_hit\":{},\
             \"envelope_lo_ms\":{},\"envelope_hi_ms\":{},\"kernel\":\"{}\",\"outcome\":\"{}\",\
             \"elapsed_us\":{}}}",
            json_escape(&self.id),
            json_escape(&self.kind),
            json_escape(&self.device),
            json_escape(&self.policy),
            json_escape(&self.benchmark),
            self.admission,
            self.cache_hit,
            self.envelope_lo_ms,
            self.envelope_hi_ms,
            json_escape(&self.kernel),
            json_escape(&self.outcome),
            self.elapsed_us
        )
    }
}

struct JournalState {
    file: Option<File>,
    bytes_in_file: u64,
}

/// A size-rotated JSONL journal file.
pub struct Journal {
    path: PathBuf,
    max_bytes: u64,
    state: Mutex<JournalState>,
    total: AtomicU64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("max_bytes", &self.max_bytes)
            .field("bytes_written", &self.bytes_written())
            .finish()
    }
}

impl Journal {
    /// Creates a journal appending to `path`, rotating at `max_bytes`.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the parent directory cannot be
    /// created.
    pub fn new(path: PathBuf, max_bytes: u64) -> std::io::Result<Journal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let bytes_in_file = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        Ok(Journal {
            path,
            max_bytes: max_bytes.max(1024),
            state: Mutex::new(JournalState {
                file: None,
                bytes_in_file,
            }),
            total: AtomicU64::new(0),
        })
    }

    /// The active journal path (`<path>.1` holds the rotated tail).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lifetime bytes appended by this journal instance, monotonic
    /// across rotations.
    pub fn bytes_written(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Appends one record line. Best-effort: I/O errors are swallowed.
    pub fn append(&self, record: &JournalRecord) {
        let line = record.render();
        let cost = line.len() as u64 + 1;
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.bytes_in_file > 0 && state.bytes_in_file + cost > self.max_bytes {
            state.file = None;
            let _ = std::fs::rename(&self.path, self.path.with_extension("jsonl.1"));
            state.bytes_in_file = 0;
        }
        if state.file.is_none() {
            state.file = OpenOptions::new().create(true).append(true).open(&self.path).ok();
        }
        let Some(file) = state.file.as_mut() else {
            return;
        };
        if writeln!(file, "{line}").is_ok() {
            state.bytes_in_file += cost;
            self.total.fetch_add(cost, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("quva-journal-test-{tag}-{}.jsonl", std::process::id()))
    }

    fn record(id: &str) -> JournalRecord {
        JournalRecord {
            id: id.to_string(),
            kind: "simulate".into(),
            device: "q20".into(),
            policy: "vqm".into(),
            benchmark: "bv:8".into(),
            admission: "admitted",
            cache_hit: false,
            envelope_lo_ms: 1,
            envelope_hi_ms: 9,
            kernel: "bitparallel".into(),
            outcome: "ok".to_string(),
            elapsed_us: 1234,
        }
    }

    #[test]
    fn record_renders_fixed_order_and_reparses() {
        let line = record("j1").render();
        let doc = quva_obs::parse_json(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some(JOURNAL_SCHEMA));
        assert_eq!(doc.get("cache_hit").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(doc.get("elapsed_us").and_then(|v| v.as_f64()), Some(1234.0));
        let mut at = 0;
        for field in JOURNAL_FIELDS {
            let pos = line[at..]
                .find(&format!("\"{field}\":"))
                .unwrap_or_else(|| panic!("{field} missing or out of order in {line}"));
            at += pos;
        }
    }

    #[test]
    fn append_accumulates_and_survives_reopen() {
        let path = temp_path("append");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("jsonl.1"));
        let journal = Journal::new(path.clone(), 1024 * 1024).unwrap();
        journal.append(&record("a"));
        journal.append(&record("b"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert_eq!(journal.bytes_written(), text.len() as u64);
        for line in text.lines() {
            assert!(quva_obs::parse_json(line).is_ok(), "{line}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotation_caps_disk_but_bytes_written_is_monotonic() {
        let path = temp_path("rotate");
        let rotated = path.with_extension("jsonl.1");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
        let journal = Journal::new(path.clone(), 1024).unwrap();
        for i in 0..64 {
            journal.append(&record(&format!("job-{i}")));
        }
        let active = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let tail = std::fs::metadata(&rotated).map(|m| m.len()).unwrap_or(0);
        assert!(active <= 1024, "{active}");
        assert!(tail <= 1024, "{tail}");
        assert!(rotated.exists(), "rotation never happened");
        assert!(
            journal.bytes_written() > active + tail,
            "lifetime {} must exceed what rotation retained ({active} + {tail})",
            journal.bytes_written()
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
    }
}
