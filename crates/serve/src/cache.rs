//! Sharded result cache keyed by device × circuit fingerprints.
//!
//! The daemon's jobs are pure functions of (device, policy, circuit,
//! trials, seed) — the same determinism contract the rest of the repo
//! enforces — so results can be cached forever and replayed verbatim.
//! The cache stores the *rendered* result JSON fragment, which is what
//! makes identical payloads yield byte-identical response lines.
//!
//! Sharding keeps lock contention off the hot path: the shard index is
//! derived from the key hash, and each shard is an independent
//! mutex-guarded map with FIFO eviction at a per-shard capacity.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::protocol::JobKind;

/// Identity of a cached job result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// `Device::fingerprint()` of the resolved device.
    pub device_fp: u64,
    /// `Circuit::fingerprint()` of the source circuit.
    pub circuit_fp: u64,
    /// Canonical policy spec string.
    pub policy: String,
    /// Job kind — compile/simulate/audit results differ.
    pub kind: JobKind,
    /// Monte-Carlo trials (0 for non-simulate jobs).
    pub trials: u64,
    /// Monte-Carlo seed (0 for non-simulate jobs).
    pub seed: u64,
}

struct Shard {
    map: HashMap<CacheKey, Arc<str>>,
    order: VecDeque<CacheKey>,
}

/// Sharded map from [`CacheKey`] to rendered result JSON.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("len", &self.len())
            .finish()
    }
}

/// Recovers a shard guard even if a holder panicked: the cache holds
/// plain owned data, so a poisoned lock is still structurally sound.
fn lock_shard(shard: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl ResultCache {
    /// Creates a cache with `shards` independent shards of
    /// `per_shard_capacity` entries each. Zero arguments are clamped
    /// to 1.
    pub fn new(shards: usize, per_shard_capacity: usize) -> Self {
        let shards = shards.clamp(1, 1024);
        ResultCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
            per_shard_capacity: per_shard_capacity.max(1),
        }
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let idx = (h.finish() as usize) % self.shards.len();
        &self.shards[idx]
    }

    /// Looks up a rendered result.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<str>> {
        lock_shard(self.shard_for(key)).map.get(key).cloned()
    }

    /// Inserts a rendered result, evicting the oldest entry of the
    /// shard when it is full. Re-inserting an existing key refreshes
    /// the value without growing the shard.
    pub fn insert(&self, key: CacheKey, rendered: Arc<str>) {
        let mut shard = lock_shard(self.shard_for(&key));
        if shard.map.insert(key.clone(), rendered).is_none() {
            shard.order.push_back(key);
            while shard.map.len() > self.per_shard_capacity {
                match shard.order.pop_front() {
                    Some(oldest) => {
                        shard.map.remove(&oldest);
                    }
                    None => break,
                }
            }
        }
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            device_fp: n,
            circuit_fp: n.wrapping_mul(31),
            policy: "vqm".into(),
            kind: JobKind::Simulate,
            trials: 1000,
            seed: 7,
        }
    }

    #[test]
    fn round_trips_and_distinguishes_keys() {
        let cache = ResultCache::new(4, 8);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), Arc::from("{\"pst\":0.5}"));
        assert_eq!(cache.get(&key(1)).as_deref(), Some("{\"pst\":0.5}"));
        assert!(cache.get(&key(2)).is_none());
        let mut other = key(1);
        other.kind = JobKind::Audit;
        assert!(cache.get(&other).is_none(), "kind is part of the key");
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let cache = ResultCache::new(1, 3);
        for n in 0..10 {
            cache.insert(key(n), Arc::from(format!("{{\"n\":{n}}}").as_str()));
        }
        assert_eq!(cache.len(), 3);
        assert!(cache.get(&key(0)).is_none(), "oldest entries evicted");
        assert!(cache.get(&key(9)).is_some(), "newest entry kept");
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let cache = ResultCache::new(1, 4);
        cache.insert(key(1), Arc::from("old"));
        cache.insert(key(1), Arc::from("new"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(1)).as_deref(), Some("new"));
    }

    #[test]
    fn concurrent_use_is_safe() {
        let cache = Arc::new(ResultCache::new(8, 32));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for n in 0..200u64 {
                        cache.insert(key(n % 50), Arc::from(format!("{{\"t\":{t}}}").as_str()));
                        let _ = cache.get(&key((n + 13) % 50));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 50);
    }
}
