//! Anomaly-triggered flight-recorder dumps: every incident ships its
//! own trace.
//!
//! When the daemon hits an anomaly — a missed deadline, a worker
//! panic, a shed, a queue flood — it snapshots the always-on
//! `quva_obs::flight` ring into a JSONL file in a dedicated dump
//! directory. Tracing never had to be enabled up front: the ring was
//! already recording, so the dump carries the daemon's recent history
//! *leading into* the incident, including the id-tagged notes the
//! server records at job admission and pickup.
//!
//! Disk usage is bounded twice over: one dump file is truncated to the
//! newest events that fit `max_file_bytes`, and the directory is
//! rotated — oldest `dump-*.jsonl` files deleted — until the total is
//! within `max_total_bytes` (the newest dump is always kept). The
//! `dump-storm` chaos scenario drives a sustained anomaly stream
//! against exactly these caps.
//!
//! Dump file layout: one header object line (schema
//! `quva-flight-dump/v1`, fields [`DUMP_HEADER_FIELDS`]) followed by
//! one `quva_obs::flight` event object per line (fields
//! `quva_obs::flight::EVENT_FIELDS`). Writes are best-effort: an I/O
//! failure loses the dump, never the daemon.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use quva_obs::flight;

use crate::protocol::json_escape;

/// The anomaly triggers, sorted; `counts` and the
/// `quvad_dumps_total{trigger=…}` exposition lines follow this order.
pub const TRIGGERS: &[&str] = &["deadline_exceeded", "queue_flood", "shed_weakest", "worker_panic"];

/// Fixed key order of a dump file's header line, kept in lockstep with
/// the DESIGN.md §17 table by the `doc_sync` test.
pub const DUMP_HEADER_FIELDS: &[&str] = &[
    "schema",
    "trigger",
    "job_id",
    "seq",
    "dropped",
    "truncated",
    "events",
];

/// Schema marker on every dump header line.
pub const DUMP_SCHEMA: &str = "quva-flight-dump/v1";

/// A rotated, size-capped directory of anomaly dumps.
pub struct DumpSink {
    dir: PathBuf,
    max_file_bytes: u64,
    max_total_bytes: u64,
    seq: AtomicU64,
    counts: Vec<AtomicU64>,
    /// Serializes write + rotation so concurrent anomalies cannot
    /// race the directory scan.
    rotate: Mutex<()>,
}

impl std::fmt::Debug for DumpSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DumpSink")
            .field("dir", &self.dir)
            .field("max_file_bytes", &self.max_file_bytes)
            .field("max_total_bytes", &self.max_total_bytes)
            .finish()
    }
}

impl DumpSink {
    /// Creates the sink, creating `dir` if needed.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directory cannot be
    /// created.
    pub fn new(dir: PathBuf, max_file_bytes: u64, max_total_bytes: u64) -> std::io::Result<DumpSink> {
        std::fs::create_dir_all(&dir)?;
        let max_total_bytes = max_total_bytes.max(1024);
        Ok(DumpSink {
            dir,
            // per-file cap clamped to the directory cap: the
            // newest-dump-always-survives rotation rule would otherwise
            // let a single oversized dump overrun the total budget
            max_file_bytes: max_file_bytes.max(1024).min(max_total_bytes),
            max_total_bytes,
            seq: AtomicU64::new(0),
            counts: TRIGGERS.iter().map(|_| AtomicU64::new(0)).collect(),
            rotate: Mutex::new(()),
        })
    }

    /// The dump directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Dumps written per trigger, in [`TRIGGERS`] order.
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        TRIGGERS
            .iter()
            .zip(&self.counts)
            .map(|(t, c)| (*t, c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Snapshots the flight ring into a new dump file for `trigger`.
    /// The trigger itself is recorded into the ring first (as a note
    /// carrying `job_id`), so the dump provably contains the incident
    /// it was written for. Best-effort: I/O errors are swallowed.
    pub fn record(&self, trigger: &'static str, job_id: &str) {
        flight::note("serve", &format!("anomaly {trigger} job={job_id}"));
        let snap = flight::snapshot();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if let Ok(idx) = TRIGGERS.binary_search(&trigger) {
            self.counts[idx].fetch_add(1, Ordering::Relaxed);
        }

        // newest events that fit the per-file cap, oldest first
        let mut lines: Vec<String> = Vec::with_capacity(snap.events.len());
        let mut body_bytes = 0u64;
        for event in snap.events.iter().rev() {
            let line = event.render_json();
            let cost = line.len() as u64 + 1;
            if body_bytes + cost > self.max_file_bytes.saturating_sub(512) {
                break; // 512 bytes reserved for the header line
            }
            body_bytes += cost;
            lines.push(line);
        }
        lines.reverse();
        let truncated = snap.events.len() - lines.len();

        let header = format!(
            "{{\"schema\":\"{DUMP_SCHEMA}\",\"trigger\":\"{trigger}\",\"job_id\":\"{}\",\"seq\":{seq},\
             \"dropped\":{},\"truncated\":{truncated},\"events\":{}}}",
            json_escape(job_id),
            snap.dropped,
            lines.len()
        );
        let mut contents = String::with_capacity(header.len() + body_bytes as usize + 1);
        contents.push_str(&header);
        contents.push('\n');
        for line in &lines {
            contents.push_str(line);
            contents.push('\n');
        }

        let path = self.dir.join(format!("dump-{seq:06}-{trigger}.jsonl"));
        let _guard = self.rotate.lock().unwrap_or_else(PoisonError::into_inner);
        if std::fs::write(&path, contents).is_err() {
            return;
        }
        self.enforce_total_cap();
    }

    /// Deletes oldest dump files until the directory total fits the
    /// cap; the newest dump always survives.
    fn enforce_total_cap(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        // dump-NNNNNN names sort oldest-first lexicographically
        let mut files: Vec<(String, PathBuf, u64)> = entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                if !(name.starts_with("dump-") && name.ends_with(".jsonl")) {
                    return None;
                }
                let len = e.metadata().ok()?.len();
                Some((name, e.path(), len))
            })
            .collect();
        files.sort();
        let mut total: u64 = files.iter().map(|(_, _, len)| len).sum();
        let mut idx = 0;
        // idx + 1 < len: the newest dump is never deleted
        while total > self.max_total_bytes && idx + 1 < files.len() {
            let (_, path, len) = &files[idx];
            if std::fs::remove_file(path).is_ok() {
                total -= len;
            }
            idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The flight ring is process-global; dump tests serialize.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: StdMutex<()> = StdMutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("quva-dump-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn dump_files(dir: &Path) -> Vec<PathBuf> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
            .map(|entries| entries.flatten().map(|e| e.path()).collect())
            .unwrap_or_default();
        files.sort();
        files
    }

    #[test]
    fn triggers_are_sorted_for_binary_search() {
        let mut sorted = TRIGGERS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, TRIGGERS);
    }

    #[test]
    fn dump_contains_header_and_ring_events() {
        let _g = guard();
        let dir = temp_dir("basic");
        let sink = DumpSink::new(dir.clone(), 64 * 1024, 1024 * 1024).unwrap();
        flight::arm(64);
        flight::note("serve", "job j1 admitted");
        sink.record("deadline_exceeded", "j1");
        flight::disarm();

        let files = dump_files(&dir);
        assert_eq!(files.len(), 1);
        let text = std::fs::read_to_string(&files[0]).unwrap();
        let mut lines = text.lines();
        let header = quva_obs::parse_json(lines.next().unwrap()).unwrap();
        assert_eq!(header.get("schema").and_then(|v| v.as_str()), Some(DUMP_SCHEMA));
        assert_eq!(
            header.get("trigger").and_then(|v| v.as_str()),
            Some("deadline_exceeded")
        );
        assert_eq!(header.get("job_id").and_then(|v| v.as_str()), Some("j1"));
        assert_eq!(header.get("events").and_then(|v| v.as_f64()), Some(2.0));
        // body: the admission note plus the anomaly note, each parseable
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), 2);
        for line in &body {
            assert!(quva_obs::parse_json(line).is_ok(), "{line}");
        }
        assert!(body[0].contains("job j1 admitted"));
        assert!(body[1].contains("anomaly deadline_exceeded job=j1"));
        assert_eq!(sink.counts()[0], ("deadline_exceeded", 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_cap_keeps_newest_events() {
        let _g = guard();
        let dir = temp_dir("filecap");
        let sink = DumpSink::new(dir.clone(), 1024, 1024 * 1024).unwrap();
        flight::arm(256);
        for i in 0..200 {
            flight::note("serve", &format!("filler event number {i}"));
        }
        sink.record("worker_panic", "jp");
        flight::disarm();
        let files = dump_files(&dir);
        let text = std::fs::read_to_string(&files[0]).unwrap();
        assert!(text.len() as u64 <= 1024 + 512, "{}", text.len());
        let header = quva_obs::parse_json(text.lines().next().unwrap()).unwrap();
        assert!(header.get("truncated").and_then(|v| v.as_f64()).unwrap() > 0.0);
        // the newest event (the anomaly note itself) survived truncation
        assert!(text.contains("anomaly worker_panic"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn total_cap_rotates_oldest_dumps_out() {
        let _g = guard();
        let dir = temp_dir("totalcap");
        let sink = DumpSink::new(dir.clone(), 64 * 1024, 2048).unwrap();
        flight::arm(64);
        for i in 0..30 {
            flight::note("serve", &format!("padding so each dump has some heft {i}"));
            sink.record("queue_flood", &format!("j{i}"));
        }
        flight::disarm();
        let files = dump_files(&dir);
        assert!(!files.is_empty());
        let total: u64 = files
            .iter()
            .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
            .sum();
        assert!(total <= 2048, "directory grew past the cap: {total}");
        // the newest dump (seq 29) survived rotation
        assert!(
            files.iter().any(|p| p.to_string_lossy().contains("dump-000029")),
            "{files:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
