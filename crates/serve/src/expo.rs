//! Prometheus-style text exposition for the daemon's `metrics` verb.
//!
//! The exposition is **byte-deterministic in structure**: family
//! order, label order, and the set of emitted lines are fixed — two
//! snapshots of the same daemon differ only in metric *values*, and
//! two identical seeded runs differ only on the timing lines
//! (latency quantiles, latency sums, and uptime). That property is
//! pinned by golden and determinism tests in `serve_telemetry`, and it
//! is what makes the output diffable and scrapable by line-oriented
//! tooling without a real Prometheus client.
//!
//! Latency quantiles are **exact** over a bounded window of recent
//! observations per verb (no bucket approximation): the recorder keeps
//! the last [`LATENCY_WINDOW`] samples and sorts a copy at render
//! time. Lifetime `_count` and `_sum` are kept separately, so `_count`
//! stays deterministic for a deterministic workload.

use std::sync::atomic::Ordering;
use std::sync::{Mutex, PoisonError};

use crate::metrics::ServeMetrics;

/// The verbs whose request latency is tracked, in the (sorted) order
/// their exposition lines render. Every verb always renders, zeros
/// included — the line set never depends on traffic.
pub const VERBS: &[&str] = &["audit", "compile", "metrics", "ping", "simulate", "stats"];

/// Recent-sample window per verb backing the exact quantiles.
pub const LATENCY_WINDOW: usize = 512;

/// The quantiles each verb exposes, with their label text.
const QUANTILES: &[(&str, f64)] = &[("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)];

#[derive(Default)]
struct VerbWindow {
    /// Lifetime observation count (deterministic for a seeded run).
    count: u64,
    /// Lifetime sum of observed values, µs.
    sum_us: u64,
    /// The most recent observations, oldest first once saturated.
    window: Vec<u64>,
    /// Next overwrite position once the window is full.
    cursor: usize,
}

/// Per-verb request-latency recorder: lifetime count/sum plus a
/// bounded window of recent samples for exact quantile extraction.
pub struct LatencyRecorder {
    verbs: Vec<Mutex<VerbWindow>>,
}

impl std::fmt::Debug for LatencyRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyRecorder").field("verbs", &VERBS).finish()
    }
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        LatencyRecorder {
            verbs: VERBS.iter().map(|_| Mutex::new(VerbWindow::default())).collect(),
        }
    }
}

impl LatencyRecorder {
    /// Records one request latency for `verb`. Unknown verbs (e.g.
    /// `shutdown`, which fires at most once) are ignored, keeping the
    /// exposed verb set fixed.
    pub fn record(&self, verb: &str, us: u64) {
        let Ok(idx) = VERBS.binary_search(&verb) else {
            return;
        };
        let mut w = self.verbs[idx].lock().unwrap_or_else(PoisonError::into_inner);
        w.count += 1;
        w.sum_us = w.sum_us.saturating_add(us);
        if w.window.len() < LATENCY_WINDOW {
            w.window.push(us);
        } else {
            let cursor = w.cursor;
            w.window[cursor] = us;
            w.cursor = (cursor + 1) % LATENCY_WINDOW;
        }
    }

    /// (count, sum_us, [p50, p95, p99]) for one verb index.
    fn stats(&self, idx: usize) -> (u64, u64, [u64; 3]) {
        let w = self.verbs[idx].lock().unwrap_or_else(PoisonError::into_inner);
        let mut sorted = w.window.clone();
        sorted.sort_unstable();
        let mut qs = [0u64; 3];
        if !sorted.is_empty() {
            for (slot, (_, p)) in qs.iter_mut().zip(QUANTILES) {
                // nearest-rank: the smallest sample ≥ the p-fraction
                let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                *slot = sorted[rank - 1];
            }
        }
        (w.count, w.sum_us, qs)
    }
}

/// Everything one exposition snapshot needs, gathered by the server.
#[derive(Debug)]
pub struct ExpoInputs<'a> {
    /// The daemon's lifetime counters.
    pub metrics: &'a ServeMetrics,
    /// Per-verb request latency.
    pub latency: &'a LatencyRecorder,
    /// Jobs currently queued (gauge).
    pub queue_depth: usize,
    /// Worker threads currently running their loop (gauge).
    pub workers_alive: u64,
    /// Flight-ring evictions since arm (`quva_obs::flight::dropped`).
    pub flight_dropped: u64,
    /// Lifetime bytes appended to the audit journal.
    pub journal_bytes: u64,
    /// Anomaly dumps written, per trigger, in [`crate::dump::TRIGGERS`]
    /// order (all triggers always present).
    pub dumps: Vec<(&'static str, u64)>,
    /// Microseconds since the daemon started (the final line; always
    /// non-deterministic).
    pub uptime_us: u64,
}

/// The lifetime counters in their fixed exposition order (a subset of
/// prometheus naming derived from the `stats` JSON keys).
const COUNTERS: &[&str] = &[
    "requests",
    "ok",
    "errors",
    "overloaded",
    "deadline_exceeded",
    "shutting_down",
    "cache_hits",
    "cache_misses",
    "shed",
    "worker_panics",
    "worker_respawns",
    "connections",
    "connections_rejected",
    "malformed_frames",
    "jobs_infeasible",
];

fn counter_value(m: &ServeMetrics, name: &str) -> u64 {
    let g = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
    match name {
        "requests" => g(&m.requests),
        "ok" => g(&m.ok),
        "errors" => g(&m.errors),
        "overloaded" => g(&m.overloaded),
        "deadline_exceeded" => g(&m.deadline_exceeded),
        "shutting_down" => g(&m.shutting_down),
        "cache_hits" => g(&m.cache_hits),
        "cache_misses" => g(&m.cache_misses),
        "shed" => g(&m.shed),
        "worker_panics" => g(&m.worker_panics),
        "worker_respawns" => g(&m.worker_respawns),
        "connections" => g(&m.connections),
        "connections_rejected" => g(&m.connections_rejected),
        "malformed_frames" => g(&m.malformed_frames),
        "jobs_infeasible" => g(&m.jobs_infeasible),
        _ => 0,
    }
}

/// Renders the full exposition. Line set and order are fixed; only
/// values vary between snapshots.
pub fn render_exposition(inputs: &ExpoInputs) -> String {
    let mut out = String::with_capacity(4096);
    for name in COUNTERS {
        out.push_str(&format!(
            "# TYPE quvad_{name}_total counter\nquvad_{name}_total {}\n",
            counter_value(inputs.metrics, name)
        ));
    }
    out.push_str(&format!(
        "# TYPE quvad_queue_depth gauge\nquvad_queue_depth {}\n",
        inputs.queue_depth
    ));
    out.push_str(&format!(
        "# TYPE quvad_workers_alive gauge\nquvad_workers_alive {}\n",
        inputs.workers_alive
    ));
    out.push_str(&format!(
        "# TYPE quvad_flight_dropped_total counter\nquvad_flight_dropped_total {}\n",
        inputs.flight_dropped
    ));
    out.push_str(&format!(
        "# TYPE quvad_journal_bytes_total counter\nquvad_journal_bytes_total {}\n",
        inputs.journal_bytes
    ));
    out.push_str("# TYPE quvad_dumps_total counter\n");
    for (trigger, n) in &inputs.dumps {
        out.push_str(&format!("quvad_dumps_total{{trigger=\"{trigger}\"}} {n}\n"));
    }
    out.push_str("# TYPE quvad_latency_us summary\n");
    for (idx, verb) in VERBS.iter().enumerate() {
        let (count, sum_us, qs) = inputs.latency.stats(idx);
        for ((label, _), q) in QUANTILES.iter().zip(qs) {
            out.push_str(&format!(
                "quvad_latency_us{{verb=\"{verb}\",quantile=\"{label}\"}} {q}\n"
            ));
        }
        out.push_str(&format!("quvad_latency_us_sum{{verb=\"{verb}\"}} {sum_us}\n"));
        out.push_str(&format!("quvad_latency_us_count{{verb=\"{verb}\"}} {count}\n"));
    }
    out.push_str(&format!(
        "# TYPE quvad_uptime_us gauge\nquvad_uptime_us {}\n",
        inputs.uptime_us
    ));
    out
}

/// Whether an exposition line is one of the documented timing lines —
/// the only lines allowed to differ between two identical seeded runs
/// (latency quantiles, latency sums, uptime). `_count` lines are
/// deterministic and deliberately *not* matched.
pub fn is_timing_line(line: &str) -> bool {
    line.starts_with("quvad_uptime_us ")
        || line.starts_with("quvad_latency_us{")
        || line.starts_with("quvad_latency_us_sum{")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render_empty() -> String {
        let latency = LatencyRecorder::default();
        let metrics = ServeMetrics::default();
        render_exposition(&ExpoInputs {
            metrics: &metrics,
            latency: &latency,
            queue_depth: 0,
            workers_alive: 2,
            flight_dropped: 0,
            journal_bytes: 0,
            dumps: crate::dump::TRIGGERS.iter().map(|t| (*t, 0)).collect(),
            uptime_us: 0,
        })
    }

    #[test]
    fn verbs_are_sorted_for_binary_search() {
        let mut sorted = VERBS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, VERBS);
    }

    #[test]
    fn line_set_is_traffic_independent() {
        let empty = render_empty();
        // every verb renders 5 lines even with zero traffic
        for verb in VERBS {
            for q in ["0.5", "0.95", "0.99"] {
                assert!(
                    empty.contains(&format!(
                        "quvad_latency_us{{verb=\"{verb}\",quantile=\"{q}\"}} 0\n"
                    )),
                    "{verb}/{q} missing"
                );
            }
            assert!(empty.contains(&format!("quvad_latency_us_count{{verb=\"{verb}\"}} 0\n")));
        }
        for trigger in crate::dump::TRIGGERS {
            assert!(empty.contains(&format!("quvad_dumps_total{{trigger=\"{trigger}\"}} 0\n")));
        }
        assert!(empty.ends_with("quvad_uptime_us 0\n"));
    }

    #[test]
    fn exposition_syntax_is_well_formed() {
        let text = render_empty();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                assert!(name.starts_with("quvad_"), "{line}");
                assert!(["counter", "gauge", "summary"].contains(&kind), "{line}");
            } else {
                let (metric, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("{line}"));
                assert!(metric.starts_with("quvad_"), "{line}");
                assert!(value.parse::<u64>().is_ok(), "{line}");
            }
        }
    }

    #[test]
    fn exact_quantiles_over_window() {
        let rec = LatencyRecorder::default();
        for us in 1..=100 {
            rec.record("ping", us);
        }
        let idx = VERBS.binary_search(&"ping").unwrap();
        let (count, sum, [p50, p95, p99]) = rec.stats(idx);
        assert_eq!(count, 100);
        assert_eq!(sum, 5050);
        assert_eq!((p50, p95, p99), (50, 95, 99));
    }

    #[test]
    fn window_is_bounded_but_lifetime_counts_are_not() {
        let rec = LatencyRecorder::default();
        for us in 0..(LATENCY_WINDOW as u64 * 3) {
            rec.record("stats", us);
        }
        let idx = VERBS.binary_search(&"stats").unwrap();
        let (count, _, [p50, _, p99]) = rec.stats(idx);
        assert_eq!(count, LATENCY_WINDOW as u64 * 3);
        // the window only retains the most recent samples
        assert!(p50 >= LATENCY_WINDOW as u64 * 2, "{p50}");
        assert!(p99 < LATENCY_WINDOW as u64 * 3, "{p99}");
    }

    #[test]
    fn unknown_verbs_are_ignored() {
        let rec = LatencyRecorder::default();
        rec.record("shutdown", 7);
        for idx in 0..VERBS.len() {
            assert_eq!(rec.stats(idx).0, 0);
        }
    }

    #[test]
    fn timing_line_filter_matches_exactly_the_nondeterministic_lines() {
        assert!(is_timing_line("quvad_uptime_us 123"));
        assert!(is_timing_line(
            "quvad_latency_us{verb=\"ping\",quantile=\"0.5\"} 4"
        ));
        assert!(is_timing_line("quvad_latency_us_sum{verb=\"ping\"} 4"));
        assert!(!is_timing_line("quvad_latency_us_count{verb=\"ping\"} 4"));
        assert!(!is_timing_line("quvad_requests_total 2"));
        assert!(!is_timing_line("# TYPE quvad_latency_us summary"));
    }
}
