//! The `quvad` wire protocol: line-delimited JSON over a stream socket.
//!
//! Every request is one line of JSON; every response is exactly one
//! line of JSON, always sent — a client never waits forever for a
//! well-formed frame it managed to deliver. Responses are rendered
//! with fixed key order so identical jobs yield byte-identical lines
//! (the cache stores the rendered `result` fragment verbatim).
//!
//! Request frame:
//!
//! ```json
//! {"id": "r1", "kind": "simulate", "device": "q20", "policy": "vqm",
//!  "benchmark": "bv:8", "trials": 20000, "seed": 7,
//!  "priority": 5, "deadline_ms": 2000}
//! ```
//!
//! `kind` is one of `ping`, `stats`, `metrics`, `compile`,
//! `simulate`, `audit`, or `shutdown`. Job kinds
//! (`compile`/`simulate`/`audit`) require `device`, `policy`, and
//! `benchmark`; `trials` and `seed` only apply to `simulate`.
//! `priority` (0 = first shed … 9 = last shed, default 5),
//! `deadline_ms`, and `progress` (request interleaved progress
//! frames; only `simulate` emits them) are optional on every job.
//!
//! Response statuses: `ok`, `error`, `overloaded` (with
//! `retry_after_ms`), `infeasible` (with `predicted_ms` and
//! `deadline_ms`), `deadline_exceeded`, `shutting_down`.
//!
//! A job sent with `"progress":true` may receive interleaved
//! **progress frames** before its response: `{"id":…,"event":
//! "progress","done":…,"total":…}` ([`progress_frame`]). Progress
//! frames carry `event`, never `status`, so a client matching on
//! `status` skips them safely; the id keys them to their job.

use quva_obs::parse_json;

/// Upper bound on an accepted request line. Longer frames are rejected
/// before parsing — a malformed or hostile client cannot balloon
/// server memory with one giant line.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Default job priority when the frame omits one.
pub const DEFAULT_PRIORITY: u8 = 5;

/// What a job asks the pipeline to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// Map + route only; respond with circuit shape and analytic PST.
    Compile,
    /// Compile, then Monte-Carlo PST estimation.
    Simulate,
    /// Compile, then the static reliability audit.
    Audit,
}

impl JobKind {
    /// Wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Compile => "compile",
            JobKind::Simulate => "simulate",
            JobKind::Audit => "audit",
        }
    }
}

/// A fully parsed job request (the work-carrying frames).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// What to run.
    pub kind: JobKind,
    /// Device spec string (`q20`, `grid:4x5@7`, ...).
    pub device: String,
    /// Policy spec string (`vqm`, `vqa-vqm`, ...).
    pub policy: String,
    /// Benchmark spec string (`bv:8`, `qft:12`, ...).
    pub benchmark: String,
    /// Monte-Carlo trial count (simulate only; 0 otherwise).
    pub trials: u64,
    /// Monte-Carlo seed (simulate only; 0 otherwise).
    pub seed: u64,
    /// Shed priority: 0 is shed first, 9 last.
    pub priority: u8,
    /// Per-request deadline override in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Whether the client asked for interleaved progress frames
    /// (meaningful for `simulate`; other kinds finish in one step).
    pub progress: bool,
}

/// Every frame the daemon understands.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Metrics snapshot; answered inline, never queued.
    Stats,
    /// Prometheus-style text exposition (wrapped in a one-line JSON
    /// envelope); answered inline, never queued.
    Metrics,
    /// Begin graceful drain and shut the daemon down.
    Shutdown,
    /// Deliberate worker panic — only honored when the server was
    /// started with chaos mode enabled; otherwise an error response.
    Panic,
    /// A queued pipeline job.
    Job(JobSpec),
}

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response line.
    pub id: String,
    /// The decoded action.
    pub kind: RequestKind,
}

/// A request frame that could not be decoded. Carries the correlation
/// id when one was recoverable so the error response still correlates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Echoed id, or empty when the frame was too broken to recover it.
    pub id: String,
    /// Human-readable reason.
    pub message: String,
}

impl ProtocolError {
    fn new(id: impl Into<String>, message: impl Into<String>) -> Self {
        ProtocolError {
            id: id.into(),
            message: message.into(),
        }
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`ProtocolError`] on oversized frames, malformed JSON,
/// unknown kinds, or missing/ill-typed fields. Never panics: the input
/// is untrusted network data.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    if line.len() > MAX_FRAME_BYTES {
        return Err(ProtocolError::new(
            "",
            format!("frame of {} bytes exceeds limit {MAX_FRAME_BYTES}", line.len()),
        ));
    }
    let doc = parse_json(line).map_err(|e| ProtocolError::new("", format!("malformed JSON: {e}")))?;
    let id = doc.get("id").and_then(|v| v.as_str()).unwrap_or("").to_string();
    if id.len() > 256 {
        return Err(ProtocolError::new("", "id longer than 256 bytes"));
    }
    let kind = doc
        .get("kind")
        .and_then(|v| v.as_str())
        .ok_or_else(|| ProtocolError::new(id.clone(), "missing \"kind\""))?;

    let job_kind = match kind {
        "ping" => {
            return Ok(Request {
                id,
                kind: RequestKind::Ping,
            })
        }
        "stats" => {
            return Ok(Request {
                id,
                kind: RequestKind::Stats,
            })
        }
        "metrics" => {
            return Ok(Request {
                id,
                kind: RequestKind::Metrics,
            })
        }
        "shutdown" => {
            return Ok(Request {
                id,
                kind: RequestKind::Shutdown,
            })
        }
        "panic" => {
            return Ok(Request {
                id,
                kind: RequestKind::Panic,
            })
        }
        "compile" => JobKind::Compile,
        "simulate" => JobKind::Simulate,
        "audit" => JobKind::Audit,
        other => return Err(ProtocolError::new(id, format!("unknown kind '{other}'"))),
    };

    let field = |name: &str| -> Result<String, ProtocolError> {
        doc.get(name)
            .and_then(|v| v.as_str())
            .map(str::to_string)
            .ok_or_else(|| ProtocolError::new(id.clone(), format!("job needs string field \"{name}\"")))
    };
    let device = field("device")?;
    let policy = field("policy")?;
    let benchmark = field("benchmark")?;

    let num = |name: &str, default: u64| -> Result<u64, ProtocolError> {
        match doc.get(name) {
            None => Ok(default),
            Some(v) => {
                let n = v
                    .as_f64()
                    .ok_or_else(|| ProtocolError::new(id.clone(), format!("\"{name}\" must be a number")))?;
                if !n.is_finite() || !(0.0..=1e15).contains(&n) || n.fract() != 0.0 {
                    return Err(ProtocolError::new(
                        id.clone(),
                        format!("\"{name}\" must be a non-negative integer"),
                    ));
                }
                Ok(n as u64)
            }
        }
    };

    let (trials, seed) = if job_kind == JobKind::Simulate {
        let trials = num("trials", 10_000)?;
        if trials == 0 || trials > 100_000_000 {
            return Err(ProtocolError::new(id, "\"trials\" must be in 1..=100000000"));
        }
        (trials, num("seed", 1)?)
    } else {
        (0, 0)
    };
    let priority = num("priority", u64::from(DEFAULT_PRIORITY))?;
    if priority > 9 {
        return Err(ProtocolError::new(id, "\"priority\" must be in 0..=9"));
    }
    let deadline_ms = match doc.get("deadline_ms") {
        None => None,
        Some(_) => {
            let d = num("deadline_ms", 0)?;
            if d == 0 {
                return Err(ProtocolError::new(id, "\"deadline_ms\" must be positive"));
            }
            Some(d)
        }
    };
    let progress = match doc.get("progress") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ProtocolError::new(id.clone(), "\"progress\" must be a boolean"))?,
    };

    Ok(Request {
        id,
        kind: RequestKind::Job(JobSpec {
            kind: job_kind,
            device,
            policy,
            benchmark,
            trials,
            seed,
            priority: priority as u8,
            deadline_ms,
            progress,
        }),
    })
}

/// Renders one interleaved progress frame (no trailing newline). Key
/// order is fixed; carries `event`, never `status`.
pub fn progress_frame(id: &str, done: u64, total: u64) -> String {
    format!(
        "{{\"id\":\"{}\",\"event\":\"progress\",\"done\":{done},\"total\":{total}}}",
        json_escape(id)
    )
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One response line (without the trailing newline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Job finished; `result` is a pre-rendered JSON object fragment.
    Ok {
        /// Echoed request id.
        id: String,
        /// Rendered result object (exactly what the cache stores).
        result: String,
    },
    /// Request failed with a typed reason.
    Error {
        /// Echoed request id (may be empty for unparseable frames).
        id: String,
        /// Human-readable reason.
        message: String,
    },
    /// Admission control rejected the job; retry after the hint.
    Overloaded {
        /// Echoed request id.
        id: String,
        /// Client should wait at least this long before retrying.
        retry_after_ms: u64,
    },
    /// Admission control proved the job cannot meet its deadline: even
    /// the *optimistic* static cost bound exceeds it. Returned before
    /// the job is queued — no worker time is spent on it.
    Infeasible {
        /// Echoed request id.
        id: String,
        /// Optimistic end-to-end prediction, in milliseconds.
        predicted_ms: u64,
        /// The deadline the job asked for, in milliseconds.
        deadline_ms: u64,
    },
    /// The job missed its deadline (queue wait + execution).
    DeadlineExceeded {
        /// Echoed request id.
        id: String,
        /// The deadline that was missed, in milliseconds.
        deadline_ms: u64,
    },
    /// The daemon is draining and accepts no new jobs.
    ShuttingDown {
        /// Echoed request id.
        id: String,
    },
}

impl Response {
    /// Renders the response as one JSON line (no trailing newline).
    /// Key order is fixed; identical inputs produce identical bytes.
    pub fn render(&self) -> String {
        match self {
            Response::Ok { id, result } => {
                format!(
                    "{{\"id\":\"{}\",\"status\":\"ok\",\"result\":{}}}",
                    json_escape(id),
                    result
                )
            }
            Response::Error { id, message } => format!(
                "{{\"id\":\"{}\",\"status\":\"error\",\"error\":\"{}\"}}",
                json_escape(id),
                json_escape(message)
            ),
            Response::Overloaded { id, retry_after_ms } => format!(
                "{{\"id\":\"{}\",\"status\":\"overloaded\",\"retry_after_ms\":{}}}",
                json_escape(id),
                retry_after_ms
            ),
            Response::Infeasible {
                id,
                predicted_ms,
                deadline_ms,
            } => format!(
                "{{\"id\":\"{}\",\"status\":\"infeasible\",\"predicted_ms\":{},\"deadline_ms\":{}}}",
                json_escape(id),
                predicted_ms,
                deadline_ms
            ),
            Response::DeadlineExceeded { id, deadline_ms } => format!(
                "{{\"id\":\"{}\",\"status\":\"deadline_exceeded\",\"deadline_ms\":{}}}",
                json_escape(id),
                deadline_ms
            ),
            Response::ShuttingDown { id } => {
                format!("{{\"id\":\"{}\",\"status\":\"shutting_down\"}}", json_escape(id))
            }
        }
    }

    /// The `status` field this response renders with.
    pub fn status(&self) -> &'static str {
        match self {
            Response::Ok { .. } => "ok",
            Response::Error { .. } => "error",
            Response::Overloaded { .. } => "overloaded",
            Response::Infeasible { .. } => "infeasible",
            Response::DeadlineExceeded { .. } => "deadline_exceeded",
            Response::ShuttingDown { .. } => "shutting_down",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_job() {
        let r =
            parse_request(r#"{"id":"a","kind":"compile","device":"q20","policy":"vqm","benchmark":"bv:8"}"#)
                .unwrap();
        assert_eq!(r.id, "a");
        match r.kind {
            RequestKind::Job(job) => {
                assert_eq!(job.kind, JobKind::Compile);
                assert_eq!(job.priority, DEFAULT_PRIORITY);
                assert_eq!(job.deadline_ms, None);
                assert_eq!((job.trials, job.seed), (0, 0));
            }
            other => panic!("expected job, got {other:?}"),
        }
    }

    #[test]
    fn parses_simulate_with_knobs() {
        let line = r#"{"id":"s","kind":"simulate","device":"q5","policy":"baseline","benchmark":"ghz:3","trials":5000,"seed":42,"priority":9,"deadline_ms":1500}"#;
        let r = parse_request(line).unwrap();
        match r.kind {
            RequestKind::Job(job) => {
                assert_eq!(job.trials, 5000);
                assert_eq!(job.seed, 42);
                assert_eq!(job.priority, 9);
                assert_eq!(job.deadline_ms, Some(1500));
                assert!(!job.progress, "progress defaults to off");
            }
            other => panic!("expected job, got {other:?}"),
        }
    }

    #[test]
    fn progress_field_parses_and_type_checks() {
        let line = r#"{"id":"p","kind":"simulate","device":"q5","policy":"vqm","benchmark":"ghz:3","progress":true}"#;
        match parse_request(line).unwrap().kind {
            RequestKind::Job(job) => assert!(job.progress),
            other => panic!("expected job, got {other:?}"),
        }
        assert!(parse_request(
            r#"{"id":"p","kind":"simulate","device":"q5","policy":"vqm","benchmark":"ghz:3","progress":1}"#
        )
        .is_err());
    }

    #[test]
    fn progress_frames_render_fixed_order_and_reparse() {
        let frame = progress_frame("p\"q", 163840, 1000000);
        assert_eq!(
            frame,
            r#"{"id":"p\"q","event":"progress","done":163840,"total":1000000}"#
        );
        let doc = parse_json(&frame).unwrap();
        assert_eq!(doc.get("event").and_then(|v| v.as_str()), Some("progress"));
        assert!(doc.get("status").is_none(), "progress frames never carry status");
    }

    #[test]
    fn control_frames_parse() {
        for (kind, want) in [
            ("ping", RequestKind::Ping),
            ("stats", RequestKind::Stats),
            ("metrics", RequestKind::Metrics),
            ("shutdown", RequestKind::Shutdown),
            ("panic", RequestKind::Panic),
        ] {
            let r = parse_request(&format!(r#"{{"id":"c","kind":"{kind}"}}"#)).unwrap();
            assert_eq!(r.kind, want, "kind {kind}");
        }
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        assert!(parse_request("").is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{}").is_err());
        assert!(parse_request(r#"{"id":"x","kind":"teleport"}"#).is_err());
        assert!(parse_request(r#"{"id":"x","kind":"compile"}"#).is_err());
        assert!(parse_request(
            r#"{"id":"x","kind":"simulate","device":"q20","policy":"vqm","benchmark":"bv:8","trials":0}"#
        )
        .is_err());
        assert!(parse_request(
            r#"{"id":"x","kind":"compile","device":"q20","policy":"vqm","benchmark":"bv:8","priority":12}"#
        )
        .is_err());
        let big = format!(r#"{{"id":"{}","kind":"ping"}}"#, "x".repeat(MAX_FRAME_BYTES));
        assert!(parse_request(&big).is_err());
    }

    #[test]
    fn error_keeps_recovered_id() {
        let e = parse_request(r#"{"id":"keepme","kind":"compile"}"#).unwrap_err();
        assert_eq!(e.id, "keepme");
    }

    #[test]
    fn responses_render_fixed_byte_order() {
        let ok = Response::Ok {
            id: "a".into(),
            result: "{\"pst\":0.5}".into(),
        };
        assert_eq!(ok.render(), r#"{"id":"a","status":"ok","result":{"pst":0.5}}"#);
        let over = Response::Overloaded {
            id: "b".into(),
            retry_after_ms: 40,
        };
        assert_eq!(
            over.render(),
            r#"{"id":"b","status":"overloaded","retry_after_ms":40}"#
        );
        let err = Response::Error {
            id: "c\"d".into(),
            message: "line1\nline2".into(),
        };
        assert_eq!(
            err.render(),
            r#"{"id":"c\"d","status":"error","error":"line1\nline2"}"#
        );
        let infeasible = Response::Infeasible {
            id: "f".into(),
            predicted_ms: 9000,
            deadline_ms: 100,
        };
        assert_eq!(
            infeasible.render(),
            r#"{"id":"f","status":"infeasible","predicted_ms":9000,"deadline_ms":100}"#
        );
        // every rendered response reparses as JSON
        for r in [
            ok,
            over,
            err,
            infeasible,
            Response::DeadlineExceeded {
                id: "d".into(),
                deadline_ms: 10,
            },
            Response::ShuttingDown { id: "e".into() },
        ] {
            assert!(parse_json(&r.render()).is_ok(), "{}", r.render());
        }
    }

    #[test]
    fn infeasible_status_and_fields_roundtrip() {
        let r = Response::Infeasible {
            id: "job".into(),
            predicted_ms: 1234,
            deadline_ms: 50,
        };
        assert_eq!(r.status(), "infeasible");
        let doc = parse_json(&r.render()).unwrap();
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("infeasible"));
        assert_eq!(doc.get("predicted_ms").and_then(|v| v.as_f64()), Some(1234.0));
        assert_eq!(doc.get("deadline_ms").and_then(|v| v.as_f64()), Some(50.0));
    }
}
