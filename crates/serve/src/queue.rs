//! Bounded priority work queue — the daemon's admission-control core.
//!
//! A single mutex-plus-condvar queue with a hard capacity. Pushing
//! into a full queue either *sheds* the lowest-priority queued item
//! (when the newcomer outranks it) or *rejects* the newcomer — the
//! caller turns both outcomes into typed backpressure responses, so
//! overload is always answered, never silently dropped. Workers pop
//! highest-priority-first, FIFO within a priority band.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

struct Entry<T> {
    priority: u8,
    seq: u64,
    item: T,
}

struct Inner<T> {
    entries: Vec<Entry<T>>,
    seq: u64,
    closed: bool,
}

/// Outcome of a push attempt.
#[derive(Debug)]
pub enum Push<T> {
    /// The item was queued.
    Admitted,
    /// The item was queued after evicting this lower-priority item;
    /// the caller must answer the evicted item's submitter.
    Shed(T),
    /// The queue is full of equal-or-higher-priority work; the item is
    /// returned so the caller can answer with backpressure.
    Rejected(T),
    /// The queue is draining; no new work is accepted.
    Closed(T),
}

/// Outcome of a pop attempt.
#[derive(Debug)]
pub enum Pop<T> {
    /// The highest-priority queued item.
    Item(T),
    /// Nothing arrived within the timeout; the queue is still open.
    TimedOut,
    /// The queue is closed and fully drained; the worker should exit.
    Drained,
}

/// A bounded, priority-aware, multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

fn lock<T>(m: &Mutex<Inner<T>>) -> MutexGuard<'_, Inner<T>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (clamped to 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                seq: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Attempts to queue `item` at `priority` (9 outranks 0).
    pub fn push(&self, priority: u8, item: T) -> Push<T> {
        let mut inner = lock(&self.inner);
        if inner.closed {
            return Push::Closed(item);
        }
        if inner.entries.len() >= self.capacity {
            // shed the weakest queued item iff the newcomer outranks it
            let weakest = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.priority, std::cmp::Reverse(e.seq)))
                .map(|(i, e)| (i, e.priority));
            match weakest {
                Some((idx, weakest_priority)) if weakest_priority < priority => {
                    let shed = inner.entries.swap_remove(idx);
                    let seq = inner.seq;
                    inner.seq += 1;
                    inner.entries.push(Entry { priority, seq, item });
                    drop(inner);
                    self.ready.notify_one();
                    return Push::Shed(shed.item);
                }
                _ => return Push::Rejected(item),
            }
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.entries.push(Entry { priority, seq, item });
        drop(inner);
        self.ready.notify_one();
        Push::Admitted
    }

    /// Pops the best item, waiting up to `timeout` for one to arrive.
    /// "Best" is highest priority, oldest first within a priority.
    pub fn pop(&self, timeout: Duration) -> Pop<T> {
        let mut inner = lock(&self.inner);
        if inner.entries.is_empty() && !inner.closed {
            let (guard, _) = self
                .ready
                .wait_timeout(inner, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
        if let Some(best) = inner
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| (e.priority, std::cmp::Reverse(e.seq)))
            .map(|(i, _)| i)
        {
            return Pop::Item(inner.entries.swap_remove(best).item);
        }
        if inner.closed {
            Pop::Drained
        } else {
            Pop::TimedOut
        }
    }

    /// Closes the queue: pushes are refused, pops drain what remains
    /// and then report [`Pop::Drained`]. Idempotent.
    pub fn close(&self) {
        lock(&self.inner).closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        lock(&self.inner).entries.len()
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock(&self.inner).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_priority_and_priority_order_across() {
        let q = BoundedQueue::new(8);
        assert!(matches!(q.push(5, "a"), Push::Admitted));
        assert!(matches!(q.push(5, "b"), Push::Admitted));
        assert!(matches!(q.push(9, "urgent"), Push::Admitted));
        assert!(matches!(q.push(0, "later"), Push::Admitted));
        let order: Vec<&str> = (0..4)
            .map(|_| match q.pop(Duration::from_millis(10)) {
                Pop::Item(s) => s,
                other => panic!("expected item, got {other:?}"),
            })
            .collect();
        assert_eq!(order, ["urgent", "a", "b", "later"]);
    }

    #[test]
    fn full_queue_rejects_equal_priority_and_sheds_lower() {
        let q = BoundedQueue::new(2);
        assert!(matches!(q.push(3, "x"), Push::Admitted));
        assert!(matches!(q.push(5, "y"), Push::Admitted));
        // equal to the weakest queued priority: rejected, queue unchanged
        match q.push(3, "z") {
            Push::Rejected(z) => assert_eq!(z, "z"),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        // outranks the weakest: weakest is shed, newcomer admitted
        match q.push(7, "vip") {
            Push::Shed(loser) => assert_eq!(loser, "x"),
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_reports_drained() {
        let q = BoundedQueue::new(4);
        assert!(matches!(q.push(1, 10), Push::Admitted));
        q.close();
        assert!(matches!(q.push(9, 11), Push::Closed(11)));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Item(10)));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Drained));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Drained));
    }

    #[test]
    fn pop_timeout_on_empty_open_queue() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert!(matches!(q.pop(Duration::from_millis(5)), Pop::TimedOut));
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || match q2.pop(Duration::from_secs(5)) {
            Pop::Item(v) => v,
            other => panic!("expected item, got {other:?}"),
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(q.push(5, 99), Push::Admitted));
        assert_eq!(popper.join().unwrap(), 99);
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || matches!(q2.pop(Duration::from_secs(5)), Pop::Drained));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(popper.join().unwrap());
    }
}
