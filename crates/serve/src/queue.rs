//! Bounded priority work queue — the daemon's admission-control core.
//!
//! A single mutex-plus-condvar queue with a hard capacity. Pushing
//! into a full queue either *sheds* a lower-priority queued item
//! (when the newcomer outranks it) or *rejects* the newcomer — the
//! caller turns both outcomes into typed backpressure responses, so
//! overload is always answered, never silently dropped. Workers pop
//! highest-priority-first, FIFO within a priority band.
//!
//! Entries carry a *weight* (quvad uses the pessimistic static cost
//! bound in nanoseconds). Weight steers two decisions: eviction picks
//! the candidate with the worst weight-per-priority ratio (shed the
//! biggest predicted resource hog among the outranked), and
//! [`BoundedQueue::queued_weight`] exposes the total queued weight so
//! the caller can derive drain-time-based `retry_after_ms` hints.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

struct Entry<T> {
    priority: u8,
    weight: u64,
    seq: u64,
    item: T,
}

struct Inner<T> {
    entries: Vec<Entry<T>>,
    seq: u64,
    closed: bool,
}

/// Outcome of a push attempt.
#[derive(Debug)]
pub enum Push<T> {
    /// The item was queued.
    Admitted,
    /// The item was queued after evicting this lower-priority item;
    /// the caller must answer the evicted item's submitter.
    Shed(T),
    /// The queue is full of equal-or-higher-priority work; the item is
    /// returned so the caller can answer with backpressure.
    Rejected(T),
    /// The queue is draining; no new work is accepted.
    Closed(T),
}

/// Outcome of a pop attempt.
#[derive(Debug)]
pub enum Pop<T> {
    /// The highest-priority queued item.
    Item(T),
    /// Nothing arrived within the timeout; the queue is still open.
    TimedOut,
    /// The queue is closed and fully drained; the worker should exit.
    Drained,
}

/// A bounded, priority-aware, multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

fn lock<T>(m: &Mutex<Inner<T>>) -> MutexGuard<'_, Inner<T>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (clamped to 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                seq: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Attempts to queue `item` at `priority` (9 outranks 0) with unit
    /// weight. See [`BoundedQueue::push_weighted`].
    pub fn push(&self, priority: u8, item: T) -> Push<T> {
        self.push_weighted(priority, 1, item)
    }

    /// Attempts to queue `item` at `priority` (9 outranks 0) carrying
    /// `weight` (a predicted cost; any consistent unit). On a full
    /// queue the newcomer may only displace *outranked* entries
    /// (priority strictly below its own); among those the victim is
    /// the one with the worst weight/(priority+1) ratio — the largest
    /// predicted cost per unit of importance — newest first on ties.
    pub fn push_weighted(&self, priority: u8, weight: u64, item: T) -> Push<T> {
        let mut inner = lock(&self.inner);
        if inner.closed {
            return Push::Closed(item);
        }
        if inner.entries.len() >= self.capacity {
            // shed the costliest outranked entry, if any is outranked
            let victim = inner
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.priority < priority)
                .max_by(|(_, a), (_, b)| {
                    // a.weight/(a.priority+1) vs b.weight/(b.priority+1),
                    // cross-multiplied to stay in integers
                    let lhs = u128::from(a.weight) * u128::from(b.priority as u64 + 1);
                    let rhs = u128::from(b.weight) * u128::from(a.priority as u64 + 1);
                    lhs.cmp(&rhs).then(a.seq.cmp(&b.seq))
                })
                .map(|(i, _)| i);
            match victim {
                Some(idx) => {
                    let shed = inner.entries.swap_remove(idx);
                    let seq = inner.seq;
                    inner.seq += 1;
                    inner.entries.push(Entry {
                        priority,
                        weight,
                        seq,
                        item,
                    });
                    drop(inner);
                    self.ready.notify_one();
                    return Push::Shed(shed.item);
                }
                None => return Push::Rejected(item),
            }
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.entries.push(Entry {
            priority,
            weight,
            seq,
            item,
        });
        drop(inner);
        self.ready.notify_one();
        Push::Admitted
    }

    /// Pops the best item, waiting up to `timeout` for one to arrive.
    /// "Best" is highest priority, oldest first within a priority.
    pub fn pop(&self, timeout: Duration) -> Pop<T> {
        let mut inner = lock(&self.inner);
        if inner.entries.is_empty() && !inner.closed {
            let (guard, _) = self
                .ready
                .wait_timeout(inner, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
        if let Some(best) = inner
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| (e.priority, std::cmp::Reverse(e.seq)))
            .map(|(i, _)| i)
        {
            return Pop::Item(inner.entries.swap_remove(best).item);
        }
        if inner.closed {
            Pop::Drained
        } else {
            Pop::TimedOut
        }
    }

    /// Closes the queue: pushes are refused, pops drain what remains
    /// and then report [`Pop::Drained`]. Idempotent.
    pub fn close(&self) {
        lock(&self.inner).closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        lock(&self.inner).entries.len()
    }

    /// Total weight of everything currently queued (saturating). With
    /// cost-bound weights this is the predicted nanoseconds of work a
    /// single worker would need to drain the queue.
    pub fn queued_weight(&self) -> u64 {
        lock(&self.inner)
            .entries
            .iter()
            .fold(0u64, |acc, e| acc.saturating_add(e.weight))
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock(&self.inner).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_priority_and_priority_order_across() {
        let q = BoundedQueue::new(8);
        assert!(matches!(q.push(5, "a"), Push::Admitted));
        assert!(matches!(q.push(5, "b"), Push::Admitted));
        assert!(matches!(q.push(9, "urgent"), Push::Admitted));
        assert!(matches!(q.push(0, "later"), Push::Admitted));
        let order: Vec<&str> = (0..4)
            .map(|_| match q.pop(Duration::from_millis(10)) {
                Pop::Item(s) => s,
                other => panic!("expected item, got {other:?}"),
            })
            .collect();
        assert_eq!(order, ["urgent", "a", "b", "later"]);
    }

    #[test]
    fn full_queue_rejects_equal_priority_and_sheds_lower() {
        let q = BoundedQueue::new(2);
        assert!(matches!(q.push(3, "x"), Push::Admitted));
        assert!(matches!(q.push(5, "y"), Push::Admitted));
        // equal to the weakest queued priority: rejected, queue unchanged
        match q.push(3, "z") {
            Push::Rejected(z) => assert_eq!(z, "z"),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        // outranks the weakest: weakest is shed, newcomer admitted
        match q.push(7, "vip") {
            Push::Shed(loser) => assert_eq!(loser, "x"),
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn shed_picks_worst_weight_per_priority_ratio() {
        let q = BoundedQueue::new(3);
        // ratios: a = 100/(1+1) = 50, b = 600/(4+1) = 120, c = 90/(0+1) = 90
        assert!(matches!(q.push_weighted(1, 100, "a"), Push::Admitted));
        assert!(matches!(q.push_weighted(4, 600, "b"), Push::Admitted));
        assert!(matches!(q.push_weighted(0, 90, "c"), Push::Admitted));
        assert_eq!(q.queued_weight(), 790);
        // newcomer at priority 5 outranks all three; b is the worst ratio
        match q.push_weighted(5, 10, "vip") {
            Push::Shed(loser) => assert_eq!(loser, "b"),
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(q.queued_weight(), 200);
    }

    #[test]
    fn shed_only_considers_outranked_entries() {
        let q = BoundedQueue::new(2);
        // the heaviest entry outranks the newcomer and must survive
        assert!(matches!(
            q.push_weighted(7, 1_000_000, "heavy-vip"),
            Push::Admitted
        ));
        assert!(matches!(q.push_weighted(2, 10, "light-low"), Push::Admitted));
        match q.push_weighted(5, 500, "mid") {
            Push::Shed(loser) => assert_eq!(loser, "light-low"),
            other => panic!("expected shed, got {other:?}"),
        }
        // nothing queued is outranked by priority 5 now → rejected
        assert!(matches!(q.push_weighted(5, 1, "again"), Push::Rejected("again")));
    }

    #[test]
    fn equal_ratio_ties_shed_the_newest() {
        let q = BoundedQueue::new(2);
        assert!(matches!(q.push_weighted(2, 30, "old"), Push::Admitted));
        assert!(matches!(q.push_weighted(2, 30, "new"), Push::Admitted));
        match q.push_weighted(3, 1, "vip") {
            Push::Shed(loser) => assert_eq!(loser, "new"),
            other => panic!("expected shed, got {other:?}"),
        }
    }

    #[test]
    fn queued_weight_tracks_pops_and_defaults_to_unit() {
        let q = BoundedQueue::new(4);
        assert!(matches!(q.push(5, "a"), Push::Admitted));
        assert!(matches!(q.push_weighted(5, 41, "b"), Push::Admitted));
        assert_eq!(q.queued_weight(), 42);
        assert!(matches!(q.pop(Duration::from_millis(5)), Pop::Item(_)));
        assert!(matches!(q.pop(Duration::from_millis(5)), Pop::Item(_)));
        assert_eq!(q.queued_weight(), 0);
    }

    #[test]
    fn close_drains_then_reports_drained() {
        let q = BoundedQueue::new(4);
        assert!(matches!(q.push(1, 10), Push::Admitted));
        q.close();
        assert!(matches!(q.push(9, 11), Push::Closed(11)));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Item(10)));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Drained));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Drained));
    }

    #[test]
    fn pop_timeout_on_empty_open_queue() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert!(matches!(q.pop(Duration::from_millis(5)), Pop::TimedOut));
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || match q2.pop(Duration::from_secs(5)) {
            Pop::Item(v) => v,
            other => panic!("expected item, got {other:?}"),
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(q.push(5, 99), Push::Admitted));
        assert_eq!(popper.join().unwrap(), 99);
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || matches!(q2.pop(Duration::from_secs(5)), Pop::Drained));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(popper.join().unwrap());
    }
}
