//! Deterministic retry backoff: capped exponential delays with seeded
//! jitter.
//!
//! Clients of an overloaded daemon must not retry in lockstep — but the
//! repo's determinism contract ("same inputs, same bytes") extends to
//! the load generator, so the jitter is drawn from a SplitMix64 stream
//! seeded by the caller: a fixed seed reproduces the exact same retry
//! schedule on every run, on every host.

/// SplitMix64 increment — the same constant the simulator's chunk
/// seeding uses, so backoff streams are decorrelated the same way
/// Monte-Carlo chunks are.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic capped-exponential backoff schedule.
///
/// Delay for attempt `k` (0-based) is `min(base << k, cap)` plus a
/// jitter drawn uniformly from `[0, delay/2]` via a seeded SplitMix64
/// stream. The schedule depends only on the seed and the attempt
/// sequence — never on wall-clock or global state.
#[derive(Debug, Clone)]
pub struct Backoff {
    state: u64,
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
}

impl Backoff {
    /// Creates a schedule with the given seed, base delay, and cap.
    /// A zero base is clamped to 1 ms so the schedule always advances.
    pub fn new(seed: u64, base_ms: u64, cap_ms: u64) -> Self {
        Backoff {
            state: seed ^ 0x6261_636b_6f66_6621, // "backoff!"
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(base_ms.max(1)),
            attempt: 0,
        }
    }

    /// Returns the next delay in milliseconds and advances the schedule.
    pub fn next_delay_ms(&mut self) -> u64 {
        let exp = self.attempt.min(32);
        self.attempt = self.attempt.saturating_add(1);
        let raw = self.base_ms.saturating_shl(exp).min(self.cap_ms);
        let jitter_span = raw / 2;
        let jitter = if jitter_span == 0 {
            0
        } else {
            splitmix64(&mut self.state) % (jitter_span + 1)
        };
        raw.saturating_add(jitter).min(self.cap_ms.saturating_mul(2))
    }

    /// Combines a server-provided `retry_after_ms` hint with the local
    /// schedule: the delay is the larger of the two, so a client never
    /// retries earlier than the server asked, and never abandons its
    /// own exponential growth.
    pub fn next_delay_after_hint_ms(&mut self, retry_after_ms: u64) -> u64 {
        self.next_delay_ms().max(retry_after_ms)
    }

    /// Number of delays handed out so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Rewinds the schedule to attempt zero, keeping the seed stream
    /// position (a fresh job shares the client's jitter stream without
    /// restarting its exponential curve).
    pub fn reset_attempts(&mut self) {
        self.attempt = 0;
    }
}

trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        if rhs >= 64 || self > (u64::MAX >> rhs) {
            u64::MAX
        } else {
            self << rhs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_reproduces_schedule_exactly() {
        let schedule = |seed: u64| -> Vec<u64> {
            let mut b = Backoff::new(seed, 10, 5_000);
            (0..12).map(|_| b.next_delay_ms()).collect()
        };
        assert_eq!(schedule(7), schedule(7), "same seed must give identical delays");
        assert_ne!(
            schedule(7),
            schedule(8),
            "different seeds must jitter differently"
        );
    }

    #[test]
    fn delays_grow_exponentially_until_cap() {
        let mut b = Backoff::new(1, 10, 1_000);
        let delays: Vec<u64> = (0..16).map(|_| b.next_delay_ms()).collect();
        // raw delay for attempt k is min(10 << k, 1000); jitter adds at most raw/2
        for (k, &d) in delays.iter().enumerate() {
            let raw = 10u64.saturating_shl(k as u32).min(1_000);
            assert!(d >= raw, "attempt {k}: delay {d} below raw {raw}");
            assert!(d <= raw + raw / 2, "attempt {k}: delay {d} above raw+jitter");
        }
        assert!(delays[15] <= 1_500, "cap must bound late attempts");
    }

    #[test]
    fn hint_dominates_when_larger() {
        let mut b = Backoff::new(3, 1, 10);
        assert!(b.next_delay_after_hint_ms(9_999) >= 9_999);
        // local schedule still advanced
        assert_eq!(b.attempts(), 1);
    }

    #[test]
    fn no_overflow_at_extreme_attempts() {
        let mut b = Backoff::new(0, u64::MAX / 2, u64::MAX);
        for _ in 0..80 {
            let _ = b.next_delay_ms();
        }
        assert_eq!(b.attempts(), 80);
    }

    #[test]
    fn reset_rewinds_exponent_but_not_stream() {
        let mut a = Backoff::new(5, 10, 1_000);
        let first = a.next_delay_ms();
        a.reset_attempts();
        let again = a.next_delay_ms();
        // both are attempt-0 delays (raw 10) but jitter stream moved on
        assert!((10..=15).contains(&first));
        assert!((10..=15).contains(&again));
    }
}
