//! Daemon-lifetime counters, readable over the wire via a `stats`
//! request.
//!
//! These are plain atomics, always on — unlike `quva-obs` (which the
//! server *also* feeds when recording is enabled), the stats endpoint
//! must answer even in production runs with tracing disabled. Counter
//! order in the rendered JSON is fixed, so stats lines diff cleanly.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lifetime counters for one server instance.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Frames received (well-formed or not).
    pub requests: AtomicU64,
    /// Responses with status `ok`.
    pub ok: AtomicU64,
    /// Responses with status `error` (malformed frames included).
    pub errors: AtomicU64,
    /// Responses with status `overloaded`.
    pub overloaded: AtomicU64,
    /// Responses with status `deadline_exceeded`.
    pub deadline_exceeded: AtomicU64,
    /// Responses with status `shutting_down`.
    pub shutting_down: AtomicU64,
    /// Job results served straight from the cache.
    pub cache_hits: AtomicU64,
    /// Jobs executed by a worker (cache misses).
    pub cache_misses: AtomicU64,
    /// Queued jobs evicted by higher-priority arrivals.
    pub shed: AtomicU64,
    /// Worker panics caught and converted to error responses.
    pub worker_panics: AtomicU64,
    /// Worker loops re-armed after a caught panic.
    pub worker_respawns: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections refused at the accept gate (too many open).
    pub connections_rejected: AtomicU64,
    /// Frames that failed protocol parsing.
    pub malformed_frames: AtomicU64,
    /// Jobs rejected at admission because even the optimistic static
    /// cost bound exceeded their deadline (status `infeasible`). These
    /// never reach a worker.
    pub jobs_infeasible: AtomicU64,
    /// Flight-recorder ring evictions (synced from
    /// `quva_obs::flight::dropped` before each render). Appended after
    /// the original keys to preserve the fixed-order contract.
    pub dropped_events: AtomicU64,
    /// Lifetime bytes appended to the audit journal (synced before
    /// each render; 0 when no journal is configured).
    pub journal_bytes: AtomicU64,
}

impl ServeMetrics {
    /// Adds one to a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the counters as a one-line JSON object with fixed key
    /// order.
    pub fn render_json(&self) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            "{{\"requests\":{},\"ok\":{},\"errors\":{},\"overloaded\":{},\"deadline_exceeded\":{},\
             \"shutting_down\":{},\"cache_hits\":{},\"cache_misses\":{},\"shed\":{},\
             \"worker_panics\":{},\"worker_respawns\":{},\"connections\":{},\
             \"connections_rejected\":{},\"malformed_frames\":{},\"jobs_infeasible\":{},\
             \"dropped_events\":{},\"journal_bytes\":{}}}",
            g(&self.requests),
            g(&self.ok),
            g(&self.errors),
            g(&self.overloaded),
            g(&self.deadline_exceeded),
            g(&self.shutting_down),
            g(&self.cache_hits),
            g(&self.cache_misses),
            g(&self.shed),
            g(&self.worker_panics),
            g(&self.worker_respawns),
            g(&self.connections),
            g(&self.connections_rejected),
            g(&self.malformed_frames),
            g(&self.jobs_infeasible),
            g(&self.dropped_events),
            g(&self.journal_bytes)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fixed_order_and_reparses() {
        let m = ServeMetrics::default();
        ServeMetrics::bump(&m.requests);
        ServeMetrics::bump(&m.requests);
        ServeMetrics::bump(&m.cache_hits);
        let json = m.render_json();
        assert!(json.starts_with("{\"requests\":2,"), "{json}");
        let doc = quva_obs::parse_json(&json).unwrap();
        assert_eq!(doc.get("cache_hits").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(doc.get("worker_panics").and_then(|v| v.as_f64()), Some(0.0));
    }

    #[test]
    fn telemetry_fields_append_after_original_keys() {
        // the byte-determinism contract: existing consumers parse by
        // position up to jobs_infeasible; new fields only ever append
        let m = ServeMetrics::default();
        m.dropped_events.store(7, Ordering::Relaxed);
        m.journal_bytes.store(512, Ordering::Relaxed);
        let json = m.render_json();
        assert!(
            json.ends_with(",\"jobs_infeasible\":0,\"dropped_events\":7,\"journal_bytes\":512}"),
            "{json}"
        );
        let doc = quva_obs::parse_json(&json).unwrap();
        assert_eq!(doc.get("dropped_events").and_then(|v| v.as_f64()), Some(7.0));
        assert_eq!(doc.get("journal_bytes").and_then(|v| v.as_f64()), Some(512.0));
    }
}
