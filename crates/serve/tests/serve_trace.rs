//! Observability integration: a drained daemon leaves a complete,
//! structurally valid Chrome trace behind — worker and connection
//! threads flush their thread-local buffers before exiting, so no
//! span or counter is lost.
//!
//! This is its own test binary (one `#[test]`) because the `quva-obs`
//! recorder is process-global.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use quva_serve::{Server, ServerConfig};

fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("send frame");
    let mut response = String::new();
    let n = reader.read_line(&mut response).expect("recv response");
    assert!(n > 0, "connection closed early");
    response.trim_end().to_string()
}

#[test]
fn drained_daemon_leaves_a_valid_chrome_trace() {
    quva_obs::reset();
    quva_obs::enable();

    let handle = Server::spawn(ServerConfig::default()).expect("daemon spawns");
    let addr = handle.local_addr().expect("tcp address").to_string();
    let stream = TcpStream::connect(&addr).expect("connect");
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;

    assert!(
        roundtrip(&mut stream, &mut reader, "{\"id\":\"p\",\"kind\":\"ping\"}").contains("\"status\":\"ok\"")
    );
    let job = "{\"id\":\"j\",\"kind\":\"simulate\",\"device\":\"q5\",\"policy\":\"vqm\",\
               \"benchmark\":\"ghz:3\",\"trials\":5000,\"seed\":1}";
    assert!(roundtrip(&mut stream, &mut reader, job).contains("\"status\":\"ok\""));
    assert!(roundtrip(&mut stream, &mut reader, job).contains("\"status\":\"ok\"")); // cache hit
    assert!(roundtrip(&mut stream, &mut reader, "not json").contains("\"status\":\"error\""));
    drop((stream, reader));

    handle.shutdown();
    handle.join(); // joins every thread; each flushes its obs buffers

    quva_obs::flush();
    let report = quva_obs::drain();
    quva_obs::disable();

    // counters survived the thread exits
    assert!(report.counters.get("serve.requests").copied().unwrap_or(0) >= 4);
    assert!(report.counters.get("serve.connections").copied().unwrap_or(0) >= 1);
    assert!(report.counters.get("serve.cache.hit").copied().unwrap_or(0) >= 1);
    assert!(report.counters.get("serve.cache.miss").copied().unwrap_or(0) >= 1);
    assert!(report.counters.get("serve.malformed").copied().unwrap_or(0) >= 1);
    assert!(report.counters.get("serve.drain").copied().unwrap_or(0) >= 1);
    // request spans from the connection thread, job spans from a worker
    assert!(report.spans.iter().any(|s| s.name == "request"));
    assert!(report.spans.iter().any(|s| s.name == "job"));
    assert!(report.histograms.contains_key("serve.queue.depth"));

    // the rendered trace passes the same structural validation the CI
    // `trace-verify` command applies
    let chrome = report.to_chrome_json();
    let stats = quva_obs::validate_chrome_trace(&chrome).expect("valid chrome trace");
    assert!(stats.spans >= 2, "{stats:?}");
    assert!(
        stats.threads >= 2,
        "worker and connection lanes expected, got {stats:?}"
    );
}
