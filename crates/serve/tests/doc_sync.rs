//! Keeps the DESIGN.md §17 schema tables and the code-side field-order
//! constants in lockstep: the dump header, journal record, and flight
//! event key orders are wire schemas — drift between the docs and the
//! rendered JSON fails the build in both directions.

/// Parses the backticked first-column field names from the DESIGN.md
/// table whose header's first cell is `marker`, in document order.
fn documented_fields(marker: &str) -> Vec<String> {
    let design = include_str!("../../../DESIGN.md");
    let mut fields = Vec::new();
    let mut in_table = false;
    for line in design.lines() {
        let mut cells = line.split('|').map(str::trim);
        let Some("") = cells.next() else {
            in_table = false;
            continue;
        };
        let Some(first) = cells.next() else {
            in_table = false;
            continue;
        };
        if first == marker {
            in_table = true;
            continue;
        }
        if !in_table || first.starts_with("---") {
            continue;
        }
        match first.strip_prefix('`').and_then(|f| f.strip_suffix('`')) {
            Some(name) => fields.push(name.to_string()),
            None => in_table = false,
        }
    }
    fields
}

#[test]
fn dump_header_fields_match_design_md() {
    assert_eq!(
        documented_fields("dump header field"),
        quva_serve::DUMP_HEADER_FIELDS,
        "DESIGN.md §17.2 dump-header table drifted from DUMP_HEADER_FIELDS"
    );
}

#[test]
fn journal_fields_match_design_md() {
    assert_eq!(
        documented_fields("journal field"),
        quva_serve::JOURNAL_FIELDS,
        "DESIGN.md §17.4 journal table drifted from JOURNAL_FIELDS"
    );
}

#[test]
fn flight_event_fields_match_design_md() {
    assert_eq!(
        documented_fields("flight event field"),
        quva_obs::flight::EVENT_FIELDS,
        "DESIGN.md §17.1 flight-event table drifted from EVENT_FIELDS"
    );
}
