//! End-to-end telemetry tests for the `quvad` daemon: the `metrics`
//! exposition (syntax, golden bytes, cross-run determinism), anomaly
//! flight dumps, the per-job audit journal, streaming progress frames,
//! the pinned `stats` key order, and the worker-respawn obs flush.
//!
//! The flight ring and the `quva-obs` recorder are process-global, so
//! every test in this binary takes `guard()` to serialize.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

use quva_serve::{is_timing_line, Server, ServerConfig, ServerHandle, DUMP_SCHEMA};

fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn spawn(config: ServerConfig) -> (ServerHandle, String) {
    let handle = Server::spawn(config).expect("daemon spawns");
    let addr = handle.local_addr().expect("tcp address").to_string();
    (handle, addr)
}

fn open(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn send(stream: &mut TcpStream, line: &str) {
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("send frame");
}

fn recv(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("recv response");
    assert!(n > 0, "connection closed before a response arrived");
    line.trim_end().to_string()
}

fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    send(stream, line);
    recv(reader)
}

fn scrape_exposition(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, id: &str) -> String {
    let response = roundtrip(
        stream,
        reader,
        &format!("{{\"id\":\"{id}\",\"kind\":\"metrics\"}}"),
    );
    let doc = quva_obs::parse_json(&response).expect("metrics response parses");
    assert_eq!(
        doc.get("status").and_then(|v| v.as_str()),
        Some("ok"),
        "{response}"
    );
    doc.get("result")
        .and_then(|r| r.get("exposition"))
        .and_then(|e| e.as_str())
        .expect("exposition field")
        .to_string()
}

/// Runs the fixed seeded single-job sequence the golden and
/// determinism tests pin, returning the scraped exposition.
fn seeded_run_exposition() -> String {
    let (handle, addr) = spawn(ServerConfig::default());
    let (mut stream, mut reader) = open(&addr);
    let job = "{\"id\":\"g1\",\"kind\":\"simulate\",\"device\":\"q5\",\"policy\":\"vqm\",\
               \"benchmark\":\"ghz:3\",\"trials\":20000,\"seed\":9}";
    let response = roundtrip(&mut stream, &mut reader, job);
    assert!(response.contains("\"status\":\"ok\""), "{response}");
    let exposition = scrape_exposition(&mut stream, &mut reader, "m1");
    drop((stream, reader));
    handle.shutdown();
    handle.join();
    exposition
}

#[test]
fn exposition_is_syntactically_valid_prometheus_text() {
    let _g = guard();
    let exposition = seeded_run_exposition();
    assert!(!exposition.is_empty());
    for line in exposition.lines() {
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(comment.starts_with("TYPE quvad_"), "bad comment line: {line}");
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("bad line: {line}"));
        assert!(name.starts_with("quvad_"), "bad metric name: {line}");
        assert!(value.parse::<f64>().is_ok(), "bad sample value: {line}");
    }
    for required in [
        "quvad_requests_total 2",
        "quvad_queue_depth 0",
        "quvad_workers_alive 2",
        "quvad_flight_dropped_total 0",
        "quvad_dumps_total{trigger=\"deadline_exceeded\"} 0",
        "quvad_latency_us_count{verb=\"simulate\"} 1",
    ] {
        assert!(
            exposition.lines().any(|l| l == required),
            "missing line {required:?} in:\n{exposition}"
        );
    }
}

/// Timing-valued lines replaced by a placeholder; everything else is
/// byte-pinned by the golden file.
fn normalize(exposition: &str) -> String {
    let mut out = String::new();
    for line in exposition.lines() {
        if is_timing_line(line) {
            let name = line.rsplit_once(' ').map_or(line, |(n, _)| n);
            out.push_str(name);
            out.push_str(" <timing>\n");
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[test]
fn exposition_bytes_match_golden_for_seeded_run() {
    let _g = guard();
    let normalized = normalize(&seeded_run_exposition());
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/exposition.txt");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(golden_path, &normalized).expect("write golden");
        return;
    }
    let golden =
        std::fs::read_to_string(golden_path).expect("golden file missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        normalized, golden,
        "exposition drifted from tests/golden/exposition.txt; \
         regenerate with UPDATE_GOLDEN=1 if intentional"
    );
}

#[test]
fn identical_runs_differ_only_on_timing_lines() {
    let _g = guard();
    let first = seeded_run_exposition();
    let second = seeded_run_exposition();
    let a: Vec<&str> = first.lines().collect();
    let b: Vec<&str> = second.lines().collect();
    assert_eq!(a.len(), b.len(), "line sets diverged:\n{first}\n---\n{second}");
    for (la, lb) in a.iter().zip(&b) {
        if la != lb {
            assert!(
                is_timing_line(la) && is_timing_line(lb),
                "non-timing line differs between identical runs:\n  {la}\n  {lb}"
            );
        }
    }
    // and the allowance is not vacuous: timing lines exist
    assert!(a.iter().any(|l| is_timing_line(l)));
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("quva-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn deadline_anomaly_writes_parseable_dump_without_trace_flag() {
    let _g = guard();
    let dir = temp_dir("deadline");
    let (handle, addr) = spawn(ServerConfig {
        workers: 1,
        dump_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    // occupy the only worker so the urgent job cannot start in time
    let (mut blocker, mut blocker_reader) = open(&addr);
    send(
        &mut blocker,
        "{\"id\":\"slow\",\"kind\":\"simulate\",\"device\":\"q20\",\"policy\":\"vqm\",\
         \"benchmark\":\"bv:8\",\"trials\":50000000,\"seed\":1}",
    );
    thread::sleep(Duration::from_millis(100));
    let (mut stream, mut reader) = open(&addr);
    let response = roundtrip(
        &mut stream,
        &mut reader,
        "{\"id\":\"urgent\",\"kind\":\"audit\",\"device\":\"q5\",\"policy\":\"vqm\",\
         \"benchmark\":\"ghz:3\",\"deadline_ms\":1}",
    );
    assert!(
        response.contains("\"status\":\"deadline_exceeded\""),
        "{response}"
    );
    let _ = recv(&mut blocker_reader); // let the slow job finish

    let dumps: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("dump dir exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.to_string_lossy().contains("deadline_exceeded"))
        .collect();
    assert_eq!(dumps.len(), 1, "{dumps:?}");
    let text = std::fs::read_to_string(&dumps[0]).expect("dump readable");
    let mut lines = text.lines();
    let header = quva_obs::parse_json(lines.next().expect("header line")).expect("header parses");
    assert_eq!(header.get("schema").and_then(|v| v.as_str()), Some(DUMP_SCHEMA));
    assert_eq!(
        header.get("trigger").and_then(|v| v.as_str()),
        Some("deadline_exceeded")
    );
    assert_eq!(header.get("job_id").and_then(|v| v.as_str()), Some("urgent"));
    let body: Vec<&str> = lines.collect();
    assert!(!body.is_empty());
    for line in &body {
        assert!(quva_obs::parse_json(line).is_ok(), "unparseable event: {line}");
    }
    // the dump holds the offending job's history: its submit note and
    // the anomaly note, recorded without any --trace flag
    assert!(text.contains("job urgent submit"), "{text}");
    assert!(text.contains("anomaly deadline_exceeded job=urgent"), "{text}");
    // the exposition reflects the dump within one scrape
    let exposition = scrape_exposition(&mut stream, &mut reader, "m-dump");
    assert!(
        exposition
            .lines()
            .any(|l| l == "quvad_dumps_total{trigger=\"deadline_exceeded\"} 1"),
        "{exposition}"
    );
    drop((stream, reader, blocker, blocker_reader));
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn progress_jobs_stream_monotone_frames_before_the_final_response() {
    let _g = guard();
    let (handle, addr) = spawn(ServerConfig::default());
    let (mut stream, mut reader) = open(&addr);
    send(
        &mut stream,
        "{\"id\":\"p1\",\"kind\":\"simulate\",\"device\":\"q5\",\"policy\":\"vqm\",\
         \"benchmark\":\"ghz:3\",\"trials\":2000000,\"seed\":4,\"progress\":true}",
    );
    let mut frames: Vec<(u64, u64)> = Vec::new();
    let finale = loop {
        let line = recv(&mut reader);
        let doc = quva_obs::parse_json(&line).expect("frame parses");
        if doc.get("status").is_some() {
            break line;
        }
        assert_eq!(doc.get("id").and_then(|v| v.as_str()), Some("p1"), "{line}");
        assert_eq!(
            doc.get("event").and_then(|v| v.as_str()),
            Some("progress"),
            "progress frames carry event, never status: {line}"
        );
        let done = doc.get("done").and_then(|v| v.as_f64()).expect("done") as u64;
        let total = doc.get("total").and_then(|v| v.as_f64()).expect("total") as u64;
        frames.push((done, total));
    };
    assert!(finale.contains("\"status\":\"ok\""), "{finale}");
    assert!(!frames.is_empty(), "no progress frames streamed");
    let mut last = 0;
    for (done, total) in &frames {
        assert_eq!(*total, 2_000_000);
        assert!(*done > last, "progress not monotone: {frames:?}");
        assert!(*done <= *total);
        last = *done;
    }
    // the streamed result is byte-identical to a plain run of the
    // same spec on a fresh connection (cache replay of the estimate)
    let plain = roundtrip(
        &mut stream,
        &mut reader,
        "{\"id\":\"p1\",\"kind\":\"simulate\",\"device\":\"q5\",\"policy\":\"vqm\",\
         \"benchmark\":\"ghz:3\",\"trials\":2000000,\"seed\":4}",
    );
    assert_eq!(plain, finale, "{plain}");
    drop((stream, reader));
    handle.shutdown();
    handle.join();
}

#[test]
fn stats_appends_telemetry_fields_after_the_original_keys() {
    let _g = guard();
    let (handle, addr) = spawn(ServerConfig::default());
    let (mut stream, mut reader) = open(&addr);
    let stats = roundtrip(&mut stream, &mut reader, "{\"id\":\"s1\",\"kind\":\"stats\"}");
    let infeasible = stats
        .find("\"jobs_infeasible\":")
        .expect("original tail key present");
    let dropped = stats.find("\"dropped_events\":").expect("dropped_events present");
    let journal = stats.find("\"journal_bytes\":").expect("journal_bytes present");
    assert!(
        infeasible < dropped && dropped < journal,
        "new stats keys must append after the existing ones: {stats}"
    );
    // every pre-existing key still present, in its original order
    let mut at = 0;
    for key in [
        "requests",
        "ok",
        "errors",
        "cache_hits",
        "cache_misses",
        "jobs_infeasible",
        "dropped_events",
        "journal_bytes",
    ] {
        let needle = format!("\"{key}\":");
        let pos = stats
            .find(&needle)
            .unwrap_or_else(|| panic!("missing {key}: {stats}"));
        assert!(pos >= at, "{key} moved before an earlier key: {stats}");
        at = pos;
    }
    drop((stream, reader));
    handle.shutdown();
    handle.join();
}

#[test]
fn journal_records_every_job_with_admission_and_outcome() {
    let _g = guard();
    let path = temp_dir("journal").join("journal.jsonl");
    let (handle, addr) = spawn(ServerConfig {
        journal_path: Some(path.clone()),
        ..ServerConfig::default()
    });
    let (mut stream, mut reader) = open(&addr);
    let job = "{\"id\":\"a1\",\"kind\":\"audit\",\"device\":\"q5\",\"policy\":\"vqm\",\
               \"benchmark\":\"ghz:3\"}";
    assert!(roundtrip(&mut stream, &mut reader, job).contains("\"status\":\"ok\""));
    assert!(roundtrip(&mut stream, &mut reader, job).contains("\"status\":\"ok\""));
    let infeasible = roundtrip(
        &mut stream,
        &mut reader,
        "{\"id\":\"a2\",\"kind\":\"simulate\",\"device\":\"q20\",\"policy\":\"vqm\",\
         \"benchmark\":\"bv:8\",\"trials\":50000000,\"deadline_ms\":1}",
    );
    assert!(infeasible.contains("\"status\":\"infeasible\""), "{infeasible}");
    drop((stream, reader));
    handle.shutdown();
    handle.join();

    let text = std::fs::read_to_string(&path).expect("journal written");
    let records: Vec<_> = text
        .lines()
        .map(|l| quva_obs::parse_json(l).unwrap_or_else(|e| panic!("{e}: {l}")))
        .collect();
    assert_eq!(records.len(), 3, "{text}");
    let admissions: Vec<_> = records
        .iter()
        .map(|r| r.get("admission").and_then(|v| v.as_str()).unwrap().to_string())
        .collect();
    assert_eq!(admissions, ["admitted", "cache", "infeasible"], "{text}");
    assert_eq!(
        records[1].get("cache_hit").and_then(|v| v.as_bool()),
        Some(true),
        "{text}"
    );
    assert_eq!(
        records[2].get("outcome").and_then(|v| v.as_str()),
        Some("infeasible"),
        "{text}"
    );
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn worker_panic_flushes_obs_buffers_before_the_respawn() {
    let _g = guard();
    quva_obs::reset();
    quva_obs::enable();
    let (handle, addr) = spawn(ServerConfig {
        chaos_panics: true,
        ..ServerConfig::default()
    });
    let (mut stream, mut reader) = open(&addr);
    let response = roundtrip(&mut stream, &mut reader, "{\"id\":\"boom\",\"kind\":\"panic\"}");
    assert!(response.contains("worker panicked"), "{response}");
    // regression: the respawned worker's panic-path counters must be
    // visible to a drain taken while the daemon is still running —
    // before the fix they sat in the dead loop's TLS until shutdown.
    // The client reply races the supervisor's flush by a few
    // microseconds, so poll; without the fix this times out because
    // nothing flushes until shutdown.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let (mut panics, mut respawns) = (0u64, 0u64);
    while panics < 1 || respawns < 1 {
        let report = quva_obs::drain();
        panics += report.counters.get("serve.worker.panic").copied().unwrap_or(0);
        respawns += report.counters.get("serve.worker.respawn").copied().unwrap_or(0);
        assert!(
            std::time::Instant::now() < deadline,
            "panic-path counters not flushed before respawn \
             (panic={panics}, respawn={respawns})"
        );
        thread::sleep(Duration::from_millis(20));
    }
    quva_obs::disable();
    // the daemon is still healthy after the respawn
    let probe = roundtrip(&mut stream, &mut reader, "{\"id\":\"alive\",\"kind\":\"ping\"}");
    assert!(probe.contains("\"status\":\"ok\""), "{probe}");
    drop((stream, reader));
    handle.shutdown();
    handle.join();
}
