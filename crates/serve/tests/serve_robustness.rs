//! End-to-end robustness tests for the `quvad` daemon: determinism of
//! cached responses, deadline enforcement, graceful drain with
//! in-flight work, the connection-count gate, and the unix-socket
//! transport.
//!
//! Observability assertions live in `serve_trace.rs` (the `quva-obs`
//! recorder is process-global; that test binary keeps it isolated).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use quva_serve::{Server, ServerConfig, ServerHandle};

fn spawn(config: ServerConfig) -> (ServerHandle, String) {
    let handle = Server::spawn(config).expect("daemon spawns");
    let addr = handle.local_addr().expect("tcp address").to_string();
    (handle, addr)
}

fn open(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn send(stream: &mut TcpStream, line: &str) {
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("send frame");
}

fn recv(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("recv response");
    assert!(n > 0, "connection closed before a response arrived");
    line.trim_end().to_string()
}

fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    send(stream, line);
    recv(reader)
}

#[test]
fn identical_payloads_yield_byte_identical_responses_with_cache_hit() {
    let (handle, addr) = spawn(ServerConfig::default());
    let (mut stream, mut reader) = open(&addr);
    let job = "{\"id\":\"j1\",\"kind\":\"simulate\",\"device\":\"q20\",\"policy\":\"vqm\",\
               \"benchmark\":\"bv:6\",\"trials\":5000,\"seed\":3}";
    let first = roundtrip(&mut stream, &mut reader, job);
    let second = roundtrip(&mut stream, &mut reader, job);
    assert!(first.contains("\"status\":\"ok\""), "{first}");
    assert_eq!(first, second, "cached response must be byte-identical");
    // the same payload from a different connection is also identical
    let (mut s2, mut r2) = open(&addr);
    let third = roundtrip(&mut s2, &mut r2, job);
    assert_eq!(first, third);
    let stats = roundtrip(&mut stream, &mut reader, "{\"id\":\"s\",\"kind\":\"stats\"}");
    let doc = quva_obs::parse_json(&stats).expect("stats parse");
    let hits = doc
        .get("result")
        .and_then(|r| r.get("cache_hits"))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    assert!(hits >= 2.0, "expected recorded cache hits, got {stats}");
    drop((stream, reader, s2, r2));
    handle.shutdown();
    handle.join();
}

#[test]
fn per_request_deadline_yields_typed_deadline_exceeded() {
    // one worker, and it is busy: the second job cannot start within
    // its 1ms deadline
    let (handle, addr) = spawn(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let (mut blocker, mut blocker_reader) = open(&addr);
    send(
        &mut blocker,
        "{\"id\":\"slow\",\"kind\":\"simulate\",\"device\":\"q20\",\"policy\":\"vqm\",\
         \"benchmark\":\"bv:8\",\"trials\":50000000,\"seed\":1}",
    );
    thread::sleep(Duration::from_millis(100)); // let the worker pick it up
    let (mut stream, mut reader) = open(&addr);
    let response = roundtrip(
        &mut stream,
        &mut reader,
        "{\"id\":\"urgent\",\"kind\":\"audit\",\"device\":\"q5\",\"policy\":\"vqm\",\
         \"benchmark\":\"ghz:3\",\"deadline_ms\":1}",
    );
    assert!(
        response.contains("\"status\":\"deadline_exceeded\"") && response.contains("\"deadline_ms\":1"),
        "{response}"
    );
    // the slow job itself still completes
    let slow = recv(&mut blocker_reader);
    assert!(slow.contains("\"status\":\"ok\""), "{slow}");
    drop((stream, reader, blocker, blocker_reader));
    handle.shutdown();
    handle.join();
}

#[test]
fn graceful_drain_completes_in_flight_work_and_refuses_new_work() {
    let (handle, addr) = spawn(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    // conn A: a job long enough to still be running when drain begins
    let (mut a, mut a_reader) = open(&addr);
    send(
        &mut a,
        "{\"id\":\"inflight\",\"kind\":\"simulate\",\"device\":\"q20\",\"policy\":\"vqm\",\
         \"benchmark\":\"bv:8\",\"trials\":50000000,\"seed\":7}",
    );
    // conn D opens before the drain so it survives the accept-loop exit
    let (mut d, mut d_reader) = open(&addr);
    assert!(
        roundtrip(&mut d, &mut d_reader, "{\"id\":\"p\",\"kind\":\"ping\"}").contains("\"status\":\"ok\"")
    );
    thread::sleep(Duration::from_millis(100)); // job admitted and running
                                               // conn B asks for the drain
    let (mut b, mut b_reader) = open(&addr);
    let bye = roundtrip(&mut b, &mut b_reader, "{\"id\":\"bye\",\"kind\":\"shutdown\"}");
    assert!(bye.contains("\"draining\":true"), "{bye}");
    assert!(handle.draining());
    // new work on a pre-drain connection gets a typed shutting_down
    let refused = roundtrip(
        &mut d,
        &mut d_reader,
        "{\"id\":\"late\",\"kind\":\"audit\",\"device\":\"q5\",\"policy\":\"vqm\",\
         \"benchmark\":\"ghz:3\"}",
    );
    assert!(refused.contains("\"status\":\"shutting_down\""), "{refused}");
    // the in-flight job is not dropped: it completes with a typed ok
    let inflight = recv(&mut a_reader);
    assert!(inflight.contains("\"status\":\"ok\""), "{inflight}");
    drop((a, a_reader, b, b_reader, d, d_reader));
    let metrics = handle.join();
    let doc = quva_obs::parse_json(&metrics).expect("metrics parse");
    let ok = doc.get("ok").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let down = doc.get("shutting_down").and_then(|v| v.as_f64()).unwrap_or(0.0);
    assert!(ok >= 2.0, "{metrics}");
    assert!(down >= 1.0, "{metrics}");
}

#[test]
fn connection_gate_sheds_excess_clients_with_typed_overloaded() {
    let (handle, addr) = spawn(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });
    let (mut a, mut a_reader) = open(&addr);
    assert!(
        roundtrip(&mut a, &mut a_reader, "{\"id\":\"p\",\"kind\":\"ping\"}").contains("\"status\":\"ok\"")
    );
    let (_b, mut b_reader) = open(&addr);
    let refused = recv(&mut b_reader);
    assert!(refused.contains("\"status\":\"overloaded\""), "{refused}");
    // once the first client leaves, a new one is admitted
    drop((a, a_reader));
    let admitted = (0..50).find_map(|_| {
        thread::sleep(Duration::from_millis(20));
        let (mut c, mut c_reader) = open(&addr);
        let line = roundtrip(&mut c, &mut c_reader, "{\"id\":\"p2\",\"kind\":\"ping\"}");
        line.contains("\"status\":\"ok\"").then_some(line)
    });
    assert!(admitted.is_some(), "slot was never released");
    handle.shutdown();
    handle.join();
}

#[test]
fn statically_infeasible_deadline_gets_typed_response_without_worker_time() {
    // one worker, kept completely idle: the infeasible job must be
    // answered on the connection thread, before admission
    let (handle, addr) = spawn(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let (mut stream, mut reader) = open(&addr);
    // 1e8 trials cannot finish within 1ms even under the optimistic
    // cost bound — the envelope proves it statically
    let response = roundtrip(
        &mut stream,
        &mut reader,
        "{\"id\":\"doomed\",\"kind\":\"simulate\",\"device\":\"q20\",\"policy\":\"vqm\",\
         \"benchmark\":\"bv:8\",\"trials\":100000000,\"seed\":1,\"deadline_ms\":1}",
    );
    assert!(response.contains("\"status\":\"infeasible\""), "{response}");
    let doc = quva_obs::parse_json(&response).expect("infeasible response parses");
    let predicted = doc.get("predicted_ms").and_then(|v| v.as_f64()).unwrap_or(0.0);
    assert!(predicted > 1.0, "prediction must exceed the deadline: {response}");
    assert_eq!(doc.get("deadline_ms").and_then(|v| v.as_f64()), Some(1.0));
    // the same job with a generous deadline is admitted normally
    let ok = roundtrip(
        &mut stream,
        &mut reader,
        "{\"id\":\"fine\",\"kind\":\"simulate\",\"device\":\"q20\",\"policy\":\"vqm\",\
         \"benchmark\":\"bv:8\",\"trials\":2000,\"seed\":1,\"deadline_ms\":60000}",
    );
    assert!(ok.contains("\"status\":\"ok\""), "{ok}");
    drop((stream, reader));
    handle.shutdown();
    let metrics = handle.join();
    let doc = quva_obs::parse_json(&metrics).expect("metrics parse");
    let infeasible = doc.get("jobs_infeasible").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let misses = doc.get("cache_misses").and_then(|v| v.as_f64()).unwrap_or(-1.0);
    assert_eq!(infeasible, 1.0, "{metrics}");
    // only the feasible job reached the queue; the infeasible one
    // never consumed a worker slot
    assert_eq!(misses, 1.0, "{metrics}");
}

#[test]
fn frame_budget_constant_matches_analysis_crate() {
    // QV404's budget and the daemon's hard frame limit must agree, or
    // the lint would bless responses the wire rejects (and vice versa)
    assert_eq!(
        quva_analysis::FRAME_BUDGET_BYTES,
        quva_serve::MAX_FRAME_BYTES as f64
    );
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_serves_jobs() {
    use std::os::unix::net::UnixStream;

    let path = std::env::temp_dir().join(format!("quvad-test-{}.sock", std::process::id()));
    let handle = Server::spawn(ServerConfig {
        listen: quva_serve::Listen::Unix(path.clone()),
        ..ServerConfig::default()
    })
    .expect("unix daemon spawns");
    let stream = UnixStream::connect(&path).expect("unix connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    stream
        .write_all(
            b"{\"id\":\"u1\",\"kind\":\"audit\",\"device\":\"q5\",\"policy\":\"vqm\",\
              \"benchmark\":\"ghz:3\"}\n",
        )
        .expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("recv");
    assert!(line.contains("\"status\":\"ok\""), "{line}");
    drop((stream, reader));
    handle.shutdown();
    handle.join();
    assert!(!path.exists(), "socket file must be removed on drain");
}
