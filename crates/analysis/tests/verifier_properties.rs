//! Integration properties of the verifier:
//!
//! 1. Every benchmark-suite circuit compiled under all four paper
//!    policies verifies clean (no `Severity::Error`).
//! 2. Each seeded corruption — off-coupler CNOT, broken permutation,
//!    use-after-measure, swapped operands, dropped SWAP — is caught
//!    with its expected stable `LintCode`.

use proptest::prelude::*;
use quva::{CompiledCircuit, Mapping, MappingPolicy};
use quva_analysis::{lint_circuit, verify_compiled, LintCode};
use quva_benchmarks::{ibm_q5_suite, table1_suite, Benchmark};
use quva_circuit::{Circuit, Gate, PhysQubit, Qubit};
use quva_device::Device;

fn policies() -> [MappingPolicy; 4] {
    [
        MappingPolicy::baseline(),
        MappingPolicy::vqm(),
        MappingPolicy::vqm_hop_limited(),
        MappingPolicy::vqa_vqm(),
    ]
}

fn compile(bench: &Benchmark, policy: MappingPolicy, device: &Device) -> CompiledCircuit {
    policy
        .compile(bench.circuit(), device)
        .unwrap_or_else(|e| panic!("{} failed to compile {}: {e}", policy.name(), bench.name()))
}

/// Rebuilds a physical circuit with `edit` applied to every gate
/// (returning `None` drops the gate).
fn rewrite(
    circuit: &Circuit<PhysQubit>,
    mut edit: impl FnMut(usize, &Gate<PhysQubit>) -> Option<Gate<PhysQubit>>,
) -> Circuit<PhysQubit> {
    let mut out = Circuit::with_cbits(circuit.num_qubits(), circuit.num_cbits());
    for (i, g) in circuit.iter().enumerate() {
        if let Some(g) = edit(i, g) {
            out.push(g);
        }
    }
    out
}

#[test]
fn table1_suite_verifies_clean_under_all_policies() {
    let device = Device::ibm_q20();
    for bench in table1_suite() {
        for policy in policies() {
            let compiled = compile(&bench, policy, &device);
            let report = verify_compiled(bench.circuit(), &device, &compiled);
            assert!(
                report.is_clean(),
                "{} under {} is not clean:\n{}",
                bench.name(),
                policy.name(),
                report.render_text()
            );
        }
    }
}

#[test]
fn q5_suite_verifies_clean_under_all_policies() {
    let device = Device::ibm_q5();
    for bench in ibm_q5_suite() {
        for policy in policies() {
            let compiled = compile(&bench, policy, &device);
            let report = verify_compiled(bench.circuit(), &device, &compiled);
            assert!(
                report.is_clean(),
                "{} under {} is not clean:\n{}",
                bench.name(),
                policy.name(),
                report.render_text()
            );
        }
    }
}

#[test]
fn suite_circuits_lint_clean() {
    let device = Device::ibm_q20();
    for bench in table1_suite() {
        let report = lint_circuit(bench.circuit(), Some(&device));
        assert!(
            report.is_clean(),
            "{} lints dirty:\n{}",
            bench.name(),
            report.render_text()
        );
    }
}

/// Seeded corruption 1: an off-coupler CNOT is QV001, distinct from the
/// other corruption codes.
#[test]
fn off_coupler_cnot_is_qv001() {
    let device = Device::ibm_q20();
    let bench = Benchmark::bv(8);
    let compiled = compile(&bench, MappingPolicy::vqm(), &device);

    // find a physically uncoupled pair to corrupt a CNOT onto
    let topo = device.topology();
    let (a, b) = (0..device.num_qubits())
        .flat_map(|i| (0..device.num_qubits()).map(move |j| (i, j)))
        .map(|(i, j)| (PhysQubit(i as u32), PhysQubit(j as u32)))
        .find(|&(a, b)| a != b && topo.link_id(a, b).is_none())
        .expect("q20 is not fully connected");

    let mut corrupted_any = false;
    let physical = rewrite(compiled.physical(), |_, g| {
        if !corrupted_any && matches!(g, Gate::Cnot { .. }) {
            corrupted_any = true;
            Some(Gate::cnot(a, b))
        } else {
            Some(g.clone())
        }
    });
    assert!(corrupted_any);
    let forged = CompiledCircuit::from_parts(
        physical,
        compiled.initial_mapping().clone(),
        compiled.final_mapping().clone(),
        compiled.inserted_swaps(),
    );
    let report = verify_compiled(bench.circuit(), &device, &forged);
    assert!(
        report.has_code(LintCode::OffCouplerGate),
        "{}",
        report.render_text()
    );
    assert_eq!(LintCode::OffCouplerGate.code(), "QV001");
}

/// Seeded corruption 2: a final mapping that the SWAPs do not realize
/// is QV003 — and only QV003, since the gate stream itself is intact.
#[test]
fn broken_permutation_is_qv003() {
    let device = Device::ibm_q20();
    let bench = Benchmark::ghz(6);
    let compiled = compile(&bench, MappingPolicy::vqa_vqm(), &device);

    let mut wrong = compiled.final_mapping().clone();
    let p0 = wrong.phys_of(Qubit(0));
    let other = (0..device.num_qubits() as u32)
        .map(PhysQubit)
        .find(|&p| p != p0)
        .expect("device has more than one qubit");
    wrong.apply_swap(p0, other);
    assert_ne!(&wrong, compiled.final_mapping());

    let forged = CompiledCircuit::from_parts(
        compiled.physical().clone(),
        compiled.initial_mapping().clone(),
        wrong,
        compiled.inserted_swaps(),
    );
    let report = verify_compiled(bench.circuit(), &device, &forged);
    assert!(
        report.has_code(LintCode::PermutationMismatch),
        "{}",
        report.render_text()
    );
    assert!(
        !report.has_code(LintCode::SequenceMismatch),
        "{}",
        report.render_text()
    );
    assert_eq!(LintCode::PermutationMismatch.code(), "QV003");
}

/// Seeded corruption 3: operating on a measured qubit is QV005, caught
/// both by the circuit lint and by post-compile verification.
#[test]
fn use_after_measure_is_qv005() {
    let mut circuit = Circuit::new(2);
    circuit.h(Qubit(0));
    circuit.measure(Qubit(0), quva_circuit::Cbit(0));
    circuit.cnot(Qubit(0), Qubit(1));
    let report = lint_circuit(&circuit, None);
    assert!(
        report.has_code(LintCode::UseAfterMeasure),
        "{}",
        report.render_text()
    );
    assert!(!report.is_clean());
    assert_eq!(LintCode::UseAfterMeasure.code(), "QV005");

    // the same program, "compiled" 1:1 onto a 2-qubit line
    let device = Device::ibm_q5();
    let physical = circuit.map_qubits(device.num_qubits(), |q| PhysQubit(q.0));
    let mapping = Mapping::identity(2, device.num_qubits());
    let compiled = CompiledCircuit::from_parts(physical, mapping.clone(), mapping, 0);
    let report = verify_compiled(&circuit, &device, &compiled);
    assert!(
        report.has_code(LintCode::UseAfterMeasure),
        "{}",
        report.render_text()
    );
}

/// The three seeded-corruption codes are pairwise distinct.
#[test]
fn seeded_corruption_codes_are_distinct() {
    let codes = [
        LintCode::OffCouplerGate.code(),
        LintCode::PermutationMismatch.code(),
        LintCode::UseAfterMeasure.code(),
    ];
    assert_eq!(codes, ["QV001", "QV003", "QV005"]);
}

/// Swapped operand indices on a CNOT (flipped orientation) break the
/// sequence: QV004.
#[test]
fn flipped_cnot_orientation_is_qv004() {
    let device = Device::ibm_q20();
    let bench = Benchmark::bv(8);
    let compiled = compile(&bench, MappingPolicy::baseline(), &device);

    let mut flipped_any = false;
    let physical = rewrite(compiled.physical(), |_, g| match g {
        Gate::Cnot { control, target } if !flipped_any => {
            flipped_any = true;
            Some(Gate::cnot(*target, *control))
        }
        _ => Some(g.clone()),
    });
    assert!(flipped_any);
    let forged = CompiledCircuit::from_parts(
        physical,
        compiled.initial_mapping().clone(),
        compiled.final_mapping().clone(),
        compiled.inserted_swaps(),
    );
    let report = verify_compiled(bench.circuit(), &device, &forged);
    assert!(
        report.has_code(LintCode::SequenceMismatch),
        "{}",
        report.render_text()
    );
}

/// Dropping an inserted SWAP desynchronizes the replay: the report must
/// not be clean, via QV003 and/or QV004.
#[test]
fn dropped_swap_is_caught() {
    let device = Device::ibm_q20();
    let bench = Benchmark::bv(16);
    let compiled = compile(&bench, MappingPolicy::vqm(), &device);
    assert!(compiled.inserted_swaps() > 0, "bv-16 on q20 must need SWAPs");

    let mut dropped = false;
    let physical = rewrite(compiled.physical(), |_, g| {
        if !dropped && matches!(g, Gate::Swap { .. }) {
            dropped = true;
            None
        } else {
            Some(g.clone())
        }
    });
    assert!(dropped);
    let forged = CompiledCircuit::from_parts(
        physical,
        compiled.initial_mapping().clone(),
        compiled.final_mapping().clone(),
        compiled.inserted_swaps().saturating_sub(1),
    );
    let report = verify_compiled(bench.circuit(), &device, &forged);
    assert!(
        !report.is_clean(),
        "dropped SWAP went unnoticed:\n{}",
        report.render_text()
    );
    assert!(
        report.has_code(LintCode::PermutationMismatch) || report.has_code(LintCode::SequenceMismatch),
        "{}",
        report.render_text()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random dense kernels across seeds compile and verify clean
    /// under an unaware and an aware policy.
    #[test]
    fn random_kernels_verify_clean(seed in 0u64..1024) {
        let device = Device::ibm_q20();
        let bench = Benchmark::rnd_sd(16, 32, seed);
        for policy in [MappingPolicy::baseline(), MappingPolicy::vqa_vqm()] {
            let compiled = compile(&bench, policy, &device);
            let report = verify_compiled(bench.circuit(), &device, &compiled);
            prop_assert!(
                report.is_clean(),
                "seed {} under {}:\n{}",
                seed,
                policy.name(),
                report.render_text()
            );
        }
    }

    /// Any corruption of the claimed final mapping is caught as QV003,
    /// wherever the displaced qubit lands.
    #[test]
    fn corrupted_final_mapping_always_caught(seed in 0u64..512) {
        let device = Device::ibm_q20();
        let bench = Benchmark::qft(6);
        let compiled = compile(&bench, MappingPolicy::vqm(), &device);

        let n = device.num_qubits() as u32;
        let mut wrong = compiled.final_mapping().clone();
        let p0 = wrong.phys_of(Qubit((seed % 6) as u32));
        let shifted = PhysQubit((p0.0 + 1 + (seed as u32 % (n - 1))) % n);
        prop_assert!(shifted != p0);
        wrong.apply_swap(p0, shifted);
        prop_assert!(&wrong != compiled.final_mapping());

        let forged = CompiledCircuit::from_parts(
            compiled.physical().clone(),
            compiled.initial_mapping().clone(),
            wrong,
            compiled.inserted_swaps(),
        );
        let report = verify_compiled(bench.circuit(), &device, &forged);
        prop_assert!(report.has_code(LintCode::PermutationMismatch), "{}", report.render_text());
    }
}
