//! Keeps the DESIGN.md §8 lint-code table and the `LintCode` enum in
//! lockstep: every released code must be documented with its exact
//! name and severity, and every documented code must still exist.

use quva_analysis::{LintCode, Severity};

/// Parses the `| QVxxx | name | severity |` rows out of DESIGN.md.
fn documented_codes() -> Vec<(String, String, String)> {
    let design = include_str!("../../../DESIGN.md");
    design
        .lines()
        .filter_map(|line| {
            let mut cells = line.split('|').map(str::trim);
            cells.next()?; // leading empty cell before the first pipe
            let code = cells.next()?;
            if !code.starts_with("QV") || !code[2..].chars().all(|c| c.is_ascii_digit()) {
                return None;
            }
            let name = cells.next()?;
            let severity = cells.next()?;
            Some((code.to_string(), name.to_string(), severity.to_string()))
        })
        .collect()
}

#[test]
fn every_lint_code_is_documented() {
    let documented = documented_codes();
    for code in LintCode::ALL {
        let row = documented.iter().find(|(c, _, _)| c == code.code());
        let (_, name, severity) = row.unwrap_or_else(|| {
            panic!(
                "{} ({}) is missing from the DESIGN.md §8 code table",
                code.code(),
                code.name()
            )
        });
        assert_eq!(name, code.name(), "{}: documented name drifted", code.code());
        let expected = match code.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        assert_eq!(severity, expected, "{}: documented severity drifted", code.code());
    }
}

#[test]
fn every_documented_code_exists() {
    let documented = documented_codes();
    assert!(
        documented.len() >= LintCode::ALL.len(),
        "table has {} rows but LintCode has {} variants",
        documented.len(),
        LintCode::ALL.len()
    );
    for (code, name, _) in &documented {
        let variant = LintCode::from_code(code)
            .unwrap_or_else(|| panic!("DESIGN.md documents {code} ({name}) but no such LintCode exists"));
        assert_eq!(variant.name(), name, "{code}: DESIGN.md name out of date");
    }
}

#[test]
fn explanations_exist_for_every_code() {
    for code in LintCode::ALL {
        assert!(
            !code.description().is_empty(),
            "{} has an empty description",
            code.code()
        );
        assert!(
            !code.rationale().is_empty(),
            "{} has an empty rationale",
            code.code()
        );
    }
}
