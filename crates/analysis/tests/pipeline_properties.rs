//! Property tests for the pass-pipeline contracts and the ESP-pruned
//! portfolio router:
//!
//! 1. Over seeded devices and workloads, the portfolio pipeline's
//!    static ESP point never falls below the single-candidate pipeline
//!    of the same policy — the protected-chain guarantee, exercised
//!    across calibration draws rather than just the named devices.
//! 2. Every pipeline permutation that omits a required pass (no
//!    allocation, or no routing at all) is rejected by contract
//!    checking, and `compile` refuses it with a typed
//!    `CompileError::Contract` — nothing runs.
//! 3. The diagnostics adapter and the core validator always agree: a
//!    clean `check_pipeline` report means `validate()` succeeds, and
//!    vice versa.

use proptest::prelude::*;
use quva::pipeline::{
    static_esp_point, AllocatePass, OptimizePass, PortfolioRoutePass, RoutePass, SelectAlternativePass,
};
use quva::{AllocationStrategy, CompileError, MappingPolicy, Pipeline};
use quva_analysis::check_pipeline;
use quva_benchmarks::Benchmark;
use quva_device::{CalibrationGenerator, Device, Topology, VariationProfile};

/// A device with a seeded synthetic calibration over one of three
/// topologies — the same construction the CLI's `grid:RxC@SEED` specs
/// use.
fn seeded_device(seed: u64) -> Device {
    let topology = match seed % 3 {
        0 => Topology::grid(4, 5),
        1 => Topology::ring(16),
        _ => Topology::ibm_q20_tokyo(),
    };
    let mut generator = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), seed);
    let calibration = generator.snapshot(&topology);
    Device::from_parts(topology, calibration).unwrap()
}

/// Builds a pipeline from a sampled index sequence over the five-pass
/// vocabulary. Mirrors the CLI's `--passes` list.
fn pipeline_of(indices: &[usize], width: usize) -> Pipeline<'static> {
    let policy = MappingPolicy::vqm();
    let mut p = Pipeline::new();
    for &i in indices {
        p = match i {
            0 => p.with_pass(OptimizePass),
            1 => p.with_pass(AllocatePass {
                strategy: policy.allocation,
            }),
            2 => p.with_pass(RoutePass {
                metric: policy.routing,
            }),
            3 => p.with_pass(PortfolioRoutePass {
                metric: policy.routing,
                width,
            }),
            _ => p.with_pass(SelectAlternativePass {
                alternative: MappingPolicy {
                    allocation: AllocationStrategy::GreedyInteraction,
                    routing: policy.routing,
                },
            }),
        };
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Portfolio routing never loses to single-candidate routing under
    /// the same policy, on any seeded calibration: the protected chain
    /// is the single-candidate route, and selection only ever takes a
    /// maximum on top of it.
    #[test]
    fn portfolio_esp_never_below_single_candidate((seed, width) in (0u64..512, 2usize..6)) {
        let device = seeded_device(seed);
        let bench = Benchmark::rnd_sd(12, 24, seed);
        for policy in [MappingPolicy::baseline(), MappingPolicy::vqm(), MappingPolicy::vqa_vqm()] {
            let base = Pipeline::for_policy(&policy)
                .compile(bench.circuit(), &device)
                .unwrap_or_else(|e| panic!("{} baseline failed: {e}", policy.name()));
            let port = Pipeline::for_policy_portfolio(&policy, width)
                .compile(bench.circuit(), &device)
                .unwrap_or_else(|e| panic!("{} portfolio failed: {e}", policy.name()));
            let base_esp = static_esp_point(&device, base.physical());
            let port_esp = static_esp_point(&device, port.physical());
            prop_assert!(
                port_esp >= base_esp,
                "seed {seed} width {width} {}: portfolio {port_esp} < baseline {base_esp}",
                policy.name()
            );
        }
    }

    /// A pipeline omitting a required pass — no allocation, or no
    /// routing pass of either kind — is always rejected statically,
    /// and `compile` refuses it with `CompileError::Contract` before
    /// any pass runs. Conversely, anything that validates carries both
    /// required passes.
    #[test]
    fn omitting_a_required_pass_is_always_rejected(indices in prop::collection::vec(0usize..5, 0..6)) {
        let has_allocate = indices.contains(&1);
        let has_route = indices.contains(&2) || indices.contains(&3);
        let report = check_pipeline(&pipeline_of(&indices, 2));
        let valid = pipeline_of(&indices, 2).validate().is_ok();
        prop_assert_eq!(
            report.is_clean(), valid,
            "checker and validator disagree on {:?}:\n{}", &indices, report.render_text()
        );
        if !(has_allocate && has_route) {
            prop_assert!(
                !valid,
                "pipeline {:?} omits a required pass but validated", &indices
            );
            // and the compile entry point refuses it with a typed error
            let device = Device::ibm_q5();
            let bench = Benchmark::ghz(3);
            match pipeline_of(&indices, 2).compile(bench.circuit(), &device) {
                Err(CompileError::Contract(err)) => prop_assert!(!err.violations().is_empty()),
                Err(other) => prop_assert!(false, "expected Contract error, got {other}"),
                Ok(_) => prop_assert!(false, "pipeline {:?} compiled without required passes", &indices),
            }
        } else if valid {
            prop_assert!(has_allocate && has_route);
        }
    }
}
