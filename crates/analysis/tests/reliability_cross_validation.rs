//! Cross-validation of the static reliability analysis against the
//! Monte-Carlo simulator:
//!
//! 1. For every table-1 benchmark × every paper policy, the fixed-seed
//!    Monte-Carlo PST lands inside the static ESP interval, and the
//!    static point estimate is *bit-identical* to the analytic PST
//!    (they multiply the same factors in the same order).
//! 2. The static policy rank-ordering matches the Monte-Carlo
//!    rank-ordering wherever the static gap exceeds the sampling noise.
//! 3. Property: on seeded synthetic devices the analytic agreement and
//!    interval containment hold for arbitrary calibrations.
//! 4. A seeded worst-link corruption surfaces at the top of the
//!    attribution table and as a QV301 finding.

use proptest::prelude::*;
use quva::MappingPolicy;
use quva_analysis::{audit_compiled, esp_interval, link_attribution, verify_compiled, EspConfig, LintCode};
use quva_benchmarks::{table1_suite, Benchmark};
use quva_device::{CalibrationGenerator, Device, Topology, VariationProfile};
use quva_sim::{monte_carlo_pst, CoherenceModel, FailureProfile};

const SEED: u64 = 7;
const TRIALS: u64 = 100_000;
/// Two policies whose static ESP differs by less than this are treated
/// as tied for rank-ordering purposes: at 100k trials the Monte-Carlo
/// standard error is at most ~0.0016, so 0.01 is a >6-sigma margin.
const RANK_MARGIN: f64 = 0.01;

fn policies() -> [MappingPolicy; 4] {
    [
        MappingPolicy::baseline(),
        MappingPolicy::vqm(),
        MappingPolicy::vqm_hop_limited(),
        MappingPolicy::vqa_vqm(),
    ]
}

fn compile(bench: &Benchmark, policy: MappingPolicy, device: &Device) -> quva::CompiledCircuit {
    policy
        .compile(bench.circuit(), device)
        .unwrap_or_else(|e| panic!("{} failed to compile {}: {e}", policy.name(), bench.name()))
}

#[test]
fn monte_carlo_lands_inside_static_esp_interval() {
    let device = Device::ibm_q20();
    let config = EspConfig::default();
    for bench in table1_suite() {
        for policy in policies() {
            let compiled = compile(&bench, policy, &device);
            let physical = compiled.physical();
            let interval = esp_interval(&device, physical, &config);
            assert!(
                interval.lo <= interval.point && interval.point <= interval.hi,
                "{} under {}: malformed interval",
                bench.name(),
                policy.name()
            );

            // the static point is the analytic PST, bit for bit
            let profile = FailureProfile::new(&device, physical, CoherenceModel::Disabled)
                .unwrap_or_else(|e| panic!("profile: {e}"));
            assert_eq!(
                interval.point.to_bits(),
                profile.success_probability().to_bits(),
                "{} under {}: static ESP diverged from analytic PST",
                bench.name(),
                policy.name()
            );

            let mc = monte_carlo_pst(&device, physical, TRIALS, SEED, CoherenceModel::Disabled)
                .unwrap_or_else(|e| panic!("mc: {e}"));
            // allow 4 binomial standard errors of sampling noise: deep
            // circuits have ESP well below 1/trials, where a finite
            // sample cannot resolve the interval
            let p = interval.hi.max(mc.pst);
            let tol = 4.0 * (p * (1.0 - p) / TRIALS as f64).sqrt();
            assert!(
                interval.lo - tol <= mc.pst && mc.pst <= interval.hi + tol,
                "{} under {}: MC PST {} outside static ESP [{}, {}] (point {})",
                bench.name(),
                policy.name(),
                mc.pst,
                interval.lo,
                interval.hi,
                interval.point
            );
        }
    }
}

#[test]
fn static_rank_ordering_matches_monte_carlo() {
    let device = Device::ibm_q20();
    let config = EspConfig::default();
    for bench in table1_suite() {
        let mut rows: Vec<(String, f64, f64)> = Vec::new();
        for policy in policies() {
            let compiled = compile(&bench, policy, &device);
            let physical = compiled.physical();
            let stat = esp_interval(&device, physical, &config).point;
            let mc = monte_carlo_pst(&device, physical, TRIALS, SEED, CoherenceModel::Disabled)
                .unwrap_or_else(|e| panic!("mc: {e}"))
                .pst;
            rows.push((policy.name().to_string(), stat, mc));
        }
        for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                let (ref ni, si, mi) = rows[i];
                let (ref nj, sj, mj) = rows[j];
                if (si - sj).abs() <= RANK_MARGIN {
                    continue; // statically tied: MC order is noise
                }
                assert_eq!(
                    si > sj,
                    mi > mj,
                    "{}: static ranks {ni} ({si}) vs {nj} ({sj}) but MC says {mi} vs {mj}",
                    bench.name()
                );
            }
        }
    }
}

#[test]
fn corrupted_worst_link_dominates_attribution_and_lints_qv301() {
    let device = Device::ibm_q20();
    let bench = Benchmark::bv(8);
    let policy = MappingPolicy::baseline();
    let compiled = compile(&bench, policy, &device);

    // find the busiest link of the healthy compilation, then corrupt it
    let healthy = link_attribution(&device, compiled.physical());
    let busiest = healthy[0];
    let id = device
        .topology()
        .link_id(busiest.a, busiest.b)
        .unwrap_or_else(|| panic!("attributed link must exist"));
    let mut cal = device.calibration().clone();
    cal.set_two_qubit_error(id, 0.45);
    let corrupted = device
        .with_calibration(cal)
        .unwrap_or_else(|e| panic!("calibration valid: {e}"));

    let report = audit_compiled(bench.circuit(), &corrupted, &compiled);
    assert_eq!(
        (report.links[0].a, report.links[0].b),
        (busiest.a, busiest.b),
        "corrupted link must top the attribution table"
    );
    let verified = verify_compiled(bench.circuit(), &corrupted, &compiled);
    assert!(
        verified
            .ordered()
            .iter()
            .any(|d| d.code() == LintCode::DominantWeakLink),
        "expected QV301 on the corrupted device:\n{}",
        verified.render_text()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On any seeded synthetic q20 calibration, the static point stays
    /// bit-identical to the analytic PST and the interval brackets it.
    #[test]
    fn static_esp_agrees_with_analytic_on_seeded_devices(seed in 0u64..1_000_000) {
        let topology = Topology::ibm_q20_tokyo();
        let mut generator = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), seed);
        let cal = generator.snapshot(&topology);
        let device = Device::new(topology, |_| cal);
        let bench = Benchmark::bv(8);
        let compiled = compile(&bench, MappingPolicy::vqm(), &device);
        let physical = compiled.physical();

        let interval = esp_interval(&device, physical, &EspConfig::default());
        let profile = FailureProfile::new(&device, physical, CoherenceModel::Disabled)
            .unwrap_or_else(|e| panic!("profile: {e}"));
        let analytic = profile.success_probability();
        prop_assert_eq!(interval.point.to_bits(), analytic.to_bits());
        prop_assert!(interval.lo <= analytic && analytic <= interval.hi);
        prop_assert!(interval.lo >= 0.0 && interval.hi <= 1.0);
    }

    /// Widening the drift never shrinks the interval.
    #[test]
    fn wider_drift_widens_the_interval((seed, drift_pct) in (0u64..1_000_000, 0u32..50)) {
        let drift = f64::from(drift_pct) / 100.0;
        let topology = Topology::ibm_q20_tokyo();
        let mut generator = CalibrationGenerator::new(VariationProfile::ibm_q20_paper(), seed);
        let cal = generator.snapshot(&topology);
        let device = Device::new(topology, |_| cal);
        let bench = Benchmark::ghz(6);
        let compiled = compile(&bench, MappingPolicy::vqm(), &device);
        let physical = compiled.physical();

        let narrow = esp_interval(&device, physical, &EspConfig { drift });
        let wide = esp_interval(&device, physical, &EspConfig { drift: drift + 0.1 });
        prop_assert!(wide.lo <= narrow.lo, "lo rose: {} -> {}", narrow.lo, wide.lo);
        prop_assert!(wide.hi >= narrow.hi, "hi fell: {} -> {}", narrow.hi, wide.hi);
        prop_assert_eq!(wide.point.to_bits(), narrow.point.to_bits());
    }
}
