//! The diagnostics vocabulary of the lint framework: stable codes,
//! severities, gate-index spans, and the [`Report`] they aggregate into.

use std::fmt;

/// How serious a diagnostic is.
///
/// The severity policy is fixed per [`LintCode`] (see
/// [`LintCode::severity`]): *errors* mean the artifact is illegal or
/// semantically wrong (a compiler emitting it has a bug), *warnings*
/// mean it is legal but wasteful or suspicious.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Legal but suspicious or wasteful; never fails verification.
    Warning,
    /// Illegal or semantically wrong; fails verification.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// The stable identity of a lint finding.
///
/// Codes are append-only: a released code never changes meaning,
/// number, or default severity, so reports can be compared across
/// versions and CI can grep for a specific code.
///
/// # Examples
///
/// ```
/// use quva_analysis::{LintCode, Severity};
///
/// assert_eq!(LintCode::OffCouplerGate.code(), "QV001");
/// assert_eq!(LintCode::OffCouplerGate.severity(), Severity::Error);
/// assert_eq!(LintCode::RedundantPair.severity(), Severity::Warning);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// A two-qubit gate addresses a pair of physical qubits with no
    /// coupler between them.
    OffCouplerGate,
    /// A two-qubit gate addresses a coupler that exists but has been
    /// disabled (a dead link).
    DisabledLinkGate,
    /// Replaying the compiled circuit's SWAPs from the initial mapping
    /// does not reproduce the claimed final mapping.
    PermutationMismatch,
    /// The compiled gate stream is not the logical program under the
    /// evolving qubit mapping (wrong operands, reordered dependencies,
    /// dropped or invented gates).
    SequenceMismatch,
    /// A qubit is operated on after it has been measured.
    UseAfterMeasure,
    /// The circuit needs more qubits than the device provides, or a
    /// mapping's shape does not match the circuit/device it claims to
    /// connect.
    WidthExceeded,
    /// A physical gate operates on a location no program qubit
    /// occupies at that point.
    UnmappedOperand,
    /// An invalid calibration value (NaN, negative, or ≥ 1 error rate;
    /// non-positive coherence time) escaped sanitization and is
    /// visible to policy code.
    CalibrationEscape,
    /// A register qubit is allocated but never referenced by any gate.
    UnusedQubit,
    /// A used qubit is never measured although the circuit measures
    /// others.
    UnmeasuredQubit,
    /// The circuit contains no measurements at all.
    NoMeasurements,
    /// Two measurements write the same classical bit; the first result
    /// is lost.
    ClobberedCbit,
    /// A SWAP moves a qubit that has already been measured.
    SwapAfterMeasure,
    /// Two adjacent gates cancel each other exactly.
    RedundantPair,
    /// A SWAP whose effect is unobservable: neither operand is used or
    /// measured afterwards.
    ZeroEffectSwap,
    /// A single coupling link dominates the circuit's static failure
    /// weight — the compiled circuit leans on the device's weakest link.
    DominantWeakLink,
    /// The whole-circuit static ESP upper bound is below the floor: even
    /// under optimistic calibration drift the circuit is unlikely to
    /// produce a correct trial.
    LowEspBound,
    /// A qubit idles long enough between its first and last gate for
    /// T1 decoherence to become a material failure source.
    ExcessiveIdling,
    /// A router-inserted SWAP chain is measurably less reliable than the
    /// best path available on the live device (a missed-VQM route).
    MissedVqmRoute,
    /// The allocated physical region is substantially weaker than the
    /// strongest same-size region on the device (a missed-VQA
    /// allocation).
    WeakRegionAllocation,
    /// Even the optimistic bound of the static cost envelope exceeds
    /// the job's deadline: the job cannot finish in time on any
    /// plausible host.
    DeadlineInfeasibleJob,
    /// The requested trial budget cannot reach the requested
    /// confidence-interval width: the estimate will be noisier than
    /// asked for no matter how the trials land.
    TrialBudgetTooSmall,
    /// The worst-case SWAP overhead dwarfs the source program: routing
    /// on this topology can blow the compile and execution cost up by
    /// more than the configured ratio.
    PathologicalRoutingBlowup,
    /// The pessimistic bound of the rendered-response size exceeds the
    /// wire protocol's frame budget: the daemon would refuse to frame
    /// the result.
    ResponseExceedsFrameBudget,
    /// A compile pass requires an invariant that no earlier pass in the
    /// pipeline establishes.
    PipelineMissingPrecondition,
    /// A compile pass requires an invariant that an earlier pass
    /// established but an intermediate pass then destroyed.
    PipelineClobberedInvariant,
    /// A compile pass neither establishes a new invariant nor disturbs
    /// a live one: it is dead in this pipeline.
    PipelineUnreachablePass,
    /// The pipeline terminates without establishing the invariant a
    /// compiled output needs: no compiled circuit would be produced.
    PipelineOutputMissing,
}

impl LintCode {
    /// Every released code, in code order. The doc-sync test walks this
    /// to keep the DESIGN.md code table and the enum in lockstep.
    pub const ALL: [LintCode; 28] = [
        LintCode::OffCouplerGate,
        LintCode::DisabledLinkGate,
        LintCode::PermutationMismatch,
        LintCode::SequenceMismatch,
        LintCode::UseAfterMeasure,
        LintCode::WidthExceeded,
        LintCode::UnmappedOperand,
        LintCode::CalibrationEscape,
        LintCode::UnusedQubit,
        LintCode::UnmeasuredQubit,
        LintCode::NoMeasurements,
        LintCode::ClobberedCbit,
        LintCode::SwapAfterMeasure,
        LintCode::RedundantPair,
        LintCode::ZeroEffectSwap,
        LintCode::DominantWeakLink,
        LintCode::LowEspBound,
        LintCode::ExcessiveIdling,
        LintCode::MissedVqmRoute,
        LintCode::WeakRegionAllocation,
        LintCode::DeadlineInfeasibleJob,
        LintCode::TrialBudgetTooSmall,
        LintCode::PathologicalRoutingBlowup,
        LintCode::ResponseExceedsFrameBudget,
        LintCode::PipelineMissingPrecondition,
        LintCode::PipelineClobberedInvariant,
        LintCode::PipelineUnreachablePass,
        LintCode::PipelineOutputMissing,
    ];

    /// Resolves a `QVnnn` code or a slug name back to its variant.
    ///
    /// # Examples
    ///
    /// ```
    /// use quva_analysis::LintCode;
    ///
    /// assert_eq!(LintCode::from_code("QV001"), Some(LintCode::OffCouplerGate));
    /// assert_eq!(LintCode::from_code("missed-vqm-route"), Some(LintCode::MissedVqmRoute));
    /// assert_eq!(LintCode::from_code("QV999"), None);
    /// ```
    pub fn from_code(s: &str) -> Option<LintCode> {
        LintCode::ALL
            .into_iter()
            .find(|c| c.code().eq_ignore_ascii_case(s) || c.name() == s)
    }
    /// The stable short code, e.g. `QV001`.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::OffCouplerGate => "QV001",
            LintCode::DisabledLinkGate => "QV002",
            LintCode::PermutationMismatch => "QV003",
            LintCode::SequenceMismatch => "QV004",
            LintCode::UseAfterMeasure => "QV005",
            LintCode::WidthExceeded => "QV006",
            LintCode::UnmappedOperand => "QV007",
            LintCode::CalibrationEscape => "QV008",
            LintCode::UnusedQubit => "QV101",
            LintCode::UnmeasuredQubit => "QV102",
            LintCode::NoMeasurements => "QV103",
            LintCode::ClobberedCbit => "QV104",
            LintCode::SwapAfterMeasure => "QV105",
            LintCode::RedundantPair => "QV201",
            LintCode::ZeroEffectSwap => "QV202",
            LintCode::DominantWeakLink => "QV301",
            LintCode::LowEspBound => "QV302",
            LintCode::ExcessiveIdling => "QV303",
            LintCode::MissedVqmRoute => "QV304",
            LintCode::WeakRegionAllocation => "QV305",
            LintCode::DeadlineInfeasibleJob => "QV401",
            LintCode::TrialBudgetTooSmall => "QV402",
            LintCode::PathologicalRoutingBlowup => "QV403",
            LintCode::ResponseExceedsFrameBudget => "QV404",
            LintCode::PipelineMissingPrecondition => "QV501",
            LintCode::PipelineClobberedInvariant => "QV502",
            LintCode::PipelineUnreachablePass => "QV503",
            LintCode::PipelineOutputMissing => "QV504",
        }
    }

    /// The human-readable slug, e.g. `off-coupler-gate`.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::OffCouplerGate => "off-coupler-gate",
            LintCode::DisabledLinkGate => "disabled-link-gate",
            LintCode::PermutationMismatch => "permutation-mismatch",
            LintCode::SequenceMismatch => "sequence-mismatch",
            LintCode::UseAfterMeasure => "use-after-measure",
            LintCode::WidthExceeded => "width-exceeded",
            LintCode::UnmappedOperand => "unmapped-operand",
            LintCode::CalibrationEscape => "calibration-escape",
            LintCode::UnusedQubit => "unused-qubit",
            LintCode::UnmeasuredQubit => "unmeasured-qubit",
            LintCode::NoMeasurements => "no-measurements",
            LintCode::ClobberedCbit => "clobbered-cbit",
            LintCode::SwapAfterMeasure => "swap-after-measure",
            LintCode::RedundantPair => "redundant-pair",
            LintCode::ZeroEffectSwap => "zero-effect-swap",
            LintCode::DominantWeakLink => "dominant-weak-link",
            LintCode::LowEspBound => "low-esp-bound",
            LintCode::ExcessiveIdling => "excessive-idling",
            LintCode::MissedVqmRoute => "missed-vqm-route",
            LintCode::WeakRegionAllocation => "weak-region-allocation",
            LintCode::DeadlineInfeasibleJob => "deadline-infeasible-job",
            LintCode::TrialBudgetTooSmall => "trial-budget-too-small",
            LintCode::PathologicalRoutingBlowup => "pathological-routing-blowup",
            LintCode::ResponseExceedsFrameBudget => "response-exceeds-frame-budget",
            LintCode::PipelineMissingPrecondition => "pipeline-missing-precondition",
            LintCode::PipelineClobberedInvariant => "pipeline-clobbered-invariant",
            LintCode::PipelineUnreachablePass => "pipeline-unreachable-pass",
            LintCode::PipelineOutputMissing => "pipeline-output-missing",
        }
    }

    /// The fixed severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::OffCouplerGate
            | LintCode::DisabledLinkGate
            | LintCode::PermutationMismatch
            | LintCode::SequenceMismatch
            | LintCode::UseAfterMeasure
            | LintCode::WidthExceeded
            | LintCode::UnmappedOperand
            | LintCode::CalibrationEscape => Severity::Error,
            // pipeline contract violations are construction bugs: the
            // pipeline cannot produce a legal artifact, so they gate
            LintCode::PipelineMissingPrecondition
            | LintCode::PipelineClobberedInvariant
            | LintCode::PipelineUnreachablePass
            | LintCode::PipelineOutputMissing => Severity::Error,
            LintCode::UnusedQubit
            | LintCode::UnmeasuredQubit
            | LintCode::NoMeasurements
            | LintCode::ClobberedCbit
            | LintCode::SwapAfterMeasure
            | LintCode::RedundantPair
            | LintCode::ZeroEffectSwap
            | LintCode::DominantWeakLink
            | LintCode::LowEspBound
            | LintCode::ExcessiveIdling
            | LintCode::MissedVqmRoute
            | LintCode::WeakRegionAllocation
            | LintCode::DeadlineInfeasibleJob
            | LintCode::TrialBudgetTooSmall
            | LintCode::PathologicalRoutingBlowup
            | LintCode::ResponseExceedsFrameBudget => Severity::Warning,
        }
    }

    /// One-sentence description of what the code reports, as shown by
    /// `quva lint --explain`.
    pub fn description(self) -> &'static str {
        match self {
            LintCode::OffCouplerGate => {
                "a two-qubit gate addresses a pair of physical qubits with no coupler between them"
            }
            LintCode::DisabledLinkGate => {
                "a two-qubit gate addresses a coupler that exists but has been disabled (a dead link)"
            }
            LintCode::PermutationMismatch => {
                "replaying the compiled SWAPs from the initial mapping does not reproduce the claimed \
                 final mapping"
            }
            LintCode::SequenceMismatch => {
                "the compiled gate stream is not the logical program under the evolving qubit mapping"
            }
            LintCode::UseAfterMeasure => "a qubit is operated on after it has been measured",
            LintCode::WidthExceeded => {
                "the circuit needs more qubits than the device provides, or a mapping's shape does not \
                 match the circuit/device it claims to connect"
            }
            LintCode::UnmappedOperand => {
                "a physical gate operates on a location no program qubit occupies at that point"
            }
            LintCode::CalibrationEscape => {
                "an invalid calibration value escaped sanitization and is visible to policy code"
            }
            LintCode::UnusedQubit => "a register qubit is allocated but never referenced by any gate",
            LintCode::UnmeasuredQubit => {
                "a used qubit is never measured although the circuit measures others"
            }
            LintCode::NoMeasurements => "the circuit contains no measurements at all",
            LintCode::ClobberedCbit => {
                "two measurements write the same classical bit; the first result is lost"
            }
            LintCode::SwapAfterMeasure => "a SWAP moves a qubit that has already been measured",
            LintCode::RedundantPair => "two adjacent gates cancel each other exactly",
            LintCode::ZeroEffectSwap => {
                "a SWAP whose effect is unobservable: neither operand is used or measured afterwards"
            }
            LintCode::DominantWeakLink => {
                "a single coupling link dominates the circuit's static failure weight"
            }
            LintCode::LowEspBound => "the whole-circuit static ESP upper bound is below the success floor",
            LintCode::ExcessiveIdling => {
                "a qubit idles long enough between gates for T1 decoherence to become a material \
                 failure source"
            }
            LintCode::MissedVqmRoute => {
                "a router-inserted SWAP chain is measurably less reliable than the best path on the \
                 live device"
            }
            LintCode::WeakRegionAllocation => {
                "the allocated physical region is substantially weaker than the strongest same-size \
                 region on the device"
            }
            LintCode::DeadlineInfeasibleJob => {
                "even the optimistic bound of the static cost envelope exceeds the job's deadline"
            }
            LintCode::TrialBudgetTooSmall => {
                "the trial budget cannot reach the requested confidence-interval width"
            }
            LintCode::PathologicalRoutingBlowup => {
                "worst-case SWAP overhead on this topology dwarfs the source program"
            }
            LintCode::ResponseExceedsFrameBudget => {
                "the pessimistic bound of the rendered-response size exceeds the wire protocol's \
                 frame budget"
            }
            LintCode::PipelineMissingPrecondition => {
                "a compile pass requires an invariant that no earlier pass in the pipeline establishes"
            }
            LintCode::PipelineClobberedInvariant => {
                "a compile pass requires an invariant that an earlier pass established but an \
                 intermediate pass then destroyed"
            }
            LintCode::PipelineUnreachablePass => {
                "a compile pass neither establishes a new invariant nor disturbs a live one: it is \
                 dead in this pipeline"
            }
            LintCode::PipelineOutputMissing => {
                "the pipeline terminates without establishing the invariant a compiled output needs"
            }
        }
    }

    /// Why the code matters — the consequence of ignoring it, as shown
    /// by `quva lint --explain`.
    pub fn rationale(self) -> &'static str {
        match self {
            LintCode::OffCouplerGate | LintCode::DisabledLinkGate => {
                "the hardware cannot execute the gate: the run would be rejected or silently rerouted \
                 by the vendor stack"
            }
            LintCode::PermutationMismatch | LintCode::SequenceMismatch | LintCode::UnmappedOperand => {
                "the compiled circuit computes a different function than the source program — every \
                 downstream PST number would describe the wrong circuit"
            }
            LintCode::UseAfterMeasure | LintCode::SwapAfterMeasure => {
                "operations after measurement cannot affect the recorded outcome; the gate is wasted \
                 or the measurement is misplaced"
            }
            LintCode::WidthExceeded => "the artifact cannot be placed on the device at all",
            LintCode::CalibrationEscape => {
                "policy code consuming NaN or out-of-range rates produces unreliable mappings"
            }
            LintCode::UnusedQubit
            | LintCode::UnmeasuredQubit
            | LintCode::NoMeasurements
            | LintCode::ClobberedCbit => {
                "results are dropped or qubits wasted; usually a program-generation bug"
            }
            LintCode::RedundantPair | LintCode::ZeroEffectSwap => {
                "pure overhead: extra error exposure with no observable effect"
            }
            LintCode::DominantWeakLink => {
                "rerouting around one link (or re-allocating away from it) would recover most of the \
                 lost success probability — the cheapest reliability fix available"
            }
            LintCode::LowEspBound => {
                "trials are mostly noise at this success rate; shrink the circuit or improve the \
                 mapping before spending shots"
            }
            LintCode::ExcessiveIdling => {
                "idle decoherence is unmodelled by gate-error-only policies; scheduling the qubit \
                 later or compacting the critical path recovers fidelity"
            }
            LintCode::MissedVqmRoute => {
                "a variability-aware router (VQM) would have found a more reliable chain within the \
                 hop budget — the gap is free PST"
            }
            LintCode::WeakRegionAllocation => {
                "a variability-aware allocator (VQA) would have placed the program on a stronger \
                 subgraph — the gap is free PST"
            }
            LintCode::DeadlineInfeasibleJob => {
                "running the job would burn a worker slot only to miss the deadline anyway; reject \
                 it at admission and let the client resize or re-budget"
            }
            LintCode::TrialBudgetTooSmall => {
                "the Monte-Carlo estimate will be wider than the requested interval — either raise \
                 the trial budget or relax the width before spending compute"
            }
            LintCode::PathologicalRoutingBlowup => {
                "the cost envelope degenerates on long-diameter topologies; pick a denser device or \
                 shrink the program before trusting static admission decisions"
            }
            LintCode::ResponseExceedsFrameBudget => {
                "a response the daemon cannot frame is indistinguishable from a failed job to the \
                 client; trim the workload or raise the frame budget"
            }
            LintCode::PipelineMissingPrecondition => {
                "the pass would run on state that does not exist — catching it statically turns a \
                 runtime compile failure into a construction-time rejection"
            }
            LintCode::PipelineClobberedInvariant => {
                "the pass would consume state a reordered pass already invalidated; reorder the \
                 pipeline so consumers run before clobberers"
            }
            LintCode::PipelineUnreachablePass => {
                "a dead pass burns compile time for no effect and usually means a duplicated or \
                 misplaced stage; delete or move it"
            }
            LintCode::PipelineOutputMissing => {
                "running the pipeline could only ever fail — no sequence of these passes produces a \
                 routed circuit to return"
            }
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// A gate-index range in the analyzed circuit: `start..=end` in gate
/// (instruction) order. A single-gate finding has `start == end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// First gate index (0-based, inclusive).
    pub start: usize,
    /// Last gate index (0-based, inclusive).
    pub end: usize,
}

impl Span {
    /// A span covering exactly one gate.
    pub fn gate(index: usize) -> Self {
        Span {
            start: index,
            end: index,
        }
    }

    /// A span covering `start..=end`.
    pub fn range(start: usize, end: usize) -> Self {
        Span {
            start: start.min(end),
            end: start.max(end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start == self.end {
            write!(f, "gate {}", self.start)
        } else {
            write!(f, "gates {}-{}", self.start, self.end)
        }
    }
}

/// One finding of one pass: a stable code, an optional gate-index span
/// (device-level findings have none), and a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    code: LintCode,
    span: Option<Span>,
    message: String,
}

impl Diagnostic {
    /// Builds a diagnostic; the severity comes from the code.
    pub fn new(code: LintCode, span: Option<Span>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            span,
            message: message.into(),
        }
    }

    /// The stable lint code.
    pub fn code(&self) -> LintCode {
        self.code
    }

    /// The severity (fixed per code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// The gate-index span, if the finding is anchored to gates.
    pub fn span(&self) -> Option<Span> {
        self.span
    }

    /// The human-readable explanation.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The diagnostic as a single-line JSON object — the shared schema
    /// of `Report::render_json` and the audit report.
    pub(crate) fn json_object(&self) -> String {
        let span = match self.span {
            Some(s) => format!("{{\"start\": {}, \"end\": {}}}", s.start, s.end),
            None => "null".to_string(),
        };
        format!(
            "{{\"code\": \"{}\", \"name\": \"{}\", \"severity\": \"{}\", \"span\": {}, \"message\": \"{}\"}}",
            self.code.code(),
            self.code.name(),
            self.severity(),
            span,
            escape_json(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{} {}]",
            self.severity(),
            self.code.code(),
            self.code.name()
        )?;
        if let Some(span) = self.span {
            write!(f, " @ {span}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The aggregated outcome of running a set of passes: every diagnostic
/// plus the names of the passes that ran (so "clean" is distinguishable
/// from "nothing ran").
#[derive(Debug, Clone, Default)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
    passes: Vec<&'static str>,
}

impl Report {
    /// Builds a report from raw parts.
    pub fn new(diagnostics: Vec<Diagnostic>, passes: Vec<&'static str>) -> Self {
        Report { diagnostics, passes }
    }

    /// Every diagnostic, in pass order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The names of the passes that produced this report.
    pub fn passes(&self) -> &[&'static str] {
        &self.passes
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .count()
    }

    /// Whether the report carries no errors (warnings allowed). This is
    /// the CI / `quva lint` pass criterion.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Whether any diagnostic carries the given code.
    pub fn has_code(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code() == code)
    }

    /// The diagnostics carrying a given code.
    pub fn with_code(&self, code: LintCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code() == code).collect()
    }

    /// Merges another report into this one: diagnostics and pass names
    /// concatenate (rendering re-sorts diagnostics anyway).
    pub fn merge(mut self, other: Report) -> Report {
        self.diagnostics.extend(other.diagnostics);
        self.passes.extend(other.passes);
        self
    }

    /// The diagnostics in the deterministic rendering order: by span
    /// (gate-anchored findings first, in gate order), then code, then
    /// message. Both renderers use this order, so reports are
    /// byte-stable across runs regardless of pass scheduling.
    pub fn ordered(&self) -> Vec<&Diagnostic> {
        let mut v: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        v.sort_by(|a, b| {
            let key = |d: &Diagnostic| {
                let (s, e) = d.span().map_or((usize::MAX, usize::MAX), |s| (s.start, s.end));
                (s, e, d.code().code())
            };
            key(a).cmp(&key(b)).then_with(|| a.message().cmp(b.message()))
        });
        v
    }

    /// Renders the report as human-readable text, one diagnostic per
    /// line plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in self.ordered() {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let summary = format!(
            "{} error(s), {} warning(s) from {} pass(es)",
            self.error_count(),
            self.warning_count(),
            self.passes.len()
        );
        if self.diagnostics.is_empty() {
            out.push_str(&format!(
                "clean: no diagnostics from {} pass(es)\n",
                self.passes.len()
            ));
        } else {
            out.push_str(&summary);
            out.push('\n');
        }
        out
    }

    /// Renders the report as a JSON document (hand-rolled, mirroring
    /// the dependency policy of `quva-device::snapshot`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.ordered().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&d.json_object());
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"errors\": {},\n", self.error_count()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warning_count()));
        out.push_str("  \"passes\": [");
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", escape_json(p)));
        }
        out.push_str("]\n}\n");
        out
    }

    pub(crate) fn record_pass(&mut self, name: &'static str) {
        self.passes.push(name);
    }

    pub(crate) fn extend(&mut self, diagnostics: Vec<Diagnostic>) {
        self.diagnostics.extend(diagnostics);
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::new(
            vec![
                Diagnostic::new(
                    LintCode::OffCouplerGate,
                    Some(Span::gate(3)),
                    "cx Q0, Q7 has no coupler",
                ),
                Diagnostic::new(LintCode::RedundantPair, Some(Span::range(5, 4)), "h/h cancels"),
                Diagnostic::new(LintCode::CalibrationEscape, None, "link 2 error is NaN"),
            ],
            vec!["coupler-legality", "redundancy", "calibration-sanity"],
        )
    }

    #[test]
    fn codes_are_stable_and_unique() {
        let all = LintCode::ALL;
        let mut codes: Vec<&str> = all.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "duplicate lint codes");
        // the three seeded-corruption codes are distinct and fixed
        assert_eq!(LintCode::OffCouplerGate.code(), "QV001");
        assert_eq!(LintCode::PermutationMismatch.code(), "QV003");
        assert_eq!(LintCode::UseAfterMeasure.code(), "QV005");
        // the reliability block is appended, never renumbered
        assert_eq!(LintCode::DominantWeakLink.code(), "QV301");
        assert_eq!(LintCode::WeakRegionAllocation.code(), "QV305");
    }

    #[test]
    fn from_code_resolves_codes_and_slugs() {
        for c in LintCode::ALL {
            assert_eq!(LintCode::from_code(c.code()), Some(c));
            assert_eq!(LintCode::from_code(c.name()), Some(c));
        }
        assert_eq!(LintCode::from_code("qv304"), Some(LintCode::MissedVqmRoute));
        assert_eq!(LintCode::from_code("QV999"), None);
        assert_eq!(LintCode::from_code(""), None);
    }

    #[test]
    fn every_code_has_explanation_text() {
        for c in LintCode::ALL {
            assert!(!c.description().is_empty(), "{} lacks a description", c.code());
            assert!(!c.rationale().is_empty(), "{} lacks a rationale", c.code());
        }
    }

    #[test]
    fn rendering_sorts_by_span_then_code() {
        // built in deliberately scrambled order
        let r = Report::new(
            vec![
                Diagnostic::new(LintCode::RedundantPair, Some(Span::gate(9)), "late"),
                Diagnostic::new(LintCode::CalibrationEscape, None, "device-level"),
                Diagnostic::new(LintCode::ZeroEffectSwap, Some(Span::gate(2)), "zes"),
                Diagnostic::new(LintCode::OffCouplerGate, Some(Span::gate(2)), "ocg"),
            ],
            vec!["p"],
        );
        let order: Vec<&str> = r.ordered().iter().map(|d| d.code().code()).collect();
        assert_eq!(order, ["QV001", "QV202", "QV201", "QV008"]);
        // text follows the same order
        let text = r.render_text();
        let first = text.find("QV001").unwrap();
        let last = text.find("QV008").unwrap();
        assert!(first < last, "{text}");
    }

    #[test]
    fn merge_concatenates_reports() {
        let a = Report::new(
            vec![Diagnostic::new(LintCode::UnusedQubit, None, "a")],
            vec!["pass-a"],
        );
        let b = Report::new(
            vec![Diagnostic::new(LintCode::OffCouplerGate, None, "b")],
            vec!["pass-b"],
        );
        let merged = a.merge(b);
        assert_eq!(merged.diagnostics().len(), 2);
        assert_eq!(merged.passes(), ["pass-a", "pass-b"]);
        assert_eq!(merged.error_count(), 1);
    }

    #[test]
    fn severity_policy() {
        assert_eq!(LintCode::OffCouplerGate.severity(), Severity::Error);
        assert_eq!(LintCode::DisabledLinkGate.severity(), Severity::Error);
        assert_eq!(LintCode::UnusedQubit.severity(), Severity::Warning);
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn report_counts_and_cleanliness() {
        let r = sample();
        assert_eq!(r.error_count(), 2);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.is_clean());
        assert!(r.has_code(LintCode::OffCouplerGate));
        assert!(!r.has_code(LintCode::UseAfterMeasure));
        assert_eq!(r.with_code(LintCode::RedundantPair).len(), 1);
        let clean = Report::new(vec![], vec!["coupler-legality"]);
        assert!(clean.is_clean());
    }

    #[test]
    fn text_rendering() {
        let text = sample().render_text();
        assert!(text.contains("error[QV001 off-coupler-gate] @ gate 3"), "{text}");
        assert!(
            text.contains("warning[QV201 redundant-pair] @ gates 4-5"),
            "{text}"
        );
        assert!(
            text.contains("2 error(s), 1 warning(s) from 3 pass(es)"),
            "{text}"
        );
        let clean = Report::new(vec![], vec!["a", "b"]).render_text();
        assert!(clean.contains("clean"), "{clean}");
    }

    #[test]
    fn json_rendering() {
        let json = sample().render_json();
        assert!(json.contains("\"code\": \"QV001\""), "{json}");
        assert!(json.contains("\"severity\": \"error\""), "{json}");
        assert!(json.contains("\"span\": {\"start\": 3, \"end\": 3}"), "{json}");
        assert!(json.contains("\"span\": null"), "{json}");
        assert!(json.contains("\"errors\": 2"), "{json}");
        assert!(json.contains("\"passes\": [\"coupler-legality\""), "{json}");
    }

    #[test]
    fn json_escapes_strings() {
        let r = Report::new(
            vec![Diagnostic::new(
                LintCode::NoMeasurements,
                None,
                "a \"quoted\"\nline\\path",
            )],
            vec![],
        );
        let json = r.render_json();
        assert!(json.contains("a \\\"quoted\\\"\\nline\\\\path"), "{json}");
    }

    #[test]
    fn span_display_and_normalization() {
        assert_eq!(Span::gate(7).to_string(), "gate 7");
        assert_eq!(Span::range(9, 2), Span { start: 2, end: 9 });
    }
}
