//! The pipeline-contract checker: maps `quva::pipeline`'s typed
//! [`ContractViolation`]s onto the stable `QV5xx` lint codes and
//! renders them through the same [`Report`] machinery as every other
//! pass — so `quva pipeline --check` produces the same deterministic
//! text/JSON as `quva lint` and `quva audit`, and CI can grep for a
//! code.
//!
//! The analysis itself lives in core ([`Pipeline::violations`]): the
//! invariant-lattice walk must sit beside the passes it describes, and
//! core cannot depend on this crate (dependency inversion — the same
//! reason `quva::CompileAudit` exists). This module is the diagnostics
//! adapter.

use quva::pipeline::{ContractViolationKind, Pipeline};
use quva::ContractViolation;

use crate::diagnostic::{Diagnostic, LintCode, Report, Span};

/// The stable lint code of one contract violation class.
pub fn violation_code(kind: &ContractViolationKind) -> LintCode {
    match kind {
        ContractViolationKind::MissingPrecondition { .. } => LintCode::PipelineMissingPrecondition,
        ContractViolationKind::ClobberedInvariant { .. } => LintCode::PipelineClobberedInvariant,
        ContractViolationKind::UnreachablePass => LintCode::PipelineUnreachablePass,
        ContractViolationKind::OutputMissing { .. } => LintCode::PipelineOutputMissing,
    }
}

fn diagnostic_of(v: &ContractViolation) -> Diagnostic {
    // the span anchors to the pass *position* in the pipeline, the
    // analogue of a gate index in a circuit report
    Diagnostic::new(
        violation_code(v.kind()),
        Some(Span::gate(v.index())),
        v.to_string(),
    )
}

/// Statically checks a pipeline's pass contracts, rendering every
/// violation as a `QV5xx` diagnostic. A clean report means the
/// pipeline would convert into a `CheckedPipeline` as-is.
///
/// # Examples
///
/// ```
/// use quva::pipeline::{Pipeline, RoutePass};
/// use quva::{MappingPolicy, RoutingMetric};
/// use quva_analysis::{check_pipeline, LintCode};
///
/// // every standard policy pipeline is contract-clean
/// let report = check_pipeline(&Pipeline::for_policy(&MappingPolicy::vqa_vqm()));
/// assert!(report.is_clean(), "{}", report.render_text());
///
/// // routing without allocating is refused with a stable code
/// let broken = Pipeline::new().with_pass(RoutePass { metric: RoutingMetric::Hops });
/// let report = check_pipeline(&broken);
/// assert!(report.has_code(LintCode::PipelineMissingPrecondition));
/// ```
pub fn check_pipeline(pipeline: &Pipeline<'_>) -> Report {
    let diagnostics: Vec<Diagnostic> = pipeline.violations().iter().map(diagnostic_of).collect();
    Report::new(diagnostics, vec!["pipeline-contracts"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva::pipeline::{AllocatePass, OptimizePass, PortfolioRoutePass, RoutePass, VerifyPass};
    use quva::{AllocationStrategy, MappingPolicy, RoutingMetric};
    use quva_circuit::Circuit;
    use quva_device::Device;

    fn allocate() -> AllocatePass {
        AllocatePass {
            strategy: AllocationStrategy::GreedyInteraction,
        }
    }

    fn route() -> RoutePass {
        RoutePass {
            metric: RoutingMetric::Hops,
        }
    }

    #[test]
    fn standard_pipelines_are_clean() {
        for policy in [
            MappingPolicy::baseline(),
            MappingPolicy::vqm(),
            MappingPolicy::vqm_hop_limited(),
            MappingPolicy::vqa_vqm(),
            MappingPolicy::native(0),
        ] {
            let report = check_pipeline(&Pipeline::for_policy(&policy));
            assert!(report.is_clean(), "{}: {}", policy.name(), report.render_text());
            assert_eq!(report.passes(), ["pipeline-contracts"]);
        }
    }

    #[test]
    fn missing_precondition_is_qv501() {
        let report = check_pipeline(&Pipeline::new().with_pass(route()));
        assert!(report.has_code(LintCode::PipelineMissingPrecondition));
        assert!(!report.is_clean());
        let text = report.render_text();
        assert!(text.contains("QV501"), "{text}");
        assert!(text.contains("requires Mapped"), "{text}");
    }

    #[test]
    fn clobbered_invariant_is_qv502() {
        let report = check_pipeline(
            &Pipeline::new()
                .with_pass(allocate())
                .with_pass(OptimizePass)
                .with_pass(route()),
        );
        assert!(report.has_code(LintCode::PipelineClobberedInvariant));
        let text = report.render_text();
        assert!(text.contains("QV502"), "{text}");
        assert!(text.contains("'optimize' clobbered"), "{text}");
    }

    #[test]
    fn unreachable_pass_is_qv503() {
        let report = check_pipeline(
            &Pipeline::new()
                .with_pass(allocate())
                .with_pass(allocate())
                .with_pass(route()),
        );
        assert!(report.has_code(LintCode::PipelineUnreachablePass));
        assert!(report.render_text().contains("QV503"));
    }

    #[test]
    fn output_missing_is_qv504() {
        let report = check_pipeline(&Pipeline::new().with_pass(allocate()));
        assert!(report.has_code(LintCode::PipelineOutputMissing));
        assert!(report.render_text().contains("QV504"));
    }

    #[test]
    fn span_anchors_to_pass_position() {
        let report = check_pipeline(&Pipeline::new().with_pass(allocate()).with_pass(allocate()));
        let d = report.with_code(LintCode::PipelineUnreachablePass);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].span().map(|s| s.start), Some(1));
    }

    #[test]
    fn json_rendering_carries_stable_codes() {
        let report = check_pipeline(&Pipeline::new());
        let json = report.render_json();
        assert!(json.contains("\"code\": \"QV504\""), "{json}");
        assert!(json.contains("\"passes\": [\"pipeline-contracts\"]"), "{json}");
    }

    #[test]
    fn portfolio_pipeline_with_verify_is_clean_and_runs() {
        let verifier = crate::Verifier::new();
        let pipeline = Pipeline::new()
            .with_pass(allocate())
            .with_pass(PortfolioRoutePass {
                metric: RoutingMetric::reliability(),
                width: 3,
            })
            .with_pass(VerifyPass::new(&verifier));
        assert!(check_pipeline(&pipeline).is_clean());
        let device = Device::ibm_q5();
        let mut program = Circuit::new(3);
        program.h(quva_circuit::Qubit(0));
        program.cnot(quva_circuit::Qubit(0), quva_circuit::Qubit(2));
        program.measure(quva_circuit::Qubit(2), quva_circuit::Cbit(0));
        let compiled = pipeline.compile(&program, &device).unwrap();
        let report = crate::verify_compiled(&program, &device, &compiled);
        assert!(report.is_clean(), "{}", report.render_text());
    }
}
