//! The reliability audit: one structured report combining the static
//! ESP bound, per-link/per-qubit error attribution, idle-window
//! decoherence exposure, and every verification finding.
//!
//! This is the simulation-free fast path for triaging compiled
//! circuits: everything here derives from calibration data and the
//! compiled gate stream, so auditing is microseconds per circuit where
//! Monte-Carlo is milliseconds-to-seconds. The `quva audit` CLI command
//! renders it as deterministic JSON or text.

use quva::CompiledCircuit;
use quva_circuit::Circuit;
use quva_device::Device;

use crate::diagnostic::{escape_json, Report};
use crate::pass::PassRegistry;
use crate::passes::decoherence::idle_exposure;
use crate::passes::esp::{
    esp_interval, link_attribution, per_qubit_esp, EspConfig, EspInterval, LinkAttribution,
};

/// One qubit's row in the attribution table: its exit reliability
/// interval and idle-window decoherence exposure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QubitReliability {
    /// The physical qubit.
    pub qubit: usize,
    /// Exit success interval of every operation the qubit participated
    /// in (two-qubit failures charge both operands).
    pub esp: EspInterval,
    /// Idle nanoseconds between the qubit's first and last gate.
    pub idle_ns: f64,
    /// Idle-window decay probability `½·(1 − e^(−t_idle/T1))`.
    pub decay: f64,
}

/// The full reliability audit of one compiled circuit.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Whole-circuit static ESP bound (gate + readout model).
    pub esp: EspInterval,
    /// Per-link failure-weight attribution, heaviest first.
    pub links: Vec<LinkAttribution>,
    /// Per-qubit reliability rows for every qubit the circuit uses,
    /// weakest (lowest `esp.point`) first.
    pub qubits: Vec<QubitReliability>,
    /// Every finding from the standard verification passes (legality,
    /// consistency, and the reliability lints).
    pub findings: Report,
}

/// Audits a compiled circuit under the default drift configuration.
pub fn audit_compiled(source: &Circuit, device: &Device, compiled: &CompiledCircuit) -> AuditReport {
    audit_with(source, device, compiled, &EspConfig::default())
}

/// Audits a compiled circuit under an explicit drift configuration.
pub fn audit_with(
    source: &Circuit,
    device: &Device,
    compiled: &CompiledCircuit,
    config: &EspConfig,
) -> AuditReport {
    let physical = compiled.physical();
    let esp = esp_interval(device, physical, config);
    let links = link_attribution(device, physical);
    let per_qubit = per_qubit_esp(device, physical, config);
    let exposure = idle_exposure(device, physical);

    let mut qubits: Vec<QubitReliability> = exposure
        .iter()
        .map(|row| QubitReliability {
            qubit: row.qubit,
            esp: per_qubit.get(row.qubit).copied().unwrap_or_else(EspInterval::one),
            idle_ns: row.idle_ns,
            decay: row.failure,
        })
        .collect();
    qubits.sort_by(|a, b| a.esp.point.total_cmp(&b.esp.point).then(a.qubit.cmp(&b.qubit)));

    let findings = PassRegistry::standard().verify(source, device, compiled);

    AuditReport {
        esp,
        links,
        qubits,
        findings,
    }
}

impl AuditReport {
    /// Renders the audit as deterministic JSON: fixed key order, rows in
    /// their documented sort orders, floats via Rust's shortest-roundtrip
    /// formatting — byte-identical across reruns for identical inputs.
    pub fn render_json(&self) -> String {
        self.render_json_with_extras(&[])
    }

    /// [`AuditReport::render_json`] with extra top-level fields spliced
    /// in after `findings` (the CLI uses this to embed Monte-Carlo
    /// cross-check results). Each extra is `(key, raw JSON value)`.
    pub fn render_json_with_extras(&self, extras: &[(&str, String)]) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"esp\": {{\"lo\": {}, \"hi\": {}, \"point\": {}}},\n",
            self.esp.lo, self.esp.hi, self.esp.point
        ));

        out.push_str("  \"links\": [");
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"link\": \"{}-{}\", \"uses\": {}, \"error\": {}, \"weight\": {}}}",
                l.a.index(),
                l.b.index(),
                l.uses,
                l.error,
                l.weight
            ));
        }
        if !self.links.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");

        out.push_str("  \"qubits\": [");
        for (i, q) in self.qubits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"qubit\": {}, \"lo\": {}, \"hi\": {}, \"point\": {}, \"idle_ns\": {}, \
                 \"decay\": {}}}",
                q.qubit, q.esp.lo, q.esp.hi, q.esp.point, q.idle_ns, q.decay
            ));
        }
        if !self.qubits.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");

        out.push_str("  \"findings\": [");
        let ordered = self.findings.ordered();
        for (i, d) in ordered.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&d.json_object());
        }
        if !ordered.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");

        for (key, value) in extras {
            out.push_str(&format!("  \"{key}\": {value},\n"));
        }

        out.push_str(&format!("  \"errors\": {},\n", self.findings.error_count()));
        out.push_str(&format!("  \"warnings\": {},\n", self.findings.warning_count()));
        out.push_str("  \"passes\": [");
        for (i, p) in self.findings.passes().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", escape_json(p)));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders the audit as human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "static ESP: {:.6} in [{:.6}, {:.6}]\n",
            self.esp.point, self.esp.lo, self.esp.hi
        ));
        if !self.links.is_empty() {
            out.push_str("link attribution (heaviest first):\n");
            for l in &self.links {
                out.push_str(&format!(
                    "  {}-{}: {} use(s), error {:.5}, weight {:.5}\n",
                    l.a.index(),
                    l.b.index(),
                    l.uses,
                    l.error,
                    l.weight
                ));
            }
        }
        if !self.qubits.is_empty() {
            out.push_str("qubit reliability (weakest first):\n");
            for q in &self.qubits {
                out.push_str(&format!(
                    "  q{}: point {:.6} in [{:.6}, {:.6}], idle {:.0} ns, decay {:.6}\n",
                    q.qubit, q.esp.point, q.esp.lo, q.esp.hi, q.idle_ns, q.decay
                ));
            }
        }
        out.push_str(&self.findings.render_text());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva::MappingPolicy;
    use quva_benchmarks::bv;

    fn audited() -> AuditReport {
        let device = Device::ibm_q20();
        let program = bv(8);
        let compiled = MappingPolicy::vqa_vqm()
            .compile(&program, &device)
            .unwrap_or_else(|e| panic!("compile failed: {e}"));
        audit_compiled(&program, &device, &compiled)
    }

    #[test]
    fn audit_is_populated_and_consistent() {
        let report = audited();
        assert!(report.esp.lo <= report.esp.point && report.esp.point <= report.esp.hi);
        assert!(report.esp.point > 0.0 && report.esp.point < 1.0);
        assert!(!report.links.is_empty());
        assert!(!report.qubits.is_empty());
        // attribution is sorted heaviest first
        for pair in report.links.windows(2) {
            assert!(pair[0].weight >= pair[1].weight);
        }
        // qubit rows are sorted weakest first
        for pair in report.qubits.windows(2) {
            assert!(pair[0].esp.point <= pair[1].esp.point);
        }
        assert!(report.findings.is_clean(), "{}", report.findings.render_text());
    }

    #[test]
    fn json_is_byte_deterministic() {
        let a = audited().render_json();
        let b = audited().render_json();
        assert_eq!(a, b);
        assert!(a.contains("\"esp\""));
        assert!(a.contains("\"links\""));
        assert!(a.contains("\"findings\""));
    }

    #[test]
    fn corrupted_link_tops_attribution() {
        let device = Device::ibm_q20();
        let program = bv(8);
        let compiled = MappingPolicy::baseline()
            .compile(&program, &device)
            .unwrap_or_else(|e| panic!("compile failed: {e}"));
        // corrupt the most-used link and re-audit on the corrupted device
        let baseline = audit_compiled(&program, &device, &compiled);
        let busiest = baseline.links[0];
        let topo = device.topology();
        let id = topo
            .link_id(busiest.a, busiest.b)
            .unwrap_or_else(|| panic!("attributed link must exist"));
        let mut cal = device.calibration().clone();
        cal.set_two_qubit_error(id, 0.45);
        let corrupted = device
            .with_calibration(cal)
            .unwrap_or_else(|e| panic!("calibration valid: {e}"));
        let report = audit_compiled(&program, &corrupted, &compiled);
        assert_eq!(
            (report.links[0].a, report.links[0].b),
            (busiest.a, busiest.b),
            "corrupted link must dominate the attribution table"
        );
        assert!(report.esp.point < baseline.esp.point);
    }

    #[test]
    fn text_rendering_mentions_esp_and_links() {
        let t = audited().render_text();
        assert!(t.starts_with("static ESP:"), "{t}");
        assert!(t.contains("link attribution"), "{t}");
    }
}
