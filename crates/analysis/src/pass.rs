//! The pass abstraction and the registry that runs passes over
//! circuits and compiled outputs.

use std::fmt;

use quva::CompiledCircuit;
use quva_circuit::Circuit;
use quva_device::Device;

use crate::diagnostic::{Diagnostic, Report};
use crate::passes;

/// A static pass over a *logical* (program) circuit, optionally aware
/// of the device it is intended for.
///
/// `Send + Sync` are supertraits so a registry (and the `Verifier`
/// built on it) satisfies `quva::CompileAudit`'s `Sync` bound and can
/// sit inside a cached, thread-shared compile pipeline.
pub trait CircuitPass: Send + Sync {
    /// The stable pass name shown in reports.
    fn name(&self) -> &'static str;
    /// Runs the pass, appending any findings to `out`.
    fn run(&self, circuit: &Circuit, device: Option<&Device>, out: &mut Vec<Diagnostic>);
}

/// Everything a compiled-output pass can look at: the source program,
/// the device it was compiled for, and the compiler's output.
#[derive(Debug, Clone, Copy)]
pub struct CompiledContext<'a> {
    /// The logical program that was compiled.
    pub source: &'a Circuit,
    /// The device the output claims to target.
    pub device: &'a Device,
    /// The compiler's output under audit.
    pub compiled: &'a CompiledCircuit,
}

/// A static pass over a compiled circuit (no simulation involved).
///
/// `Send + Sync` are supertraits for the same reason as on
/// [`CircuitPass`].
pub trait CompiledPass: Send + Sync {
    /// The stable pass name shown in reports.
    fn name(&self) -> &'static str;
    /// Runs the pass, appending any findings to `out`.
    fn run(&self, cx: &CompiledContext<'_>, out: &mut Vec<Diagnostic>);
}

/// An ordered collection of passes: circuit-level lints and
/// compiled-output verification passes.
///
/// # Examples
///
/// ```
/// use quva_analysis::PassRegistry;
/// use quva_circuit::{Circuit, Qubit, Cbit};
///
/// let mut c = Circuit::new(2);
/// c.h(Qubit(0)).cnot(Qubit(0), Qubit(1));
/// c.measure(Qubit(0), Cbit(0)).measure(Qubit(1), Cbit(1));
/// let report = PassRegistry::standard().lint_circuit(&c, None);
/// assert!(report.is_clean());
/// ```
#[derive(Default)]
pub struct PassRegistry {
    circuit: Vec<Box<dyn CircuitPass>>,
    compiled: Vec<Box<dyn CompiledPass>>,
}

impl fmt::Debug for PassRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassRegistry")
            .field("circuit", &self.circuit_pass_names())
            .field("compiled", &self.compiled_pass_names())
            .finish()
    }
}

impl PassRegistry {
    /// An empty registry; add passes with
    /// [`PassRegistry::register_circuit_pass`] /
    /// [`PassRegistry::register_compiled_pass`].
    pub fn empty() -> Self {
        PassRegistry::default()
    }

    /// The standard registry: every built-in pass.
    ///
    /// Circuit lints: qubit liveness & width, measurement coverage,
    /// redundancy, calibration sanity (when a device is supplied).
    /// Compiled passes: coupler legality, permutation & sequence
    /// consistency, physical hygiene (use-after-measure, redundancy),
    /// calibration sanity, then the reliability-semantic passes (ESP
    /// bound & attribution, decoherence exposure, missed-VQM routes,
    /// weak-region allocation).
    pub fn standard() -> Self {
        let mut r = PassRegistry::empty();
        r.register_circuit_pass(Box::new(passes::liveness::QubitLiveness));
        r.register_circuit_pass(Box::new(passes::measurement::MeasurementCoverage));
        r.register_circuit_pass(Box::new(passes::redundancy::Redundancy));
        r.register_circuit_pass(Box::new(passes::calibration::CalibrationSanity));
        r.register_compiled_pass(Box::new(passes::coupler::CouplerLegality));
        r.register_compiled_pass(Box::new(passes::permutation::PermutationConsistency));
        r.register_compiled_pass(Box::new(passes::liveness::PhysicalLiveness));
        r.register_compiled_pass(Box::new(passes::redundancy::PhysicalRedundancy));
        r.register_compiled_pass(Box::new(passes::calibration::CompiledCalibrationSanity));
        r.register_compiled_pass(Box::new(passes::esp::EspReliability::default()));
        r.register_compiled_pass(Box::new(passes::decoherence::DecoherenceExposure::default()));
        r.register_compiled_pass(Box::new(passes::routing::MissedVqm::default()));
        r.register_compiled_pass(Box::new(passes::region::WeakRegion::default()));
        r.register_compiled_pass(Box::new(passes::cost::CostBudget::default()));
        r
    }

    /// Appends a circuit-level pass.
    pub fn register_circuit_pass(&mut self, pass: Box<dyn CircuitPass>) -> &mut Self {
        self.circuit.push(pass);
        self
    }

    /// Appends a compiled-output pass.
    pub fn register_compiled_pass(&mut self, pass: Box<dyn CompiledPass>) -> &mut Self {
        self.compiled.push(pass);
        self
    }

    /// The registered circuit-pass names, in run order.
    pub fn circuit_pass_names(&self) -> Vec<&'static str> {
        self.circuit.iter().map(|p| p.name()).collect()
    }

    /// The registered compiled-pass names, in run order.
    pub fn compiled_pass_names(&self) -> Vec<&'static str> {
        self.compiled.iter().map(|p| p.name()).collect()
    }

    /// Runs every circuit-level pass over a logical circuit. Passing a
    /// device enables the device-dependent lints (width, calibration
    /// sanity).
    pub fn lint_circuit(&self, circuit: &Circuit, device: Option<&Device>) -> Report {
        let mut report = Report::default();
        for pass in &self.circuit {
            let mut out = Vec::new();
            pass.run(circuit, device, &mut out);
            report.record_pass(pass.name());
            report.extend(out);
        }
        report
    }

    /// Runs every compiled-output pass over a compiled circuit.
    pub fn verify(&self, source: &Circuit, device: &Device, compiled: &CompiledCircuit) -> Report {
        let cx = CompiledContext {
            source,
            device,
            compiled,
        };
        let mut report = Report::default();
        for pass in &self.compiled {
            let mut out = Vec::new();
            pass.run(&cx, &mut out);
            report.record_pass(pass.name());
            report.extend(out);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::{LintCode, Span};
    use quva_circuit::Qubit;

    struct AlwaysWarn;
    impl CircuitPass for AlwaysWarn {
        fn name(&self) -> &'static str {
            "always-warn"
        }
        fn run(&self, _: &Circuit, _: Option<&Device>, out: &mut Vec<Diagnostic>) {
            out.push(Diagnostic::new(
                LintCode::NoMeasurements,
                Some(Span::gate(0)),
                "synthetic",
            ));
        }
    }

    #[test]
    fn standard_registry_has_all_passes() {
        let r = PassRegistry::standard();
        assert!(r.circuit_pass_names().contains(&"qubit-liveness"));
        assert!(r.circuit_pass_names().contains(&"measurement-coverage"));
        assert!(r.compiled_pass_names().contains(&"coupler-legality"));
        assert!(r.compiled_pass_names().contains(&"permutation-consistency"));
        assert!(r.compiled_pass_names().len() >= 4);
    }

    #[test]
    fn custom_pass_registration() {
        let mut r = PassRegistry::empty();
        r.register_circuit_pass(Box::new(AlwaysWarn));
        let mut c = Circuit::new(1);
        c.h(Qubit(0));
        let report = r.lint_circuit(&c, None);
        assert_eq!(report.passes(), ["always-warn"]);
        assert_eq!(report.warning_count(), 1);
        assert!(report.is_clean(), "warnings do not fail verification");
    }

    #[test]
    fn debug_lists_pass_names() {
        let r = PassRegistry::standard();
        let dbg = format!("{r:?}");
        assert!(dbg.contains("coupler-legality"), "{dbg}");
    }
}
