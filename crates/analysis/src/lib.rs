//! # quva-analysis — static verification & lint framework
//!
//! Machine-checked answers to "did the compiler emit a *legal* circuit?"
//! — without running a single simulation. The paper's entire argument
//! rests on compiled circuits being legal (every two-qubit gate on an
//! active coupler, SWAP chains that really realize the claimed
//! permutation); this crate proves it statically, per artifact.
//!
//! Four layers:
//!
//! - **Diagnostics** ([`Diagnostic`], [`Severity`], stable [`LintCode`]s
//!   `QV001`–`QV504`, gate-index [`Span`]s) aggregated into a [`Report`]
//!   renderable as text or JSON.
//! - **Passes** ([`CircuitPass`] over logical circuits, [`CompiledPass`]
//!   over compiler output) collected in a [`PassRegistry`], plus the
//!   [`contracts`] checker that validates `quva::pipeline` pass
//!   pipelines *before they run*.
//! - **The [`dataflow`] engine** — a generic forward worklist analysis
//!   over physical circuits (abstract state per qubit, transfer function
//!   per gate) that powers the reliability-semantic passes: static ESP
//!   intervals, decoherence exposure, missed-VQM routes, weak-region
//!   allocations.
//! - **The [`Verifier`]**, which bundles the standard registry and plugs
//!   into `MappingPolicy::compile_with` via [`quva::CompileAudit`]; the
//!   [`audit_compiled`] entry point adds the reliability report
//!   (ESP bound + attribution) on top of verification.
//!
//! Severity policy: `QV0xx` codes are [`Severity::Error`] — the artifact
//! is illegal or semantically wrong and verification fails. `QV1xx`,
//! `QV2xx`, the reliability block `QV3xx`, and the cost block `QV4xx`
//! are [`Severity::Warning`] — legal but suspicious, wasteful, or
//! budget-hostile; a report with only warnings still
//! [`Report::is_clean`]. The pipeline-contract block `QV5xx` is
//! [`Severity::Error`] again: a misconfigured pipeline cannot produce a
//! legal artifact, so it is refused before it runs.
//!
//! ## Examples
//!
//! Verifying a compiled circuit end to end:
//!
//! ```
//! use quva::MappingPolicy;
//! use quva_analysis::verify_compiled;
//! use quva_benchmarks::bv;
//! use quva_device::Device;
//!
//! # fn main() -> Result<(), quva::CompileError> {
//! let device = Device::ibm_q20();
//! let program = bv(8);
//! let compiled = MappingPolicy::vqa_vqm().compile(&program, &device)?;
//! let report = verify_compiled(&program, &device, &compiled);
//! assert!(report.is_clean(), "{}", report.render_text());
//! # Ok(())
//! # }
//! ```
//!
//! Catching a corrupted output (an off-coupler CNOT):
//!
//! ```
//! use quva::{CompiledCircuit, Mapping, MappingPolicy};
//! use quva_analysis::{verify_compiled, LintCode};
//! use quva_circuit::{Circuit, PhysQubit, Qubit};
//! use quva_device::{Calibration, Device, Topology};
//!
//! let device = Device::new(Topology::linear(4), |t| Calibration::uniform(t, 0.02, 0.001, 0.02));
//! let mut program = Circuit::new(2);
//! program.cnot(Qubit(0), Qubit(1));
//! let mut physical: Circuit<PhysQubit> = Circuit::with_cbits(4, 2);
//! physical.cnot(PhysQubit(0), PhysQubit(2)); // 0 and 2 are not coupled
//! let mapping = Mapping::from_assignment(2, 4, |q| PhysQubit(q.0 * 2)).unwrap();
//! let forged = CompiledCircuit::from_parts(physical, mapping.clone(), mapping, 0);
//! let report = verify_compiled(&program, &device, &forged);
//! assert!(report.has_code(LintCode::OffCouplerGate));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod audit;
pub mod contracts;
pub mod dataflow;
mod diagnostic;
mod pass;
pub mod passes;

pub use audit::{audit_compiled, audit_with, AuditReport, QubitReliability};
pub use contracts::{check_pipeline, violation_code};
pub use diagnostic::{Diagnostic, LintCode, Report, Severity, Span};
pub use pass::{CircuitPass, CompiledContext, CompiledPass, PassRegistry};
pub use passes::cost::{
    cost_envelope, envelope_of, per_qubit_events, total_events, CostBudget, CostEnvelope, CostInterval,
    CostModel, FRAME_BUDGET_BYTES,
};
pub use passes::esp::{
    esp_interval, link_attribution, per_qubit_esp, EspConfig, EspInterval, LinkAttribution,
};

use quva::{CompileAudit, CompiledCircuit};
use quva_circuit::Circuit;
use quva_device::Device;

/// The standard verifier: every built-in pass, usable directly or as a
/// [`quva::CompileAudit`] plugged into `MappingPolicy::compile_with`.
///
/// # Examples
///
/// ```
/// use quva::{CompileOptions, MappingPolicy};
/// use quva_analysis::Verifier;
/// use quva_benchmarks::ghz;
/// use quva_device::Device;
///
/// # fn main() -> Result<(), quva::CompileError> {
/// let verifier = Verifier::new();
/// let options = CompileOptions { verify: Some(&verifier) };
/// let device = Device::ibm_q20();
/// let compiled = MappingPolicy::vqm().compile_with(&ghz(6), &device, &options)?;
/// assert!(compiled.inserted_swaps() < 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Verifier {
    registry: PassRegistry,
}

impl Default for Verifier {
    /// Same as [`Verifier::new`]: the standard pass registry.
    fn default() -> Self {
        Verifier::new()
    }
}

impl Verifier {
    /// A verifier over [`PassRegistry::standard`].
    pub fn new() -> Self {
        Verifier {
            registry: PassRegistry::standard(),
        }
    }

    /// A verifier over a custom registry.
    pub fn with_registry(registry: PassRegistry) -> Self {
        Verifier { registry }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &PassRegistry {
        &self.registry
    }

    /// Runs every compiled-output pass.
    pub fn verify(&self, source: &Circuit, device: &Device, compiled: &CompiledCircuit) -> Report {
        self.registry.verify(source, device, compiled)
    }

    /// Runs every circuit-level lint pass.
    pub fn lint(&self, circuit: &Circuit, device: Option<&Device>) -> Report {
        self.registry.lint_circuit(circuit, device)
    }
}

impl CompileAudit for Verifier {
    fn audit(&self, source: &Circuit, device: &Device, compiled: &CompiledCircuit) -> Result<(), String> {
        let report = self.verify(source, device, compiled);
        if report.is_clean() {
            Ok(())
        } else {
            Err(report.render_text())
        }
    }
}

/// Lints a logical circuit with the standard passes. Passing a device
/// enables the device-dependent lints.
pub fn lint_circuit(circuit: &Circuit, device: Option<&Device>) -> Report {
    Verifier::new().lint(circuit, device)
}

/// Verifies a compiled circuit against its source program and device
/// with the standard passes.
pub fn verify_compiled(source: &Circuit, device: &Device, compiled: &CompiledCircuit) -> Report {
    Verifier::new().verify(source, device, compiled)
}
