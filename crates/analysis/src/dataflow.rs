//! A generic forward-dataflow engine over physical circuits.
//!
//! Abstract interpretation of a gate stream: each physical qubit
//! carries an abstract state (an element of a join-semilattice), every
//! gate applies a transfer function to its operands' states, and a
//! worklist iterates to a fixpoint. Straight-line circuits converge in
//! one ascending pass; the worklist exists so transfer functions may be
//! composed and re-run safely (each gate's outputs are a pure function
//! of its inputs, never of its own previous outputs).
//!
//! The ESP interval analysis ([`crate::passes::esp`]) is the flagship
//! client: its state is a `[lo, hi]` success-probability interval per
//! qubit. The framework itself is domain-agnostic — see the gate-count
//! example below.
//!
//! # Examples
//!
//! Counting the operations each qubit participates in:
//!
//! ```
//! use quva_analysis::dataflow::{run_forward, ForwardAnalysis, JoinSemiLattice};
//! use quva_circuit::{Circuit, Gate, PhysQubit};
//!
//! #[derive(Clone, PartialEq, Debug)]
//! struct Count(u32);
//! impl JoinSemiLattice for Count {
//!     fn join(&self, other: &Self) -> Self {
//!         Count(self.0.max(other.0))
//!     }
//! }
//!
//! struct GateCount;
//! impl ForwardAnalysis for GateCount {
//!     type State = Count;
//!     fn name(&self) -> &'static str {
//!         "gate-count"
//!     }
//!     fn boundary(&self, _qubit: usize) -> Count {
//!         Count(0)
//!     }
//!     fn transfer(&self, _gate: &Gate<PhysQubit>, _index: usize, inputs: &[Count]) -> Vec<Count> {
//!         inputs.iter().map(|c| Count(c.0 + 1)).collect()
//!     }
//! }
//!
//! let mut c: Circuit<PhysQubit> = Circuit::new(2);
//! c.h(PhysQubit(0));
//! c.cnot(PhysQubit(0), PhysQubit(1));
//! let result = run_forward(&GateCount, &c, 2);
//! assert_eq!(result.exit[0], Count(2));
//! assert_eq!(result.exit[1], Count(1));
//! ```

use std::collections::BTreeSet;

use quva_circuit::{Circuit, Gate, PhysQubit};

/// An element of a join-semilattice: the abstract state one physical
/// qubit carries through the analysis.
pub trait JoinSemiLattice: Clone + PartialEq + std::fmt::Debug {
    /// The least upper bound of two states. The engine never joins
    /// states on straight-line circuits (each qubit has a single
    /// predecessor chain), but transfer functions and future
    /// control-flow extensions rely on it.
    fn join(&self, other: &Self) -> Self;
}

/// A forward dataflow analysis: a boundary state per qubit and a
/// transfer function per gate.
pub trait ForwardAnalysis {
    /// The per-qubit abstract state.
    type State: JoinSemiLattice;

    /// The analysis name (shown in debug output and reports).
    fn name(&self) -> &'static str;

    /// The state each physical qubit enters the circuit with.
    fn boundary(&self, qubit: usize) -> Self::State;

    /// Applies one gate: `inputs` holds the incoming state of each
    /// operand in [`Gate::qubits`] order; the returned vector gives the
    /// outgoing state of the same operands, in the same order.
    ///
    /// Must be *pure*: outputs depend only on the gate and `inputs`, so
    /// the worklist may re-evaluate a gate without double-charging it.
    fn transfer(&self, gate: &Gate<PhysQubit>, index: usize, inputs: &[Self::State]) -> Vec<Self::State>;
}

/// The fixpoint of a forward analysis over one circuit.
#[derive(Debug, Clone)]
pub struct DataflowResult<S> {
    /// The state of every physical qubit after its last gate (boundary
    /// state for untouched qubits).
    pub exit: Vec<S>,
    /// Per gate index: the operand output states (in operand order).
    /// Barriers carry no entry (`None`), matching their identity
    /// transfer.
    pub after_gate: Vec<Option<Vec<S>>>,
}

/// Runs `analysis` forward over `circuit` to a fixpoint.
///
/// `num_qubits` is the width of the state vector — pass the *device*
/// size when exit states for unused physical qubits matter.
///
/// The engine is a classic worklist: gates are processed in ascending
/// program order (a topological order of the gate DAG, since operands
/// chain each qubit's gates), and a gate is re-queued whenever one of
/// its predecessors changes its output. Transfer functions are pure, so
/// re-evaluation is idempotent and the fixpoint is reached as soon as
/// the worklist drains.
pub fn run_forward<A: ForwardAnalysis>(
    analysis: &A,
    circuit: &Circuit<PhysQubit>,
    num_qubits: usize,
) -> DataflowResult<A::State> {
    let width = num_qubits.max(circuit.num_qubits());
    let gates = circuit.gates();

    // Dependency chains: for each gate and operand, the producing
    // predecessor gate (and its operand slot), or the boundary.
    #[derive(Clone, Copy)]
    enum Source {
        Boundary(usize),
        Gate { index: usize, slot: usize },
    }
    let mut last_def: Vec<Source> = (0..width).map(Source::Boundary).collect();
    let mut inputs_of: Vec<Vec<Source>> = Vec::with_capacity(gates.len());
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); gates.len()];
    for (i, gate) in gates.iter().enumerate() {
        if gate.is_barrier() {
            inputs_of.push(Vec::new());
            continue;
        }
        let mut sources = Vec::new();
        for (slot, q) in gate.qubits().into_iter().enumerate() {
            let src = last_def[q.index()];
            if let Source::Gate { index, .. } = src {
                successors[index].push(i);
            }
            sources.push(src);
            last_def[q.index()] = Source::Gate { index: i, slot };
        }
        inputs_of.push(sources);
    }

    let boundary: Vec<A::State> = (0..width).map(|q| analysis.boundary(q)).collect();
    let mut after_gate: Vec<Option<Vec<A::State>>> = vec![None; gates.len()];

    // Ascending-order worklist: BTreeSet pops the smallest index, so the
    // first sweep visits gates in program order and every predecessor is
    // evaluated before its consumers.
    let mut worklist: BTreeSet<usize> = (0..gates.len()).filter(|&i| !gates[i].is_barrier()).collect();
    while let Some(&i) = worklist.iter().next() {
        worklist.remove(&i);
        let gate = &gates[i];
        let operands = gate.qubits();
        let ins: Vec<A::State> = inputs_of[i]
            .iter()
            .enumerate()
            .map(|(slot, src)| match *src {
                Source::Boundary(q) => boundary[q].clone(),
                Source::Gate { index, slot: pslot } => match &after_gate[index] {
                    // ascending order guarantees predecessors evaluate
                    // first; the fallback covers a (hypothetical)
                    // re-queue racing ahead of an unevaluated pred
                    Some(outs) => outs[pslot].clone(),
                    None => boundary[operands[slot].index()].clone(),
                },
            })
            .collect();
        let outs = analysis.transfer(gate, i, &ins);
        debug_assert_eq!(
            outs.len(),
            ins.len(),
            "{}: transfer must produce one state per operand",
            analysis.name()
        );
        if after_gate[i].as_ref() != Some(&outs) {
            after_gate[i] = Some(outs);
            for &s in &successors[i] {
                worklist.insert(s);
            }
        }
    }

    // Exit state per qubit: the output of its last defining gate.
    let mut exit = boundary;
    for (q, src) in last_def.iter().enumerate() {
        if let Source::Gate { index, slot } = *src {
            if let Some(outs) = &after_gate[index] {
                exit[q] = outs[slot].clone();
            }
        }
    }

    DataflowResult { exit, after_gate }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva_circuit::Cbit;

    #[derive(Clone, PartialEq, Debug)]
    struct Sum(f64);
    impl JoinSemiLattice for Sum {
        fn join(&self, other: &Self) -> Self {
            Sum(self.0.max(other.0))
        }
    }

    /// Charges every operand 1.0 per gate, 0.25 per measurement.
    struct Charge;
    impl ForwardAnalysis for Charge {
        type State = Sum;
        fn name(&self) -> &'static str {
            "charge"
        }
        fn boundary(&self, _q: usize) -> Sum {
            Sum(0.0)
        }
        fn transfer(&self, gate: &Gate<PhysQubit>, _i: usize, inputs: &[Sum]) -> Vec<Sum> {
            let amount = if gate.is_measurement() { 0.25 } else { 1.0 };
            inputs.iter().map(|s| Sum(s.0 + amount)).collect()
        }
    }

    #[test]
    fn straight_line_converges_in_one_pass() {
        let mut c: Circuit<PhysQubit> = Circuit::with_cbits(3, 3);
        c.h(PhysQubit(0));
        c.cnot(PhysQubit(0), PhysQubit(1));
        c.swap(PhysQubit(1), PhysQubit(2));
        c.measure(PhysQubit(2), Cbit(0));
        let r = run_forward(&Charge, &c, 3);
        assert_eq!(r.exit[0], Sum(2.0));
        assert_eq!(r.exit[1], Sum(2.0));
        assert_eq!(r.exit[2], Sum(1.25));
    }

    #[test]
    fn per_gate_states_are_recorded() {
        let mut c: Circuit<PhysQubit> = Circuit::new(2);
        c.h(PhysQubit(1));
        c.cnot(PhysQubit(0), PhysQubit(1));
        let r = run_forward(&Charge, &c, 2);
        // gate 0 touches only qubit 1
        assert_eq!(r.after_gate[0].as_ref().unwrap().as_slice(), &[Sum(1.0)]);
        // gate 1: control entered at boundary, target carried the H
        assert_eq!(
            r.after_gate[1].as_ref().unwrap().as_slice(),
            &[Sum(1.0), Sum(2.0)]
        );
    }

    #[test]
    fn barriers_are_identity() {
        let mut c: Circuit<PhysQubit> = Circuit::new(2);
        c.h(PhysQubit(0));
        c.barrier_all();
        c.h(PhysQubit(0));
        let r = run_forward(&Charge, &c, 2);
        assert_eq!(r.exit[0], Sum(2.0));
        assert_eq!(r.exit[1], Sum(0.0));
        assert!(r.after_gate[1].is_none(), "barrier carries no state");
    }

    #[test]
    fn device_wider_than_circuit_keeps_boundary_states() {
        let mut c: Circuit<PhysQubit> = Circuit::new(1);
        c.h(PhysQubit(0));
        let r = run_forward(&Charge, &c, 5);
        assert_eq!(r.exit.len(), 5);
        assert_eq!(r.exit[4], Sum(0.0));
    }

    #[test]
    fn empty_circuit_is_all_boundary() {
        let c: Circuit<PhysQubit> = Circuit::new(3);
        let r = run_forward(&Charge, &c, 3);
        assert!(r.exit.iter().all(|s| *s == Sum(0.0)));
        assert!(r.after_gate.is_empty());
    }
}
