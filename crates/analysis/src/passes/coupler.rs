//! Coupler legality: every physical two-qubit gate must sit on an
//! active, non-disabled link of the device.

use crate::diagnostic::{Diagnostic, LintCode, Span};
use crate::pass::{CompiledContext, CompiledPass};

/// Flags two-qubit gates addressing pairs with no coupler ([`QV001`])
/// or a disabled coupler ([`QV002`]).
///
/// [`QV001`]: LintCode::OffCouplerGate
/// [`QV002`]: LintCode::DisabledLinkGate
#[derive(Debug, Default)]
pub struct CouplerLegality;

impl CompiledPass for CouplerLegality {
    fn name(&self) -> &'static str {
        "coupler-legality"
    }

    fn run(&self, cx: &CompiledContext<'_>, out: &mut Vec<Diagnostic>) {
        let topo = cx.device.topology();
        let n = cx.device.num_qubits();
        for (i, gate) in cx.compiled.physical().iter().enumerate() {
            if !gate.is_two_qubit() {
                continue;
            }
            let qs = gate.qubits();
            let (a, b) = (qs[0], qs[1]);
            if a.index() >= n || b.index() >= n {
                out.push(Diagnostic::new(
                    LintCode::WidthExceeded,
                    Some(Span::gate(i)),
                    format!("{gate} addresses a physical qubit outside the {n}-qubit device"),
                ));
                continue;
            }
            match topo.link_id(a, b) {
                None => out.push(Diagnostic::new(
                    LintCode::OffCouplerGate,
                    Some(Span::gate(i)),
                    format!("{gate}: no coupler between {a} and {b}"),
                )),
                Some(id) if !cx.device.link_enabled(id) => out.push(Diagnostic::new(
                    LintCode::DisabledLinkGate,
                    Some(Span::gate(i)),
                    format!("{gate}: the {a}-{b} coupler is disabled"),
                )),
                Some(_) => {}
            }
        }
    }
}
