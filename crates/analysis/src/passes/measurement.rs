//! Measurement coverage of logical circuits: does the program actually
//! read out what it computes?

use quva_circuit::{Circuit, Gate};
use quva_device::Device;

use crate::diagnostic::{Diagnostic, LintCode, Span};
use crate::pass::CircuitPass;

/// Flags circuits with no measurements at all ([`QV103`]), used qubits
/// that are never measured while others are ([`QV102`]), and classical
/// bits written twice ([`QV104`]). All warnings: un-read programs are
/// legal, just rarely what the author meant.
///
/// [`QV102`]: LintCode::UnmeasuredQubit
/// [`QV103`]: LintCode::NoMeasurements
/// [`QV104`]: LintCode::ClobberedCbit
#[derive(Debug, Default)]
pub struct MeasurementCoverage;

impl CircuitPass for MeasurementCoverage {
    fn name(&self) -> &'static str {
        "measurement-coverage"
    }

    fn run(&self, circuit: &Circuit, _device: Option<&Device>, out: &mut Vec<Diagnostic>) {
        if circuit.is_empty() {
            return;
        }
        if circuit.measure_count() == 0 {
            out.push(Diagnostic::new(
                LintCode::NoMeasurements,
                None,
                "circuit never measures; its outcome is unobservable".to_string(),
            ));
            return;
        }
        let mut cbit_writer: Vec<Option<usize>> = vec![None; circuit.num_cbits()];
        let mut qubit_measured = vec![false; circuit.num_qubits()];
        for (i, g) in circuit.iter().enumerate() {
            if let Gate::Measure { qubit, cbit } = g {
                qubit_measured[qubit.index()] = true;
                if let Some(first) = cbit_writer[cbit.index()] {
                    out.push(Diagnostic::new(
                        LintCode::ClobberedCbit,
                        Some(Span::range(first, i)),
                        format!("{cbit} is written twice; the first result is lost"),
                    ));
                }
                cbit_writer[cbit.index()] = Some(i);
            }
        }
        for q in circuit.used_qubits() {
            if !qubit_measured[q.index()] {
                out.push(Diagnostic::new(
                    LintCode::UnmeasuredQubit,
                    None,
                    format!("{q} is used but never measured"),
                ));
            }
        }
    }
}
