//! Calibration-sanity escape detection: values that should have been
//! stopped by `quva-device`'s sanitization but are visible to policy
//! code anyway.

use quva_circuit::Circuit;
use quva_device::Device;

use crate::diagnostic::{Diagnostic, LintCode};
use crate::pass::{CircuitPass, CompiledContext, CompiledPass};

/// Device-level calibration sanity for `quva lint --device ...`: every
/// escape is [`QV008`]. A no-op when no device is supplied.
///
/// [`QV008`]: LintCode::CalibrationEscape
#[derive(Debug, Default)]
pub struct CalibrationSanity;

impl CircuitPass for CalibrationSanity {
    fn name(&self) -> &'static str {
        "calibration-sanity"
    }

    fn run(&self, _circuit: &Circuit, device: Option<&Device>, out: &mut Vec<Diagnostic>) {
        if let Some(dev) = device {
            check_device(dev, out);
        }
    }
}

/// The same check as part of post-compile verification: the device the
/// compiler just consumed must not carry escaped garbage.
#[derive(Debug, Default)]
pub struct CompiledCalibrationSanity;

impl CompiledPass for CompiledCalibrationSanity {
    fn name(&self) -> &'static str {
        "calibration-sanity"
    }

    fn run(&self, cx: &CompiledContext<'_>, out: &mut Vec<Diagnostic>) {
        check_device(cx.device, out);
    }
}

/// Mirrors the validity contract of `quva-device::validate`: error
/// rates live in `[0, 1)`, coherence times are positive and finite.
/// Disabled links are exempt — their calibration is dead data.
pub(crate) fn check_device(device: &Device, out: &mut Vec<Diagnostic>) {
    let cal = device.calibration();
    let topo = device.topology();
    for id in 0..topo.num_links() {
        if !device.link_enabled(id) {
            continue;
        }
        let e = cal.two_qubit_error(id);
        if !(0.0..1.0).contains(&e) {
            let link = topo.links()[id];
            out.push(Diagnostic::new(
                LintCode::CalibrationEscape,
                None,
                format!(
                    "two-qubit error {e} on link {}-{} escaped sanitization",
                    link.low(),
                    link.high()
                ),
            ));
        }
    }
    for q in 0..device.num_qubits() {
        for (what, v) in [
            ("one-qubit error", cal.one_qubit_error(q)),
            ("readout error", cal.readout_error(q)),
        ] {
            if !(0.0..1.0).contains(&v) {
                out.push(Diagnostic::new(
                    LintCode::CalibrationEscape,
                    None,
                    format!("{what} {v} on qubit {q} escaped sanitization"),
                ));
            }
        }
        for (what, t) in [("T1", cal.t1_us(q)), ("T2", cal.t2_us(q))] {
            if !(t.is_finite() && t > 0.0) {
                out.push(Diagnostic::new(
                    LintCode::CalibrationEscape,
                    None,
                    format!("{what} = {t} µs on qubit {q} escaped sanitization"),
                ));
            }
        }
    }
}
