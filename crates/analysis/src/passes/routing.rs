//! Missed-VQM lint: replay router-inserted SWAP chains and compare each
//! against the reliability-optimal route on the live device.
//!
//! For every executed two-qubit source gate the pass reconstructs the
//! movement that served it — the inserted SWAPs (since the previous
//! served gate) that actually displaced either operand — and weighs
//! that route in failure-weight space (`Σ −ln` of SWAP successes plus
//! the executed CNOT's weight). A fresh [`Router`] under the
//! unconstrained reliability metric (paper Algorithm 1, VQM) then plans
//! the optimal route from the same starting positions. When the
//! log-reliability gap exceeds a threshold the chain is flagged as
//! [`QV304`], reporting the hop-slack the optimal route spends (the MAH
//! budget of §5.3 it would need).
//!
//! [`QV304`]: LintCode::MissedVqmRoute

use std::collections::VecDeque;

use quva::{Router, RoutingMetric};
use quva_circuit::{Gate, PhysQubit};
use quva_device::HopMatrix;

use crate::diagnostic::{Diagnostic, LintCode, Span};
use crate::pass::{CompiledContext, CompiledPass};

/// The missed-VQM pass: emits [`QV304`] for SWAP chains whose failure
/// weight exceeds the reliability-optimal route's by more than
/// [`MissedVqm::gap_threshold`] nats.
///
/// [`QV304`]: LintCode::MissedVqmRoute
#[derive(Debug, Clone)]
pub struct MissedVqm {
    /// Minimum log-reliability gap (nats) between the replayed route and
    /// the optimal one before a chain is flagged. The default 0.25 nats
    /// means the chosen route loses ≥ 22 % relative success probability.
    pub gap_threshold: f64,
}

impl Default for MissedVqm {
    fn default() -> Self {
        MissedVqm { gap_threshold: 0.25 }
    }
}

impl CompiledPass for MissedVqm {
    fn name(&self) -> &'static str {
        "missed-vqm"
    }

    fn run(&self, cx: &CompiledContext<'_>, out: &mut Vec<Diagnostic>) {
        let source = cx.source;
        let compiled = cx.compiled;
        let initial = compiled.initial_mapping();

        // The replay below indexes mappings and pending queues; bad
        // shapes are QV006 territory (permutation-consistency) — this
        // pass silently declines rather than duplicating the findings.
        if initial.num_prog() != source.num_qubits()
            || initial.num_phys() != cx.device.num_qubits()
            || compiled.final_mapping().num_prog() != initial.num_prog()
            || compiled.final_mapping().num_phys() != initial.num_phys()
        {
            return;
        }
        for gate in compiled.physical().iter() {
            if gate.qubits().iter().any(|p| p.index() >= initial.num_phys()) {
                return;
            }
        }

        let router = Router::new(cx.device, RoutingMetric::reliability());
        let hops = HopMatrix::of_active(cx.device);

        // Pending source operations per program qubit — the same
        // program/inserted SWAP discrimination as permutation
        // consistency.
        let mut pending: Vec<VecDeque<usize>> = vec![VecDeque::new(); source.num_qubits()];
        for (i, g) in source.iter().enumerate() {
            if g.is_barrier() {
                continue;
            }
            for q in g.qubits() {
                pending[q.index()].push_back(i);
            }
        }

        let mut mapping = initial.clone();
        // Inserted SWAPs since the last served two-qubit source gate,
        // with the mapping snapshot taken when the chain opened.
        let mut chain: Vec<(PhysQubit, PhysQubit)> = Vec::new();
        let mut chain_start = mapping.clone();

        for (i, gate) in compiled.physical().iter().enumerate() {
            match gate {
                Gate::Swap { a: pa, b: pb } => {
                    if pa == pb {
                        return; // malformed; QV004 covers it
                    }
                    let program_swap = match (mapping.prog_of(*pa), mapping.prog_of(*pb)) {
                        (Some(qa), Some(qb)) => {
                            match (pending[qa.index()].front(), pending[qb.index()].front()) {
                                (Some(&ia), Some(&ib)) if ia == ib => {
                                    matches!(&source.gates()[ia], Gate::Swap { a, b }
                                        if (*a == qa && *b == qb) || (*a == qb && *b == qa))
                                    .then_some((qa, qb))
                                }
                                _ => None,
                            }
                        }
                        _ => None,
                    };
                    match program_swap {
                        Some((qa, qb)) => {
                            pending[qa.index()].pop_front();
                            pending[qb.index()].pop_front();
                        }
                        None => {
                            if chain.is_empty() {
                                chain_start = mapping.clone();
                            }
                            chain.push((*pa, *pb));
                            mapping.apply_swap(*pa, *pb);
                        }
                    }
                }
                Gate::Cnot {
                    control: pc,
                    target: pt,
                } => {
                    let (Some(qc), Some(qt)) = (mapping.prog_of(*pc), mapping.prog_of(*pt)) else {
                        return; // QV007 covers it
                    };
                    let matched = match (pending[qc.index()].front(), pending[qt.index()].front()) {
                        (Some(&ia), Some(&ib)) if ia == ib => {
                            matches!(&source.gates()[ia], Gate::Cnot { control, target }
                                if *control == qc && *target == qt)
                        }
                        _ => false,
                    };
                    if !matched {
                        return; // QV004 covers it
                    }
                    pending[qc.index()].pop_front();
                    pending[qt.index()].pop_front();

                    if !chain.is_empty() {
                        self.audit_chain(cx, &router, &hops, &chain_start, &chain, qc, qt, i, out);
                        chain.clear();
                    }
                }
                Gate::OneQubit { qubit: p, .. } | Gate::Measure { qubit: p, .. } => {
                    let Some(q) = mapping.prog_of(*p) else {
                        return;
                    };
                    if pending[q.index()].front().is_some() {
                        pending[q.index()].pop_front();
                    } else {
                        return;
                    }
                }
                Gate::Barrier { .. } => {}
            }
        }
    }
}

impl MissedVqm {
    /// Weighs the movement that served one executed CNOT against the
    /// reliability-optimal plan from the same starting positions and
    /// pushes [`LintCode::MissedVqmRoute`] when the gap is excessive.
    #[allow(clippy::too_many_arguments)]
    fn audit_chain(
        &self,
        cx: &CompiledContext<'_>,
        router: &Router<'_>,
        hops: &HopMatrix,
        chain_start: &quva::Mapping,
        chain: &[(PhysQubit, PhysQubit)],
        qc: quva_circuit::Qubit,
        qt: quva_circuit::Qubit,
        gate_index: usize,
        out: &mut Vec<Diagnostic>,
    ) {
        // Forward-simulate the two operands from their chain-start
        // positions; only SWAPs that displaced one of them belong to
        // this pair's route (other movement in the window serves later
        // gates and is audited when they execute).
        let mut pos_c = chain_start.phys_of(qc);
        let mut pos_t = chain_start.phys_of(qt);
        let start = (pos_c, pos_t);
        let mut used: Vec<(PhysQubit, PhysQubit)> = Vec::new();
        for &(a, b) in chain {
            let mut moved = false;
            for pos in [&mut pos_c, &mut pos_t] {
                if *pos == a {
                    *pos = b;
                    moved = true;
                } else if *pos == b {
                    *pos = a;
                    moved = true;
                }
            }
            if moved {
                used.push((a, b));
            }
        }
        if used.is_empty() {
            return; // operands were already adjacent; nothing to audit
        }

        let Some(cnot_w) = cx.device.cnot_failure_weight(pos_c, pos_t) else {
            return; // illegal execution edge; QV001 covers it
        };
        let actual: f64 = used
            .iter()
            .map(|&(a, b)| cx.device.swap_failure_weight(a, b).unwrap_or(f64::INFINITY))
            .sum::<f64>()
            + cnot_w;

        let Ok(plan) = router.plan(start.0, start.1) else {
            return; // disconnected under current link state
        };
        let optimal = router.plan_failure_weight(&plan);
        let gap = actual - optimal;
        if gap <= self.gap_threshold || !gap.is_finite() {
            return;
        }

        let min_swaps = hops.swaps_needed(start.0, start.1) as usize;
        let hop_slack = plan.swap_count().saturating_sub(min_swaps);
        out.push(Diagnostic::new(
            LintCode::MissedVqmRoute,
            Some(Span::gate(gate_index)),
            format!(
                "route {}->{} used {} SWAP(s) costing {:.3} nats; reliability-optimal route costs \
                 {:.3} (gap {:.3} nats, {:.0}% relative success lost; optimal needs {} SWAP(s), \
                 MAH hop-slack {})",
                start.0,
                start.1,
                used.len(),
                actual,
                optimal,
                gap,
                100.0 * (1.0 - (-gap).exp()),
                plan.swap_count(),
                hop_slack
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva::{CompiledCircuit, Mapping};
    use quva_circuit::{Circuit, Qubit};
    use quva_device::{Calibration, Device, Topology};

    /// A 4-cycle where the 0–1–2 side is pristine and the 0–3–2 side is
    /// terrible: routing 0 to meet 2 through qubit 3 is a missed VQM.
    fn ring_device() -> Device {
        let topo = Topology::from_links("ring4", 4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        Device::new(topo, |t| {
            let mut c = Calibration::uniform(t, 0.005, 0.0, 0.0);
            let bad_23 = t.link_id(PhysQubit(2), PhysQubit(3)).expect("link 2-3");
            let bad_30 = t.link_id(PhysQubit(3), PhysQubit(0)).expect("link 3-0");
            c.set_two_qubit_error(bad_23, 0.25);
            c.set_two_qubit_error(bad_30, 0.25);
            c
        })
    }

    fn cnot_source() -> Circuit {
        let mut c = Circuit::new(4);
        c.cnot(Qubit(0), Qubit(2));
        c
    }

    fn compiled_via(route: &[(u32, u32)], exec: (u32, u32)) -> CompiledCircuit {
        let mut physical: Circuit<PhysQubit> = Circuit::new(4);
        let initial = Mapping::identity(4, 4);
        let mut final_mapping = initial.clone();
        for &(a, b) in route {
            physical.swap(PhysQubit(a), PhysQubit(b));
            final_mapping.apply_swap(PhysQubit(a), PhysQubit(b));
        }
        physical.cnot(PhysQubit(exec.0), PhysQubit(exec.1));
        CompiledCircuit::from_parts(physical, initial, final_mapping, route.len())
    }

    fn run_pass(dev: &Device, source: &Circuit, compiled: &CompiledCircuit) -> Vec<Diagnostic> {
        let cx = CompiledContext {
            source,
            device: dev,
            compiled,
        };
        let mut out = Vec::new();
        MissedVqm::default().run(&cx, &mut out);
        out
    }

    #[test]
    fn weak_detour_is_flagged() {
        let dev = ring_device();
        let source = cnot_source();
        // move qubit 0's occupant through the terrible 0–3 link, then
        // execute across the terrible 3–2 link
        let compiled = compiled_via(&[(0, 3)], (3, 2));
        let out = run_pass(&dev, &source, &compiled);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code(), LintCode::MissedVqmRoute);
        assert!(out[0].message().contains("MAH hop-slack"), "{}", out[0].message());
    }

    #[test]
    fn optimal_route_is_quiet() {
        let dev = ring_device();
        let source = cnot_source();
        // the strong side: swap 0's occupant to 1, execute across 1–2
        let compiled = compiled_via(&[(0, 1)], (1, 2));
        let out = run_pass(&dev, &source, &compiled);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn adjacent_gate_without_swaps_is_quiet() {
        let dev = ring_device();
        let mut source = Circuit::new(4);
        source.cnot(Qubit(0), Qubit(1));
        let compiled = compiled_via(&[], (0, 1));
        let out = run_pass(&dev, &source, &compiled);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unrelated_movement_is_not_charged() {
        // qubit 3's occupant shuffles to 2's side for a later gate; the
        // 0–1 CNOT executes adjacently and must not inherit that cost.
        let dev = ring_device();
        let mut source = Circuit::new(4);
        source.cnot(Qubit(0), Qubit(1));
        source.cnot(Qubit(3), Qubit(1));
        let mut physical: Circuit<PhysQubit> = Circuit::new(4);
        let initial = Mapping::identity(4, 4);
        let mut final_mapping = initial.clone();
        physical.swap(PhysQubit(3), PhysQubit(2));
        final_mapping.apply_swap(PhysQubit(3), PhysQubit(2));
        physical.cnot(PhysQubit(0), PhysQubit(1));
        physical.swap(PhysQubit(2), PhysQubit(1));
        final_mapping.apply_swap(PhysQubit(2), PhysQubit(1));
        physical.cnot(PhysQubit(1), PhysQubit(2));
        let compiled = CompiledCircuit::from_parts(physical, initial, final_mapping, 2);
        let out = run_pass(&dev, &source, &compiled);
        // the 3->2->1 movement rides the weak 2–3 link but IS the best
        // route for program qubit 3 given where it started, so both
        // gates stay quiet; the point of this test is that the first
        // CNOT (zero own movement) produces no finding at all.
        assert!(
            out.iter().all(|d| d.span() != Some(Span::gate(1))),
            "adjacent CNOT must not be charged for unrelated SWAPs: {out:?}"
        );
    }

    #[test]
    fn malformed_output_declines_quietly() {
        let dev = ring_device();
        let source = cnot_source();
        // final mapping of the wrong shape
        let physical: Circuit<PhysQubit> = Circuit::new(4);
        let compiled =
            CompiledCircuit::from_parts(physical, Mapping::identity(4, 4), Mapping::identity(2, 4), 0);
        let out = run_pass(&dev, &source, &compiled);
        assert!(out.is_empty());
    }
}
