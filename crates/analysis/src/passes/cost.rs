//! Static cost-envelope analysis: WCET-style resource bounds for a job
//! before it runs.
//!
//! The paper's argument is that calibration-derived *static* estimates
//! are good enough to drive policy decisions without executing the
//! program; [`crate::passes::esp`] proved that for reliability, and
//! this module repeats the move for *cost*. From nothing but the
//! source circuit, the device (its distance matrix bounds worst-case
//! SWAP insertion), a requested trial budget, and a handful of
//! calibrated coefficients, it derives a [`CostEnvelope`]: closed
//! `[lo, hi]` intervals on compile time, Monte-Carlo time, peak
//! memory, and rendered-response size.
//!
//! The envelope is deliberately wide — `lo` divides and `hi`
//! multiplies by a documented slack factor ([`CostModel::mc_slack`],
//! [`CostModel::compile_slack`]) so that the bound holds across CI
//! hosts of very different speeds — but it is *sound enough to act
//! on*: quvad rejects a job whose **optimistic** total already
//! exceeds its deadline (the typed `infeasible` response), weighs
//! shed decisions by predicted cost, and derives `retry_after_ms`
//! from the predicted queue drain. The `bench_sim` / `bench_serve`
//! harnesses close the calibrate-predict-verify loop by gating that
//! measured wall-clock actually falls inside the envelope.
//!
//! Coefficients calibrate against the committed `BENCH_sim.json`
//! baseline via [`CostModel::from_bench`]; the defaults are derived
//! from the same baseline and keep the analysis usable without the
//! file. Envelopes are memoized per (device fingerprint, circuit
//! fingerprint, trials, model) — the same structural keys the PST and
//! ESP caches use.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use quva_circuit::{Circuit, Gate, PhysQubit};
use quva_device::{Device, HopMatrix};

use crate::dataflow::{run_forward, ForwardAnalysis, JoinSemiLattice};
use crate::diagnostic::{Diagnostic, LintCode};
use crate::pass::{CompiledContext, CompiledPass};

/// A closed `[lo, hi]` bound on one scalar resource (nanoseconds or
/// bytes, by context). `lo ≤ hi` always; both are non-negative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostInterval {
    /// Optimistic bound.
    pub lo: f64,
    /// Pessimistic bound.
    pub hi: f64,
}

impl CostInterval {
    /// The interval `[0, 0]`: no cost.
    pub fn zero() -> Self {
        CostInterval { lo: 0.0, hi: 0.0 }
    }

    /// A degenerate interval at one value.
    pub fn point(v: f64) -> Self {
        CostInterval { lo: v, hi: v }
    }

    /// Interval sum (costs of independent stages add).
    pub fn add(&self, other: &CostInterval) -> CostInterval {
        CostInterval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }

    /// Whether `v` lies within `[lo, hi]`.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

impl JoinSemiLattice for CostInterval {
    /// Interval hull: the tightest interval containing both.
    fn join(&self, other: &Self) -> Self {
        CostInterval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// Per-qubit fault-event count — the abstract state of the cost
/// dataflow analysis (ports the ESP interval analysis' per-qubit
/// attribution to the cost domain: the exit fact of a qubit is how
/// many Monte-Carlo fault events it participates in per trial).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventCount(pub u64);

impl JoinSemiLattice for EventCount {
    fn join(&self, other: &Self) -> Self {
        EventCount(self.0.max(other.0))
    }
}

struct EventAnalysis;

impl ForwardAnalysis for EventAnalysis {
    type State = EventCount;

    fn name(&self) -> &'static str {
        "event-count"
    }

    fn boundary(&self, _qubit: usize) -> EventCount {
        EventCount(0)
    }

    fn transfer(&self, gate: &Gate<PhysQubit>, _index: usize, inputs: &[EventCount]) -> Vec<EventCount> {
        let weight = event_weight(gate);
        inputs.iter().map(|c| EventCount(c.0 + weight)).collect()
    }
}

/// The Monte-Carlo fault events one gate contributes per trial: a SWAP
/// is three CNOT-equivalents (the simulator's failure model), a
/// barrier is free, everything else is one event.
fn event_weight<Q>(gate: &Gate<Q>) -> u64 {
    match gate {
        Gate::Barrier { .. } => 0,
        Gate::Swap { .. } => 3,
        _ => 1,
    }
}

/// Total Monte-Carlo fault events one trial of `circuit` generates:
/// the per-gate event weights summed over the whole program (a SWAP is
/// 3, a barrier 0, anything else 1). Callers calibrating
/// [`CostModel::from_bench`] use this on the *compiled* baseline
/// circuit to turn measured ns-per-trial into ns-per-event.
pub fn total_events<Q: quva_circuit::QubitId>(circuit: &Circuit<Q>) -> u64 {
    circuit.gates().iter().map(event_weight).sum()
}

/// Per-qubit fault-event counts of a physical circuit via the forward
/// dataflow engine (two-qubit events charge both operands). Index `q`
/// is physical qubit `q`; untouched qubits report 0.
pub fn per_qubit_events(circuit: &Circuit<PhysQubit>, num_qubits: usize) -> Vec<u64> {
    run_forward(&EventAnalysis, circuit, num_qubits)
        .exit
        .into_iter()
        .map(|c| c.0)
        .collect()
}

/// Calibrated coefficients of the cost model, plus the documented
/// slack factors that widen point predictions into sound envelopes.
///
/// The defaults are derived from the committed `BENCH_sim.json`
/// baseline's bit-parallel row (≈ 8 ns/trial for bv-16 on IBM-Q20,
/// ≈ 72 fault events per trial); [`CostModel::from_bench`] re-derives
/// `ns_per_event` from a measured baseline file so the model tracks
/// the host it gates on. The scalar oracle is ~10x slower than this
/// rate — `mc_slack` comfortably covers it, so envelopes stay sound
/// for jobs explicitly pinned to the scalar kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Nanoseconds one Monte-Carlo fault event costs (per trial).
    pub ns_per_event: f64,
    /// Nanoseconds one unit of routing work costs (one gate emission
    /// or one hop examined by the router).
    pub ns_per_route_unit: f64,
    /// Documented slack factor of the Monte-Carlo envelope: `lo`
    /// divides by it, `hi` multiplies — the band absorbs host-speed
    /// variance between the calibration run and the gated run.
    pub mc_slack: f64,
    /// Documented slack factor of the compile envelope. Wider than
    /// [`CostModel::mc_slack`]: routing work is bounded, not modelled.
    pub compile_slack: f64,
    /// Bytes of peak working set one fault-table event costs.
    pub bytes_per_event: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ns_per_event: 0.12,
            ns_per_route_unit: 40.0,
            mc_slack: 16.0,
            compile_slack: 64.0,
            bytes_per_event: 16.0,
        }
    }
}

impl CostModel {
    /// Calibrates `ns_per_event` against a `BENCH_sim.json` document:
    /// the committed baseline's per-trial cost of the *production*
    /// Monte-Carlo path divided by the fault events per trial of the
    /// baseline workload (bv-16 on IBM-Q20, which the caller counts
    /// via [`total_events`] on the compiled circuit). All other
    /// coefficients keep their defaults.
    ///
    /// Schema `quva-bench-sim/v2` calibrates on the `bitparallel` row
    /// (the default kernel everything downstream runs); pre-kernel
    /// `v1` baselines calibrate on their `sequential` row, which timed
    /// the then-default scalar loop.
    pub fn from_bench(json: &str, events_per_trial: f64) -> Result<CostModel, String> {
        if !events_per_trial.is_finite() || events_per_trial <= 0.0 {
            return Err("events_per_trial must be positive".to_string());
        }
        let doc = quva_obs::parse_json(json)?;
        let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or("");
        let row_name = match schema {
            "quva-bench-sim/v2" => "bitparallel",
            "quva-bench-sim/v1" => "sequential",
            _ => return Err(format!("unsupported bench schema {schema:?}")),
        };
        let rows = doc
            .get("results")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| "missing results array".to_string())?;
        let row = rows
            .iter()
            .find(|r| r.get("name").and_then(|n| n.as_str()) == Some(row_name))
            .ok_or_else(|| format!("missing {row_name} row"))?;
        let ns_per_trial = row
            .get("ns_per_trial")
            .and_then(|v| v.as_f64())
            .filter(|v| *v > 0.0)
            .ok_or_else(|| format!("{row_name} row lacks a positive ns_per_trial"))?;
        Ok(CostModel {
            ns_per_event: ns_per_trial / events_per_trial,
            ..CostModel::default()
        })
    }

    /// A structural fingerprint of the coefficients, used to key the
    /// envelope memo cache (two models never alias unless every
    /// coefficient is bit-identical).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in [
            self.ns_per_event,
            self.ns_per_route_unit,
            self.mc_slack,
            self.compile_slack,
            self.bytes_per_event,
        ] {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Fixed pessimistic overhead added to the Monte-Carlo `hi` bound:
/// profile construction, chunk scheduling, and thread spawn are paid
/// once per run regardless of the trial budget.
const MC_FIXED_OVERHEAD_NS: f64 = 20_000_000.0;

/// Fixed pessimistic overhead added to the compile `hi` bound:
/// allocation scoring and IR bookkeeping paid once per compile.
const COMPILE_FIXED_OVERHEAD_NS: f64 = 50_000_000.0;

/// The wire protocol's frame budget ([`ResponseExceedsFrameBudget`]
/// fires when the pessimistic response-size bound exceeds it). Kept
/// equal to `quva_serve::MAX_FRAME_BYTES` by a cross-crate test.
pub const FRAME_BUDGET_BYTES: f64 = 64.0 * 1024.0;

/// Static `[lo, hi]` resource bounds for compiling and simulating one
/// circuit on one device, before either happens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEnvelope {
    /// Wall-clock bound on compilation (allocation + routing), ns.
    pub compile_ns: CostInterval,
    /// Wall-clock bound on the Monte-Carlo estimate at the requested
    /// trial budget, ns (`[0, 0]` when no trials are requested).
    pub mc_ns: CostInterval,
    /// Peak working-set bound (fault table + chunk buffers), bytes.
    pub peak_bytes: CostInterval,
    /// Rendered-response size bound, bytes.
    pub response_bytes: CostInterval,
    /// Fault events per trial: `lo` assumes routing inserts no SWAPs,
    /// `hi` assumes every two-qubit gate pays the device-diameter
    /// worst case.
    pub events_lo: u64,
    /// See [`CostEnvelope::events_lo`].
    pub events_hi: u64,
    /// The trial budget the Monte-Carlo bound was computed for.
    pub trials: u64,
}

impl CostEnvelope {
    /// End-to-end wall-clock bound: compile plus Monte-Carlo.
    pub fn total_ns(&self) -> CostInterval {
        self.compile_ns.add(&self.mc_ns)
    }

    /// Whether a deadline is *statically infeasible*: even the
    /// optimistic total exceeds it. This is the admission criterion —
    /// rejecting on `lo` (never on `hi`) keeps false rejections out of
    /// the fast path no matter how loose the pessimistic bound is.
    pub fn infeasible_for(&self, deadline_ms: u64) -> bool {
        self.total_ns().lo > deadline_ms as f64 * 1e6
    }

    /// The optimistic end-to-end prediction in whole milliseconds
    /// (rounded up so a nonzero prediction never reads as 0 ms).
    pub fn predicted_ms_lo(&self) -> u64 {
        (self.total_ns().lo / 1e6).ceil() as u64
    }
}

/// Computes the static cost envelope of `circuit` on `device` at a
/// trial budget, uncached. Prefer [`envelope_of`], which memoizes.
pub fn cost_envelope(device: &Device, circuit: &Circuit, trials: u64, model: &CostModel) -> CostEnvelope {
    let _span = quva_obs::span("cost", "envelope");
    let hops = HopMatrix::of_active(device);
    let n = device.num_qubits() as u64;
    // Unreachable pairs report a sentinel distance; a connected route
    // never exceeds n−1 hops, so the worst-case bound caps there.
    let diameter = u64::from(hops.diameter()).min(n.saturating_sub(1));
    let worst_swaps_per_gate = diameter.saturating_sub(1);

    let base_events = total_events(circuit);
    let g2 = circuit.two_qubit_gate_count() as u64;
    let ops = circuit.op_count() as u64;
    let events_lo = base_events;
    let events_hi = base_events + g2 * worst_swaps_per_gate * 3;

    let mc_ns = if trials == 0 {
        CostInterval::zero()
    } else {
        CostInterval {
            lo: trials as f64 * events_lo as f64 * model.ns_per_event / model.mc_slack,
            hi: trials as f64 * events_hi as f64 * model.ns_per_event * model.mc_slack + MC_FIXED_OVERHEAD_NS,
        }
    };

    // Routing work: every candidate allocation (bounded by the device
    // size) may route every emitted gate (source ops plus worst-case
    // inserted SWAPs), each examining up to `diameter` hops.
    let emitted_hi = ops + g2 * worst_swaps_per_gate;
    let route_units_hi = n.max(1) * emitted_hi * diameter.max(1);
    let compile_ns = CostInterval {
        lo: ops as f64 * model.ns_per_route_unit / model.compile_slack,
        hi: route_units_hi as f64 * model.ns_per_route_unit * model.compile_slack + COMPILE_FIXED_OVERHEAD_NS,
    };

    let peak_bytes = CostInterval {
        lo: events_lo as f64 * 8.0,
        hi: events_hi as f64 * model.bytes_per_event + 65_536.0,
    };

    // Response size: the audit kind is the largest renderer — a fixed
    // head, per-qubit reliability rows, and up to one finding per
    // source op (plus one per qubit for device-level findings).
    let response_bytes = CostInterval {
        lo: 64.0,
        hi: 512.0 + n as f64 * 96.0 + (ops + n) as f64 * 96.0,
    };

    CostEnvelope {
        compile_ns,
        mc_ns,
        peak_bytes,
        response_bytes,
        events_lo,
        events_hi,
        trials,
    }
}

/// (device fingerprint, circuit fingerprint, trials, model fingerprint).
type EnvelopeKey = (u64, u64, u64, u64);

fn envelope_cache() -> &'static Mutex<HashMap<EnvelopeKey, CostEnvelope>> {
    static CACHE: OnceLock<Mutex<HashMap<EnvelopeKey, CostEnvelope>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Memoized [`cost_envelope`]: results are cached process-wide, keyed
/// by `Device::fingerprint` / `Circuit::fingerprint` (structural
/// hashes — two seeds of the same generator never alias), the trial
/// budget, and the model fingerprint. This is the entry point quvad's
/// admission control calls on every job, so a repeated workload costs
/// one map lookup.
pub fn envelope_of(device: &Device, circuit: &Circuit, trials: u64, model: &CostModel) -> CostEnvelope {
    let key = (
        device.fingerprint(),
        circuit.fingerprint(),
        trials,
        model.fingerprint(),
    );
    if let Ok(cache) = envelope_cache().lock() {
        if let Some(&envelope) = cache.get(&key) {
            quva_obs::counter("cost.cache.hit", 1);
            return envelope;
        }
    }
    quva_obs::counter("cost.cache.miss", 1);
    let envelope = cost_envelope(device, circuit, trials, model);
    if let Ok(mut cache) = envelope_cache().lock() {
        cache.insert(key, envelope);
        quva_obs::counter("cost.cache.insert", 1);
    }
    envelope
}

/// The QV4xx cost-budget pass: evaluates the static cost envelope of
/// the *source* program against the configured budgets.
///
/// QV401 (deadline) and QV402 (trial budget vs CI width) only fire
/// when the corresponding budget is configured — the standard
/// registry runs with both unset, so plain `quva lint` / `quva audit`
/// stay quiet about budgets nobody declared. QV403 and QV404 guard
/// intrinsic pathologies and are always armed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBudget {
    /// The cost model to evaluate under.
    pub model: CostModel,
    /// Deadline to check the envelope against (QV401); `None` disables.
    pub deadline_ms: Option<u64>,
    /// Trial budget of the job under audit (QV401's Monte-Carlo term
    /// and QV402's sample size); `None` means compile-only.
    pub trials: Option<u64>,
    /// Requested 95 % confidence-interval half-width (QV402); `None`
    /// disables.
    pub ci_half_width: Option<f64>,
    /// QV403 fires when worst-case SWAP events exceed this multiple of
    /// the source program's own events.
    pub swap_blowup_ratio: f64,
}

impl Default for CostBudget {
    fn default() -> Self {
        CostBudget {
            model: CostModel::default(),
            deadline_ms: None,
            trials: None,
            ci_half_width: None,
            swap_blowup_ratio: 16.0,
        }
    }
}

impl CostBudget {
    /// The trials needed for a 95 % CI half-width of `w` at the
    /// worst-case success rate p = 0.5: `n ≥ (1/w)²` (half-width
    /// ≈ 2·√(p(1−p)/n) = 1/√n).
    pub fn trials_needed(w: f64) -> u64 {
        if w <= 0.0 {
            return u64::MAX;
        }
        (1.0 / (w * w)).ceil() as u64
    }
}

impl CompiledPass for CostBudget {
    fn name(&self) -> &'static str {
        "cost-budget"
    }

    fn run(&self, cx: &CompiledContext<'_>, out: &mut Vec<Diagnostic>) {
        let trials = self.trials.unwrap_or(0);
        let envelope = envelope_of(cx.device, cx.source, trials, &self.model);

        if let Some(deadline_ms) = self.deadline_ms {
            if envelope.infeasible_for(deadline_ms) {
                out.push(Diagnostic::new(
                    LintCode::DeadlineInfeasibleJob,
                    None,
                    format!(
                        "optimistic cost bound {} ms exceeds the {} ms deadline (compile ≥ {:.0} ns, \
                         {} trials ≥ {:.0} ns)",
                        envelope.predicted_ms_lo(),
                        deadline_ms,
                        envelope.compile_ns.lo,
                        trials,
                        envelope.mc_ns.lo,
                    ),
                ));
            }
        }

        if let (Some(trials), Some(w)) = (self.trials, self.ci_half_width) {
            let needed = CostBudget::trials_needed(w);
            if trials < needed {
                out.push(Diagnostic::new(
                    LintCode::TrialBudgetTooSmall,
                    None,
                    format!(
                        "{trials} trials cannot reach a ±{w} CI half-width; ≥ {needed} trials needed \
                         at worst-case variance"
                    ),
                ));
            }
        }

        let swap_events_hi = envelope.events_hi - envelope.events_lo;
        if envelope.events_lo > 0
            && swap_events_hi as f64 > self.swap_blowup_ratio * envelope.events_lo as f64
        {
            out.push(Diagnostic::new(
                LintCode::PathologicalRoutingBlowup,
                None,
                format!(
                    "worst-case routing adds {swap_events_hi} fault events to a {}-event program \
                     (> {}x): the topology's diameter makes static admission bounds degenerate",
                    envelope.events_lo, self.swap_blowup_ratio,
                ),
            ));
        }

        if envelope.response_bytes.hi > FRAME_BUDGET_BYTES {
            out.push(Diagnostic::new(
                LintCode::ResponseExceedsFrameBudget,
                None,
                format!(
                    "pessimistic response bound {:.0} B exceeds the {:.0} B frame budget",
                    envelope.response_bytes.hi, FRAME_BUDGET_BYTES,
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::CompiledContext;
    use quva::MappingPolicy;
    use quva_benchmarks::Benchmark;
    use quva_circuit::Cbit;
    use quva_device::{Device, Topology};

    fn envelope_for(bench: &Benchmark, device: &Device, trials: u64) -> CostEnvelope {
        cost_envelope(device, bench.circuit(), trials, &CostModel::default())
    }

    #[test]
    fn intervals_are_ordered_and_contain_the_point() {
        let device = Device::ibm_q20();
        let e = envelope_for(&Benchmark::bv(16), &device, 100_000);
        for iv in [e.compile_ns, e.mc_ns, e.peak_bytes, e.response_bytes] {
            assert!(iv.lo >= 0.0 && iv.lo <= iv.hi, "{iv:?}");
        }
        assert!(e.events_lo <= e.events_hi);
        assert!(e.total_ns().lo >= e.compile_ns.lo);
    }

    #[test]
    fn zero_trials_zeroes_the_mc_term() {
        let device = Device::ibm_q20();
        let e = envelope_for(&Benchmark::bv(16), &device, 0);
        assert_eq!(e.mc_ns, CostInterval::zero());
        assert!(e.compile_ns.hi > 0.0);
    }

    #[test]
    fn mc_bound_scales_with_trials() {
        let device = Device::ibm_q20();
        let small = envelope_for(&Benchmark::bv(16), &device, 1_000);
        let large = envelope_for(&Benchmark::bv(16), &device, 1_000_000);
        assert!(large.mc_ns.lo > small.mc_ns.lo * 500.0);
        assert!(large.mc_ns.hi > small.mc_ns.hi);
    }

    #[test]
    fn events_bound_contains_the_compiled_reality() {
        // The pre-compile event interval must contain the events the
        // compiled circuit actually produces, for every policy.
        let device = Device::ibm_q20();
        for bench in quva_benchmarks::table1_suite() {
            let e = envelope_for(&bench, &device, 0);
            for policy in [
                MappingPolicy::baseline(),
                MappingPolicy::vqm(),
                MappingPolicy::vqm_hop_limited(),
                MappingPolicy::vqa_vqm(),
            ] {
                let compiled = policy
                    .compile(bench.circuit(), &device)
                    .unwrap_or_else(|err| panic!("{} / {}: {err}", policy.name(), bench.name()));
                let actual: u64 = compiled.physical().gates().iter().map(event_weight).sum();
                assert!(
                    e.events_lo <= actual && actual <= e.events_hi,
                    "{} / {}: {actual} outside [{}, {}]",
                    policy.name(),
                    bench.name(),
                    e.events_lo,
                    e.events_hi,
                );
            }
        }
    }

    #[test]
    fn per_qubit_events_charges_operands() {
        let mut c: Circuit<PhysQubit> = Circuit::with_cbits(3, 3);
        c.h(PhysQubit(0));
        c.cnot(PhysQubit(0), PhysQubit(1));
        c.swap(PhysQubit(1), PhysQubit(2));
        c.measure(PhysQubit(2), Cbit(0));
        let events = per_qubit_events(&c, 4);
        assert_eq!(events, vec![2, 4, 4, 0]);
    }

    #[test]
    fn memo_returns_identical_envelopes_and_keys_do_not_alias() {
        let device = Device::ibm_q20();
        let bench = Benchmark::bv(8);
        let model = CostModel::default();
        let first = envelope_of(&device, bench.circuit(), 1_000, &model);
        let again = envelope_of(&device, bench.circuit(), 1_000, &model);
        assert_eq!(first, again);
        // different trial budget: different key
        let more = envelope_of(&device, bench.circuit(), 2_000, &model);
        assert!(more.mc_ns.hi > first.mc_ns.hi);
        // different model: different key
        let recal = CostModel {
            ns_per_event: 123.0,
            ..model
        };
        let scaled = envelope_of(&device, bench.circuit(), 1_000, &recal);
        assert!(scaled.mc_ns.lo > first.mc_ns.lo);
    }

    #[test]
    fn from_bench_calibrates_ns_per_event() {
        let json = r#"{
            "schema": "quva-bench-sim/v1",
            "results": [
                {"name": "sequential", "threads": 1, "ns": 75000000, "ns_per_trial": 75.0},
                {"name": "threads-4", "threads": 4, "ns": 20000000, "ns_per_trial": 20.0}
            ]
        }"#;
        let model = CostModel::from_bench(json, 50.0).unwrap();
        assert!((model.ns_per_event - 1.5).abs() < 1e-12);
        assert_eq!(model.mc_slack, CostModel::default().mc_slack);

        assert!(CostModel::from_bench(json, 0.0).is_err());
        assert!(CostModel::from_bench("{\"schema\": \"other\"}", 50.0).is_err());
        assert!(CostModel::from_bench("{\"schema\": \"quva-bench-sim/v1\"}", 50.0).is_err());
    }

    #[test]
    fn from_bench_v2_calibrates_on_the_bitparallel_row() {
        let json = r#"{
            "schema": "quva-bench-sim/v2",
            "results": [
                {"name": "scalar", "threads": 1, "ns": 80000000, "ns_per_trial": 80.0},
                {"name": "bitparallel", "threads": 1, "ns": 8000000, "ns_per_trial": 8.0,
                 "speedup_vs_scalar": 10.0},
                {"name": "threads-4", "threads": 4, "ns": 8000000, "ns_per_trial": 8.0}
            ]
        }"#;
        let model = CostModel::from_bench(json, 80.0).unwrap();
        assert!(
            (model.ns_per_event - 0.1).abs() < 1e-12,
            "v2 must calibrate on bitparallel, not scalar: got {}",
            model.ns_per_event
        );

        // a v2 file without the production row cannot calibrate
        let missing = r#"{
            "schema": "quva-bench-sim/v2",
            "results": [{"name": "scalar", "threads": 1, "ns": 80000000, "ns_per_trial": 80.0}]
        }"#;
        assert!(CostModel::from_bench(missing, 80.0).is_err());
    }

    fn run_budget(budget: CostBudget, bench: &Benchmark, device: &Device) -> Vec<Diagnostic> {
        let compiled = MappingPolicy::baseline()
            .compile(bench.circuit(), device)
            .unwrap_or_else(|e| panic!("{e}"));
        let cx = CompiledContext {
            source: bench.circuit(),
            device,
            compiled: &compiled,
        };
        let mut out = Vec::new();
        budget.run(&cx, &mut out);
        out
    }

    #[test]
    fn default_budget_is_quiet_on_the_suite() {
        let device = Device::ibm_q20();
        for bench in quva_benchmarks::table1_suite() {
            let out = run_budget(CostBudget::default(), &bench, &device);
            assert!(out.is_empty(), "{}: {out:?}", bench.name());
        }
    }

    #[test]
    fn qv401_fires_on_an_impossible_deadline() {
        let device = Device::ibm_q20();
        let budget = CostBudget {
            deadline_ms: Some(1),
            trials: Some(100_000_000),
            ..CostBudget::default()
        };
        let out = run_budget(budget, &Benchmark::bv(16), &device);
        assert!(
            out.iter().any(|d| d.code() == LintCode::DeadlineInfeasibleJob),
            "{out:?}"
        );
    }

    #[test]
    fn qv401_stays_quiet_on_a_generous_deadline() {
        let device = Device::ibm_q20();
        let budget = CostBudget {
            deadline_ms: Some(3_600_000),
            trials: Some(10_000),
            ..CostBudget::default()
        };
        let out = run_budget(budget, &Benchmark::bv(16), &device);
        assert!(
            !out.iter().any(|d| d.code() == LintCode::DeadlineInfeasibleJob),
            "{out:?}"
        );
    }

    #[test]
    fn qv402_fires_when_trials_cannot_reach_the_width() {
        let device = Device::ibm_q20();
        let budget = CostBudget {
            trials: Some(100),
            ci_half_width: Some(0.01),
            ..CostBudget::default()
        };
        let out = run_budget(budget, &Benchmark::bv(8), &device);
        assert!(
            out.iter().any(|d| d.code() == LintCode::TrialBudgetTooSmall),
            "{out:?}"
        );
        // 10_000 trials reach a 0.01 half-width exactly
        let enough = CostBudget {
            trials: Some(10_000),
            ci_half_width: Some(0.01),
            ..CostBudget::default()
        };
        let out = run_budget(enough, &Benchmark::bv(8), &device);
        assert!(!out.iter().any(|d| d.code() == LintCode::TrialBudgetTooSmall));
    }

    #[test]
    fn qv403_fires_on_a_long_linear_chain() {
        let topo = Topology::linear(30);
        let device = Device::new(topo, |t| {
            quva_device::CalibrationGenerator::new(quva_device::VariationProfile::ibm_q20_paper(), 7)
                .snapshot(t)
        });
        let out = run_budget(CostBudget::default(), &Benchmark::qft(8), &device);
        assert!(
            out.iter()
                .any(|d| d.code() == LintCode::PathologicalRoutingBlowup),
            "{out:?}"
        );
    }

    #[test]
    fn qv404_fires_on_an_oversized_program() {
        let device = Device::ibm_q20();
        let bench = Benchmark::rnd_sd(16, 2_000, 7);
        let out = run_budget(CostBudget::default(), &bench, &device);
        assert!(
            out.iter()
                .any(|d| d.code() == LintCode::ResponseExceedsFrameBudget),
            "{out:?}"
        );
    }

    #[test]
    fn interval_algebra() {
        let a = CostInterval { lo: 1.0, hi: 4.0 };
        let b = CostInterval { lo: 2.0, hi: 3.0 };
        assert_eq!(a.add(&b), CostInterval { lo: 3.0, hi: 7.0 });
        assert_eq!(a.join(&b), CostInterval { lo: 1.0, hi: 4.0 });
        assert!(a.contains(4.0));
        assert!(!a.contains(4.1));
        assert_eq!(CostInterval::point(2.0), CostInterval { lo: 2.0, hi: 2.0 });
    }
}
