//! Static ESP interval analysis: bound the estimated success
//! probability of a routed circuit from calibration error rates alone.
//!
//! Every operation succeeds with probability `1 − e` (a SWAP with
//! `(1 − e)³`, exactly the simulator's failure model), but calibration
//! data drifts between the characterization run and execution. The
//! analysis therefore propagates *intervals*: each error rate `e` is
//! widened to `[e·(1 − δ), min(1, e·(1 + δ))]` for a relative drift
//! uncertainty `δ` ([`EspConfig::drift`]), and success intervals
//! multiply through the circuit.
//!
//! Two products are computed:
//!
//! * the **whole-circuit ESP bound** — one interval over *gates*
//!   (each operation counted once), whose point estimate equals the
//!   simulator's analytic PST under the gate + readout model;
//! * **per-qubit reliability states** via the forward dataflow engine
//!   ([`crate::dataflow`]) — each qubit's interval accumulates every
//!   operation it participates in (two-qubit failures charge both
//!   operands), yielding the error-attribution table that names the
//!   weakest qubits and links.

use quva_circuit::{Circuit, Gate, PhysQubit};
use quva_device::Device;

use crate::dataflow::{run_forward, ForwardAnalysis, JoinSemiLattice};
use crate::diagnostic::{Diagnostic, LintCode};
use crate::pass::{CompiledContext, CompiledPass};

/// Configuration of the ESP interval analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EspConfig {
    /// Relative calibration-drift uncertainty applied to every error
    /// rate: `e` is widened to `[e·(1 − drift), e·(1 + drift)]`
    /// (clamped to `[0, 1]`). The paper's daily-calibration study (§6.5)
    /// motivates the default of 10 %.
    pub drift: f64,
}

impl Default for EspConfig {
    fn default() -> Self {
        EspConfig { drift: 0.10 }
    }
}

/// A closed success-probability interval with its point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EspInterval {
    /// Pessimistic bound (every rate drifted `drift` worse).
    pub lo: f64,
    /// Optimistic bound (every rate drifted `drift` better).
    pub hi: f64,
    /// Point estimate at the calibrated rates — identical to the
    /// simulator's analytic PST under the gate + readout error model.
    pub point: f64,
}

impl EspInterval {
    /// The interval `[1, 1]`: certain success (no operations yet).
    pub fn one() -> Self {
        EspInterval {
            lo: 1.0,
            hi: 1.0,
            point: 1.0,
        }
    }

    /// Whether `p` lies within `[lo, hi]`.
    pub fn contains(&self, p: f64) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// Interval product (independent failure events).
    pub fn mul(&self, other: &EspInterval) -> EspInterval {
        EspInterval {
            lo: self.lo * other.lo,
            hi: self.hi * other.hi,
            point: self.point * other.point,
        }
    }

    /// The success interval of one event with error rate `e` under
    /// drift uncertainty `delta`, raised to `power` repetitions (a SWAP
    /// is three CNOTs).
    fn of_error(e: f64, delta: f64, power: i32) -> EspInterval {
        let e_lo = (e * (1.0 - delta)).clamp(0.0, 1.0);
        let e_hi = (e * (1.0 + delta)).clamp(0.0, 1.0);
        EspInterval {
            lo: (1.0 - e_hi).powi(power),
            hi: (1.0 - e_lo).powi(power),
            point: (1.0 - e).powi(power),
        }
    }
}

impl JoinSemiLattice for EspInterval {
    /// Interval hull: the tightest interval containing both.
    fn join(&self, other: &Self) -> Self {
        EspInterval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            point: self.point.min(other.point),
        }
    }
}

/// The dataflow analysis: per-qubit success-probability intervals.
struct EspAnalysis<'a> {
    device: &'a Device,
    config: EspConfig,
}

impl EspAnalysis<'_> {
    /// The success interval of one gate, or `None` for a two-qubit gate
    /// on an uncoupled/disabled pair (coupler legality reports those;
    /// the ESP analysis skips them to stay total).
    fn gate_interval(&self, gate: &Gate<PhysQubit>) -> Option<EspInterval> {
        let cal = self.device.calibration();
        let delta = self.config.drift;
        match gate {
            Gate::OneQubit { qubit, .. } => Some(EspInterval::of_error(
                cal.one_qubit_error(qubit.index()),
                delta,
                1,
            )),
            Gate::Cnot { control, target } => self
                .device
                .link_error(*control, *target)
                .map(|e| EspInterval::of_error(e, delta, 1)),
            Gate::Swap { a, b } => self
                .device
                .link_error(*a, *b)
                .map(|e| EspInterval::of_error(e, delta, 3)),
            Gate::Measure { qubit, .. } => {
                Some(EspInterval::of_error(cal.readout_error(qubit.index()), delta, 1))
            }
            Gate::Barrier { .. } => None,
        }
    }
}

impl ForwardAnalysis for EspAnalysis<'_> {
    type State = EspInterval;

    fn name(&self) -> &'static str {
        "esp-interval"
    }

    fn boundary(&self, _qubit: usize) -> EspInterval {
        EspInterval::one()
    }

    fn transfer(&self, gate: &Gate<PhysQubit>, _index: usize, inputs: &[EspInterval]) -> Vec<EspInterval> {
        match self.gate_interval(gate) {
            Some(iv) => inputs.iter().map(|s| s.mul(&iv)).collect(),
            None => inputs.to_vec(),
        }
    }
}

/// The whole-circuit static ESP bound of a routed circuit: the product
/// of every operation's success interval (gate + readout model,
/// coherence excluded — matching the policy comparisons of the paper
/// and the Monte-Carlo cross-validation).
///
/// Two-qubit gates on uncoupled or disabled pairs contribute nothing
/// (coupler legality flags them separately).
///
/// # Examples
///
/// ```
/// use quva_analysis::{esp_interval, EspConfig};
/// use quva_circuit::{Cbit, Circuit, PhysQubit};
/// use quva_device::{Calibration, Device, Topology};
///
/// let device = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
/// let mut c: Circuit<PhysQubit> = Circuit::new(2);
/// c.cnot(PhysQubit(0), PhysQubit(1));
/// let esp = esp_interval(&device, &c, &EspConfig { drift: 0.5 });
/// assert!((esp.point - 0.9).abs() < 1e-12);
/// assert!((esp.lo - 0.85).abs() < 1e-12);
/// assert!((esp.hi - 0.95).abs() < 1e-12);
/// ```
pub fn esp_interval(device: &Device, circuit: &Circuit<PhysQubit>, config: &EspConfig) -> EspInterval {
    let analysis = EspAnalysis {
        device,
        config: *config,
    };
    circuit
        .iter()
        .filter_map(|g| analysis.gate_interval(g))
        .fold(EspInterval::one(), |acc, iv| acc.mul(&iv))
}

/// Per-qubit reliability intervals at circuit exit: each physical
/// qubit's interval accumulates every operation it participated in
/// (two-qubit failures charge both operands, so the per-qubit product
/// is *not* the circuit ESP — it is the attribution view).
pub fn per_qubit_esp(device: &Device, circuit: &Circuit<PhysQubit>, config: &EspConfig) -> Vec<EspInterval> {
    let analysis = EspAnalysis {
        device,
        config: *config,
    };
    run_forward(&analysis, circuit, device.num_qubits()).exit
}

/// The ESP reliability pass: computes the whole-circuit bound plus the
/// link attribution and emits [`QV301`]/[`QV302`] findings.
///
/// [`QV301`]: LintCode::DominantWeakLink
/// [`QV302`]: LintCode::LowEspBound
#[derive(Debug, Clone)]
pub struct EspReliability {
    config: EspConfig,
    /// A link triggers [`LintCode::DominantWeakLink`] when it carries
    /// more than this share of the circuit's two-qubit failure weight…
    pub dominance_share: f64,
    /// …and its error rate exceeds this multiple of the device mean.
    pub dominance_error_ratio: f64,
    /// [`LintCode::LowEspBound`] fires when the optimistic bound `hi`
    /// drops below this floor.
    pub esp_floor: f64,
}

impl Default for EspReliability {
    fn default() -> Self {
        EspReliability {
            config: EspConfig::default(),
            dominance_share: 0.4,
            dominance_error_ratio: 2.0,
            esp_floor: 0.05,
        }
    }
}

impl EspReliability {
    /// The pass under a specific drift configuration.
    pub fn with_config(config: EspConfig) -> Self {
        EspReliability {
            config,
            ..EspReliability::default()
        }
    }

    /// The drift configuration in use.
    pub fn config(&self) -> &EspConfig {
        &self.config
    }
}

/// Per-link failure-weight attribution of a routed circuit: for every
/// coupling link used by the circuit, the accumulated failure weight
/// `Σ −ln(1 − e)` (a SWAP charges three CNOT-equivalents) and the use
/// count in CNOT-equivalents.
///
/// Sorted heaviest first (ties by link id), so `[0]` is the weakest
/// link of the compiled circuit.
pub fn link_attribution(device: &Device, circuit: &Circuit<PhysQubit>) -> Vec<LinkAttribution> {
    let topo = device.topology();
    let mut uses = vec![0u64; topo.num_links()];
    for gate in circuit.iter() {
        let (pair, cost) = match gate {
            Gate::Cnot { control, target } => ((*control, *target), 1),
            Gate::Swap { a, b } => ((*a, *b), 3),
            _ => continue,
        };
        if let Some(id) = topo.link_id(pair.0, pair.1) {
            if device.link_enabled(id) {
                uses[id] += cost;
            }
        }
    }
    let mut rows: Vec<LinkAttribution> = uses
        .iter()
        .enumerate()
        .filter(|&(_, &u)| u > 0)
        .map(|(id, &u)| {
            let link = topo.links()[id];
            let e = device.calibration().two_qubit_error(id);
            LinkAttribution {
                link_id: id,
                a: link.low(),
                b: link.high(),
                uses: u,
                error: e,
                weight: u as f64 * -(1.0 - e).max(f64::MIN_POSITIVE).ln(),
            }
        })
        .collect();
    rows.sort_by(|x, y| y.weight.total_cmp(&x.weight).then(x.link_id.cmp(&y.link_id)));
    rows
}

/// One row of the link attribution table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkAttribution {
    /// The topology link id.
    pub link_id: usize,
    /// Lower-numbered endpoint.
    pub a: PhysQubit,
    /// Higher-numbered endpoint.
    pub b: PhysQubit,
    /// CNOT-equivalent uses (a SWAP counts three).
    pub uses: u64,
    /// The link's calibrated two-qubit error rate.
    pub error: f64,
    /// Accumulated failure weight `uses · −ln(1 − e)`.
    pub weight: f64,
}

impl CompiledPass for EspReliability {
    fn name(&self) -> &'static str {
        "esp-reliability"
    }

    fn run(&self, cx: &CompiledContext<'_>, out: &mut Vec<Diagnostic>) {
        let circuit = cx.compiled.physical();
        let esp = esp_interval(cx.device, circuit, &self.config);
        if esp.hi < self.esp_floor {
            out.push(Diagnostic::new(
                LintCode::LowEspBound,
                None,
                format!(
                    "static ESP is at most {:.4} (point {:.4}, floor {}): trials are mostly noise",
                    esp.hi, esp.point, self.esp_floor
                ),
            ));
        }

        let links = link_attribution(cx.device, circuit);
        let total: f64 = links.iter().map(|l| l.weight).sum();
        if let Some(top) = links.first() {
            let share = if total > 0.0 { top.weight / total } else { 0.0 };
            let mean = cx.device.calibration().mean_two_qubit_error();
            if share > self.dominance_share && mean > 0.0 && top.error >= self.dominance_error_ratio * mean {
                out.push(Diagnostic::new(
                    LintCode::DominantWeakLink,
                    None,
                    format!(
                        "link {}\u{2013}{} (error {:.4}, {:.1}x device mean) carries {:.0}% of the \
                         circuit's two-qubit failure weight",
                        top.a,
                        top.b,
                        top.error,
                        top.error / mean,
                        100.0 * share
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva_circuit::Cbit;
    use quva_device::{Calibration, Topology};

    fn device(e2q: f64, e1q: f64, ero: f64) -> Device {
        Device::new(Topology::linear(3), |t| Calibration::uniform(t, e2q, e1q, ero))
    }

    fn bell() -> Circuit<PhysQubit> {
        let mut c: Circuit<PhysQubit> = Circuit::with_cbits(3, 2);
        c.h(PhysQubit(0));
        c.cnot(PhysQubit(0), PhysQubit(1));
        c.measure(PhysQubit(0), Cbit(0));
        c.measure(PhysQubit(1), Cbit(1));
        c
    }

    #[test]
    fn point_matches_profile_product() {
        let dev = device(0.1, 0.01, 0.02);
        let esp = esp_interval(&dev, &bell(), &EspConfig::default());
        let expected = 0.99 * 0.9 * 0.98 * 0.98;
        assert!((esp.point - expected).abs() < 1e-12, "{esp:?}");
        assert!(esp.lo <= esp.point && esp.point <= esp.hi);
    }

    #[test]
    fn zero_drift_collapses_interval() {
        let dev = device(0.1, 0.01, 0.02);
        let esp = esp_interval(&dev, &bell(), &EspConfig { drift: 0.0 });
        assert_eq!(esp.lo.to_bits(), esp.point.to_bits());
        assert_eq!(esp.hi.to_bits(), esp.point.to_bits());
    }

    #[test]
    fn wider_drift_widens_interval() {
        let dev = device(0.1, 0.01, 0.02);
        let narrow = esp_interval(&dev, &bell(), &EspConfig { drift: 0.05 });
        let wide = esp_interval(&dev, &bell(), &EspConfig { drift: 0.2 });
        assert!(wide.lo < narrow.lo && wide.hi > narrow.hi);
        assert_eq!(wide.point.to_bits(), narrow.point.to_bits());
    }

    #[test]
    fn swap_charges_three_cnots() {
        let dev = device(0.1, 0.0, 0.0);
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        c.swap(PhysQubit(0), PhysQubit(1));
        let esp = esp_interval(&dev, &c, &EspConfig { drift: 0.0 });
        assert!((esp.point - 0.9f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn per_qubit_states_charge_both_operands() {
        let dev = device(0.1, 0.0, 0.0);
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        c.cnot(PhysQubit(0), PhysQubit(1));
        let states = per_qubit_esp(&dev, &c, &EspConfig { drift: 0.0 });
        assert!((states[0].point - 0.9).abs() < 1e-12);
        assert!((states[1].point - 0.9).abs() < 1e-12);
        assert_eq!(states[2].point, 1.0, "untouched qubit stays at boundary");
    }

    #[test]
    fn link_attribution_ranks_weak_links_first() {
        let topo = Topology::linear(3);
        let dev = Device::new(topo, |t| {
            let mut c = Calibration::uniform(t, 0.02, 0.0, 0.0);
            c.set_two_qubit_error(1, 0.3); // link 1–2 is terrible
            c
        });
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        c.cnot(PhysQubit(0), PhysQubit(1));
        c.cnot(PhysQubit(1), PhysQubit(2));
        let rows = link_attribution(&dev, &c);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].link_id, 1, "weakest link must rank first");
        assert!(rows[0].weight > rows[1].weight);
        assert_eq!(rows[0].uses, 1);
    }

    #[test]
    fn dominant_weak_link_fires_on_corruption() {
        use quva_circuit::Qubit;
        let topo = Topology::linear(4);
        let dev = Device::new(topo, |t| {
            let mut c = Calibration::uniform(t, 0.02, 0.0, 0.0);
            c.set_two_qubit_error(1, 0.4);
            c
        });
        let mut source = Circuit::new(4);
        source.cnot(Qubit(0), Qubit(1));
        source.cnot(Qubit(1), Qubit(2));
        source.cnot(Qubit(2), Qubit(3));
        let mut physical: Circuit<PhysQubit> = Circuit::new(4);
        physical.cnot(PhysQubit(0), PhysQubit(1));
        physical.cnot(PhysQubit(1), PhysQubit(2));
        physical.cnot(PhysQubit(2), PhysQubit(3));
        let mapping = quva::Mapping::identity(4, 4);
        let compiled = quva::CompiledCircuit::from_parts(physical, mapping.clone(), mapping, 0);
        let cx = CompiledContext {
            source: &source,
            device: &dev,
            compiled: &compiled,
        };
        let mut out = Vec::new();
        EspReliability::default().run(&cx, &mut out);
        assert!(
            out.iter().any(|d| d.code() == LintCode::DominantWeakLink),
            "{out:?}"
        );
    }

    #[test]
    fn low_esp_bound_fires_on_hopeless_circuit() {
        let dev = device(0.3, 0.0, 0.0);
        let mut source = Circuit::new(2);
        let mut physical: Circuit<PhysQubit> = Circuit::new(3);
        for _ in 0..10 {
            source.cnot(quva_circuit::Qubit(0), quva_circuit::Qubit(1));
            physical.cnot(PhysQubit(0), PhysQubit(1));
        }
        let mapping = quva::Mapping::identity(2, 3);
        let compiled = quva::CompiledCircuit::from_parts(physical, mapping.clone(), mapping, 0);
        let cx = CompiledContext {
            source: &source,
            device: &dev,
            compiled: &compiled,
        };
        let mut out = Vec::new();
        EspReliability::default().run(&cx, &mut out);
        assert!(out.iter().any(|d| d.code() == LintCode::LowEspBound), "{out:?}");
    }
}
