//! Redundancy lints: gates that demonstrably waste error budget.

use quva_circuit::{Circuit, Gate, QubitId};
use quva_device::Device;

use crate::diagnostic::{Diagnostic, LintCode, Span};
use crate::pass::{CircuitPass, CompiledContext, CompiledPass};

/// Logical-circuit redundancy: adjacent self-canceling pairs
/// ([`QV201`]) and SWAPs with no observable effect ([`QV202`]).
///
/// [`QV201`]: LintCode::RedundantPair
/// [`QV202`]: LintCode::ZeroEffectSwap
#[derive(Debug, Default)]
pub struct Redundancy;

impl CircuitPass for Redundancy {
    fn name(&self) -> &'static str {
        "redundancy"
    }

    fn run(&self, circuit: &Circuit, _device: Option<&Device>, out: &mut Vec<Diagnostic>) {
        find_redundancies(circuit, out);
    }
}

/// The same lints over the compiled physical stream, where every
/// useless gate costs real fidelity.
#[derive(Debug, Default)]
pub struct PhysicalRedundancy;

impl CompiledPass for PhysicalRedundancy {
    fn name(&self) -> &'static str {
        "physical-redundancy"
    }

    fn run(&self, cx: &CompiledContext<'_>, out: &mut Vec<Diagnostic>) {
        find_redundancies(cx.compiled.physical(), out);
    }
}

pub(crate) fn find_redundancies<Q: QubitId>(circuit: &Circuit<Q>, out: &mut Vec<Diagnostic>) {
    let gates = circuit.gates();

    // QV201: a pair cancels when the *immediately preceding* gate on
    // every operand is one and the same gate, over the same qubit set,
    // and the two are exact inverses. Barriers break adjacency; a
    // matched pair is consumed so chains report floor(n/2) pairs.
    let mut prev: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
    for (i, g) in gates.iter().enumerate() {
        if g.is_barrier() {
            for q in g.qubits() {
                prev[q.index()] = None;
            }
            continue;
        }
        let qs = g.qubits();
        let shared_prev = match qs.first().map(|q| prev[q.index()]) {
            Some(Some(p)) if qs.iter().all(|q| prev[q.index()] == Some(p)) => Some(p),
            _ => None,
        };
        if let Some(p) = shared_prev {
            if same_qubit_set(&gates[p], g) && cancels(&gates[p], g) {
                out.push(Diagnostic::new(
                    LintCode::RedundantPair,
                    Some(Span::range(p, i)),
                    format!("{} and {g} cancel exactly", gates[p]),
                ));
                for q in qs {
                    prev[q.index()] = None;
                }
                continue;
            }
        }
        for q in qs {
            prev[q.index()] = Some(i);
        }
    }

    // QV202: a SWAP after which neither operand is ever touched again
    // has no observable effect.
    let mut last_touch: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
    for (i, g) in gates.iter().enumerate() {
        if g.is_barrier() {
            continue;
        }
        for q in g.qubits() {
            last_touch[q.index()] = Some(i);
        }
    }
    for (i, g) in gates.iter().enumerate() {
        if let Gate::Swap { a, b } = g {
            if last_touch[a.index()] == Some(i) && last_touch[b.index()] == Some(i) {
                out.push(Diagnostic::new(
                    LintCode::ZeroEffectSwap,
                    Some(Span::gate(i)),
                    format!("{g}: neither operand is used or measured afterwards"),
                ));
            }
        }
    }
}

fn same_qubit_set<Q: QubitId>(a: &Gate<Q>, b: &Gate<Q>) -> bool {
    let (mut qa, mut qb) = (a.qubits(), b.qubits());
    qa.sort_unstable();
    qb.sort_unstable();
    qa == qb
}

fn cancels<Q: QubitId>(first: &Gate<Q>, second: &Gate<Q>) -> bool {
    match (first, second) {
        (Gate::OneQubit { kind: ka, qubit: qa }, Gate::OneQubit { kind: kb, qubit: qb }) => {
            qa == qb && *kb == ka.inverse()
        }
        (
            Gate::Cnot {
                control: c1,
                target: t1,
            },
            Gate::Cnot {
                control: c2,
                target: t2,
            },
        ) => c1 == c2 && t1 == t2,
        (Gate::Swap { a: a1, b: b1 }, Gate::Swap { a: a2, b: b2 }) => {
            (a1 == a2 && b1 == b2) || (a1 == b2 && b1 == a2)
        }
        _ => false,
    }
}
