//! Permutation and sequence consistency: replaying the compiled gate
//! stream from the initial mapping must (a) consume exactly the logical
//! program under the evolving mapping and (b) land on the claimed final
//! mapping.

use std::collections::VecDeque;

use quva_circuit::Gate;

use crate::diagnostic::{Diagnostic, LintCode, Span};
use crate::pass::{CompiledContext, CompiledPass};

/// Replays router-inserted SWAPs from `initial_mapping` and proves the
/// result equals `final_mapping` ([`QV003`]), while matching every
/// non-SWAP physical gate against the logical program under the
/// evolving mapping ([`QV004`], [`QV007`]). Shape mismatches between
/// circuit, mappings, and device abort the replay with [`QV006`].
///
/// Program SWAPs are distinguished from router-inserted ones by the
/// source program itself: a physical `swap P,Q` realizes a program SWAP
/// exactly when the *same* source SWAP gate is the next pending
/// operation of both mapped program qubits. Program SWAPs exchange
/// register contents but leave the mapping untouched (homes stay);
/// inserted SWAPs move the mapping.
///
/// [`QV003`]: LintCode::PermutationMismatch
/// [`QV004`]: LintCode::SequenceMismatch
/// [`QV006`]: LintCode::WidthExceeded
/// [`QV007`]: LintCode::UnmappedOperand
#[derive(Debug, Default)]
pub struct PermutationConsistency;

impl CompiledPass for PermutationConsistency {
    fn name(&self) -> &'static str {
        "permutation-consistency"
    }

    fn run(&self, cx: &CompiledContext<'_>, out: &mut Vec<Diagnostic>) {
        let source = cx.source;
        let compiled = cx.compiled;
        let initial = compiled.initial_mapping();
        let final_mapping = compiled.final_mapping();

        // Shape checks first: a replay over mismatched shapes would
        // index out of range, so any failure aborts the pass.
        let mut shape_ok = true;
        if initial.num_prog() != source.num_qubits() {
            out.push(Diagnostic::new(
                LintCode::WidthExceeded,
                None,
                format!(
                    "initial mapping covers {} program qubits, source circuit has {}",
                    initial.num_prog(),
                    source.num_qubits()
                ),
            ));
            shape_ok = false;
        }
        if initial.num_phys() != cx.device.num_qubits() {
            out.push(Diagnostic::new(
                LintCode::WidthExceeded,
                None,
                format!(
                    "initial mapping spans {} physical qubits, device has {}",
                    initial.num_phys(),
                    cx.device.num_qubits()
                ),
            ));
            shape_ok = false;
        }
        if final_mapping.num_prog() != initial.num_prog() || final_mapping.num_phys() != initial.num_phys() {
            out.push(Diagnostic::new(
                LintCode::WidthExceeded,
                None,
                "initial and final mappings have different shapes".to_string(),
            ));
            shape_ok = false;
        }
        if !shape_ok {
            return;
        }

        // Per-program-qubit queues of pending source gate indices. The
        // matching is order-independent across qubits but preserves
        // each qubit's own dependency order, which is exactly the
        // freedom layer-ordered emission has.
        let mut pending: Vec<VecDeque<usize>> = vec![VecDeque::new(); source.num_qubits()];
        for (i, g) in source.iter().enumerate() {
            if g.is_barrier() {
                continue;
            }
            for q in g.qubits() {
                pending[q.index()].push_back(i);
            }
        }

        let mut mapping = initial.clone();
        let mut sequence_ok = true;

        'replay: for (i, gate) in compiled.physical().iter().enumerate() {
            if gate.is_barrier() {
                continue;
            }
            for p in gate.qubits() {
                if p.index() >= mapping.num_phys() {
                    out.push(Diagnostic::new(
                        LintCode::WidthExceeded,
                        Some(Span::gate(i)),
                        format!("{gate} addresses a physical qubit outside the mapping"),
                    ));
                    sequence_ok = false;
                    break 'replay;
                }
            }
            match gate {
                Gate::Swap { a: pa, b: pb } => {
                    if pa == pb {
                        out.push(Diagnostic::new(
                            LintCode::SequenceMismatch,
                            Some(Span::gate(i)),
                            format!("{gate} has identical operands"),
                        ));
                        sequence_ok = false;
                        break 'replay;
                    }
                    // A program SWAP iff one source SWAP gate is the
                    // next pending operation of both occupants.
                    let program_swap = match (mapping.prog_of(*pa), mapping.prog_of(*pb)) {
                        (Some(qa), Some(qb)) => {
                            match (pending[qa.index()].front(), pending[qb.index()].front()) {
                                (Some(&ia), Some(&ib)) if ia == ib => {
                                    matches!(&source.gates()[ia], Gate::Swap { a, b }
                                        if (*a == qa && *b == qb) || (*a == qb && *b == qa))
                                    .then_some((qa, qb))
                                }
                                _ => None,
                            }
                        }
                        _ => None,
                    };
                    match program_swap {
                        Some((qa, qb)) => {
                            // register contents exchange, homes stay
                            pending[qa.index()].pop_front();
                            pending[qb.index()].pop_front();
                        }
                        None => mapping.apply_swap(*pa, *pb),
                    }
                }
                Gate::OneQubit { kind, qubit: p } => {
                    let Some(q) = mapping.prog_of(*p) else {
                        out.push(unmapped(i, gate, *p));
                        sequence_ok = false;
                        break 'replay;
                    };
                    let matched = pending[q.index()].front().is_some_and(|&si| {
                        matches!(&source.gates()[si], Gate::OneQubit { kind: sk, qubit: sq }
                            if sk == kind && *sq == q)
                    });
                    if matched {
                        pending[q.index()].pop_front();
                    } else {
                        out.push(mismatch(i, gate, q));
                        sequence_ok = false;
                        break 'replay;
                    }
                }
                Gate::Measure { qubit: p, cbit } => {
                    let Some(q) = mapping.prog_of(*p) else {
                        out.push(unmapped(i, gate, *p));
                        sequence_ok = false;
                        break 'replay;
                    };
                    let matched = pending[q.index()].front().is_some_and(|&si| {
                        matches!(&source.gates()[si], Gate::Measure { qubit: sq, cbit: sc }
                            if *sq == q && sc == cbit)
                    });
                    if matched {
                        pending[q.index()].pop_front();
                    } else {
                        out.push(mismatch(i, gate, q));
                        sequence_ok = false;
                        break 'replay;
                    }
                }
                Gate::Cnot {
                    control: pc,
                    target: pt,
                } => {
                    let (qc, qt) = match (mapping.prog_of(*pc), mapping.prog_of(*pt)) {
                        (Some(qc), Some(qt)) => (qc, qt),
                        (None, _) => {
                            out.push(unmapped(i, gate, *pc));
                            sequence_ok = false;
                            break 'replay;
                        }
                        (_, None) => {
                            out.push(unmapped(i, gate, *pt));
                            sequence_ok = false;
                            break 'replay;
                        }
                    };
                    let matched = match (pending[qc.index()].front(), pending[qt.index()].front()) {
                        (Some(&ia), Some(&ib)) if ia == ib => {
                            matches!(&source.gates()[ia], Gate::Cnot { control, target }
                                if *control == qc && *target == qt)
                        }
                        _ => false,
                    };
                    if matched {
                        pending[qc.index()].pop_front();
                        pending[qt.index()].pop_front();
                    } else {
                        out.push(mismatch(i, gate, qc));
                        sequence_ok = false;
                        break 'replay;
                    }
                }
                Gate::Barrier { .. } => {}
            }
        }

        if sequence_ok {
            let leftover: usize = pending.iter().map(VecDeque::len).sum();
            if leftover > 0 {
                out.push(Diagnostic::new(
                    LintCode::SequenceMismatch,
                    None,
                    format!("{leftover} source gate operand(s) missing from the compiled stream"),
                ));
                sequence_ok = false;
            }
        }

        // A sequence failure leaves the replayed mapping meaningless, so
        // the final-mapping comparison only runs on a clean sequence.
        if sequence_ok && &mapping != final_mapping {
            out.push(Diagnostic::new(
                LintCode::PermutationMismatch,
                None,
                format!("replayed SWAPs yield {mapping}, compiler claims {final_mapping}"),
            ));
        }
    }
}

fn unmapped<Q: std::fmt::Display, G: std::fmt::Display>(i: usize, gate: G, p: Q) -> Diagnostic {
    Diagnostic::new(
        LintCode::UnmappedOperand,
        Some(Span::gate(i)),
        format!("{gate}: no program qubit occupies {p} at this point"),
    )
}

fn mismatch<Q: std::fmt::Display, G: std::fmt::Display>(i: usize, gate: G, q: Q) -> Diagnostic {
    Diagnostic::new(
        LintCode::SequenceMismatch,
        Some(Span::gate(i)),
        format!("{gate} is not the next pending operation of program qubit {q}"),
    )
}
