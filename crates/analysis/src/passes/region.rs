//! Weak-region lint (missed-VQA): score the subgraph the compiler
//! allocated into against the strongest k-region of the device.
//!
//! VQA (paper §6, Algorithm 2) allocates program qubits into the
//! connected region with the highest aggregate link strength. This pass
//! recomputes that search on the live device and compares the *actual*
//! allocation — the physical qubits occupied by the initial mapping —
//! on the same internal-link-success scale. An allocation much weaker
//! than the best available region is a missed-VQA finding ([`QV305`]).
//!
//! [`QV305`]: LintCode::WeakRegionAllocation

use quva_circuit::PhysQubit;
use quva_device::{best_region, region_internal_success};

use crate::diagnostic::{Diagnostic, LintCode};
use crate::pass::{CompiledContext, CompiledPass};

/// The weak-region pass: emits [`QV305`] when the allocated region's
/// internal success mass falls below [`WeakRegion::ratio_threshold`] of
/// the best k-region's.
///
/// [`QV305`]: LintCode::WeakRegionAllocation
#[derive(Debug, Clone)]
pub struct WeakRegion {
    /// Minimum acceptable ratio of allocated-region strength to
    /// best-region strength.
    pub ratio_threshold: f64,
}

impl Default for WeakRegion {
    fn default() -> Self {
        WeakRegion {
            ratio_threshold: 0.75,
        }
    }
}

/// The physical qubits the initial mapping occupies, ascending.
pub fn allocated_region(cx: &CompiledContext<'_>) -> Vec<PhysQubit> {
    let mapping = cx.compiled.initial_mapping();
    let mut region: Vec<PhysQubit> = (0..mapping.num_phys() as u32)
        .map(PhysQubit)
        .filter(|&p| mapping.prog_of(p).is_some())
        .collect();
    region.sort_by_key(|p| p.index());
    region
}

impl CompiledPass for WeakRegion {
    fn name(&self) -> &'static str {
        "weak-region"
    }

    fn run(&self, cx: &CompiledContext<'_>, out: &mut Vec<Diagnostic>) {
        if cx.compiled.initial_mapping().num_phys() != cx.device.num_qubits() {
            return; // shape mismatch; QV006 covers it
        }
        let region = allocated_region(cx);
        let k = region.len();
        if k < 2 {
            return; // no internal links to score
        }
        let allocated = region_internal_success(cx.device, &region);
        let Some((best, best_score)) = best_region(cx.device, k) else {
            return; // no connected k-region exists at all
        };
        if best_score <= 0.0 {
            return;
        }
        let ratio = allocated / best_score;
        if ratio < self.ratio_threshold {
            let preview: Vec<String> = best.iter().take(6).map(|p| p.to_string()).collect();
            out.push(Diagnostic::new(
                LintCode::WeakRegionAllocation,
                None,
                format!(
                    "allocated region has internal strength {:.3}, {:.0}% of the best {}-qubit \
                     region's {:.3} (strongest region starts {}{})",
                    allocated,
                    100.0 * ratio,
                    k,
                    best_score,
                    preview.join(", "),
                    if best.len() > 6 { ", ..." } else { "" }
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva::{CompiledCircuit, Mapping};
    use quva_circuit::{Circuit, Qubit};
    use quva_device::{Calibration, Device, Topology};

    /// A 6-qubit line whose right half (3–4–5) is pristine and left half
    /// (0–1–2) is terrible.
    fn split_device() -> Device {
        Device::new(Topology::linear(6), |t| {
            let mut c = Calibration::uniform(t, 0.005, 0.0, 0.0);
            c.set_two_qubit_error(0, 0.3); // 0–1
            c.set_two_qubit_error(1, 0.3); // 1–2
            c.set_two_qubit_error(2, 0.3); // 2–3 (bridge)
            c
        })
    }

    fn compiled_on(phys: [u32; 2]) -> (Circuit, CompiledCircuit) {
        let mut source = Circuit::new(2);
        source.cnot(Qubit(0), Qubit(1));
        let mut physical: Circuit<PhysQubit> = Circuit::new(6);
        physical.cnot(PhysQubit(phys[0]), PhysQubit(phys[1]));
        let mapping =
            Mapping::from_assignment(2, 6, |q| PhysQubit(phys[q.0 as usize])).expect("distinct targets");
        let compiled = CompiledCircuit::from_parts(physical, mapping.clone(), mapping, 0);
        (source, compiled)
    }

    fn run_pass(dev: &Device, source: &Circuit, compiled: &CompiledCircuit) -> Vec<Diagnostic> {
        let cx = CompiledContext {
            source,
            device: dev,
            compiled,
        };
        let mut out = Vec::new();
        WeakRegion::default().run(&cx, &mut out);
        out
    }

    #[test]
    fn weak_allocation_is_flagged() {
        let dev = split_device();
        let (source, compiled) = compiled_on([0, 1]); // the 0.3-error link
        let out = run_pass(&dev, &source, &compiled);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code(), LintCode::WeakRegionAllocation);
    }

    #[test]
    fn strong_allocation_is_quiet() {
        let dev = split_device();
        let (source, compiled) = compiled_on([4, 5]); // pristine link
        let out = run_pass(&dev, &source, &compiled);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn single_qubit_allocation_is_quiet() {
        let dev = split_device();
        let mut source = Circuit::new(1);
        source.h(Qubit(0));
        let mut physical: Circuit<PhysQubit> = Circuit::new(6);
        physical.h(PhysQubit(0));
        let mapping = Mapping::from_assignment(1, 6, |_| PhysQubit(0)).expect("one target");
        let compiled = CompiledCircuit::from_parts(physical, mapping.clone(), mapping, 0);
        let out = run_pass(&dev, &source, &compiled);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn allocated_region_lists_occupied_qubits() {
        let dev = split_device();
        let (source, compiled) = compiled_on([4, 2]);
        let cx = CompiledContext {
            source: &source,
            device: &dev,
            compiled: &compiled,
        };
        assert_eq!(allocated_region(&cx), vec![PhysQubit(2), PhysQubit(4)]);
    }
}
