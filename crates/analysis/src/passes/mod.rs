//! The built-in static passes.
//!
//! Each module hosts one concern; [`crate::PassRegistry::standard`]
//! wires them all up in a fixed order.

pub mod calibration;
pub mod cost;
pub mod coupler;
pub mod decoherence;
pub mod esp;
pub mod liveness;
pub mod measurement;
pub mod permutation;
pub mod redundancy;
pub mod region;
pub mod routing;
