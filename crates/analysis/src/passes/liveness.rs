//! Qubit liveness: register width, unused-but-allocated qubits, and
//! operations on already-measured state.

use quva_circuit::{Circuit, Gate, QubitId};
use quva_device::Device;

use crate::diagnostic::{Diagnostic, LintCode, Span};
use crate::pass::{CircuitPass, CompiledContext, CompiledPass};

/// Logical-circuit liveness: flags circuits wider than the device
/// ([`QV006`]), allocated-but-unused qubits ([`QV101`]), and
/// use-after-measure ([`QV005`] / [`QV105`]).
///
/// [`QV005`]: LintCode::UseAfterMeasure
/// [`QV006`]: LintCode::WidthExceeded
/// [`QV101`]: LintCode::UnusedQubit
/// [`QV105`]: LintCode::SwapAfterMeasure
#[derive(Debug, Default)]
pub struct QubitLiveness;

impl CircuitPass for QubitLiveness {
    fn name(&self) -> &'static str {
        "qubit-liveness"
    }

    fn run(&self, circuit: &Circuit, device: Option<&Device>, out: &mut Vec<Diagnostic>) {
        if let Some(dev) = device {
            if circuit.num_qubits() > dev.num_qubits() {
                out.push(Diagnostic::new(
                    LintCode::WidthExceeded,
                    None,
                    format!(
                        "circuit uses {} qubits, device has {}",
                        circuit.num_qubits(),
                        dev.num_qubits()
                    ),
                ));
            }
        }
        if !circuit.is_empty() {
            let mut used = vec![false; circuit.num_qubits()];
            for q in circuit.used_qubits() {
                used[q.index()] = true;
            }
            for (q, &u) in used.iter().enumerate() {
                if !u {
                    out.push(Diagnostic::new(
                        LintCode::UnusedQubit,
                        None,
                        format!("qubit q{q} is allocated but never referenced"),
                    ));
                }
            }
        }
        use_after_measure(circuit, out);
    }
}

/// Physical-circuit liveness: use-after-measure over the compiled gate
/// stream, with measured state tracked *through* SWAPs (a routing SWAP
/// moving measured state is only the [`QV105`] warning; any other gate
/// touching it is the [`QV005`] error).
///
/// [`QV005`]: LintCode::UseAfterMeasure
/// [`QV105`]: LintCode::SwapAfterMeasure
#[derive(Debug, Default)]
pub struct PhysicalLiveness;

impl CompiledPass for PhysicalLiveness {
    fn name(&self) -> &'static str {
        "physical-liveness"
    }

    fn run(&self, cx: &CompiledContext<'_>, out: &mut Vec<Diagnostic>) {
        use_after_measure(cx.compiled.physical(), out);
    }
}

/// Shared use-after-measure walk: works over logical or physical
/// circuits because measured-ness is a property of the *state*, which
/// SWAPs move between locations.
pub(crate) fn use_after_measure<Q: QubitId>(circuit: &Circuit<Q>, out: &mut Vec<Diagnostic>) {
    let mut measured = vec![false; circuit.num_qubits()];
    for (i, g) in circuit.iter().enumerate() {
        match g {
            Gate::Barrier { .. } => {}
            Gate::Swap { a, b } => {
                if measured[a.index()] || measured[b.index()] {
                    out.push(Diagnostic::new(
                        LintCode::SwapAfterMeasure,
                        Some(Span::gate(i)),
                        format!("{g} moves already-measured state"),
                    ));
                }
                measured.swap(a.index(), b.index());
            }
            Gate::Measure { qubit, .. } => {
                if measured[qubit.index()] {
                    out.push(Diagnostic::new(
                        LintCode::UseAfterMeasure,
                        Some(Span::gate(i)),
                        format!("{g}: {qubit} was already measured"),
                    ));
                }
                measured[qubit.index()] = true;
            }
            Gate::OneQubit { .. } | Gate::Cnot { .. } => {
                for q in g.qubits() {
                    if measured[q.index()] {
                        out.push(Diagnostic::new(
                            LintCode::UseAfterMeasure,
                            Some(Span::gate(i)),
                            format!("{g} operates on {q} after it was measured"),
                        ));
                    }
                }
            }
        }
    }
}
