//! Decoherence-exposure analysis: idle windows per qubit vs T1.
//!
//! Builds the ASAP schedule of the compiled circuit under the device's
//! calibrated gate durations, measures each physical qubit's idle time
//! between its first and last gate (the simulator's idle-window
//! coherence model), converts it to a decay failure probability
//! `½·(1 − e^(−t_idle/T1))`, and flags qubits whose exposure exceeds a
//! threshold.

use quva_circuit::{Circuit, GateTimes, PhysQubit, Schedule};
use quva_device::Device;

use crate::diagnostic::{Diagnostic, LintCode};
use crate::pass::{CompiledContext, CompiledPass};

/// One qubit's idle-window decoherence exposure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleExposure {
    /// The physical qubit.
    pub qubit: usize,
    /// Idle nanoseconds between its first and last gate.
    pub idle_ns: f64,
    /// The qubit's T1, microseconds.
    pub t1_us: f64,
    /// Decay failure probability `½·(1 − e^(−t_idle/T1))` — the
    /// simulator's idle-window model.
    pub failure: f64,
}

/// Idle-window exposure of every *used* physical qubit, sorted by
/// descending failure probability (ties by qubit index). Matches the
/// simulator's `CoherenceModel::IdleWindow` exactly.
pub fn idle_exposure(device: &Device, circuit: &Circuit<PhysQubit>) -> Vec<IdleExposure> {
    let cal = device.calibration();
    let dur = cal.durations();
    let times = GateTimes {
        one_qubit_ns: dur.one_qubit_ns,
        two_qubit_ns: dur.two_qubit_ns,
        readout_ns: dur.readout_ns,
    };
    let schedule = Schedule::asap(circuit, times);
    let mut rows: Vec<IdleExposure> = (0..circuit.num_qubits())
        .filter(|&q| schedule.is_used(q))
        .map(|q| {
            let idle_ns = schedule.idle_ns(q);
            let t1_us = cal.t1_us(q);
            let idle_us = idle_ns / 1000.0;
            IdleExposure {
                qubit: q,
                idle_ns,
                t1_us,
                failure: 0.5 * (1.0 - (-idle_us / t1_us).exp()),
            }
        })
        .collect();
    rows.sort_by(|a, b| b.failure.total_cmp(&a.failure).then(a.qubit.cmp(&b.qubit)));
    rows
}

/// The decoherence-exposure pass: emits [`QV303`] for every qubit whose
/// idle-window decay probability exceeds the threshold.
///
/// [`QV303`]: LintCode::ExcessiveIdling
#[derive(Debug, Clone)]
pub struct DecoherenceExposure {
    /// [`LintCode::ExcessiveIdling`] fires when a qubit's idle-decay
    /// failure probability exceeds this value.
    pub failure_threshold: f64,
}

impl Default for DecoherenceExposure {
    fn default() -> Self {
        DecoherenceExposure {
            failure_threshold: 0.05,
        }
    }
}

impl CompiledPass for DecoherenceExposure {
    fn name(&self) -> &'static str {
        "decoherence-exposure"
    }

    fn run(&self, cx: &CompiledContext<'_>, out: &mut Vec<Diagnostic>) {
        for row in idle_exposure(cx.device, cx.compiled.physical()) {
            if row.failure > self.failure_threshold {
                out.push(Diagnostic::new(
                    LintCode::ExcessiveIdling,
                    None,
                    format!(
                        "physical qubit {} idles {:.0} ns against T1 = {:.0} us \
                         (decay probability {:.4} > {})",
                        row.qubit, row.idle_ns, row.t1_us, row.failure, self.failure_threshold
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva::{CompiledCircuit, Mapping};
    use quva_circuit::Qubit;
    use quva_device::{Calibration, Topology};

    /// A long serial chain on qubit 0 forces qubit 1 to idle between
    /// its opening gate and the closing CNOT.
    fn idling_physical(n_serial: usize) -> Circuit<PhysQubit> {
        let mut c: Circuit<PhysQubit> = Circuit::new(2);
        c.h(PhysQubit(1));
        for _ in 0..n_serial {
            c.h(PhysQubit(0));
        }
        c.cnot(PhysQubit(0), PhysQubit(1));
        c
    }

    #[test]
    fn exposure_matches_simulator_model() {
        let dev = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.0, 0.0, 0.0));
        let rows = idle_exposure(&dev, &idling_physical(3));
        let q1 = rows.iter().find(|r| r.qubit == 1).expect("qubit 1 used");
        // window 0..450 ns, busy 50 (H) + 300 (CNOT) => idle 100 ns
        assert!((q1.idle_ns - 100.0).abs() < 1e-9, "{rows:?}");
        let expected = 0.5 * (1.0 - (-0.1 / q1.t1_us).exp());
        assert!((q1.failure - expected).abs() < 1e-15);
    }

    #[test]
    fn long_idle_fires_qv303() {
        // T1 of 1 us (pathologically short) so even modest idling decays
        let topo = Topology::linear(2);
        let dev = Device::new(topo, |t| {
            Calibration::new(
                t,
                vec![1.0; 2],
                vec![1.0; 2],
                vec![0.0; 2],
                vec![0.0; 2],
                vec![0.0; t.num_links()],
                quva_device::GateDurations::default(),
            )
            .expect("valid calibration")
        });
        let physical = idling_physical(20);
        let mut source = Circuit::new(2);
        source.h(Qubit(0));
        let mapping = Mapping::identity(2, 2);
        let compiled = CompiledCircuit::from_parts(physical, mapping.clone(), mapping, 0);
        let cx = CompiledContext {
            source: &source,
            device: &dev,
            compiled: &compiled,
        };
        let mut out = Vec::new();
        DecoherenceExposure::default().run(&cx, &mut out);
        assert!(
            out.iter().any(|d| d.code() == LintCode::ExcessiveIdling),
            "{out:?}"
        );
    }

    #[test]
    fn tight_circuit_is_quiet() {
        let dev = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.01, 0.0, 0.0));
        let mut physical: Circuit<PhysQubit> = Circuit::new(2);
        physical.cnot(PhysQubit(0), PhysQubit(1));
        let mut source = Circuit::new(2);
        source.cnot(Qubit(0), Qubit(1));
        let mapping = Mapping::identity(2, 2);
        let compiled = CompiledCircuit::from_parts(physical, mapping.clone(), mapping, 0);
        let cx = CompiledContext {
            source: &source,
            device: &dev,
            compiled: &compiled,
        };
        let mut out = Vec::new();
        DecoherenceExposure::default().run(&cx, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
