//! Observability determinism contract of the Monte-Carlo engine.
//!
//! These tests own the process-global `quva-obs` recorder, so they live
//! in their own integration-test binary (one process) and serialize on
//! a local mutex; `reset()` gives each test a clean recorder.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

use quva_circuit::{Circuit, PhysQubit};
use quva_device::{Calibration, Device, Topology};
use quva_sim::{CoherenceModel, FailureProfile, McEngine};

fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn profile() -> FailureProfile {
    let dev = Device::new(Topology::linear(4), |t| {
        Calibration::uniform(t, 0.08, 0.002, 0.02)
    });
    let mut c: Circuit<PhysQubit> = Circuit::new(4);
    for _ in 0..5 {
        c.cnot(PhysQubit(0), PhysQubit(1));
        c.h(PhysQubit(2));
        c.swap(PhysQubit(2), PhysQubit(3));
    }
    c.measure_all();
    FailureProfile::new(&dev, &c, CoherenceModel::Disabled).unwrap()
}

/// Runs `trials` under the recorder and returns (estimate, counters).
fn traced_run(threads: usize, trials: u64, seed: u64) -> (quva_sim::McEstimate, BTreeMap<String, u64>) {
    let p = profile();
    quva_obs::reset();
    quva_obs::enable();
    let est = McEngine::new(threads)
        .with_chunk_trials(1_000)
        .run(&p, trials, seed);
    let report = quva_obs::drain();
    quva_obs::disable();
    (est, report.counters)
}

#[test]
fn traced_counters_are_identical_across_runs() {
    let _g = guard();
    let (est_a, counters_a) = traced_run(8, 50_000, 11);
    let (est_b, counters_b) = traced_run(8, 50_000, 11);
    assert_eq!(est_a, est_b);
    assert_eq!(
        counters_a, counters_b,
        "same seed + threads must drain identical counters"
    );
}

#[test]
fn traced_counters_are_identical_across_thread_counts() {
    let _g = guard();
    let (est_seq, mut seq) = traced_run(1, 50_000, 7);
    let (est_par, mut par) = traced_run(8, 50_000, 7);
    assert_eq!(est_seq, est_par);
    // the worker count is configuration, not measurement: it is the
    // one counter allowed to differ between schedules
    assert_eq!(seq.remove("sim.workers"), Some(1));
    assert_eq!(par.remove("sim.workers"), Some(8));
    assert_eq!(seq, par, "counters must be schedule-independent");
}

#[test]
fn tracing_does_not_perturb_the_estimate() {
    let _g = guard();
    let p = profile();
    let engine = McEngine::new(4).with_chunk_trials(1_000);
    quva_obs::reset();
    let baseline = engine.run(&p, 30_000, 3); // recorder off → reference path
    quva_obs::enable();
    let traced = engine.run(&p, 30_000, 3);
    quva_obs::drain();
    quva_obs::disable();
    let reference = engine.run_reference(&p, 30_000, 3);
    assert_eq!(baseline, reference);
    assert_eq!(traced, reference, "traced path must draw the same RNG stream");
}

#[test]
fn abort_classes_account_for_every_failed_trial() {
    let _g = guard();
    let (est, counters) = traced_run(4, 40_000, 5);
    let aborted: u64 = counters
        .iter()
        .filter(|(k, _)| k.starts_with("sim.abort."))
        .map(|(_, &v)| v)
        .sum();
    assert_eq!(aborted, est.trials - est.successes);
    assert_eq!(counters["sim.trials"], 40_000);
    assert_eq!(counters["sim.chunks"], 40);
    // this profile exposes cnot, swap, one-qubit, and readout faults;
    // at 40k trials each class fires
    for class in ["cnot", "swap", "one_qubit", "readout"] {
        assert!(
            counters.contains_key(&format!("sim.abort.{class}")),
            "missing abort class {class}: {counters:?}"
        );
    }
}

#[test]
fn disabled_recorder_stays_empty_through_a_run() {
    let _g = guard();
    let p = profile();
    quva_obs::reset();
    McEngine::new(4).run(&p, 10_000, 1);
    let report = quva_obs::drain();
    assert!(report.is_empty(), "disabled run must record nothing");
}
