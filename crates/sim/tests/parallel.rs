//! Property tests for the parallel Monte-Carlo engine: chunk-merged
//! estimates must be bit-identical to the sequential reference for any
//! `(trials, chunk_size, thread_count)`, and pooled estimates must
//! never get less certain as trial counts grow.

use proptest::prelude::*;
use quva_circuit::{Cbit, Circuit, PhysQubit};
use quva_device::{Calibration, Device, Topology};
use quva_sim::{CoherenceModel, FailureProfile, McEngine, McEstimate, McKernel};
use std::sync::OnceLock;

/// One shared profile for every proptest case — a hand-routed ladder
/// on a 5-qubit line, with every fault class active.
fn profile() -> &'static FailureProfile {
    static PROFILE: OnceLock<FailureProfile> = OnceLock::new();
    PROFILE.get_or_init(|| {
        let device = Device::new(Topology::linear(5), |t| Calibration::uniform(t, 0.05, 0.01, 0.02));
        let mut c: Circuit<PhysQubit> = Circuit::new(5);
        c.h(PhysQubit(0));
        for q in 0..4 {
            c.cnot(PhysQubit(q), PhysQubit(q + 1));
        }
        c.swap(PhysQubit(2), PhysQubit(3));
        for q in 0..5 {
            c.measure(PhysQubit(q), Cbit(q));
        }
        FailureProfile::new(&device, &c, CoherenceModel::IdleWindow)
            .expect("ladder circuit is routed on the 5-qubit line")
    })
}

proptest! {
    /// The determinism contract, for both trial kernels: thread count
    /// and scheduling never change the estimate, only the chunk size
    /// (scalar) or nothing at all (bit-parallel) defines the sample.
    #[test]
    fn chunk_merged_estimates_match_sequential(
        (trials, chunk_trials, threads, seed) in
            (0u64..40_000, 1u64..10_000, 1usize..12, 0u64..=u64::MAX)
    ) {
        for kernel in [McKernel::Scalar, McKernel::BitParallel] {
            let reference = McEngine::sequential()
                .with_kernel(kernel)
                .with_chunk_trials(chunk_trials)
                .run(profile(), trials, seed);
            let parallel = McEngine::new(threads)
                .with_kernel(kernel)
                .with_chunk_trials(chunk_trials)
                .run(profile(), trials, seed);
            prop_assert_eq!(parallel.successes, reference.successes);
            prop_assert_eq!(parallel.trials, reference.trials);
            prop_assert_eq!(parallel.pst.to_bits(), reference.pst.to_bits());
        }
    }

    /// Lane-major seeding equivalence: every bit-parallel lane-word
    /// seed is a pure function of the *global* word index, so the
    /// chunk-merged count equals the unchunked sequential count for
    /// any `(trials, chunk_size, threads)` — including chunk sizes
    /// that split a 64-trial lane-word across two chunks and trial
    /// counts that end in a partial word.
    #[test]
    fn bitparallel_chunk_merge_equals_the_unchunked_count(
        (trials, chunk_trials, threads, seed) in
            (1u64..40_000, 1u64..10_000, 1usize..12, 0u64..=u64::MAX)
    ) {
        let unchunked = McEngine::sequential()
            .with_chunk_trials(trials)
            .run(profile(), trials, seed);
        let chunked = McEngine::new(threads)
            .with_chunk_trials(chunk_trials)
            .run(profile(), trials, seed);
        prop_assert_eq!(chunked.successes, unchunked.successes);
        prop_assert_eq!(chunked.pst.to_bits(), unchunked.pst.to_bits());
    }

    /// The two kernels are distinct deterministic samples of the same
    /// model (exact-count distinctness at a fixed seed is pinned in
    /// the engine and CLI tests; two 50k-trial samples tie by chance
    /// ~0.25% of the time, too often for a 256-case sweep), so the
    /// property here is the statistical one: for every seed the two
    /// estimates stay within a loose binomial band of each other.
    #[test]
    fn kernels_are_statistically_compatible(seed in 0u64..=u64::MAX) {
        let trials = 50_000u64;
        let scalar = McEngine::sequential()
            .with_kernel(McKernel::Scalar)
            .run(profile(), trials, seed);
        let bp = McEngine::sequential()
            .with_kernel(McKernel::BitParallel)
            .run(profile(), trials, seed);
        let n = trials as f64;
        let se = (scalar.pst * (1.0 - scalar.pst) / n + bp.pst * (1.0 - bp.pst) / n)
            .sqrt()
            .max(1.0 / n);
        // 6 SE: loose enough that a true-null proptest sweep of 256
        // seeds has ~1e-7 flake probability, tight enough to catch
        // any real bias
        prop_assert!(
            (scalar.pst - bp.pst).abs() <= 6.0 * se,
            "kernels diverged: scalar {} vs bit-parallel {}", scalar.pst, bp.pst
        );
    }

    /// Merging is pooling: the merged estimate equals `from_counts`
    /// over the summed counts, in any association order.
    #[test]
    fn merge_equals_pooled_counts(
        counts in prop::collection::vec((0u64..1_000, 0u64..1_000), 0..8)
    ) {
        let counts: Vec<(u64, u64)> =
            counts.into_iter().map(|(s, t)| (s.min(t), t)).collect();
        let left = counts.iter().fold(McEstimate::from_counts(0, 0), |acc, &(s, t)| {
            acc.merge(McEstimate::from_counts(s, t))
        });
        let right = counts.iter().rev().fold(McEstimate::from_counts(0, 0), |acc, &(s, t)| {
            McEstimate::from_counts(s, t).merge(acc)
        });
        let successes: u64 = counts.iter().map(|&(s, _)| s).sum();
        let trials: u64 = counts.iter().map(|&(_, t)| t).sum();
        let pooled = McEstimate::from_counts(successes, trials);
        prop_assert_eq!(left.pst.to_bits(), pooled.pst.to_bits());
        prop_assert_eq!(right.pst.to_bits(), pooled.pst.to_bits());
        prop_assert_eq!(left.trials, trials);
        prop_assert_eq!(right.successes, successes);
    }

    /// More pooled evidence at the same success rate never widens the
    /// error bar: `std_error` shrinks monotonically in the trial count.
    #[test]
    fn std_error_shrinks_as_merged_trials_grow(
        (successes, trials, growth) in (0u64..=10_000, 1u64..=10_000, 2u64..=64)
    ) {
        let successes = successes.min(trials);
        let base = McEstimate::from_counts(successes, trials);
        let grown = McEstimate::from_counts(successes * growth, trials * growth);
        prop_assert_eq!(base.pst.to_bits(), grown.pst.to_bits());
        prop_assert!(grown.std_error() <= base.std_error());
        if base.std_error() > 0.0 {
            prop_assert!(grown.std_error() < base.std_error());
        }
    }
}
