//! Error type shared by the simulators.

use std::error::Error;
use std::fmt;

use quva_circuit::PhysQubit;

/// Error produced when a circuit cannot be simulated against a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A two-qubit gate addresses a pair of qubits with no coupling
    /// link — the circuit was not routed for this device.
    UncoupledOperands {
        /// Index of the offending gate in the circuit.
        gate_index: usize,
        /// First operand.
        a: PhysQubit,
        /// Second operand.
        b: PhysQubit,
    },
    /// The circuit uses more qubits than the device has.
    TooManyQubits {
        /// Qubits the circuit declares.
        circuit: usize,
        /// Qubits the device has.
        device: usize,
    },
    /// A gate touched a qubit after that qubit was measured — the exact
    /// density-matrix evaluator supports terminal measurement only.
    MidCircuitMeasurement {
        /// Index of the offending gate.
        gate_index: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UncoupledOperands { gate_index, a, b } => {
                write!(
                    f,
                    "gate {gate_index} addresses uncoupled qubits {a} and {b}; route the circuit first"
                )
            }
            SimError::TooManyQubits { circuit, device } => {
                write!(
                    f,
                    "circuit uses {circuit} qubits but the device has only {device}"
                )
            }
            SimError::MidCircuitMeasurement { gate_index } => {
                write!(
                    f,
                    "gate {gate_index} touches a measured qubit; only terminal measurement is supported here"
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_routing() {
        let e = SimError::UncoupledOperands {
            gate_index: 3,
            a: PhysQubit(0),
            b: PhysQubit(5),
        };
        assert!(e.to_string().contains("route the circuit first"));
        let e = SimError::TooManyQubits {
            circuit: 10,
            device: 5,
        };
        assert!(e.to_string().contains("only 5"));
        let e = SimError::MidCircuitMeasurement { gate_index: 7 };
        assert!(e.to_string().contains("terminal measurement"));
    }
}
