//! Exact open-system simulation with a density matrix.
//!
//! Where [`crate::run_noisy_trials`] *samples* the noisy process, this
//! module computes its exact expectation: the state is a density matrix
//! ρ evolved through unitaries and Kraus channels, and measurement
//! outcomes come out as a full probability distribution — no sampling
//! noise. Feasible up to [`MAX_DENSITY_QUBITS`] qubits, which covers the
//! paper's 5-qubit §7 machine comfortably.
//!
//! Implementation: ρ is stored *vectorized* as a pure state of `2n`
//! qubits — bit `q` indexes ρ's row, bit `q + n` its column — so every
//! unitary U applies as U on the row qubit and U* on the column qubit,
//! and a Kraus channel Σ KᵢρKᵢ† is a sum of branch applications.

use quva_circuit::{Gate, OneQubitKind, QubitId};

use crate::complex::Complex64;
use crate::statevector::{matrix_of, StateVector};

/// Maximum qubit count for the density-matrix simulator (the vectorized
/// state has `2n` qubits).
pub const MAX_DENSITY_QUBITS: usize = 10;

/// A mixed quantum state over `n` qubits.
///
/// # Examples
///
/// ```
/// use quva_sim::DensityMatrix;
///
/// let mut rho = DensityMatrix::new(2);
/// rho.h(0);
/// rho.cnot(0, 1);
/// // a pure Bell state: purity 1, diagonal 1/2–0–0–1/2
/// assert!((rho.purity() - 1.0).abs() < 1e-10);
/// assert!((rho.probability(0b00) - 0.5).abs() < 1e-10);
///
/// rho.depolarize_1q(0, 0.5);
/// assert!(rho.purity() < 1.0); // noise mixes the state
/// assert!((rho.trace() - 1.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n: usize,
    vec: StateVector,
}

impl DensityMatrix {
    /// The pure state |0…0⟩⟨0…0| over `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`MAX_DENSITY_QUBITS`].
    pub fn new(n: usize) -> Self {
        assert!(
            n <= MAX_DENSITY_QUBITS,
            "{n} qubits exceeds the density-matrix limit"
        );
        DensityMatrix {
            n,
            vec: StateVector::new(2 * n),
        }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// ρ's diagonal entry for `basis` — the probability of that
    /// computational-basis outcome.
    ///
    /// # Panics
    ///
    /// Panics if `basis` has bits above the register.
    pub fn probability(&self, basis: u64) -> f64 {
        assert!(basis < (1u64 << self.n), "basis state out of range");
        self.vec.amplitude(basis | (basis << self.n)).re
    }

    /// Tr ρ (should stay 1 through all channels; tested).
    pub fn trace(&self) -> f64 {
        (0..(1u64 << self.n)).map(|b| self.probability(b)).sum()
    }

    /// Tr ρ² — 1 for pure states, smaller for mixed ones.
    pub fn purity(&self) -> f64 {
        // Tr ρ² = Σ_{r,c} ρ[r][c]·ρ[c][r] = Σ |ρ[r][c]|² for Hermitian ρ
        self.vec.amps().iter().map(|a| a.norm_sqr()).sum()
    }

    /// Applies a single-qubit unitary.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_1q(&mut self, q: usize, m: [[Complex64; 2]; 2]) {
        assert!(q < self.n, "qubit {q} out of range");
        let conj = [[m[0][0].conj(), m[0][1].conj()], [m[1][0].conj(), m[1][1].conj()]];
        self.vec.apply_1q(q, m);
        self.vec.apply_1q(q + self.n, conj);
    }

    /// Applies the named single-qubit gate.
    pub fn apply_kind(&mut self, q: usize, kind: OneQubitKind) {
        self.apply_1q(q, matrix_of(kind));
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        self.apply_kind(q, OneQubitKind::H);
    }

    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) {
        self.apply_kind(q, OneQubitKind::X);
    }

    /// CNOT.
    ///
    /// # Panics
    ///
    /// Panics if operands coincide or are out of range.
    pub fn cnot(&mut self, control: usize, target: usize) {
        assert!(control < self.n && target < self.n, "cnot operand out of range");
        self.vec.cnot(control, target);
        self.vec.cnot(control + self.n, target + self.n);
    }

    /// SWAP.
    ///
    /// # Panics
    ///
    /// Panics if operands coincide or are out of range.
    pub fn swap(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "swap operand out of range");
        self.vec.swap(a, b);
        self.vec.swap(a + self.n, b + self.n);
    }

    /// Applies one unitary gate of the IR (barrier = no-op).
    ///
    /// # Panics
    ///
    /// Panics on measurement gates — use
    /// [`DensityMatrix::outcome_distribution`] instead.
    pub fn apply_gate<Q: QubitId>(&mut self, gate: &Gate<Q>) {
        match gate {
            Gate::OneQubit { kind, qubit } => self.apply_kind(qubit.index(), *kind),
            Gate::Cnot { control, target } => self.cnot(control.index(), target.index()),
            Gate::Swap { a, b } => self.swap(a.index(), b.index()),
            Gate::Barrier { .. } => {}
            Gate::Measure { .. } => panic!("measurement is not a channel here; read the distribution"),
        }
    }

    /// Applies a single-qubit Kraus channel Σ KᵢρKᵢ†.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range or no Kraus operators are given.
    pub fn apply_kraus_1q(&mut self, q: usize, kraus: &[[[Complex64; 2]; 2]]) {
        assert!(q < self.n, "qubit {q} out of range");
        assert!(!kraus.is_empty(), "a channel needs at least one Kraus operator");
        let mut acc: Vec<Complex64> = vec![Complex64::ZERO; self.vec.amps().len()];
        for k in kraus {
            let mut branch = self.clone();
            let conj = [[k[0][0].conj(), k[0][1].conj()], [k[1][0].conj(), k[1][1].conj()]];
            branch.vec.apply_1q(q, *k);
            branch.vec.apply_1q(q + self.n, conj);
            for (a, b) in acc.iter_mut().zip(branch.vec.amps()) {
                *a += *b;
            }
        }
        self.vec.amps_mut().copy_from_slice(&acc);
    }

    /// Single-qubit depolarizing channel: with probability `p`, a
    /// uniformly random Pauli hits `q` (the sampling simulator's 1Q
    /// error model, in expectation).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn depolarize_1q(&mut self, q: usize, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        let keep = (1.0 - p).sqrt();
        let flip = (p / 3.0).sqrt();
        let scaled = |m: [[Complex64; 2]; 2], s: f64| {
            [
                [m[0][0].scale(s), m[0][1].scale(s)],
                [m[1][0].scale(s), m[1][1].scale(s)],
            ]
        };
        self.apply_kraus_1q(
            q,
            &[
                scaled(matrix_of(OneQubitKind::I), keep),
                scaled(matrix_of(OneQubitKind::X), flip),
                scaled(matrix_of(OneQubitKind::Y), flip),
                scaled(matrix_of(OneQubitKind::Z), flip),
            ],
        );
    }

    /// Two-qubit depolarizing channel: with probability `p`, a uniform
    /// non-identity Pauli pair hits `(a, b)` (the sampling simulator's
    /// 2Q error model, in expectation).
    ///
    /// # Panics
    ///
    /// Panics if operands are out of range or `p` is outside `[0, 1]`.
    pub fn depolarize_2q(&mut self, a: usize, b: usize, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        assert!(a < self.n && b < self.n && a != b, "bad channel operands");
        // Mix of 16 Pauli-pair branches: II with weight 1-p, the other
        // 15 with weight p/15 each. Applying each branch via unitary
        // conjugation and convex mixing of the resulting matrices.
        let original = self.clone();
        let paulis = [OneQubitKind::I, OneQubitKind::X, OneQubitKind::Y, OneQubitKind::Z];
        let mut acc: Vec<Complex64> = original.vec.amps().iter().map(|amp| amp.scale(1.0 - p)).collect();
        for (i, &pa) in paulis.iter().enumerate() {
            for (j, &pb) in paulis.iter().enumerate() {
                if i == 0 && j == 0 {
                    continue;
                }
                let mut branch = original.clone();
                branch.apply_kind(a, pa);
                branch.apply_kind(b, pb);
                for (dst, src) in acc.iter_mut().zip(branch.vec.amps()) {
                    *dst += src.scale(p / 15.0);
                }
            }
        }
        self.vec.amps_mut().copy_from_slice(&acc);
    }

    /// T1 amplitude-damping channel with decay probability `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is outside `[0, 1]`.
    pub fn amplitude_damp(&mut self, q: usize, gamma: f64) {
        assert!((0.0..=1.0).contains(&gamma), "gamma {gamma} out of range");
        let k0 = [
            [Complex64::ONE, Complex64::ZERO],
            [Complex64::ZERO, Complex64::new((1.0 - gamma).sqrt(), 0.0)],
        ];
        let k1 = [
            [Complex64::ZERO, Complex64::new(gamma.sqrt(), 0.0)],
            [Complex64::ZERO, Complex64::ZERO],
        ];
        self.apply_kraus_1q(q, &[k0, k1]);
    }

    /// Pure dephasing channel with phase-flip probability `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `[0, 1]`.
    pub fn dephase(&mut self, q: usize, lambda: f64) {
        assert!((0.0..=1.0).contains(&lambda), "lambda {lambda} out of range");
        let keep = (1.0 - lambda).sqrt();
        let z = lambda.sqrt();
        let k0 = [
            [Complex64::new(keep, 0.0), Complex64::ZERO],
            [Complex64::ZERO, Complex64::new(keep, 0.0)],
        ];
        let k1 = [
            [Complex64::new(z, 0.0), Complex64::ZERO],
            [Complex64::ZERO, Complex64::new(-z, 0.0)],
        ];
        self.apply_kraus_1q(q, &[k0, k1]);
    }

    /// The probability distribution over all `2^n` computational-basis
    /// outcomes (ρ's diagonal).
    pub fn outcome_distribution(&self) -> Vec<f64> {
        (0..(1u64 << self.n)).map(|b| self.probability(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva_circuit::PhysQubit;

    #[test]
    fn starts_pure_in_zero() {
        let rho = DensityMatrix::new(3);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!((rho.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_statevector_for_unitary_circuits() {
        let mut rho = DensityMatrix::new(3);
        let mut sv = StateVector::new(3);
        let gates: Vec<Gate<PhysQubit>> = vec![
            Gate::one(OneQubitKind::H, PhysQubit(0)),
            Gate::one(OneQubitKind::T, PhysQubit(1)),
            Gate::cnot(PhysQubit(0), PhysQubit(1)),
            Gate::one(OneQubitKind::Ry(0.7), PhysQubit(2)),
            Gate::swap(PhysQubit(1), PhysQubit(2)),
            Gate::cnot(PhysQubit(2), PhysQubit(0)),
        ];
        for g in &gates {
            rho.apply_gate(g);
            sv.apply_gate(g);
        }
        for basis in 0..8u64 {
            assert!(
                (rho.probability(basis) - sv.probability(basis)).abs() < 1e-10,
                "basis {basis} diverged"
            );
        }
        assert!((rho.purity() - 1.0).abs() < 1e-10, "unitary evolution stays pure");
    }

    #[test]
    fn depolarizing_mixes_toward_uniform() {
        let mut rho = DensityMatrix::new(1);
        rho.depolarize_1q(0, 0.75); // maximal 1q depolarizing
        assert!((rho.probability(0) - 0.5).abs() < 1e-10);
        assert!((rho.probability(1) - 0.5).abs() < 1e-10);
        assert!((rho.purity() - 0.5).abs() < 1e-10);
    }

    #[test]
    fn channels_preserve_trace() {
        let mut rho = DensityMatrix::new(2);
        rho.h(0);
        rho.cnot(0, 1);
        rho.depolarize_1q(0, 0.1);
        rho.depolarize_2q(0, 1, 0.2);
        rho.amplitude_damp(1, 0.3);
        rho.dephase(0, 0.15);
        assert!((rho.trace() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut rho = DensityMatrix::new(1);
        rho.x(0); // |1>
        rho.amplitude_damp(0, 0.4);
        assert!((rho.probability(1) - 0.6).abs() < 1e-10);
        assert!((rho.probability(0) - 0.4).abs() < 1e-10);
    }

    #[test]
    fn dephasing_kills_coherence_not_populations() {
        let mut rho = DensityMatrix::new(1);
        rho.h(0); // |+>
        let before = rho.probability(0);
        rho.dephase(0, 0.5); // full dephasing: coherences halve... at λ=0.5 they vanish
        assert!(
            (rho.probability(0) - before).abs() < 1e-10,
            "populations unchanged"
        );
        // after full dephasing, H brings |+>⟨+| to a mixed state, not |0>
        rho.h(0);
        assert!((rho.probability(0) - 0.5).abs() < 1e-10);
        assert!(rho.purity() < 0.51);
    }

    #[test]
    fn two_qubit_depolarizing_damages_bell_correlations() {
        let mut rho = DensityMatrix::new(2);
        rho.h(0);
        rho.cnot(0, 1);
        rho.depolarize_2q(0, 1, 0.3);
        // anti-correlated outcomes appear
        let p_01 = rho.probability(0b01);
        let p_10 = rho.probability(0b10);
        assert!(
            p_01 > 0.01 && p_10 > 0.01,
            "noise must populate 01/10: {p_01}, {p_10}"
        );
        assert!((rho.trace() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn distribution_sums_to_one() {
        let mut rho = DensityMatrix::new(3);
        rho.h(0);
        rho.cnot(0, 2);
        rho.depolarize_1q(1, 0.2);
        let dist = rho.outcome_distribution();
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
        assert_eq!(dist.len(), 8);
    }

    #[test]
    #[should_panic(expected = "density-matrix limit")]
    fn rejects_oversized_register() {
        DensityMatrix::new(MAX_DENSITY_QUBITS + 1);
    }

    #[test]
    #[should_panic(expected = "read the distribution")]
    fn rejects_measure_gate() {
        let mut rho = DensityMatrix::new(1);
        let g: Gate<PhysQubit> = Gate::measure(PhysQubit(0), quva_circuit::Cbit(0));
        rho.apply_gate(&g);
    }
}
