//! The failure profile of a routed circuit on a device: the per-
//! operation failure probabilities plus per-qubit coherence exposure.
//!
//! Both the analytic estimator and the Monte-Carlo injector consume this
//! profile, which guarantees they model the identical error process
//! (their agreement is property-tested).

use quva_circuit::{Circuit, Gate, GateTimes, PhysQubit, Schedule};
use quva_device::Device;

use crate::error::SimError;

/// How decoherence of idle qubits is charged (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoherenceModel {
    /// Ignore coherence errors entirely.
    Disabled,
    /// Charge each qubit for the wall-clock time it sits idle between
    /// its first and last *gate* (measurement excluded — readout error
    /// already folds in decoherence during readout), with failure
    /// probability `½ · (1 − exp(−t_idle / T1))`: T1 relaxation with an
    /// average excited-state occupancy of one half.
    ///
    /// Idle-window charging reflects that a qubit resting in |0⟩ before
    /// its first gate (or after measurement) cannot relax in a way that
    /// affects the outcome. Under this model gate errors dominate
    /// coherence errors for the paper's workloads (§4.4).
    #[default]
    IdleWindow,
}

/// The fault class of one injection-table event: which physical
/// mechanism a Monte-Carlo trial abort is attributed to.
///
/// Parallel to [`FailureProfile::active_events`] via
/// [`FailureProfile::active_event_classes`]; the traced engine
/// aggregates per-class abort counts under `sim.abort.<class>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventClass {
    /// A single-qubit gate failed.
    OneQubit,
    /// A CNOT failed.
    Cnot,
    /// An inserted SWAP (three back-to-back CNOTs) failed.
    Swap,
    /// A measurement read out wrong.
    Readout,
    /// An idle qubit decohered.
    Coherence,
}

impl EventClass {
    /// Every class, in [`Self::index`] order.
    pub const ALL: [EventClass; 5] = [
        EventClass::OneQubit,
        EventClass::Cnot,
        EventClass::Swap,
        EventClass::Readout,
        EventClass::Coherence,
    ];

    /// Dense index for array-backed accumulators.
    pub fn index(self) -> usize {
        match self {
            EventClass::OneQubit => 0,
            EventClass::Cnot => 1,
            EventClass::Swap => 2,
            EventClass::Readout => 3,
            EventClass::Coherence => 4,
        }
    }

    /// Snake-case label used in counter names and reports.
    pub fn label(self) -> &'static str {
        match self {
            EventClass::OneQubit => "one_qubit",
            EventClass::Cnot => "cnot",
            EventClass::Swap => "swap",
            EventClass::Readout => "readout",
            EventClass::Coherence => "coherence",
        }
    }

    /// The obs counter this class's aborts accumulate under.
    pub fn abort_counter(self) -> &'static str {
        match self {
            EventClass::OneQubit => "sim.abort.one_qubit",
            EventClass::Cnot => "sim.abort.cnot",
            EventClass::Swap => "sim.abort.swap",
            EventClass::Readout => "sim.abort.readout",
            EventClass::Coherence => "sim.abort.coherence",
        }
    }
}

/// The flattened error process of one routed circuit on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureProfile {
    /// Failure probability of each physical operation, in program order
    /// (barriers excluded).
    op_failures: Vec<f64>,
    /// Per-qubit coherence failure probability over the whole program.
    coherence_failures: Vec<f64>,
    /// The injection table: every event with non-zero failure
    /// probability (ops first, then coherence), precomputed once so the
    /// Monte-Carlo hot loop — and every worker thread sharing this
    /// profile — walks a dense immutable slice.
    active_events: Vec<f64>,
    /// Fault class of each `active_events` entry, same order, so the
    /// traced engine can attribute an abort without re-deriving gates.
    active_event_classes: Vec<EventClass>,
    /// Decomposition accumulators (failure weights `−ln(1−p)`).
    gate_weight: f64,
    readout_weight: f64,
    coherence_weight: f64,
}

impl FailureProfile {
    /// Builds the profile, validating that every two-qubit gate sits on
    /// a real coupling link.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the circuit is unrouted (a two-qubit gate
    /// spans uncoupled qubits) or too large for the device.
    pub fn new(
        device: &Device,
        circuit: &Circuit<PhysQubit>,
        coherence: CoherenceModel,
    ) -> Result<Self, SimError> {
        if circuit.num_qubits() > device.num_qubits() {
            return Err(SimError::TooManyQubits {
                circuit: circuit.num_qubits(),
                device: device.num_qubits(),
            });
        }
        let cal = device.calibration();
        let mut op_failures = Vec::with_capacity(circuit.len());
        let mut op_classes = Vec::with_capacity(circuit.len());
        let mut gate_weight = 0.0;
        let mut readout_weight = 0.0;
        for (idx, gate) in circuit.iter().enumerate() {
            let (p, class) = match gate {
                Gate::OneQubit { qubit, .. } => (cal.one_qubit_error(qubit.index()), EventClass::OneQubit),
                Gate::Cnot { control, target } => {
                    let e = device
                        .link_error(*control, *target)
                        .ok_or(SimError::UncoupledOperands {
                            gate_index: idx,
                            a: *control,
                            b: *target,
                        })?;
                    (e, EventClass::Cnot)
                }
                Gate::Swap { a, b } => {
                    let e = device.link_error(*a, *b).ok_or(SimError::UncoupledOperands {
                        gate_index: idx,
                        a: *a,
                        b: *b,
                    })?;
                    (1.0 - (1.0 - e).powi(3), EventClass::Swap)
                }
                Gate::Measure { qubit, .. } => (cal.readout_error(qubit.index()), EventClass::Readout),
                Gate::Barrier { .. } => continue,
            };
            let weight = -(1.0 - p).max(f64::MIN_POSITIVE).ln();
            if gate.is_measurement() {
                readout_weight += weight;
            } else {
                gate_weight += weight;
            }
            op_failures.push(p);
            op_classes.push(class);
        }

        let coherence_failures = match coherence {
            CoherenceModel::Disabled => vec![0.0; circuit.num_qubits()],
            CoherenceModel::IdleWindow => idle_window_failures(device, circuit),
        };
        let coherence_weight = coherence_failures
            .iter()
            .map(|&p| -(1.0 - p).max(f64::MIN_POSITIVE).ln())
            .sum();

        let active_events = op_failures
            .iter()
            .chain(coherence_failures.iter())
            .copied()
            .filter(|&p| p > 0.0)
            .collect();
        let active_event_classes = op_failures
            .iter()
            .zip(op_classes.iter().copied())
            .chain(coherence_failures.iter().map(|p| (p, EventClass::Coherence)))
            .filter(|&(&p, _)| p > 0.0)
            .map(|(_, class)| class)
            .collect();

        Ok(FailureProfile {
            op_failures,
            coherence_failures,
            active_events,
            active_event_classes,
            gate_weight,
            readout_weight,
            coherence_weight,
        })
    }

    /// Failure probability of every physical operation, program order.
    pub fn op_failures(&self) -> &[f64] {
        &self.op_failures
    }

    /// Per-qubit whole-program coherence failure probability.
    pub fn coherence_failures(&self) -> &[f64] {
        &self.coherence_failures
    }

    /// Every event with a non-zero failure probability — operations in
    /// program order, then per-qubit coherence exposures. This is the
    /// dense table the Monte-Carlo injector draws against; it is built
    /// once at profile construction and shared (immutably) across
    /// worker threads.
    pub fn active_events(&self) -> &[f64] {
        &self.active_events
    }

    /// Fault class of each [`Self::active_events`] entry, same order —
    /// what the traced Monte-Carlo engine charges an abort to.
    pub fn active_event_classes(&self) -> &[EventClass] {
        &self.active_event_classes
    }

    /// The probability that *no* failure event fires — the analytic PST.
    pub fn success_probability(&self) -> f64 {
        let ops: f64 = self.op_failures.iter().map(|&p| 1.0 - p).product();
        let coh: f64 = self.coherence_failures.iter().map(|&p| 1.0 - p).product();
        ops * coh
    }

    /// Accumulated gate failure weight Σ −ln(1−p) over non-measurement
    /// operations.
    pub fn gate_failure_weight(&self) -> f64 {
        self.gate_weight
    }

    /// Accumulated readout failure weight.
    pub fn readout_failure_weight(&self) -> f64 {
        self.readout_weight
    }

    /// Accumulated coherence failure weight.
    pub fn coherence_failure_weight(&self) -> f64 {
        self.coherence_weight
    }

    /// Ratio of gate to coherence failure weight — the paper's "§4.4:
    /// gate errors are 16x more likely to fail a bv-20 trial" metric.
    /// Returns `f64::INFINITY` when coherence is disabled or zero.
    pub fn gate_to_coherence_ratio(&self) -> f64 {
        if self.coherence_weight == 0.0 {
            f64::INFINITY
        } else {
            self.gate_weight / self.coherence_weight
        }
    }
}

/// Idle exposure per qubit: build the ASAP [`Schedule`] (layer duration
/// = slowest member operation), then charge each qubit T1 relaxation
/// (half excited-state occupancy) for the time between its first and
/// last gate that it spends *not* operating. Measurements neither open
/// nor extend the window.
fn idle_window_failures(device: &Device, circuit: &Circuit<PhysQubit>) -> Vec<f64> {
    let cal = device.calibration();
    let dur = cal.durations();
    let times = GateTimes {
        one_qubit_ns: dur.one_qubit_ns,
        two_qubit_ns: dur.two_qubit_ns,
        readout_ns: dur.readout_ns,
    };
    let schedule = Schedule::asap(circuit, times);
    (0..circuit.num_qubits())
        .map(|i| {
            let idle_us = schedule.idle_ns(i) / 1000.0;
            0.5 * (1.0 - (-idle_us / cal.t1_us(i)).exp())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva_circuit::Cbit;
    use quva_device::{Calibration, Topology};

    fn device() -> Device {
        Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.1, 0.01, 0.02))
    }

    fn routed_bell() -> Circuit<PhysQubit> {
        let mut c: Circuit<PhysQubit> = Circuit::new(2);
        c.h(PhysQubit(0));
        c.cnot(PhysQubit(0), PhysQubit(1));
        c.measure(PhysQubit(0), Cbit(0));
        c.measure(PhysQubit(1), Cbit(1));
        c
    }

    #[test]
    fn profile_collects_op_failures() {
        let p = FailureProfile::new(&device(), &routed_bell(), CoherenceModel::Disabled).unwrap();
        assert_eq!(p.op_failures(), &[0.01, 0.1, 0.02, 0.02]);
    }

    #[test]
    fn active_events_drops_zero_probability_entries() {
        let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.1, 0.0, 0.02));
        let p = FailureProfile::new(&dev, &routed_bell(), CoherenceModel::Disabled).unwrap();
        // h has zero 1Q error on this device: it must not appear in the
        // injection table, while the CNOT and both measurements do
        assert_eq!(p.active_events(), &[0.1, 0.02, 0.02]);
    }

    #[test]
    fn event_classes_stay_parallel_to_active_events() {
        let p = FailureProfile::new(&device(), &routed_bell(), CoherenceModel::Disabled).unwrap();
        assert_eq!(p.active_event_classes().len(), p.active_events().len());
        assert_eq!(
            p.active_event_classes(),
            &[
                EventClass::OneQubit,
                EventClass::Cnot,
                EventClass::Readout,
                EventClass::Readout
            ]
        );
        // zero-probability events drop out of both tables in lockstep
        let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.1, 0.0, 0.02));
        let p = FailureProfile::new(&dev, &routed_bell(), CoherenceModel::Disabled).unwrap();
        assert_eq!(
            p.active_event_classes(),
            &[EventClass::Cnot, EventClass::Readout, EventClass::Readout]
        );
        // idle-window coherence events land at the tail
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        c.h(PhysQubit(2));
        for _ in 0..50 {
            c.h(PhysQubit(0));
        }
        c.cnot(PhysQubit(0), PhysQubit(1));
        c.cnot(PhysQubit(1), PhysQubit(2));
        let p = FailureProfile::new(&device(), &c, CoherenceModel::IdleWindow).unwrap();
        assert_eq!(p.active_event_classes().len(), p.active_events().len());
        assert!(p.active_event_classes().contains(&EventClass::Coherence));
    }

    #[test]
    fn success_probability_is_product() {
        let p = FailureProfile::new(&device(), &routed_bell(), CoherenceModel::Disabled).unwrap();
        let expected = 0.99 * 0.9 * 0.98 * 0.98;
        assert!((p.success_probability() - expected).abs() < 1e-12);
    }

    #[test]
    fn swap_counts_as_three_cnots() {
        let mut c: Circuit<PhysQubit> = Circuit::new(2);
        c.swap(PhysQubit(0), PhysQubit(1));
        let p = FailureProfile::new(&device(), &c, CoherenceModel::Disabled).unwrap();
        assert!((p.op_failures()[0] - (1.0 - 0.9f64.powi(3))).abs() < 1e-12);
    }

    #[test]
    fn unrouted_cnot_is_rejected() {
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        c.cnot(PhysQubit(0), PhysQubit(2)); // not coupled on a line
        let err = FailureProfile::new(&device(), &c, CoherenceModel::Disabled).unwrap_err();
        assert!(matches!(err, SimError::UncoupledOperands { gate_index: 0, .. }));
    }

    #[test]
    fn oversized_circuit_rejected() {
        let c: Circuit<PhysQubit> = Circuit::new(5);
        let err = FailureProfile::new(&device(), &c, CoherenceModel::Disabled).unwrap_err();
        assert!(matches!(
            err,
            SimError::TooManyQubits {
                circuit: 5,
                device: 3
            }
        ));
    }

    #[test]
    fn coherence_disabled_is_zero() {
        let p = FailureProfile::new(&device(), &routed_bell(), CoherenceModel::Disabled).unwrap();
        assert_eq!(p.coherence_failure_weight(), 0.0);
        assert_eq!(p.gate_to_coherence_ratio(), f64::INFINITY);
    }

    #[test]
    fn idle_window_charges_waiting_qubit() {
        // q2 is gated early, then must wait on q0's long serial chain
        // before its final CNOT lands.
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        c.h(PhysQubit(2));
        for _ in 0..50 {
            c.h(PhysQubit(0));
        }
        c.cnot(PhysQubit(0), PhysQubit(1));
        c.cnot(PhysQubit(1), PhysQubit(2));
        let p = FailureProfile::new(&device(), &c, CoherenceModel::IdleWindow).unwrap();
        let coh = p.coherence_failures();
        assert!(coh[2] > 0.0, "waiting qubit must accrue coherence failure");
        assert!(coh[2] > coh[0], "busy qubit idles less than waiting qubit");
    }

    #[test]
    fn unused_qubit_accrues_nothing() {
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        c.h(PhysQubit(0));
        let p = FailureProfile::new(&device(), &c, CoherenceModel::IdleWindow).unwrap();
        assert_eq!(p.coherence_failures()[1], 0.0);
        assert_eq!(p.coherence_failures()[2], 0.0);
    }

    #[test]
    fn gate_and_readout_weights_split() {
        let p = FailureProfile::new(&device(), &routed_bell(), CoherenceModel::Disabled).unwrap();
        let expect_gate = -(0.99f64.ln() + 0.9f64.ln());
        let expect_ro = -2.0 * 0.98f64.ln();
        assert!((p.gate_failure_weight() - expect_gate).abs() < 1e-12);
        assert!((p.readout_failure_weight() - expect_ro).abs() < 1e-12);
    }

    #[test]
    fn gate_errors_dominate_coherence_on_real_device() {
        // §4.4: for realistic calibrations the gate weight dwarfs the
        // coherence weight.
        let dev = Device::ibm_q20();
        let mut c: Circuit<PhysQubit> = Circuit::new(20);
        // boustrophedon walk over the 4×5 Tokyo mesh
        let snake = [
            0u32, 1, 2, 3, 4, 9, 8, 7, 6, 5, 10, 11, 12, 13, 14, 19, 18, 17, 16, 15,
        ];
        for w in snake.windows(2) {
            c.cnot(PhysQubit(w[0]), PhysQubit(w[1]));
        }
        c.measure_all();
        let p = FailureProfile::new(&dev, &c, CoherenceModel::IdleWindow).unwrap();
        // a fully serial CNOT chain is the coherence-heaviest shape;
        // even there gates must outweigh decoherence
        assert!(
            p.gate_to_coherence_ratio() > 1.0,
            "ratio {}",
            p.gate_to_coherence_ratio()
        );
    }
}
