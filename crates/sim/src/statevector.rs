//! A dense state-vector quantum simulator.
//!
//! Tracks all `2^n` complex amplitudes, applies gate unitaries exactly,
//! and supports projective measurement with collapse. This is the
//! engine behind the noisy "real machine" stand-in of §7: unlike the
//! fault-injection model, errors here are *state-dependent* (a Pauli-Z
//! on a qubit in |0⟩ is harmless, an X always flips), so it exercises
//! the policies against a noise process they were not tuned for.

use quva_circuit::{Gate, OneQubitKind, PhysQubit, QubitId};
use rand::Rng;

use crate::complex::Complex64;

/// Maximum qubit count the dense simulator accepts (`2^24` amplitudes =
/// 256 MiB); chosen to fail fast on accidental huge circuits.
pub const MAX_STATEVECTOR_QUBITS: usize = 24;

/// A pure quantum state over `n` qubits, with qubit `q` mapped to bit
/// `q` of the basis index (little-endian).
///
/// # Examples
///
/// ```
/// use quva_sim::StateVector;
///
/// let mut sv = StateVector::new(2);
/// sv.h(0);
/// sv.cnot(0, 1);               // Bell pair
/// assert!((sv.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((sv.probability(0b11) - 0.5).abs() < 1e-12);
/// assert!(sv.probability(0b01) < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros state |0…0⟩ over `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`MAX_STATEVECTOR_QUBITS`].
    pub fn new(n: usize) -> Self {
        assert!(
            n <= MAX_STATEVECTOR_QUBITS,
            "{n} qubits exceeds the dense simulator limit"
        );
        let mut amps = vec![Complex64::ZERO; 1usize << n];
        amps[0] = Complex64::ONE;
        StateVector { n, amps }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The probability of measuring basis state `basis` on all qubits.
    ///
    /// # Panics
    ///
    /// Panics if `basis` has bits above the register size.
    pub fn probability(&self, basis: u64) -> f64 {
        assert!(basis < (1u64 << self.n), "basis state out of range");
        self.amps[basis as usize].norm_sqr()
    }

    /// The raw amplitude of basis state `basis`.
    ///
    /// # Panics
    ///
    /// Panics if `basis` has bits above the register size.
    pub fn amplitude(&self, basis: u64) -> Complex64 {
        assert!(basis < (1u64 << self.n), "basis state out of range");
        self.amps[basis as usize]
    }

    /// Crate-internal raw access for the density-matrix layer.
    pub(crate) fn amps(&self) -> &[Complex64] {
        &self.amps
    }

    /// Crate-internal raw mutable access for the density-matrix layer.
    pub(crate) fn amps_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }

    /// Total norm `Σ|amp|²` (should stay 1 under unitaries; tested).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Applies an arbitrary single-qubit unitary `[[a, b], [c, d]]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_1q(&mut self, q: usize, m: [[Complex64; 2]; 2]) {
        assert!(q < self.n, "qubit {q} out of range");
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let j = i | bit;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    /// Applies the named single-qubit gate.
    pub fn apply_kind(&mut self, q: usize, kind: OneQubitKind) {
        self.apply_1q(q, matrix_of(kind));
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        self.apply_kind(q, OneQubitKind::H);
    }

    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) {
        self.apply_kind(q, OneQubitKind::X);
    }

    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) {
        self.apply_kind(q, OneQubitKind::Y);
    }

    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) {
        self.apply_kind(q, OneQubitKind::Z);
    }

    /// CNOT with the given control and target.
    ///
    /// # Panics
    ///
    /// Panics if operands coincide or are out of range.
    pub fn cnot(&mut self, control: usize, target: usize) {
        assert!(control != target, "cnot operands must differ");
        assert!(control < self.n && target < self.n, "cnot operand out of range");
        let cbit = 1usize << control;
        let tbit = 1usize << target;
        for i in 0..self.amps.len() {
            if i & cbit != 0 && i & tbit == 0 {
                self.amps.swap(i, i | tbit);
            }
        }
    }

    /// SWAP of two qubits.
    ///
    /// # Panics
    ///
    /// Panics if operands coincide or are out of range.
    pub fn swap(&mut self, a: usize, b: usize) {
        assert!(a != b, "swap operands must differ");
        assert!(a < self.n && b < self.n, "swap operand out of range");
        let abit = 1usize << a;
        let bbit = 1usize << b;
        for i in 0..self.amps.len() {
            if i & abit != 0 && i & bbit == 0 {
                self.amps.swap(i, (i & !abit) | bbit);
            }
        }
    }

    /// Applies one gate of the IR (barriers are no-ops; measurements are
    /// not unitary — use [`StateVector::measure`]).
    ///
    /// # Panics
    ///
    /// Panics if handed a measurement gate.
    pub fn apply_gate<Q: QubitId>(&mut self, gate: &Gate<Q>) {
        match gate {
            Gate::OneQubit { kind, qubit } => self.apply_kind(qubit.index(), *kind),
            Gate::Cnot { control, target } => self.cnot(control.index(), target.index()),
            Gate::Swap { a, b } => self.swap(a.index(), b.index()),
            Gate::Barrier { .. } => {}
            Gate::Measure { .. } => panic!("measurement is not unitary; use StateVector::measure"),
        }
    }

    /// Probability that measuring `q` yields 1.
    pub fn prob_one(&self, q: usize) -> f64 {
        let bit = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Projectively measures `q` in the Z basis, collapsing the state
    /// and returning the outcome bit.
    pub fn measure(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        let p1 = self.prob_one(q);
        let outcome = rng.random::<f64>() < p1;
        self.collapse(q, outcome);
        outcome
    }

    /// Forces qubit `q` into the given outcome, renormalizing.
    ///
    /// # Panics
    ///
    /// Panics if the outcome has zero probability (the state has no
    /// support on it).
    pub fn collapse(&mut self, q: usize, outcome: bool) {
        let bit = 1usize << q;
        let p = if outcome {
            self.prob_one(q)
        } else {
            1.0 - self.prob_one(q)
        };
        assert!(p > 1e-15, "collapsing onto a zero-probability outcome");
        let scale = 1.0 / p.sqrt();
        for (i, amp) in self.amps.iter_mut().enumerate() {
            let has_bit = i & bit != 0;
            if has_bit == outcome {
                *amp = amp.scale(scale);
            } else {
                *amp = Complex64::ZERO;
            }
        }
    }

    /// Applies the Pauli operator `pauli` (1 = X, 2 = Y, 3 = Z) to `q` —
    /// the error injections of the noisy simulator.
    ///
    /// # Panics
    ///
    /// Panics if `pauli` is not 1, 2, or 3.
    pub fn apply_pauli(&mut self, q: usize, pauli: u8) {
        match pauli {
            1 => self.x(q),
            2 => self.y(q),
            3 => self.z(q),
            _ => panic!("pauli index {pauli} must be 1 (X), 2 (Y) or 3 (Z)"),
        }
    }
}

/// The 2×2 unitary of a single-qubit gate kind.
pub fn matrix_of(kind: OneQubitKind) -> [[Complex64; 2]; 2] {
    use Complex64 as C;
    let zero = C::ZERO;
    let one = C::ONE;
    let i = C::I;
    let h = std::f64::consts::FRAC_1_SQRT_2;
    match kind {
        OneQubitKind::I => [[one, zero], [zero, one]],
        OneQubitKind::X => [[zero, one], [one, zero]],
        OneQubitKind::Y => [[zero, -i], [i, zero]],
        OneQubitKind::Z => [[one, zero], [zero, -one]],
        OneQubitKind::H => [
            [C::new(h, 0.0), C::new(h, 0.0)],
            [C::new(h, 0.0), C::new(-h, 0.0)],
        ],
        OneQubitKind::S => [[one, zero], [zero, i]],
        OneQubitKind::Sdg => [[one, zero], [zero, -i]],
        OneQubitKind::T => [[one, zero], [zero, C::from_polar(std::f64::consts::FRAC_PI_4)]],
        OneQubitKind::Tdg => [[one, zero], [zero, C::from_polar(-std::f64::consts::FRAC_PI_4)]],
        OneQubitKind::Rx(t) => {
            let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
            [
                [C::new(c, 0.0), C::new(0.0, -s)],
                [C::new(0.0, -s), C::new(c, 0.0)],
            ]
        }
        OneQubitKind::Ry(t) => {
            let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
            [
                [C::new(c, 0.0), C::new(-s, 0.0)],
                [C::new(s, 0.0), C::new(c, 0.0)],
            ]
        }
        OneQubitKind::Rz(t) => [[C::from_polar(-t / 2.0), zero], [zero, C::from_polar(t / 2.0)]],
    }
}

// PhysQubit is the index type used throughout the simulators; keep the
// import non-dead even when only generics use it.
#[allow(unused)]
fn _assert_physqubit_usable(g: &Gate<PhysQubit>, sv: &mut StateVector) {
    sv.apply_gate(g);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn starts_in_zero_state() {
        let sv = StateVector::new(3);
        assert_eq!(sv.probability(0), 1.0);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_flips() {
        let mut sv = StateVector::new(2);
        sv.x(1);
        assert!((sv.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn h_twice_is_identity() {
        let mut sv = StateVector::new(1);
        sv.h(0);
        sv.h(0);
        assert!((sv.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_pair_correlations() {
        let mut sv = StateVector::new(2);
        sv.h(0);
        sv.cnot(0, 1);
        assert!((sv.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((sv.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(sv.probability(0b01).abs() < 1e-12);
        assert!(sv.probability(0b10).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges_bits() {
        let mut sv = StateVector::new(3);
        sv.x(0);
        sv.swap(0, 2);
        assert!((sv.probability(0b100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_equals_three_cnots() {
        let mut a = StateVector::new(2);
        a.h(0);
        a.t(0);
        a.swap(0, 1);
        let mut b = StateVector::new(2);
        b.h(0);
        b.t(0);
        b.cnot(0, 1);
        b.cnot(1, 0);
        b.cnot(0, 1);
        for basis in 0..4u64 {
            assert!((a.probability(basis) - b.probability(basis)).abs() < 1e-12);
        }
    }

    impl StateVector {
        fn t(&mut self, q: usize) {
            self.apply_kind(q, OneQubitKind::T);
        }
    }

    #[test]
    fn unitaries_preserve_norm() {
        let mut sv = StateVector::new(4);
        for (q, kind) in [
            (0, OneQubitKind::H),
            (1, OneQubitKind::T),
            (2, OneQubitKind::Rx(0.7)),
            (3, OneQubitKind::Ry(1.3)),
            (0, OneQubitKind::Rz(2.1)),
            (1, OneQubitKind::S),
            (2, OneQubitKind::Y),
        ] {
            sv.apply_kind(q, kind);
        }
        sv.cnot(0, 3);
        sv.swap(1, 2);
        assert!((sv.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sdg_inverts_s() {
        let mut sv = StateVector::new(1);
        sv.h(0);
        sv.apply_kind(0, OneQubitKind::S);
        sv.apply_kind(0, OneQubitKind::Sdg);
        sv.h(0);
        assert!((sv.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        let mut sv = StateVector::new(1);
        sv.apply_kind(0, OneQubitKind::Rx(std::f64::consts::PI));
        assert!((sv.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_collapses() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut sv = StateVector::new(2);
        sv.h(0);
        sv.cnot(0, 1);
        let m0 = sv.measure(0, &mut rng);
        let m1 = sv.measure(1, &mut rng);
        assert_eq!(m0, m1, "Bell pair measurements must agree");
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_statistics_are_fair() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ones = 0;
        for _ in 0..2000 {
            let mut sv = StateVector::new(1);
            sv.h(0);
            if sv.measure(0, &mut rng) {
                ones += 1;
            }
        }
        assert!((800..1200).contains(&ones), "H measurement bias: {ones}/2000");
    }

    #[test]
    fn pauli_injection() {
        let mut sv = StateVector::new(1);
        sv.apply_pauli(0, 1);
        assert!((sv.probability(1) - 1.0).abs() < 1e-12);
        // Z on |1> flips phase but not probability
        sv.apply_pauli(0, 3);
        assert!((sv.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pauli index")]
    fn pauli_rejects_identity_code() {
        StateVector::new(1).apply_pauli(0, 0);
    }

    #[test]
    #[should_panic(expected = "not unitary")]
    fn apply_gate_rejects_measure() {
        let mut sv = StateVector::new(1);
        let g: Gate<PhysQubit> = Gate::measure(PhysQubit(0), quva_circuit::Cbit(0));
        sv.apply_gate(&g);
    }

    #[test]
    #[should_panic(expected = "zero-probability")]
    fn collapse_rejects_impossible() {
        let mut sv = StateVector::new(1);
        sv.collapse(0, true); // |0> has no support on 1
    }

    #[test]
    #[should_panic(expected = "exceeds the dense simulator limit")]
    fn refuses_monster_register() {
        StateVector::new(30);
    }
}
