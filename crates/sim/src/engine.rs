//! Deterministic parallel execution engine for the Monte-Carlo
//! fault injector.
//!
//! The estimator is embarrassingly parallel: each trial draws an
//! independent Bernoulli per event and trials never communicate. The
//! engine exploits that by splitting the trial budget into fixed-size
//! *chunks*, giving every chunk its own RNG stream derived from the
//! root seed by a SplitMix64 counter, and merging the per-chunk
//! [`McEstimate`]s by pure integer addition.
//!
//! # Determinism contract
//!
//! For a given `(trials, seed, chunk_trials)` the result is
//! **bit-identical for every thread count, including 1**:
//!
//! * chunk `k` always simulates the same trial range with the RNG
//!   stream seeded by [`chunk seed derivation`](#seed-derivation),
//!   regardless of which worker picks it up;
//! * merging is `u64` addition of success and trial counts —
//!   associative and commutative, so the work-stealing schedule cannot
//!   leak into the result;
//! * the final PST is one `f64` division of the merged integers,
//!   performed once.
//!
//! The chunk size is a property of the *estimator*, not of the
//! machine: it defaults to [`DEFAULT_CHUNK_TRIALS`] everywhere so a
//! laptop, a CI runner, and a 96-core server all produce the same
//! bytes.
//!
//! # Seed derivation
//!
//! Chunk `k` is seeded with element `k` of the SplitMix64 stream
//! anchored at the root seed (the same generator, with the same
//! constants, that [`rand::rngs::StdRng`] uses internally to expand
//! seeds). SplitMix64 is a bijective counter-based generator, so chunk
//! seeds are derived in O(1) without scanning — workers can claim
//! chunks in any order — and distinct chunks never collide.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::montecarlo::McEstimate;
use crate::profile::{EventClass, FailureProfile};

/// Trials per chunk: the unit of work handed to worker threads.
///
/// Fixed (rather than `trials / threads`) so results are independent
/// of the thread count. 16Ki trials is large enough that chunk
/// dispatch overhead vanishes against the injection loop, and small
/// enough that a million-trial run load-balances across dozens of
/// workers even when early faults make chunk costs uneven.
pub const DEFAULT_CHUNK_TRIALS: u64 = 16_384;

/// The SplitMix64 increment (golden-ratio constant), shared with
/// `StdRng`'s seed expansion.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Element `index` of the SplitMix64 stream anchored at `root` — the
/// RNG seed of chunk `index`. Counter-based: O(1) for any index.
fn chunk_seed(root: u64, index: u64) -> u64 {
    let z = root.wrapping_add(GOLDEN.wrapping_mul(index.wrapping_add(1)));
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one chunk of the injection loop: `trials` independent trials
/// against the dense `events` table, its own seeded stream.
fn run_chunk(events: &[f64], trials: u64, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut successes = 0u64;
    'trial: for _ in 0..trials {
        for &p in events {
            if rng.random::<f64>() < p {
                continue 'trial;
            }
        }
        successes += 1;
    }
    successes
}

/// [`run_chunk`] with fault attribution: the aborting event's class is
/// tallied into `aborts` (indexed by [`EventClass::index`]).
///
/// Draws the RNG stream *identically* to `run_chunk` — both abort a
/// trial at its first firing event — so for equal inputs the success
/// count is bit-identical; only the bookkeeping differs.
fn run_chunk_traced(
    events: &[f64],
    classes: &[EventClass],
    trials: u64,
    seed: u64,
    aborts: &mut [u64; 5],
) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut successes = 0u64;
    'trial: for _ in 0..trials {
        for (i, &p) in events.iter().enumerate() {
            if rng.random::<f64>() < p {
                aborts[classes[i].index()] += 1;
                continue 'trial;
            }
        }
        successes += 1;
    }
    successes
}

/// Publishes a per-worker abort tally as `sim.abort.<class>` counters
/// (zero classes omitted). Counter merging is u64 addition, so the
/// drained totals are independent of the work-stealing schedule.
fn record_aborts(aborts: &[u64; 5]) {
    for class in EventClass::ALL {
        let n = aborts[class.index()];
        if n > 0 {
            quva_obs::counter(class.abort_counter(), n);
        }
    }
}

/// A chunked, deterministic, optionally multi-threaded executor for
/// Monte-Carlo trial runs.
///
/// # Examples
///
/// ```
/// use quva_circuit::{Circuit, PhysQubit};
/// use quva_device::{Calibration, Device, Topology};
/// use quva_sim::{CoherenceModel, FailureProfile, McEngine};
///
/// # fn main() -> Result<(), quva_sim::SimError> {
/// let dev = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
/// let mut c: Circuit<PhysQubit> = Circuit::new(2);
/// c.cnot(PhysQubit(0), PhysQubit(1));
/// let profile = FailureProfile::new(&dev, &c, CoherenceModel::Disabled)?;
///
/// let sequential = McEngine::sequential().run(&profile, 100_000, 7);
/// let parallel = McEngine::new(8).run(&profile, 100_000, 7);
/// assert_eq!(sequential, parallel); // bit-identical, any thread count
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McEngine {
    threads: usize,
    chunk_trials: u64,
}

impl Default for McEngine {
    /// The automatic engine: one worker per available hardware thread.
    fn default() -> Self {
        McEngine::auto()
    }
}

impl McEngine {
    /// An engine with exactly `threads` workers (clamped to at least
    /// one). `McEngine::new(1)` runs entirely on the caller's thread —
    /// no threads are spawned — and is the reference the parallel
    /// schedules are bit-compared against.
    pub fn new(threads: usize) -> Self {
        McEngine {
            threads: threads.max(1),
            chunk_trials: DEFAULT_CHUNK_TRIALS,
        }
    }

    /// The single-threaded engine (identical results, no spawning).
    pub fn sequential() -> Self {
        McEngine::new(1)
    }

    /// One worker per available hardware thread (falls back to 1 when
    /// the parallelism cannot be queried).
    pub fn auto() -> Self {
        McEngine::new(std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// Overrides the trials-per-chunk granularity. Changing this picks
    /// a *different* (still deterministic) sample: results are
    /// bit-stable across thread counts for a fixed chunk size, not
    /// across chunk sizes. Exposed for property tests and tuning; the
    /// default suits every production path.
    pub fn with_chunk_trials(mut self, chunk_trials: u64) -> Self {
        self.chunk_trials = chunk_trials.max(1);
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured trials-per-chunk granularity.
    pub fn chunk_trials(&self) -> u64 {
        self.chunk_trials
    }

    /// Number of trials chunk `index` simulates out of `trials` total.
    fn chunk_len(&self, trials: u64, index: u64) -> u64 {
        (trials - index * self.chunk_trials).min(self.chunk_trials)
    }

    /// Runs `trials` fault-injection trials against `profile` and
    /// merges the per-chunk estimates.
    ///
    /// Deterministic for a given `(trials, seed)`: the result is the
    /// same `McEstimate`, bit for bit, whatever `threads` is — and
    /// whether or not the `quva-obs` recorder is enabled (the traced
    /// path draws the identical RNG stream).
    ///
    /// When the recorder is on, each run contributes `sim.*` counters
    /// (`sim.trials`, `sim.chunks`, `sim.abort.<class>`, …) and
    /// per-chunk/per-worker spans. When it is off, the only cost over
    /// [`Self::run_reference`] is one relaxed atomic load.
    pub fn run(&self, profile: &FailureProfile, trials: u64, seed: u64) -> McEstimate {
        if quva_obs::enabled() {
            self.run_traced(profile, trials, seed)
        } else {
            self.run_reference(profile, trials, seed)
        }
    }

    /// The uninstrumented injection loop: no recorder check, no spans,
    /// no counters. [`Self::run`] delegates here whenever tracing is
    /// disabled; `bench_sim`'s overhead gate compares the two to keep
    /// the disabled path within 2 % of this baseline.
    pub fn run_reference(&self, profile: &FailureProfile, trials: u64, seed: u64) -> McEstimate {
        let events = profile.active_events();
        let chunks = trials.div_ceil(self.chunk_trials);
        let workers = (self.threads as u64).min(chunks);
        if workers <= 1 {
            // Caller-thread path: same chunking, same seeds, no spawn.
            let successes = (0..chunks)
                .map(|k| run_chunk(events, self.chunk_len(trials, k), chunk_seed(seed, k)))
                .sum();
            return McEstimate::from_counts(successes, trials);
        }

        // Work-stealing over the chunk index: chunk costs are uneven
        // (an early fault aborts a trial), so a shared counter beats
        // static striping. The result cannot depend on the schedule —
        // chunk k's seed is a pure function of (seed, k) and the merge
        // is integer addition.
        let next = AtomicU64::new(0);
        let successes = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = 0u64;
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= chunks {
                                break;
                            }
                            local += run_chunk(events, self.chunk_len(trials, k), chunk_seed(seed, k));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
                .sum()
        });
        McEstimate::from_counts(successes, trials)
    }

    /// The instrumented twin of [`Self::run_reference`]: same chunking,
    /// same seeds, same RNG draws (via [`run_chunk_traced`]), plus
    /// spans and deterministic counters. Worker threads record only
    /// u64 counters and flush before exiting, so a drain after this
    /// returns sees schedule-independent totals.
    fn run_traced(&self, profile: &FailureProfile, trials: u64, seed: u64) -> McEstimate {
        let _run = quva_obs::span("sim", "sim.run");
        let events = profile.active_events();
        let classes = profile.active_event_classes();
        let chunks = trials.div_ceil(self.chunk_trials);
        let workers = (self.threads as u64).min(chunks);
        quva_obs::counter("sim.runs", 1);
        quva_obs::counter("sim.trials", trials);
        quva_obs::counter("sim.chunks", chunks);
        quva_obs::counter("sim.workers", workers.max(1));

        if workers <= 1 {
            let mut successes = 0u64;
            let mut aborts = [0u64; 5];
            for k in 0..chunks {
                let _chunk = quva_obs::span("sim", "sim.chunk");
                successes += run_chunk_traced(
                    events,
                    classes,
                    self.chunk_len(trials, k),
                    chunk_seed(seed, k),
                    &mut aborts,
                );
            }
            record_aborts(&aborts);
            return McEstimate::from_counts(successes, trials);
        }

        let next = AtomicU64::new(0);
        let successes: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = 0u64;
                        let mut aborts = [0u64; 5];
                        {
                            let _worker = quva_obs::span("sim", "sim.worker");
                            loop {
                                let k = next.fetch_add(1, Ordering::Relaxed);
                                if k >= chunks {
                                    break;
                                }
                                let _chunk = quva_obs::span("sim", "sim.chunk");
                                local += run_chunk_traced(
                                    events,
                                    classes,
                                    self.chunk_len(trials, k),
                                    chunk_seed(seed, k),
                                    &mut aborts,
                                );
                            }
                        }
                        record_aborts(&aborts);
                        // TLS destructors may lag a scope join: merge now
                        // so the caller's drain sees this worker
                        quva_obs::flush();
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
                .sum()
        });
        McEstimate::from_counts(successes, trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CoherenceModel;
    use quva_circuit::{Circuit, PhysQubit};
    use quva_device::{Calibration, Device, Topology};

    fn profile(e2q: f64, gates: usize) -> FailureProfile {
        let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, e2q, 0.0, 0.0));
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        for _ in 0..gates {
            c.cnot(PhysQubit(0), PhysQubit(1));
        }
        FailureProfile::new(&dev, &c, CoherenceModel::Disabled).unwrap()
    }

    #[test]
    fn chunk_seeds_are_counter_derived_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..10_000u64 {
            assert!(seen.insert(chunk_seed(42, k)), "collision at chunk {k}");
        }
        // counter-based: deriving a late chunk's seed needs no scan and
        // no derivation order
        let forward: Vec<u64> = (0..100).map(|k| chunk_seed(7, k)).collect();
        let backward: Vec<u64> = (0..100).rev().map(|k| chunk_seed(7, k)).collect();
        assert!(forward.iter().eq(backward.iter().rev()));
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        let p = profile(0.08, 7);
        let reference = McEngine::sequential().run(&p, 100_000, 11);
        for threads in [2usize, 3, 4, 8, 17] {
            let parallel = McEngine::new(threads).run(&p, 100_000, 11);
            assert_eq!(reference, parallel, "{threads} threads diverged");
        }
    }

    #[test]
    fn partial_final_chunk_is_covered() {
        let p = profile(0.0, 1);
        // trials not a multiple of the chunk size: every trial must
        // still run (error-free device ⇒ every trial succeeds)
        let engine = McEngine::new(4).with_chunk_trials(1000);
        let est = engine.run(&p, 2_500, 0);
        assert_eq!(est.successes, 2_500);
        assert_eq!(est.trials, 2_500);
        assert_eq!(est.pst, 1.0);
    }

    #[test]
    fn zero_trials_is_the_empty_estimate() {
        let p = profile(0.1, 3);
        let est = McEngine::new(8).run(&p, 0, 5);
        assert_eq!(est, McEstimate::from_counts(0, 0));
        assert_eq!(est.pst, 0.0);
        assert_eq!(est.std_error(), 0.0);
    }

    #[test]
    fn more_threads_than_chunks_is_fine() {
        let p = profile(0.05, 2);
        let engine = McEngine::new(64).with_chunk_trials(10);
        let small = engine.run(&p, 25, 3);
        assert_eq!(small, McEngine::sequential().with_chunk_trials(10).run(&p, 25, 3));
    }

    #[test]
    fn engine_converges_to_analytic() {
        let p = profile(0.05, 10);
        let analytic = p.success_probability();
        let est = McEngine::new(4).run(&p, 200_000, 1);
        assert!(
            (est.pst - analytic).abs() < 4.0 * est.std_error().max(1e-4),
            "engine {} vs analytic {analytic}",
            est.pst
        );
    }

    #[test]
    fn auto_engine_has_at_least_one_thread() {
        assert!(McEngine::auto().threads() >= 1);
        assert_eq!(McEngine::default(), McEngine::auto());
    }
}
