//! Deterministic parallel execution engine for the Monte-Carlo
//! fault injector.
//!
//! The estimator is embarrassingly parallel: each trial draws an
//! independent Bernoulli per event and trials never communicate. The
//! engine exploits that by splitting the trial budget into fixed-size
//! *chunks*, giving every chunk its own RNG stream derived from the
//! root seed by a SplitMix64 counter, and merging the per-chunk
//! [`McEstimate`]s by pure integer addition.
//!
//! Two trial kernels share that chunked executor, selected by
//! [`McKernel`]:
//!
//! * **`BitParallel`** (the default) — the SWAR kernel of
//!   [`crate::bitparallel`]: 64 trials per `u64` lane-word, one
//!   binomial alias draw per `(word, event)`, OR-folded failure masks,
//!   `count_ones()` to merge. ~10x the scalar throughput on the
//!   1-CPU CI host.
//! * **`Scalar`** — the original per-trial Bernoulli loop over
//!   [`rand::rngs::StdRng`], retained as the cross-validation oracle:
//!   an independent sampling procedure the bit-parallel estimates are
//!   held to within binomial standard error (the `mc-crossval` CI
//!   job).
//!
//! # Determinism contract
//!
//! For a given `(trials, seed, chunk_trials, kernel)` the result is
//! **bit-identical for every thread count, including 1**:
//!
//! * chunk `k` always simulates the same trial range with the RNG
//!   stream seeded by [`chunk seed derivation`](#seed-derivation),
//!   regardless of which worker picks it up;
//! * merging is `u64` addition of success and trial counts —
//!   associative and commutative, so the work-stealing schedule cannot
//!   leak into the result;
//! * the final PST is one `f64` division of the merged integers,
//!   performed once.
//!
//! The chunk size is a property of the *estimator*, not of the
//! machine: it defaults to [`DEFAULT_CHUNK_TRIALS`] everywhere so a
//! laptop, a CI runner, and a 96-core server all produce the same
//! bytes.
//!
//! The bit-parallel kernel's contract is strictly stronger: its draws
//! are keyed by the *global* lane-word index (lane-major seeding), not
//! by the chunk, so its counts are invariant under the chunk size too
//! — any partition of the trial range merges to the same bytes. The
//! scalar kernel keeps its historical per-chunk streams, where the
//! chunk size selects the (deterministic) sample.
//!
//! # Seed derivation
//!
//! Chunk `k` is seeded with element `k` of the SplitMix64 stream
//! anchored at the root seed (the same generator, with the same
//! constants, that [`rand::rngs::StdRng`] uses internally to expand
//! seeds). SplitMix64 is a bijective counter-based generator, so chunk
//! seeds are derived in O(1) without scanning — workers can claim
//! chunks in any order — and distinct chunks never collide. The
//! bit-parallel kernel anchors the same stream at the same root but
//! indexes it by global lane-word instead of chunk: word `w`'s draws
//! all derive from stream element `w` by salted counter offsets.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bitparallel::{self, BpTrace, LaneTable, LANES};
use crate::montecarlo::McEstimate;
use crate::profile::{EventClass, FailureProfile};

/// Trials per chunk: the unit of work handed to worker threads.
///
/// Fixed (rather than `trials / threads`) so results are independent
/// of the thread count. 16Ki trials is large enough that chunk
/// dispatch overhead vanishes against the injection loop, and small
/// enough that a million-trial run load-balances across dozens of
/// workers even when early faults make chunk costs uneven.
pub const DEFAULT_CHUNK_TRIALS: u64 = 16_384;

/// The SplitMix64 increment (golden-ratio constant), shared with
/// `StdRng`'s seed expansion.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output finalizer: a bijective avalanche over `u64`.
/// Shared by the chunk-seed derivation here and every counter-based
/// draw of the bit-parallel kernel.
#[inline]
pub(crate) fn splitmix(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Element `index` of the SplitMix64 stream anchored at `root` — the
/// RNG seed of chunk `index` (scalar kernel) or the base of lane-word
/// `index`'s draws (bit-parallel kernel). Counter-based: O(1) for any
/// index.
fn chunk_seed(root: u64, index: u64) -> u64 {
    splitmix(root.wrapping_add(GOLDEN.wrapping_mul(index.wrapping_add(1))))
}

/// Runs one chunk of the injection loop: `trials` independent trials
/// against the dense `events` table, its own seeded stream.
fn run_chunk(events: &[f64], trials: u64, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut successes = 0u64;
    'trial: for _ in 0..trials {
        for &p in events {
            if rng.random::<f64>() < p {
                continue 'trial;
            }
        }
        successes += 1;
    }
    successes
}

/// [`run_chunk`] with fault attribution: the aborting event's class is
/// tallied into `aborts` (indexed by [`EventClass::index`]).
///
/// Draws the RNG stream *identically* to `run_chunk` — both abort a
/// trial at its first firing event — so for equal inputs the success
/// count is bit-identical; only the bookkeeping differs.
fn run_chunk_traced(
    events: &[f64],
    classes: &[EventClass],
    trials: u64,
    seed: u64,
    aborts: &mut [u64; 5],
) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut successes = 0u64;
    'trial: for _ in 0..trials {
        for (i, &p) in events.iter().enumerate() {
            if rng.random::<f64>() < p {
                aborts[classes[i].index()] += 1;
                continue 'trial;
            }
        }
        successes += 1;
    }
    successes
}

/// Publishes a per-worker abort tally as `sim.abort.<class>` counters
/// (zero classes omitted). Counter merging is u64 addition, so the
/// drained totals are independent of the work-stealing schedule.
fn record_aborts(aborts: &[u64; 5]) {
    for class in EventClass::ALL {
        let n = aborts[class.index()];
        if n > 0 {
            quva_obs::counter(class.abort_counter(), n);
        }
    }
}

/// Publishes a per-worker bit-parallel tally: the shared `sim.abort.*`
/// accounting plus the kernel's own `sim.bitparallel.*` counters.
fn record_bp_trace(trace: &BpTrace) {
    record_aborts(&trace.aborts);
    if trace.words > 0 {
        quva_obs::counter("sim.bitparallel.words", trace.words);
    }
    if trace.fires > 0 {
        quva_obs::counter("sim.bitparallel.fires", trace.fires);
    }
}

/// The lane mask selecting bits `lo..hi` of a word (`hi ≤ 64`,
/// `lo < hi`).
#[inline]
fn lane_mask(lo: u64, hi: u64) -> u64 {
    debug_assert!(lo < hi && hi <= LANES);
    (!0u64 >> (LANES - (hi - lo))) << lo
}

/// Runs the bit-parallel kernel over the *global* trial range
/// `[start, start + len)`. Lane-words overlapping the range are
/// evaluated in full — every draw is keyed by the global word index,
/// so a word split across two chunks is computed identically by both
/// and each counts only its own lanes. That is what makes the merged
/// result independent of the chunking.
fn run_chunk_bitparallel(table: &LaneTable, seed: u64, start: u64, len: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let end = start + len;
    let mut successes = 0u64;
    let mut scratch = bitparallel::Scratch::default();
    for w in start / LANES..end.div_ceil(LANES) {
        let lo = start.max(w * LANES) - w * LANES;
        let hi = end.min((w + 1) * LANES) - w * LANES;
        let fail = bitparallel::word_failures(table, chunk_seed(seed, w), &mut scratch);
        successes += u64::from((!fail & lane_mask(lo, hi)).count_ones());
    }
    successes
}

/// [`run_chunk_bitparallel`] with fault attribution and kernel
/// counters. Identical draws, identical masks, identical counts —
/// only the bookkeeping differs (the contract shared with
/// [`run_chunk_traced`]).
fn run_chunk_bitparallel_traced(
    table: &LaneTable,
    seed: u64,
    start: u64,
    len: u64,
    trace: &mut BpTrace,
) -> u64 {
    if len == 0 {
        return 0;
    }
    let end = start + len;
    let mut successes = 0u64;
    let mut scratch = bitparallel::Scratch::default();
    for w in start / LANES..end.div_ceil(LANES) {
        let lo = start.max(w * LANES) - w * LANES;
        let hi = end.min((w + 1) * LANES) - w * LANES;
        let lanes = lane_mask(lo, hi);
        let fail = bitparallel::word_failures_traced(table, chunk_seed(seed, w), lanes, trace, &mut scratch);
        successes += u64::from((!fail & lanes).count_ones());
    }
    successes
}

/// Chunk-boundary progress accounting threaded through the injection
/// loops. `done` is a shared cumulative counter, so each completed
/// chunk reports the *total* trials finished so far; with work
/// stealing the callback may be invoked from several worker threads
/// and invocation order is schedule-dependent (fold with `max` for a
/// monotonic display). Progress observes the run — it never alters
/// chunking, seeding, or merging, so results stay bit-identical with
/// and without a sink.
struct ProgressSink<'a> {
    done: AtomicU64,
    total: u64,
    f: &'a (dyn Fn(u64, u64) + Sync),
}

impl ProgressSink<'_> {
    fn chunk_done(&self, n: u64) {
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        (self.f)(done.min(self.total), self.total);
    }
}

/// Which trial kernel a [`McEngine`] runs.
///
/// Both kernels sample the same model (independent Bernoulli per
/// active event) and satisfy the same determinism contract; they are
/// *different deterministic samples*, cross-validated against each
/// other statistically rather than bit-compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum McKernel {
    /// Per-trial Bernoulli loop over `StdRng` — the original kernel,
    /// kept as the independent oracle for cross-validation.
    Scalar,
    /// 64-trials-per-word SWAR kernel ([`crate::bitparallel`]) — the
    /// production default.
    #[default]
    BitParallel,
}

impl McKernel {
    /// The stable textual name, as accepted by [`McKernel::from_str`]
    /// and the CLI `--engine` flag.
    pub fn label(self) -> &'static str {
        match self {
            McKernel::Scalar => "scalar",
            McKernel::BitParallel => "bitparallel",
        }
    }
}

impl std::fmt::Display for McKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for McKernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(McKernel::Scalar),
            "bitparallel" => Ok(McKernel::BitParallel),
            other => Err(format!(
                "unknown engine kernel '{other}' (expected scalar|bitparallel)"
            )),
        }
    }
}

/// A chunked, deterministic, optionally multi-threaded executor for
/// Monte-Carlo trial runs.
///
/// # Examples
///
/// ```
/// use quva_circuit::{Circuit, PhysQubit};
/// use quva_device::{Calibration, Device, Topology};
/// use quva_sim::{CoherenceModel, FailureProfile, McEngine};
///
/// # fn main() -> Result<(), quva_sim::SimError> {
/// let dev = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
/// let mut c: Circuit<PhysQubit> = Circuit::new(2);
/// c.cnot(PhysQubit(0), PhysQubit(1));
/// let profile = FailureProfile::new(&dev, &c, CoherenceModel::Disabled)?;
///
/// let sequential = McEngine::sequential().run(&profile, 100_000, 7);
/// let parallel = McEngine::new(8).run(&profile, 100_000, 7);
/// assert_eq!(sequential, parallel); // bit-identical, any thread count
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McEngine {
    threads: usize,
    chunk_trials: u64,
    kernel: McKernel,
}

impl Default for McEngine {
    /// The automatic engine: one worker per available hardware thread.
    fn default() -> Self {
        McEngine::auto()
    }
}

impl McEngine {
    /// An engine with exactly `threads` workers (clamped to at least
    /// one). `McEngine::new(1)` runs entirely on the caller's thread —
    /// no threads are spawned — and is the reference the parallel
    /// schedules are bit-compared against.
    pub fn new(threads: usize) -> Self {
        McEngine {
            threads: threads.max(1),
            chunk_trials: DEFAULT_CHUNK_TRIALS,
            kernel: McKernel::default(),
        }
    }

    /// The single-threaded engine (identical results, no spawning).
    pub fn sequential() -> Self {
        McEngine::new(1)
    }

    /// One worker per available hardware thread (falls back to 1 when
    /// the parallelism cannot be queried).
    pub fn auto() -> Self {
        McEngine::new(std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// Overrides the trials-per-chunk granularity. Changing this picks
    /// a *different* (still deterministic) sample: results are
    /// bit-stable across thread counts for a fixed chunk size, not
    /// across chunk sizes. Exposed for property tests and tuning; the
    /// default suits every production path.
    pub fn with_chunk_trials(mut self, chunk_trials: u64) -> Self {
        self.chunk_trials = chunk_trials.max(1);
        self
    }

    /// Selects the trial kernel. The default is
    /// [`McKernel::BitParallel`]; cross-validation harnesses pass
    /// [`McKernel::Scalar`] to run the oracle.
    pub fn with_kernel(mut self, kernel: McKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured trials-per-chunk granularity.
    pub fn chunk_trials(&self) -> u64 {
        self.chunk_trials
    }

    /// The configured trial kernel.
    pub fn kernel(&self) -> McKernel {
        self.kernel
    }

    /// Number of trials chunk `index` simulates out of `trials` total.
    fn chunk_len(&self, trials: u64, index: u64) -> u64 {
        (trials - index * self.chunk_trials).min(self.chunk_trials)
    }

    /// Runs `trials` fault-injection trials against `profile` and
    /// merges the per-chunk estimates.
    ///
    /// Deterministic for a given `(trials, seed)`: the result is the
    /// same `McEstimate`, bit for bit, whatever `threads` is — and
    /// whether or not the `quva-obs` recorder is enabled (the traced
    /// path draws the identical RNG stream).
    ///
    /// When the recorder is on, each run contributes `sim.*` counters
    /// (`sim.trials`, `sim.chunks`, `sim.abort.<class>`, …) and
    /// per-chunk/per-worker spans. When it is off, the only cost over
    /// [`Self::run_reference`] is one relaxed atomic load.
    pub fn run(&self, profile: &FailureProfile, trials: u64, seed: u64) -> McEstimate {
        self.run_with(profile, trials, seed, None)
    }

    /// [`Self::run`] with a chunk-boundary progress callback, invoked
    /// as `f(done, total)` after each completed chunk with the
    /// cumulative trial count. The callback observes the run without
    /// altering it: chunking, seeding, and merging are untouched, so
    /// the estimate is bit-identical to [`Self::run`]. With work
    /// stealing the callback fires from worker threads in
    /// schedule-dependent order (`done` values are cumulative totals;
    /// fold with `max` for a monotonic display).
    pub fn run_with_progress(
        &self,
        profile: &FailureProfile,
        trials: u64,
        seed: u64,
        f: &(dyn Fn(u64, u64) + Sync),
    ) -> McEstimate {
        let sink = ProgressSink {
            done: AtomicU64::new(0),
            total: trials,
            f,
        };
        self.run_with(profile, trials, seed, Some(&sink))
    }

    fn run_with(
        &self,
        profile: &FailureProfile,
        trials: u64,
        seed: u64,
        progress: Option<&ProgressSink>,
    ) -> McEstimate {
        if quva_obs::enabled() {
            self.run_traced(profile, trials, seed, progress)
        } else {
            self.run_reference_with(profile, trials, seed, progress)
        }
    }

    /// The uninstrumented injection loop for the configured kernel: no
    /// recorder check, no spans, no counters. [`Self::run`] delegates
    /// here whenever tracing is disabled; `bench_sim`'s overhead gate
    /// compares the two to keep the disabled path within 5 % of this
    /// baseline (the bit-parallel kernel runs at ~8 ns/trial, so a
    /// tighter bound would be below timing resolution).
    pub fn run_reference(&self, profile: &FailureProfile, trials: u64, seed: u64) -> McEstimate {
        self.run_reference_with(profile, trials, seed, None)
    }

    fn run_reference_with(
        &self,
        profile: &FailureProfile,
        trials: u64,
        seed: u64,
        progress: Option<&ProgressSink>,
    ) -> McEstimate {
        match self.kernel {
            McKernel::Scalar => self.run_reference_scalar(profile, trials, seed, progress),
            McKernel::BitParallel => self.run_reference_bitparallel(profile, trials, seed, progress),
        }
    }

    fn run_reference_scalar(
        &self,
        profile: &FailureProfile,
        trials: u64,
        seed: u64,
        progress: Option<&ProgressSink>,
    ) -> McEstimate {
        let events = profile.active_events();
        let chunks = trials.div_ceil(self.chunk_trials);
        let workers = (self.threads as u64).min(chunks);
        if workers <= 1 {
            // Caller-thread path: same chunking, same seeds, no spawn.
            let successes = (0..chunks)
                .map(|k| {
                    let len = self.chunk_len(trials, k);
                    let s = run_chunk(events, len, chunk_seed(seed, k));
                    if let Some(p) = progress {
                        p.chunk_done(len);
                    }
                    s
                })
                .sum();
            return McEstimate::from_counts(successes, trials);
        }

        // Work-stealing over the chunk index: chunk costs are uneven
        // (an early fault aborts a trial), so a shared counter beats
        // static striping. The result cannot depend on the schedule —
        // chunk k's seed is a pure function of (seed, k) and the merge
        // is integer addition.
        let next = AtomicU64::new(0);
        let successes = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = 0u64;
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= chunks {
                                break;
                            }
                            let len = self.chunk_len(trials, k);
                            local += run_chunk(events, len, chunk_seed(seed, k));
                            if let Some(p) = progress {
                                p.chunk_done(len);
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
                .sum()
        });
        McEstimate::from_counts(successes, trials)
    }

    fn run_reference_bitparallel(
        &self,
        profile: &FailureProfile,
        trials: u64,
        seed: u64,
        progress: Option<&ProgressSink>,
    ) -> McEstimate {
        let table = LaneTable::new(profile);
        let chunks = trials.div_ceil(self.chunk_trials);
        let workers = (self.threads as u64).min(chunks);
        if workers <= 1 {
            let successes = (0..chunks)
                .map(|k| {
                    let len = self.chunk_len(trials, k);
                    let s = run_chunk_bitparallel(&table, seed, k * self.chunk_trials, len);
                    if let Some(p) = progress {
                        p.chunk_done(len);
                    }
                    s
                })
                .sum();
            return McEstimate::from_counts(successes, trials);
        }

        let next = AtomicU64::new(0);
        let table = &table;
        let successes = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = 0u64;
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= chunks {
                                break;
                            }
                            let len = self.chunk_len(trials, k);
                            local += run_chunk_bitparallel(table, seed, k * self.chunk_trials, len);
                            if let Some(p) = progress {
                                p.chunk_done(len);
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
                .sum()
        });
        McEstimate::from_counts(successes, trials)
    }

    /// The instrumented twin of [`Self::run_reference`]: same chunking,
    /// same seeds, same RNG draws, plus spans and deterministic
    /// counters. Worker threads record only u64 counters and flush
    /// before exiting, so a drain after this returns sees
    /// schedule-independent totals.
    fn run_traced(
        &self,
        profile: &FailureProfile,
        trials: u64,
        seed: u64,
        progress: Option<&ProgressSink>,
    ) -> McEstimate {
        match self.kernel {
            McKernel::Scalar => self.run_traced_scalar(profile, trials, seed, progress),
            McKernel::BitParallel => self.run_traced_bitparallel(profile, trials, seed, progress),
        }
    }

    fn run_traced_scalar(
        &self,
        profile: &FailureProfile,
        trials: u64,
        seed: u64,
        progress: Option<&ProgressSink>,
    ) -> McEstimate {
        let _run = quva_obs::span("sim", "sim.run");
        let events = profile.active_events();
        let classes = profile.active_event_classes();
        let chunks = trials.div_ceil(self.chunk_trials);
        let workers = (self.threads as u64).min(chunks);
        quva_obs::counter("sim.runs", 1);
        quva_obs::counter("sim.trials", trials);
        quva_obs::counter("sim.chunks", chunks);
        quva_obs::counter("sim.workers", workers.max(1));

        if workers <= 1 {
            let mut successes = 0u64;
            let mut aborts = [0u64; 5];
            for k in 0..chunks {
                let _chunk = quva_obs::span("sim", "sim.chunk");
                let len = self.chunk_len(trials, k);
                successes += run_chunk_traced(events, classes, len, chunk_seed(seed, k), &mut aborts);
                if let Some(p) = progress {
                    p.chunk_done(len);
                }
            }
            record_aborts(&aborts);
            return McEstimate::from_counts(successes, trials);
        }

        let next = AtomicU64::new(0);
        let successes: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = 0u64;
                        let mut aborts = [0u64; 5];
                        {
                            let _worker = quva_obs::span("sim", "sim.worker");
                            loop {
                                let k = next.fetch_add(1, Ordering::Relaxed);
                                if k >= chunks {
                                    break;
                                }
                                let _chunk = quva_obs::span("sim", "sim.chunk");
                                let len = self.chunk_len(trials, k);
                                local +=
                                    run_chunk_traced(events, classes, len, chunk_seed(seed, k), &mut aborts);
                                if let Some(p) = progress {
                                    p.chunk_done(len);
                                }
                            }
                        }
                        record_aborts(&aborts);
                        // TLS destructors may lag a scope join: merge now
                        // so the caller's drain sees this worker
                        quva_obs::flush();
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
                .sum()
        });
        McEstimate::from_counts(successes, trials)
    }

    fn run_traced_bitparallel(
        &self,
        profile: &FailureProfile,
        trials: u64,
        seed: u64,
        progress: Option<&ProgressSink>,
    ) -> McEstimate {
        let _run = quva_obs::span("sim", "sim.run");
        let table = LaneTable::new(profile);
        let chunks = trials.div_ceil(self.chunk_trials);
        let workers = (self.threads as u64).min(chunks);
        quva_obs::counter("sim.runs", 1);
        quva_obs::counter("sim.trials", trials);
        quva_obs::counter("sim.chunks", chunks);
        quva_obs::counter("sim.workers", workers.max(1));
        quva_obs::counter("sim.bitparallel.runs", 1);

        if workers <= 1 {
            let mut successes = 0u64;
            let mut trace = BpTrace::default();
            for k in 0..chunks {
                let _chunk = quva_obs::span("sim", "sim.chunk");
                let len = self.chunk_len(trials, k);
                successes +=
                    run_chunk_bitparallel_traced(&table, seed, k * self.chunk_trials, len, &mut trace);
                if let Some(p) = progress {
                    p.chunk_done(len);
                }
            }
            record_bp_trace(&trace);
            return McEstimate::from_counts(successes, trials);
        }

        let next = AtomicU64::new(0);
        let table = &table;
        let successes: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = 0u64;
                        let mut trace = BpTrace::default();
                        {
                            let _worker = quva_obs::span("sim", "sim.worker");
                            loop {
                                let k = next.fetch_add(1, Ordering::Relaxed);
                                if k >= chunks {
                                    break;
                                }
                                let _chunk = quva_obs::span("sim", "sim.chunk");
                                let len = self.chunk_len(trials, k);
                                local += run_chunk_bitparallel_traced(
                                    table,
                                    seed,
                                    k * self.chunk_trials,
                                    len,
                                    &mut trace,
                                );
                                if let Some(p) = progress {
                                    p.chunk_done(len);
                                }
                            }
                        }
                        record_bp_trace(&trace);
                        // TLS destructors may lag a scope join: merge now
                        // so the caller's drain sees this worker
                        quva_obs::flush();
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
                .sum()
        });
        McEstimate::from_counts(successes, trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CoherenceModel;
    use quva_circuit::{Circuit, PhysQubit};
    use quva_device::{Calibration, Device, Topology};

    fn profile(e2q: f64, gates: usize) -> FailureProfile {
        let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, e2q, 0.0, 0.0));
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        for _ in 0..gates {
            c.cnot(PhysQubit(0), PhysQubit(1));
        }
        FailureProfile::new(&dev, &c, CoherenceModel::Disabled).unwrap()
    }

    #[test]
    fn chunk_seeds_are_counter_derived_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..10_000u64 {
            assert!(seen.insert(chunk_seed(42, k)), "collision at chunk {k}");
        }
        // counter-based: deriving a late chunk's seed needs no scan and
        // no derivation order
        let forward: Vec<u64> = (0..100).map(|k| chunk_seed(7, k)).collect();
        let backward: Vec<u64> = (0..100).rev().map(|k| chunk_seed(7, k)).collect();
        assert!(forward.iter().eq(backward.iter().rev()));
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        let p = profile(0.08, 7);
        for kernel in [McKernel::Scalar, McKernel::BitParallel] {
            let reference = McEngine::sequential().with_kernel(kernel).run(&p, 100_000, 11);
            for threads in [2usize, 3, 4, 8, 17] {
                let parallel = McEngine::new(threads).with_kernel(kernel).run(&p, 100_000, 11);
                assert_eq!(reference, parallel, "{kernel} at {threads} threads diverged");
            }
        }
    }

    #[test]
    fn bitparallel_is_chunk_size_invariant() {
        // lane-major seeding: the bit-parallel sample is a function of
        // (trials, seed) alone — any chunking merges to the same bytes,
        // including chunk sizes that split words across chunks
        let p = profile(0.08, 7);
        let reference = McEngine::sequential().run(&p, 50_001, 13);
        for chunk_trials in [1u64, 7, 63, 64, 100, 1000, 16_384, 60_000] {
            let est = McEngine::new(4)
                .with_chunk_trials(chunk_trials)
                .run(&p, 50_001, 13);
            assert_eq!(reference, est, "chunk size {chunk_trials} changed the sample");
        }
    }

    #[test]
    fn kernels_agree_statistically_and_are_distinct_samples() {
        let p = profile(0.05, 10);
        let trials = 200_000u64;
        let scalar = McEngine::new(4).with_kernel(McKernel::Scalar).run(&p, trials, 2);
        let bitparallel = McEngine::new(4)
            .with_kernel(McKernel::BitParallel)
            .run(&p, trials, 2);
        let se = (scalar.std_error().powi(2) + bitparallel.std_error().powi(2)).sqrt();
        assert!(
            (scalar.pst - bitparallel.pst).abs() < 4.0 * se.max(1e-4),
            "scalar {} vs bit-parallel {}",
            scalar.pst,
            bitparallel.pst
        );
        // different kernels are different deterministic samples: exact
        // equality would mean the oracle is not independent
        assert_ne!(scalar.successes, bitparallel.successes);
    }

    #[test]
    fn kernel_selection_round_trips() {
        assert_eq!(McEngine::new(2).kernel(), McKernel::BitParallel);
        let oracle = McEngine::new(2).with_kernel(McKernel::Scalar);
        assert_eq!(oracle.kernel(), McKernel::Scalar);
        assert_eq!("scalar".parse::<McKernel>().unwrap(), McKernel::Scalar);
        assert_eq!("bitparallel".parse::<McKernel>().unwrap(), McKernel::BitParallel);
        assert!("simd".parse::<McKernel>().is_err());
        for kernel in [McKernel::Scalar, McKernel::BitParallel] {
            assert_eq!(kernel.label().parse::<McKernel>().unwrap(), kernel);
        }
    }

    #[test]
    fn partial_final_chunk_is_covered() {
        let p = profile(0.0, 1);
        // trials not a multiple of the chunk size: every trial must
        // still run (error-free device ⇒ every trial succeeds)
        let engine = McEngine::new(4).with_chunk_trials(1000);
        let est = engine.run(&p, 2_500, 0);
        assert_eq!(est.successes, 2_500);
        assert_eq!(est.trials, 2_500);
        assert_eq!(est.pst, 1.0);
    }

    #[test]
    fn zero_trials_is_the_empty_estimate() {
        let p = profile(0.1, 3);
        let est = McEngine::new(8).run(&p, 0, 5);
        assert_eq!(est, McEstimate::from_counts(0, 0));
        assert_eq!(est.pst, 0.0);
        assert_eq!(est.std_error(), 0.0);
    }

    #[test]
    fn more_threads_than_chunks_is_fine() {
        let p = profile(0.05, 2);
        let engine = McEngine::new(64).with_chunk_trials(10);
        let small = engine.run(&p, 25, 3);
        assert_eq!(small, McEngine::sequential().with_chunk_trials(10).run(&p, 25, 3));
    }

    #[test]
    fn engine_converges_to_analytic() {
        let p = profile(0.05, 10);
        let analytic = p.success_probability();
        let est = McEngine::new(4).run(&p, 200_000, 1);
        assert!(
            (est.pst - analytic).abs() < 4.0 * est.std_error().max(1e-4),
            "engine {} vs analytic {analytic}",
            est.pst
        );
    }

    #[test]
    fn progress_callback_observes_without_changing_results() {
        let p = profile(0.08, 7);
        for kernel in [McKernel::Scalar, McKernel::BitParallel] {
            for threads in [1usize, 4] {
                let plain = McEngine::new(threads).with_kernel(kernel).run(&p, 100_000, 11);
                let calls = AtomicU64::new(0);
                let peak = AtomicU64::new(0);
                let with_progress = McEngine::new(threads).with_kernel(kernel).run_with_progress(
                    &p,
                    100_000,
                    11,
                    &|done, total| {
                        assert_eq!(total, 100_000);
                        assert!(done <= total, "{done}");
                        calls.fetch_add(1, Ordering::Relaxed);
                        peak.fetch_max(done, Ordering::Relaxed);
                    },
                );
                assert_eq!(
                    plain, with_progress,
                    "{kernel}@{threads}: progress changed the estimate"
                );
                assert_eq!(
                    peak.load(Ordering::Relaxed),
                    100_000,
                    "last chunk must report total"
                );
                assert_eq!(
                    calls.load(Ordering::Relaxed),
                    100_000u64.div_ceil(DEFAULT_CHUNK_TRIALS),
                    "one callback per chunk"
                );
            }
        }
    }

    #[test]
    fn auto_engine_has_at_least_one_thread() {
        assert!(McEngine::auto().threads() >= 1);
        assert_eq!(McEngine::default(), McEngine::auto());
    }
}
