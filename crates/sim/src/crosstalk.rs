//! Crosstalk-aware reliability estimation — an extension beyond the
//! paper (its §9 notes the no-correlation assumption; crosstalk between
//! simultaneously driven neighbouring links became the follow-up
//! literature's main subject).
//!
//! Model: two-qubit gates that execute in the same schedule layer on
//! *neighbouring* links (links joined by at least one coupling between
//! their endpoints) suffer a multiplicative error increase. This is the
//! dominant crosstalk mechanism on fixed-frequency transmon devices:
//! simultaneous cross-resonance drives on adjacent couplings interfere.

use quva_circuit::{Circuit, Gate, Layers, PhysQubit};
use quva_device::Device;

use crate::analytic::PstReport;
use crate::error::SimError;
use crate::profile::{CoherenceModel, FailureProfile};

/// Parameters of the crosstalk model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrosstalkModel {
    /// Error-rate multiplier applied to each member of a simultaneous
    /// neighbouring-link gate pair (1.0 = no crosstalk).
    pub factor: f64,
}

impl Default for CrosstalkModel {
    /// The ~2x degradation reported for simultaneous cross-resonance
    /// gates on adjacent couplings.
    fn default() -> Self {
        CrosstalkModel { factor: 2.0 }
    }
}

/// Whether two links are crosstalk-neighbours: distinct, not sharing a
/// qubit (they could not be simultaneous otherwise), and joined by at
/// least one coupling between their endpoints.
fn links_neighbour(device: &Device, a: (PhysQubit, PhysQubit), b: (PhysQubit, PhysQubit)) -> bool {
    let topo = device.topology();
    let shares_qubit = a.0 == b.0 || a.0 == b.1 || a.1 == b.0 || a.1 == b.1;
    if shares_qubit {
        return false;
    }
    for u in [a.0, a.1] {
        for v in [b.0, b.1] {
            if topo.has_link(u, v) {
                return true;
            }
        }
    }
    false
}

/// Analytic PST under gate + readout + coherence errors *and*
/// layer-simultaneous crosstalk between neighbouring links.
///
/// # Errors
///
/// Returns [`SimError`] if the circuit is unrouted for `device` or too
/// large.
///
/// # Examples
///
/// ```
/// use quva_circuit::{Circuit, PhysQubit};
/// use quva_device::{Calibration, Device, Topology};
/// use quva_sim::{analytic_pst_with_crosstalk, CoherenceModel, CrosstalkModel};
///
/// # fn main() -> Result<(), quva_sim::SimError> {
/// let dev = Device::new(Topology::linear(4), |t| Calibration::uniform(t, 0.05, 0.0, 0.0));
/// // two CNOTs on neighbouring links, in the same layer
/// let mut c: Circuit<PhysQubit> = Circuit::new(4);
/// c.cnot(PhysQubit(0), PhysQubit(1));
/// c.cnot(PhysQubit(2), PhysQubit(3));
/// let clean = analytic_pst_with_crosstalk(&dev, &c, CoherenceModel::Disabled,
///                                         CrosstalkModel { factor: 1.0 })?;
/// let noisy = analytic_pst_with_crosstalk(&dev, &c, CoherenceModel::Disabled,
///                                         CrosstalkModel { factor: 2.0 })?;
/// assert!(noisy.pst < clean.pst);
/// # Ok(())
/// # }
/// ```
pub fn analytic_pst_with_crosstalk(
    device: &Device,
    circuit: &Circuit<PhysQubit>,
    coherence: CoherenceModel,
    model: CrosstalkModel,
) -> Result<PstReport, SimError> {
    // base profile validates routing and supplies the per-op rates
    let profile = FailureProfile::new(device, circuit, coherence)?;
    let multipliers = crosstalk_multipliers(device, circuit, model);

    // recombine: ops scaled by their multiplier, coherence untouched
    let mut pst = 1.0;
    let mut gate_weight = 0.0;
    let mut readout_weight = 0.0;
    let mut op_idx = 0;
    for gate in circuit.iter() {
        if gate.is_barrier() {
            continue;
        }
        let p = (profile.op_failures()[op_idx] * multipliers[op_idx]).min(0.95);
        pst *= 1.0 - p;
        let w = -(1.0 - p).max(f64::MIN_POSITIVE).ln();
        if gate.is_measurement() {
            readout_weight += w;
        } else {
            gate_weight += w;
        }
        op_idx += 1;
    }
    for &p in profile.coherence_failures() {
        pst *= 1.0 - p;
    }
    Ok(PstReport {
        pst,
        gate_failure_weight: gate_weight,
        readout_failure_weight: readout_weight,
        coherence_failure_weight: profile.coherence_failure_weight(),
    })
}

/// Per-op crosstalk multipliers (1.0 for unaffected ops), aligned with
/// the failure profile's op order (barriers excluded).
fn crosstalk_multipliers(device: &Device, circuit: &Circuit<PhysQubit>, model: CrosstalkModel) -> Vec<f64> {
    // map gate index -> op index (barriers collapse)
    let mut op_index_of = vec![usize::MAX; circuit.len()];
    let mut next = 0;
    for (gi, g) in circuit.iter().enumerate() {
        if !g.is_barrier() {
            op_index_of[gi] = next;
            next += 1;
        }
    }
    let mut multipliers = vec![1.0; next];

    let layers = Layers::of(circuit);
    for li in 0..layers.len() {
        let layer = layers.layer(li);
        let two_qubit: Vec<(usize, (PhysQubit, PhysQubit))> = layer
            .iter()
            .filter_map(|&gi| match &circuit.gates()[gi] {
                Gate::Cnot {
                    control: a,
                    target: b,
                }
                | Gate::Swap { a, b } => Some((gi, (*a, *b))),
                _ => None,
            })
            .collect();
        for (i, &(gi_a, link_a)) in two_qubit.iter().enumerate() {
            for &(gi_b, link_b) in two_qubit.iter().skip(i + 1) {
                if links_neighbour(device, link_a, link_b) {
                    multipliers[op_index_of[gi_a]] = model.factor;
                    multipliers[op_index_of[gi_b]] = model.factor;
                }
            }
        }
    }
    multipliers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::analytic_pst;
    use quva_device::{Calibration, Topology};

    fn device() -> Device {
        Device::new(Topology::linear(6), |t| Calibration::uniform(t, 0.05, 0.0, 0.0))
    }

    #[test]
    fn factor_one_matches_plain_analytic() {
        let dev = device();
        let mut c: Circuit<PhysQubit> = Circuit::new(6);
        c.cnot(PhysQubit(0), PhysQubit(1));
        c.cnot(PhysQubit(2), PhysQubit(3));
        c.cnot(PhysQubit(4), PhysQubit(5));
        let plain = analytic_pst(&dev, &c, CoherenceModel::Disabled).unwrap();
        let xt =
            analytic_pst_with_crosstalk(&dev, &c, CoherenceModel::Disabled, CrosstalkModel { factor: 1.0 })
                .unwrap();
        assert!((plain.pst - xt.pst).abs() < 1e-12);
    }

    #[test]
    fn simultaneous_neighbours_pay() {
        let dev = device();
        // links (0,1) and (2,3) are joined by coupling (1,2): neighbours
        let mut parallel: Circuit<PhysQubit> = Circuit::new(6);
        parallel.cnot(PhysQubit(0), PhysQubit(1));
        parallel.cnot(PhysQubit(2), PhysQubit(3));
        // same gates serialized by a data dependency: no crosstalk
        let mut serial: Circuit<PhysQubit> = Circuit::new(6);
        serial.cnot(PhysQubit(0), PhysQubit(1));
        serial.cnot(PhysQubit(1), PhysQubit(2)); // forces ordering
        let model = CrosstalkModel { factor: 3.0 };
        let p_par = analytic_pst_with_crosstalk(&dev, &parallel, CoherenceModel::Disabled, model)
            .unwrap()
            .pst;
        let p_ser = analytic_pst_with_crosstalk(&dev, &serial, CoherenceModel::Disabled, model)
            .unwrap()
            .pst;
        // parallel: both CNOTs at 15% err: 0.85² = 0.7225
        assert!((p_par - 0.85f64.powi(2)).abs() < 1e-12, "parallel {p_par}");
        // serial chain: plain 5% each
        assert!((p_ser - 0.95f64.powi(2)).abs() < 1e-12, "serial {p_ser}");
    }

    #[test]
    fn distant_simultaneous_gates_are_free() {
        let dev = device();
        // links (0,1) and (4,5): separated by two couplings, no crosstalk
        let mut c: Circuit<PhysQubit> = Circuit::new(6);
        c.cnot(PhysQubit(0), PhysQubit(1));
        c.cnot(PhysQubit(4), PhysQubit(5));
        let model = CrosstalkModel { factor: 3.0 };
        let xt = analytic_pst_with_crosstalk(&dev, &c, CoherenceModel::Disabled, model)
            .unwrap()
            .pst;
        assert!((xt - 0.95f64.powi(2)).abs() < 1e-12);
    }

    #[test]
    fn sharing_a_qubit_is_not_crosstalk() {
        let dev = device();
        // impossible to be simultaneous anyway: layering serializes them
        let mut c: Circuit<PhysQubit> = Circuit::new(6);
        c.cnot(PhysQubit(0), PhysQubit(1));
        c.cnot(PhysQubit(1), PhysQubit(2));
        let model = CrosstalkModel::default();
        let xt = analytic_pst_with_crosstalk(&dev, &c, CoherenceModel::Disabled, model)
            .unwrap()
            .pst;
        assert!((xt - 0.95f64.powi(2)).abs() < 1e-12);
    }

    #[test]
    fn crosstalk_error_is_capped() {
        let dev = Device::new(Topology::linear(4), |t| Calibration::uniform(t, 0.6, 0.0, 0.0));
        let mut c: Circuit<PhysQubit> = Circuit::new(4);
        c.cnot(PhysQubit(0), PhysQubit(1));
        c.cnot(PhysQubit(2), PhysQubit(3));
        let xt = analytic_pst_with_crosstalk(
            &dev,
            &c,
            CoherenceModel::Disabled,
            CrosstalkModel { factor: 10.0 },
        )
        .unwrap();
        assert!(xt.pst > 0.0, "cap keeps trials possible");
    }

    #[test]
    fn unrouted_rejected() {
        let dev = device();
        let mut c: Circuit<PhysQubit> = Circuit::new(6);
        c.cnot(PhysQubit(0), PhysQubit(5));
        assert!(
            analytic_pst_with_crosstalk(&dev, &c, CoherenceModel::Disabled, CrosstalkModel::default())
                .is_err()
        );
    }
}
