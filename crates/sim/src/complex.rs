//! A minimal complex-number type for the state-vector simulator.
//!
//! Kept local instead of pulling in `num-complex`: the simulator needs
//! only arithmetic, conjugation and squared magnitude.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use quva_sim::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, -Complex64::ONE);
/// assert_eq!((Complex64::new(3.0, 4.0)).norm_sqr(), 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Builds a complex number from rectangular components.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// `e^{iθ}` — a unit phase.
    pub fn from_polar(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!(a * Complex64::ZERO, Complex64::ZERO);
    }

    #[test]
    fn multiplication() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, 4.0);
        // (1+2i)(3+4i) = 3+4i+6i-8 = -5+10i
        assert_eq!(a * b, Complex64::new(-5.0, 10.0));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert_eq!((a * a.conj()).re, a.norm_sqr());
    }

    #[test]
    fn polar_unit_circle() {
        let z = Complex64::from_polar(std::f64::consts::FRAC_PI_2);
        assert!((z - Complex64::I).norm_sqr() < 1e-20);
    }

    #[test]
    fn display_signs() {
        assert_eq!(Complex64::new(1.0, -1.0).to_string(), "1-1i");
        assert_eq!(Complex64::new(1.0, 1.0).to_string(), "1+1i");
    }
}
