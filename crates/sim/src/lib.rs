//! # quva-sim — reliability evaluation for NISQ programs
//!
//! Three evaluation engines over a routed circuit + device:
//!
//! * [`analytic_pst`] — exact PST under the paper's uncorrelated error
//!   model (§4.3): the product of per-event success probabilities, with
//!   a gate/readout/coherence failure-weight decomposition;
//! * [`monte_carlo_pst`] — the Fig. 10 Monte-Carlo fault injector,
//!   which converges to the analytic value (property-tested). Trial
//!   execution runs on the deterministic parallel [`McEngine`]:
//!   chunked, seed-derived, and bit-identical for every thread count.
//!   Two kernels are available via [`McKernel`]: the default
//!   bit-parallel SWAR kernel (64 trials per `u64` lane-word) and the
//!   scalar per-trial loop retained as its cross-validation oracle;
//! * [`run_noisy_trials`] — a dense state-vector simulation with
//!   stochastic Pauli gate noise and readout flips, the stand-in for
//!   the paper's real-hardware IBM-Q5 runs (§7).
//!
//! # Examples
//!
//! ```
//! use quva_circuit::{Circuit, PhysQubit};
//! use quva_device::{Calibration, Device, Topology};
//! use quva_sim::{analytic_pst, monte_carlo_pst, CoherenceModel};
//!
//! # fn main() -> Result<(), quva_sim::SimError> {
//! let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.04, 0.001, 0.02));
//! let mut c: Circuit<PhysQubit> = Circuit::new(3);
//! c.h(PhysQubit(0));
//! c.cnot(PhysQubit(0), PhysQubit(1));
//! c.swap(PhysQubit(1), PhysQubit(2));
//!
//! let exact = analytic_pst(&dev, &c, CoherenceModel::Disabled)?.pst;
//! let sampled = monte_carlo_pst(&dev, &c, 100_000, 7, CoherenceModel::Disabled)?.pst;
//! assert!((exact - sampled).abs() < 0.01);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analytic;
mod bitparallel;
mod complex;
mod correlated;
mod crosstalk;
mod density;
mod engine;
mod error;
mod exact;
mod montecarlo;
mod noisy;
mod profile;
mod statevector;

pub use analytic::{analytic_pst, PstReport};
pub use complex::Complex64;
pub use correlated::{monte_carlo_pst_correlated, CorrelatedModel};
pub use crosstalk::{analytic_pst_with_crosstalk, CrosstalkModel};
pub use density::{DensityMatrix, MAX_DENSITY_QUBITS};
pub use engine::{McEngine, McKernel, DEFAULT_CHUNK_TRIALS};
pub use error::SimError;
pub use exact::exact_noisy_distribution;
pub use montecarlo::{
    monte_carlo_pst, monte_carlo_pst_progress, monte_carlo_pst_with, run_trials, McEstimate,
};
pub use noisy::{run_noisy_trials, TrialOutcomes};
pub use profile::{CoherenceModel, EventClass, FailureProfile};
pub use statevector::{matrix_of, StateVector, MAX_STATEVECTOR_QUBITS};
