//! The Monte-Carlo fault-injection simulator of Fig. 10.
//!
//! Each trial walks the routed circuit and draws an independent
//! Bernoulli per operation (and per qubit for coherence exposure); a
//! trial succeeds iff no fault fires. PST = successful / total trials —
//! exactly the estimator the paper runs 1 million trials of per
//! workload.

use quva_circuit::{Circuit, PhysQubit};
use quva_device::Device;

use crate::engine::McEngine;
use crate::error::SimError;
use crate::profile::{CoherenceModel, FailureProfile};

/// Result of a Monte-Carlo PST estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEstimate {
    /// Estimated probability of a successful trial.
    pub pst: f64,
    /// Number of successful trials.
    pub successes: u64,
    /// Total trials performed.
    pub trials: u64,
}

impl McEstimate {
    /// Builds an estimate from raw counts.
    ///
    /// Zero-trial convention (shared by every accessor): an empty run
    /// estimates `pst = 0.0` with `std_error() = 0.0`, and is the
    /// identity element of [`McEstimate::merge`].
    pub fn from_counts(successes: u64, trials: u64) -> Self {
        let pst = if trials == 0 {
            0.0
        } else {
            successes as f64 / trials as f64
        };
        McEstimate {
            pst,
            successes,
            trials,
        }
    }

    /// Merges two independent estimates of the same quantity by
    /// pooling their counts. Associative and commutative, with the
    /// zero-trial estimate as identity — which is what makes chunked
    /// parallel execution bit-identical to sequential.
    pub fn merge(self, other: McEstimate) -> McEstimate {
        McEstimate::from_counts(self.successes + other.successes, self.trials + other.trials)
    }

    /// Binomial standard error of the estimate (`0.0` for an empty
    /// run, matching the zero-trial convention of
    /// [`McEstimate::from_counts`]).
    pub fn std_error(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        (self.pst * (1.0 - self.pst) / self.trials as f64).sqrt()
    }
}

/// Runs `trials` fault-injection trials of a routed circuit and reports
/// the observed PST.
///
/// Deterministic for a given `seed`.
///
/// # Errors
///
/// Returns [`SimError`] if the circuit is unrouted for `device` or uses
/// more qubits than the device has.
///
/// # Examples
///
/// ```
/// use quva_circuit::{Circuit, PhysQubit};
/// use quva_device::{Calibration, Device, Topology};
/// use quva_sim::{monte_carlo_pst, CoherenceModel};
///
/// # fn main() -> Result<(), quva_sim::SimError> {
/// let dev = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
/// let mut c: Circuit<PhysQubit> = Circuit::new(2);
/// c.cnot(PhysQubit(0), PhysQubit(1));
/// let est = monte_carlo_pst(&dev, &c, 100_000, 7, CoherenceModel::Disabled)?;
/// assert!((est.pst - 0.9).abs() < 0.01); // converges to the analytic value
/// # Ok(())
/// # }
/// ```
pub fn monte_carlo_pst(
    device: &Device,
    circuit: &Circuit<PhysQubit>,
    trials: u64,
    seed: u64,
    coherence: CoherenceModel,
) -> Result<McEstimate, SimError> {
    monte_carlo_pst_with(device, circuit, trials, seed, coherence, McEngine::auto())
}

/// [`monte_carlo_pst`] with an explicit execution [`McEngine`] — the
/// CLI's `--threads` flag and the benchmark harness land here. The
/// engine affects wall-clock only: the estimate is bit-identical for
/// every thread count.
///
/// # Errors
///
/// Returns [`SimError`] if the circuit is unrouted for `device` or uses
/// more qubits than the device has.
pub fn monte_carlo_pst_with(
    device: &Device,
    circuit: &Circuit<PhysQubit>,
    trials: u64,
    seed: u64,
    coherence: CoherenceModel,
    engine: McEngine,
) -> Result<McEstimate, SimError> {
    let profile = {
        let _s = quva_obs::span("sim", "sim.profile");
        FailureProfile::new(device, circuit, coherence)?
    };
    Ok(engine.run(&profile, trials, seed))
}

/// [`monte_carlo_pst_with`] with a chunk-boundary progress callback
/// (`f(done_trials, total_trials)` after each completed chunk) — the
/// daemon's streaming progress frames land here. Progress observes
/// the run without altering it: the estimate is bit-identical to
/// [`monte_carlo_pst_with`] for the same engine. See
/// [`McEngine::run_with_progress`] for the callback's threading
/// contract.
///
/// # Errors
///
/// Returns [`SimError`] if the circuit is unrouted for `device` or uses
/// more qubits than the device has.
pub fn monte_carlo_pst_progress(
    device: &Device,
    circuit: &Circuit<PhysQubit>,
    trials: u64,
    seed: u64,
    coherence: CoherenceModel,
    engine: McEngine,
    progress: &(dyn Fn(u64, u64) + Sync),
) -> Result<McEstimate, SimError> {
    let profile = {
        let _s = quva_obs::span("sim", "sim.profile");
        FailureProfile::new(device, circuit, coherence)?
    };
    Ok(engine.run_with_progress(&profile, trials, seed, progress))
}

/// Runs the injection loop against a prebuilt [`FailureProfile`] —
/// useful when sweeping trial counts over the same circuit.
///
/// Single-threaded reference path: identical, bit for bit, to
/// [`McEngine::run`] at any thread count.
pub fn run_trials(profile: &FailureProfile, trials: u64, seed: u64) -> McEstimate {
    McEngine::sequential().run(profile, trials, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva_device::{Calibration, Topology};

    fn device(e2q: f64) -> Device {
        Device::new(Topology::linear(3), |t| Calibration::uniform(t, e2q, 0.0, 0.0))
    }

    fn chain(len: usize) -> Circuit<PhysQubit> {
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        for _ in 0..len {
            c.cnot(PhysQubit(0), PhysQubit(1));
        }
        c
    }

    #[test]
    fn deterministic_per_seed() {
        let dev = device(0.1);
        let c = chain(5);
        let a = monte_carlo_pst(&dev, &c, 10_000, 3, CoherenceModel::Disabled).unwrap();
        let b = monte_carlo_pst(&dev, &c, 10_000, 3, CoherenceModel::Disabled).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn converges_to_analytic() {
        let dev = device(0.05);
        let c = chain(10);
        let analytic = 0.95f64.powi(10);
        let est = monte_carlo_pst(&dev, &c, 200_000, 1, CoherenceModel::Disabled).unwrap();
        assert!(
            (est.pst - analytic).abs() < 4.0 * est.std_error().max(1e-4),
            "MC {} vs analytic {analytic}",
            est.pst
        );
    }

    #[test]
    fn error_free_device_always_succeeds() {
        let dev = device(0.0);
        let est = monte_carlo_pst(&dev, &chain(20), 1000, 0, CoherenceModel::Disabled).unwrap();
        assert_eq!(est.pst, 1.0);
        assert_eq!(est.successes, 1000);
    }

    #[test]
    fn hopeless_device_never_succeeds() {
        let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.999, 0.0, 0.0));
        let est = monte_carlo_pst(&dev, &chain(10), 1000, 0, CoherenceModel::Disabled).unwrap();
        assert!(est.pst < 0.01);
    }

    #[test]
    fn uncoupled_operands_is_typed_error() {
        let dev = device(0.1);
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        c.cnot(PhysQubit(0), PhysQubit(2)); // ends of the line: unrouted
        let err = monte_carlo_pst(&dev, &c, 100, 0, CoherenceModel::Disabled).unwrap_err();
        assert_eq!(
            err,
            SimError::UncoupledOperands {
                gate_index: 0,
                a: PhysQubit(0),
                b: PhysQubit(2)
            }
        );
    }

    #[test]
    fn too_many_qubits_is_typed_error() {
        let dev = device(0.1);
        let c: Circuit<PhysQubit> = Circuit::new(5);
        let err = monte_carlo_pst(&dev, &c, 100, 0, CoherenceModel::Disabled).unwrap_err();
        assert_eq!(
            err,
            SimError::TooManyQubits {
                circuit: 5,
                device: 3
            }
        );
    }

    #[test]
    fn dead_link_rejected_like_missing_link() {
        // a disabled coupler must look exactly like an absent one to
        // the simulator: the gate is unroutable, not silently simulated
        let mut dev = device(0.1);
        assert!(dev.disable_link(PhysQubit(0), PhysQubit(1)));
        let err = monte_carlo_pst(&dev, &chain(1), 100, 0, CoherenceModel::Disabled).unwrap_err();
        assert_eq!(
            err,
            SimError::UncoupledOperands {
                gate_index: 0,
                a: PhysQubit(0),
                b: PhysQubit(1)
            }
        );
    }

    #[test]
    fn std_error_shrinks_with_trials() {
        let dev = device(0.1);
        let c = chain(3);
        let small = monte_carlo_pst(&dev, &c, 1_000, 0, CoherenceModel::Disabled).unwrap();
        let large = monte_carlo_pst(&dev, &c, 100_000, 0, CoherenceModel::Disabled).unwrap();
        assert!(large.std_error() < small.std_error());
    }

    #[test]
    fn zero_trials_reports_zero() {
        let dev = device(0.1);
        let est = monte_carlo_pst(&dev, &chain(1), 0, 0, CoherenceModel::Disabled).unwrap();
        assert_eq!(est.trials, 0);
        assert_eq!(est.pst, 0.0);
        assert_eq!(est.std_error(), 0.0);
    }

    #[test]
    fn from_counts_and_std_error_share_the_zero_convention() {
        let empty = McEstimate::from_counts(0, 0);
        assert_eq!(empty.pst, 0.0);
        assert_eq!(empty.std_error(), 0.0);
        let full = McEstimate::from_counts(3, 4);
        assert_eq!(full.pst, 0.75);
        assert!(full.std_error() > 0.0);
    }

    #[test]
    fn merge_pools_counts() {
        let a = McEstimate::from_counts(10, 100);
        let b = McEstimate::from_counts(40, 100);
        let m = a.merge(b);
        assert_eq!(m, McEstimate::from_counts(50, 200));
        assert_eq!(m.pst, 0.25);
        // commutative
        assert_eq!(m, b.merge(a));
    }

    #[test]
    fn merging_empty_chunks_is_identity() {
        let empty = McEstimate::from_counts(0, 0);
        let est = McEstimate::from_counts(7, 9);
        assert_eq!(est.merge(empty), est);
        assert_eq!(empty.merge(est), est);
        assert_eq!(empty.merge(empty), empty);
    }

    #[test]
    fn unrouted_circuit_rejected() {
        let dev = device(0.1);
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        c.cnot(PhysQubit(0), PhysQubit(2));
        assert!(monte_carlo_pst(&dev, &c, 10, 0, CoherenceModel::Disabled).is_err());
    }
}
