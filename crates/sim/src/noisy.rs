//! The noisy "real machine" stand-in for the paper's §7 evaluation.
//!
//! The paper validated its policies on physical IBM-Q5 hardware. We
//! substitute a full state-vector simulation with stochastic Pauli gate
//! noise and readout flips: unlike the uncorrelated fault-injection
//! model the *compiler* optimizes against, errors here propagate through
//! entanglement and depend on the quantum state — a deliberately
//! model-mismatched target, which is exactly what "runs on the real
//! machine" tested.

use std::collections::HashMap;

use quva_circuit::{Circuit, Gate, PhysQubit};
use quva_device::Device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::SimError;
use crate::statevector::StateVector;

/// Outcome histogram of a batch of noisy trials.
///
/// # Examples
///
/// ```
/// use quva_circuit::{Circuit, PhysQubit, Cbit};
/// use quva_device::{Calibration, Device, Topology};
/// use quva_sim::run_noisy_trials;
///
/// # fn main() -> Result<(), quva_sim::SimError> {
/// let dev = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.0, 0.0, 0.0));
/// let mut c: Circuit<PhysQubit> = Circuit::new(2);
/// c.x(PhysQubit(0));
/// c.measure(PhysQubit(0), Cbit(0));
/// c.measure(PhysQubit(1), Cbit(1));
/// let out = run_noisy_trials(&dev, &c, 100, 1)?;
/// assert_eq!(out.success_rate(|o| o == 0b01), 1.0); // noiseless: always 01
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialOutcomes {
    counts: HashMap<u64, u64>,
    trials: u64,
}

impl TrialOutcomes {
    /// The number of trials run.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// How many trials produced classical outcome `outcome`.
    pub fn count(&self, outcome: u64) -> u64 {
        self.counts.get(&outcome).copied().unwrap_or(0)
    }

    /// The raw histogram.
    pub fn histogram(&self) -> &HashMap<u64, u64> {
        &self.counts
    }

    /// Fraction of trials whose outcome satisfies `accept` — the PST
    /// under an output-correctness criterion (§7's definition).
    pub fn success_rate(&self, accept: impl Fn(u64) -> bool) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let ok: u64 = self
            .counts
            .iter()
            .filter(|(&o, _)| accept(o))
            .map(|(_, &c)| c)
            .sum();
        ok as f64 / self.trials as f64
    }

    /// The most frequent outcome, ties broken by smaller value; `None`
    /// when no trials ran.
    pub fn mode(&self) -> Option<u64> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&o, _)| o)
    }
}

/// Runs `trials` executions of a routed circuit on the noisy
/// state-vector simulator and collects the classical outcomes.
///
/// Noise model: after every gate, with probability equal to the gate's
/// calibrated error rate, a uniformly random non-identity Pauli is
/// injected on the participating qubit(s); a SWAP carries the 3-CNOT
/// compound error `1 − (1 − e)³`; each measurement result flips with
/// the qubit's readout error. Deterministic per `seed`.
///
/// # Errors
///
/// Returns [`SimError`] if the circuit is unrouted for `device` or too
/// large.
pub fn run_noisy_trials(
    device: &Device,
    circuit: &Circuit<PhysQubit>,
    trials: u64,
    seed: u64,
) -> Result<TrialOutcomes, SimError> {
    if circuit.num_qubits() > device.num_qubits() {
        return Err(SimError::TooManyQubits {
            circuit: circuit.num_qubits(),
            device: device.num_qubits(),
        });
    }
    // Pre-validate coupling and collect per-gate error rates.
    let cal = device.calibration();
    let mut gate_errors = Vec::with_capacity(circuit.len());
    for (idx, gate) in circuit.iter().enumerate() {
        let e = match gate {
            Gate::OneQubit { qubit, .. } => cal.one_qubit_error(qubit.index()),
            Gate::Cnot { control, target } => {
                device
                    .link_error(*control, *target)
                    .ok_or(SimError::UncoupledOperands {
                        gate_index: idx,
                        a: *control,
                        b: *target,
                    })?
            }
            Gate::Swap { a, b } => {
                let e = device.link_error(*a, *b).ok_or(SimError::UncoupledOperands {
                    gate_index: idx,
                    a: *a,
                    b: *b,
                })?;
                1.0 - (1.0 - e).powi(3)
            }
            Gate::Measure { qubit, .. } => cal.readout_error(qubit.index()),
            Gate::Barrier { .. } => 0.0,
        };
        gate_errors.push(e);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for _ in 0..trials {
        let outcome = run_one_trial(circuit, &gate_errors, &mut rng);
        *counts.entry(outcome).or_insert(0) += 1;
    }
    Ok(TrialOutcomes { counts, trials })
}

fn run_one_trial(circuit: &Circuit<PhysQubit>, gate_errors: &[f64], rng: &mut StdRng) -> u64 {
    let mut sv = StateVector::new(circuit.num_qubits());
    let mut outcome = 0u64;
    for (gate, &err) in circuit.iter().zip(gate_errors) {
        match gate {
            Gate::Measure { qubit, cbit } => {
                let mut bit = sv.measure(qubit.index(), rng);
                if rng.random::<f64>() < err {
                    bit = !bit; // readout flip
                }
                if bit {
                    outcome |= 1u64 << cbit.index();
                } else {
                    outcome &= !(1u64 << cbit.index());
                }
            }
            Gate::Barrier { .. } => {}
            _ => {
                sv.apply_gate(gate);
                if err > 0.0 && rng.random::<f64>() < err {
                    inject_pauli(&mut sv, gate, rng);
                }
            }
        }
    }
    outcome
}

/// Injects a uniformly random non-identity Pauli on the gate's operand
/// qubit(s): one of {X, Y, Z} for single-qubit gates, one of the 15
/// non-II two-qubit Paulis for CNOT/SWAP.
fn inject_pauli(sv: &mut StateVector, gate: &Gate<PhysQubit>, rng: &mut StdRng) {
    match gate {
        Gate::OneQubit { qubit, .. } => {
            sv.apply_pauli(qubit.index(), rng.random_range(1..=3));
        }
        Gate::Cnot {
            control: a,
            target: b,
        }
        | Gate::Swap { a, b } => {
            // draw (p, q) uniformly from {0..3}² \ {(0,0)}
            let code = rng.random_range(1..16u8);
            let (pa, pb) = (code / 4, code % 4);
            if pa > 0 {
                sv.apply_pauli(a.index(), pa);
            }
            if pb > 0 {
                sv.apply_pauli(b.index(), pb);
            }
        }
        _ => unreachable!("only unitary gates receive Pauli noise"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva_circuit::Cbit;
    use quva_device::{Calibration, Topology};

    fn clean_device(n: usize) -> Device {
        Device::new(Topology::fully_connected(n), |t| {
            Calibration::uniform(t, 0.0, 0.0, 0.0)
        })
    }

    fn noisy_device(n: usize, e2q: f64, ero: f64) -> Device {
        Device::new(Topology::fully_connected(n), |t| {
            Calibration::uniform(t, e2q, 0.0, ero)
        })
    }

    fn bv3() -> Circuit<PhysQubit> {
        quva_benchmarks::bv(3).map_qubits(3, |q| PhysQubit(q.0))
    }

    #[test]
    fn noiseless_bv_always_finds_secret() {
        let out = run_noisy_trials(&clean_device(3), &bv3(), 200, 1).unwrap();
        assert_eq!(out.count(0b11), 200);
        assert_eq!(out.success_rate(|o| o == 0b11), 1.0);
        assert_eq!(out.mode(), Some(0b11));
    }

    #[test]
    fn noiseless_ghz_splits_between_poles() {
        let c = quva_benchmarks::ghz(3).map_qubits(3, |q| PhysQubit(q.0));
        let out = run_noisy_trials(&clean_device(3), &c, 2000, 2).unwrap();
        let zeros = out.count(0b000);
        let ones = out.count(0b111);
        assert_eq!(zeros + ones, 2000, "GHZ produced a non-pole outcome");
        assert!(
            (800..1200).contains(&(zeros as usize)),
            "pole split biased: {zeros}"
        );
    }

    #[test]
    fn noise_degrades_success() {
        let clean = run_noisy_trials(&clean_device(3), &bv3(), 2000, 3).unwrap();
        let noisy = run_noisy_trials(&noisy_device(3, 0.1, 0.05), &bv3(), 2000, 3).unwrap();
        let ps_clean = clean.success_rate(|o| o == 0b11);
        let ps_noisy = noisy.success_rate(|o| o == 0b11);
        assert_eq!(ps_clean, 1.0);
        assert!(ps_noisy < 0.95, "noise had no effect: {ps_noisy}");
        assert!(ps_noisy > 0.3, "noise implausibly destructive: {ps_noisy}");
    }

    #[test]
    fn readout_error_alone_flips_bits() {
        let dev = noisy_device(2, 0.0, 0.5);
        let mut c: Circuit<PhysQubit> = Circuit::new(2);
        c.measure(PhysQubit(0), Cbit(0));
        let out = run_noisy_trials(&dev, &c, 4000, 4).unwrap();
        let flipped = out.count(0b1);
        assert!(
            (1700..2300).contains(&(flipped as usize)),
            "readout flip rate off: {flipped}/4000"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let dev = noisy_device(3, 0.05, 0.02);
        let a = run_noisy_trials(&dev, &bv3(), 500, 9).unwrap();
        let b = run_noisy_trials(&dev, &bv3(), 500, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unrouted_circuit_rejected() {
        let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.0, 0.0, 0.0));
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        c.cnot(PhysQubit(0), PhysQubit(2));
        assert!(run_noisy_trials(&dev, &c, 10, 0).is_err());
    }

    #[test]
    fn oversized_circuit_rejected() {
        let dev = clean_device(2);
        let c: Circuit<PhysQubit> = Circuit::new(3);
        assert!(matches!(
            run_noisy_trials(&dev, &c, 1, 0),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn empty_outcomes() {
        let out = run_noisy_trials(&clean_device(2), &Circuit::new(2), 0, 0).unwrap();
        assert_eq!(out.trials(), 0);
        assert_eq!(out.success_rate(|_| true), 0.0);
        assert_eq!(out.mode(), None);
    }

    #[test]
    fn triswap_moves_excitation() {
        let c = quva_benchmarks::triswap().map_qubits(3, |q| PhysQubit(q.0));
        let out = run_noisy_trials(&clean_device(3), &c, 100, 5).unwrap();
        assert_eq!(out.count(0b100), 100);
    }
}
