//! Fault injection with *correlated* errors — probing the paper's §9
//! limitation ("we assume no correlations between errors").
//!
//! Model: within a single trial, each coupling link independently has a
//! "bad episode" with some probability; every operation on that link
//! during the trial then fails with its error rate multiplied by a
//! burst factor. This captures the dominant real-world correlation —
//! temporal drift that outlives one gate — while keeping trials
//! independent of each other.

use quva_circuit::{Circuit, Gate, PhysQubit};
use quva_device::Device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::SimError;
use crate::montecarlo::McEstimate;

/// Parameters of the correlated burst model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelatedModel {
    /// Per-trial probability that a given link is in a bad episode.
    pub burst_probability: f64,
    /// Multiplier applied to a bursting link's error rate (clamped to
    /// 0.95 failure probability).
    pub burst_multiplier: f64,
}

impl Default for CorrelatedModel {
    /// A mild default: 5 % of links drift per trial window, tripling
    /// their error rate.
    fn default() -> Self {
        CorrelatedModel {
            burst_probability: 0.05,
            burst_multiplier: 3.0,
        }
    }
}

impl CorrelatedModel {
    /// A model with no correlation at all (reduces exactly to the
    /// independent injector; property-tested).
    pub fn independent() -> Self {
        CorrelatedModel {
            burst_probability: 0.0,
            burst_multiplier: 1.0,
        }
    }
}

/// Monte-Carlo PST under the correlated burst model.
///
/// With [`CorrelatedModel::independent`] this reproduces the
/// uncorrelated estimator exactly (up to sampling noise).
///
/// # Errors
///
/// Returns [`SimError`] if the circuit is unrouted for `device` or too
/// large.
///
/// # Examples
///
/// ```
/// use quva_circuit::{Circuit, PhysQubit};
/// use quva_device::{Calibration, Device, Topology};
/// use quva_sim::{monte_carlo_pst_correlated, CorrelatedModel};
///
/// # fn main() -> Result<(), quva_sim::SimError> {
/// let dev = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.05, 0.0, 0.0));
/// let mut c: Circuit<PhysQubit> = Circuit::new(2);
/// c.cnot(PhysQubit(0), PhysQubit(1));
/// let est = monte_carlo_pst_correlated(&dev, &c, 50_000, 1, CorrelatedModel::default())?;
/// assert!(est.pst < 0.96 && est.pst > 0.90); // bursts cost a little PST
/// # Ok(())
/// # }
/// ```
pub fn monte_carlo_pst_correlated(
    device: &Device,
    circuit: &Circuit<PhysQubit>,
    trials: u64,
    seed: u64,
    model: CorrelatedModel,
) -> Result<McEstimate, SimError> {
    if circuit.num_qubits() > device.num_qubits() {
        return Err(SimError::TooManyQubits {
            circuit: circuit.num_qubits(),
            device: device.num_qubits(),
        });
    }
    let cal = device.calibration();
    // per op: (base failure probability, link id if the op rides a link)
    let mut ops: Vec<(f64, Option<usize>)> = Vec::with_capacity(circuit.len());
    for (idx, gate) in circuit.iter().enumerate() {
        let entry = match gate {
            Gate::OneQubit { qubit, .. } => (cal.one_qubit_error(qubit.index()), None),
            Gate::Cnot { control, target } => {
                let id = device
                    .topology()
                    .link_id(*control, *target)
                    .ok_or(SimError::UncoupledOperands {
                        gate_index: idx,
                        a: *control,
                        b: *target,
                    })?;
                (cal.two_qubit_error(id), Some(id))
            }
            Gate::Swap { a, b } => {
                let id = device
                    .topology()
                    .link_id(*a, *b)
                    .ok_or(SimError::UncoupledOperands {
                        gate_index: idx,
                        a: *a,
                        b: *b,
                    })?;
                (1.0 - (1.0 - cal.two_qubit_error(id)).powi(3), Some(id))
            }
            Gate::Measure { qubit, .. } => (cal.readout_error(qubit.index()), None),
            Gate::Barrier { .. } => continue,
        };
        ops.push(entry);
    }

    let num_links = device.topology().num_links();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bursting = vec![false; num_links];
    let mut successes = 0u64;
    'trial: for _ in 0..trials {
        if model.burst_probability > 0.0 {
            for b in bursting.iter_mut() {
                *b = rng.random::<f64>() < model.burst_probability;
            }
        }
        for &(p, link) in &ops {
            let p_eff = match link {
                Some(id) if bursting[id] => (p * model.burst_multiplier).min(0.95),
                _ => p,
            };
            if rng.random::<f64>() < p_eff {
                continue 'trial;
            }
        }
        successes += 1;
    }
    Ok(McEstimate {
        pst: successes as f64 / trials.max(1) as f64,
        successes,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::monte_carlo_pst;
    use crate::profile::CoherenceModel;
    use quva_device::{Calibration, Topology};

    fn device() -> Device {
        Device::new(Topology::linear(3), |t| {
            Calibration::uniform(t, 0.05, 0.002, 0.02)
        })
    }

    fn chain() -> Circuit<PhysQubit> {
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        c.h(PhysQubit(0));
        for _ in 0..5 {
            c.cnot(PhysQubit(0), PhysQubit(1));
            c.swap(PhysQubit(1), PhysQubit(2));
        }
        c.measure_all();
        c
    }

    #[test]
    fn independent_model_matches_plain_injector() {
        let dev = device();
        let c = chain();
        let plain = monte_carlo_pst(&dev, &c, 200_000, 3, CoherenceModel::Disabled).unwrap();
        let corr = monte_carlo_pst_correlated(&dev, &c, 200_000, 4, CorrelatedModel::independent()).unwrap();
        assert!(
            (plain.pst - corr.pst).abs() < 5.0 * (plain.std_error() + corr.std_error()) + 1e-3,
            "plain {} vs correlated-independent {}",
            plain.pst,
            corr.pst
        );
    }

    #[test]
    fn bursts_reduce_pst() {
        let dev = device();
        let c = chain();
        let base = monte_carlo_pst_correlated(&dev, &c, 100_000, 1, CorrelatedModel::independent())
            .unwrap()
            .pst;
        let bursty = monte_carlo_pst_correlated(
            &dev,
            &c,
            100_000,
            1,
            CorrelatedModel {
                burst_probability: 0.3,
                burst_multiplier: 5.0,
            },
        )
        .unwrap()
        .pst;
        assert!(bursty < base, "bursty {bursty} >= base {base}");
    }

    #[test]
    fn burst_failure_probability_is_capped() {
        // a multiplier that would exceed 1.0 must not panic or make
        // success impossible when the burst misses
        let dev = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.5, 0.0, 0.0));
        let mut c: Circuit<PhysQubit> = Circuit::new(2);
        c.cnot(PhysQubit(0), PhysQubit(1));
        let est = monte_carlo_pst_correlated(
            &dev,
            &c,
            20_000,
            2,
            CorrelatedModel {
                burst_probability: 1.0,
                burst_multiplier: 100.0,
            },
        )
        .unwrap();
        assert!(est.pst > 0.0, "cap at 0.95 leaves a 5% success channel");
        assert!(est.pst < 0.1);
    }

    #[test]
    fn deterministic_per_seed() {
        let dev = device();
        let c = chain();
        let m = CorrelatedModel::default();
        let a = monte_carlo_pst_correlated(&dev, &c, 10_000, 9, m).unwrap();
        let b = monte_carlo_pst_correlated(&dev, &c, 10_000, 9, m).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unrouted_rejected() {
        let dev = device();
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        c.cnot(PhysQubit(0), PhysQubit(2));
        assert!(monte_carlo_pst_correlated(&dev, &c, 10, 0, CorrelatedModel::default()).is_err());
    }
}
