//! Exact noisy-outcome distributions: the density-matrix expectation of
//! exactly the stochastic process [`crate::run_noisy_trials`] samples.

use quva_circuit::{Circuit, Gate, PhysQubit};
use quva_device::Device;

use crate::density::{DensityMatrix, MAX_DENSITY_QUBITS};
use crate::error::SimError;

/// Computes the exact probability of every classical outcome of a
/// routed circuit on a noisy device (depolarizing gate noise + readout
/// flips — the same channels the sampling simulator draws from).
///
/// Returns a distribution indexed by the classical outcome (bit `i` of
/// the index = cbit `i`), of length `2^num_cbits`.
///
/// Only terminal measurements are supported: once a qubit is measured,
/// no later gate may touch it.
///
/// # Errors
///
/// Returns [`SimError`] if the circuit is unrouted, too large for the
/// density-matrix simulator, or measures a qubit mid-circuit.
///
/// # Examples
///
/// ```
/// use quva_circuit::{Circuit, PhysQubit, Cbit};
/// use quva_device::{Calibration, Device, Topology};
/// use quva_sim::exact_noisy_distribution;
///
/// # fn main() -> Result<(), quva_sim::SimError> {
/// let dev = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.0, 0.0, 0.1));
/// let mut c: Circuit<PhysQubit> = Circuit::new(2);
/// c.x(PhysQubit(0));
/// c.measure(PhysQubit(0), Cbit(0));
/// let dist = exact_noisy_distribution(&dev, &c)?;
/// assert!((dist[1] - 0.9).abs() < 1e-10); // readout flips 10% to 0
/// # Ok(())
/// # }
/// ```
pub fn exact_noisy_distribution(device: &Device, circuit: &Circuit<PhysQubit>) -> Result<Vec<f64>, SimError> {
    let n = circuit.num_qubits();
    if n > device.num_qubits() {
        return Err(SimError::TooManyQubits {
            circuit: n,
            device: device.num_qubits(),
        });
    }
    if n > MAX_DENSITY_QUBITS {
        return Err(SimError::TooManyQubits {
            circuit: n,
            device: MAX_DENSITY_QUBITS,
        });
    }
    let cal = device.calibration();
    let mut rho = DensityMatrix::new(n);
    // measured[q] = destination cbit
    let mut measured: Vec<Option<usize>> = vec![None; n];
    for (idx, gate) in circuit.iter().enumerate() {
        for q in gate.qubits() {
            if measured[q.index()].is_some() && !gate.is_barrier() {
                return Err(SimError::MidCircuitMeasurement { gate_index: idx });
            }
        }
        match gate {
            Gate::OneQubit { kind, qubit } => {
                rho.apply_kind(qubit.index(), *kind);
                rho.depolarize_1q(qubit.index(), cal.one_qubit_error(qubit.index()));
            }
            Gate::Cnot { control, target } => {
                let e = device
                    .link_error(*control, *target)
                    .ok_or(SimError::UncoupledOperands {
                        gate_index: idx,
                        a: *control,
                        b: *target,
                    })?;
                rho.cnot(control.index(), target.index());
                rho.depolarize_2q(control.index(), target.index(), e);
            }
            Gate::Swap { a, b } => {
                let e = device.link_error(*a, *b).ok_or(SimError::UncoupledOperands {
                    gate_index: idx,
                    a: *a,
                    b: *b,
                })?;
                rho.swap(a.index(), b.index());
                rho.depolarize_2q(a.index(), b.index(), 1.0 - (1.0 - e).powi(3));
            }
            Gate::Measure { qubit, cbit } => {
                measured[qubit.index()] = Some(cbit.index());
            }
            Gate::Barrier { .. } => {}
        }
    }

    // marginalize the diagonal onto the measured qubits, then apply
    // classical readout flips
    let joint = rho.outcome_distribution();
    let num_cbits = circuit.num_cbits();
    let mut dist = vec![0.0; 1 << num_cbits];
    for (basis, &p) in joint.iter().enumerate() {
        let mut outcome = 0usize;
        for (q, slot) in measured.iter().enumerate() {
            if let Some(c) = slot {
                if basis >> q & 1 == 1 {
                    outcome |= 1 << c;
                }
            }
        }
        dist[outcome] += p;
    }
    for (q, slot) in measured.iter().enumerate() {
        let Some(c) = slot else { continue };
        let r = cal.readout_error(q);
        if r == 0.0 {
            continue;
        }
        let bit = 1usize << c;
        let mut flipped = vec![0.0; dist.len()];
        for (o, &p) in dist.iter().enumerate() {
            flipped[o] += p * (1.0 - r);
            flipped[o ^ bit] += p * r;
        }
        dist = flipped;
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noisy::run_noisy_trials;
    use quva_circuit::Cbit;
    use quva_device::{Calibration, Topology};

    fn device(e2q: f64, e1q: f64, ero: f64) -> Device {
        Device::new(Topology::fully_connected(3), |t| {
            Calibration::uniform(t, e2q, e1q, ero)
        })
    }

    fn bv3() -> Circuit<PhysQubit> {
        quva_benchmarks::bv(3).map_qubits(3, |q| PhysQubit(q.0))
    }

    #[test]
    fn noiseless_bv_is_deterministic() {
        let dist = exact_noisy_distribution(&device(0.0, 0.0, 0.0), &bv3()).unwrap();
        assert!((dist[0b11] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn distribution_is_normalized_under_noise() {
        let dist = exact_noisy_distribution(&device(0.08, 0.01, 0.05), &bv3()).unwrap();
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(dist.iter().all(|&p| p >= -1e-12));
    }

    #[test]
    fn sampling_simulator_converges_to_exact() {
        // the headline cross-validation: the Monte-Carlo state-vector
        // simulator samples exactly this distribution
        let dev = device(0.06, 0.005, 0.03);
        let c = bv3();
        let exact = exact_noisy_distribution(&dev, &c).unwrap();
        let sampled = run_noisy_trials(&dev, &c, 200_000, 11).unwrap();
        let mut tv = 0.0; // total-variation distance
        for (o, &p) in exact.iter().enumerate() {
            let q = sampled.count(o as u64) as f64 / sampled.trials() as f64;
            tv += (p - q).abs();
        }
        tv /= 2.0;
        assert!(tv < 0.01, "total variation {tv} too large");
    }

    #[test]
    fn readout_flip_convolution() {
        let dev = device(0.0, 0.0, 0.2);
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        c.x(PhysQubit(0));
        c.measure(PhysQubit(0), Cbit(0));
        c.measure(PhysQubit(1), Cbit(1));
        let dist = exact_noisy_distribution(&dev, &c).unwrap();
        // q0=1 (flips with 0.2), q1=0 (flips with 0.2); cbit2 unused
        assert!((dist[0b01] - 0.8 * 0.8).abs() < 1e-10);
        assert!((dist[0b00] - 0.2 * 0.8).abs() < 1e-10);
        assert!((dist[0b11] - 0.8 * 0.2).abs() < 1e-10);
        assert!((dist[0b10] - 0.2 * 0.2).abs() < 1e-10);
    }

    #[test]
    fn mid_circuit_measurement_rejected() {
        let dev = device(0.0, 0.0, 0.0);
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        c.measure(PhysQubit(0), Cbit(0));
        c.h(PhysQubit(0));
        let err = exact_noisy_distribution(&dev, &c).unwrap_err();
        assert!(matches!(err, SimError::MidCircuitMeasurement { gate_index: 1 }));
    }

    #[test]
    fn unrouted_rejected() {
        let dev = Device::new(Topology::linear(3), |t| Calibration::uniform(t, 0.0, 0.0, 0.0));
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        c.cnot(PhysQubit(0), PhysQubit(2));
        assert!(exact_noisy_distribution(&dev, &c).is_err());
    }

    #[test]
    fn oversized_register_rejected() {
        let dev = Device::new(Topology::linear(12), |t| Calibration::uniform(t, 0.0, 0.0, 0.0));
        let c: Circuit<PhysQubit> = Circuit::new(12);
        assert!(matches!(
            exact_noisy_distribution(&dev, &c),
            Err(SimError::TooManyQubits { .. })
        ));
    }
}
