//! Closed-form PST estimation.
//!
//! Under the paper's uncorrelated error model (§4.3), the probability
//! that a trial survives every failure event is simply the product of
//! the per-event success probabilities — no sampling needed. The
//! Monte-Carlo injector ([`crate::monte_carlo_pst`]) converges to this
//! value; the compiler's search heuristics use this estimator because it
//! is exact and fast.

use quva_circuit::{Circuit, PhysQubit};
use quva_device::Device;

use crate::error::SimError;
use crate::profile::{CoherenceModel, FailureProfile};

/// The analytic reliability report for one routed circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct PstReport {
    /// Probability of a successful (fault-free) trial.
    pub pst: f64,
    /// Accumulated gate failure weight Σ −ln(1−p).
    pub gate_failure_weight: f64,
    /// Accumulated readout failure weight.
    pub readout_failure_weight: f64,
    /// Accumulated coherence failure weight.
    pub coherence_failure_weight: f64,
}

impl PstReport {
    /// Gate-to-coherence failure-weight ratio (the §4.4 dominance
    /// metric); infinite when coherence is disabled or zero.
    pub fn gate_to_coherence_ratio(&self) -> f64 {
        if self.coherence_failure_weight == 0.0 {
            f64::INFINITY
        } else {
            self.gate_failure_weight / self.coherence_failure_weight
        }
    }
}

/// Computes the exact PST of a routed circuit under the uncorrelated
/// error model.
///
/// # Errors
///
/// Returns [`SimError`] if the circuit is unrouted for `device` or uses
/// more qubits than the device has.
///
/// # Examples
///
/// ```
/// use quva_circuit::{Circuit, PhysQubit, Cbit};
/// use quva_device::{Calibration, Device, Topology};
/// use quva_sim::{analytic_pst, CoherenceModel};
///
/// # fn main() -> Result<(), quva_sim::SimError> {
/// let dev = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
/// let mut c: Circuit<PhysQubit> = Circuit::new(2);
/// c.cnot(PhysQubit(0), PhysQubit(1));
/// let report = analytic_pst(&dev, &c, CoherenceModel::Disabled)?;
/// assert!((report.pst - 0.9).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn analytic_pst(
    device: &Device,
    circuit: &Circuit<PhysQubit>,
    coherence: CoherenceModel,
) -> Result<PstReport, SimError> {
    let profile = FailureProfile::new(device, circuit, coherence)?;
    Ok(PstReport {
        pst: profile.success_probability(),
        gate_failure_weight: profile.gate_failure_weight(),
        readout_failure_weight: profile.readout_failure_weight(),
        coherence_failure_weight: profile.coherence_failure_weight(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva_circuit::Cbit;
    use quva_device::{Calibration, Topology};

    #[test]
    fn pst_of_empty_circuit_is_one() {
        let dev = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.1, 0.01, 0.02));
        let c: Circuit<PhysQubit> = Circuit::new(2);
        let r = analytic_pst(&dev, &c, CoherenceModel::IdleWindow).unwrap();
        assert_eq!(r.pst, 1.0);
    }

    #[test]
    fn pst_decreases_with_more_gates() {
        let dev = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.05, 0.001, 0.0));
        let mut short: Circuit<PhysQubit> = Circuit::new(2);
        short.cnot(PhysQubit(0), PhysQubit(1));
        let mut long = short.clone();
        long.cnot(PhysQubit(0), PhysQubit(1));
        let a = analytic_pst(&dev, &short, CoherenceModel::Disabled).unwrap().pst;
        let b = analytic_pst(&dev, &long, CoherenceModel::Disabled).unwrap().pst;
        assert!(b < a);
    }

    #[test]
    fn figure1_worked_example() {
        // Fig. 1(b): path A-B-C with one SWAP then CNOT on links of
        // success 0.8, 0.9 ⇒ P = 0.8³ · 0.9 ≈ 0.46; the paper's 0.42
        // uses link successes 0.75/0.8-ish — we verify the arithmetic
        // identity instead: PST = swap³ · cnot.
        let topo = Topology::from_links("fig1", 3, [(0, 1), (1, 2)]);
        let dev = Device::new(topo, |t| {
            let mut c = Calibration::uniform(t, 0.2, 0.0, 0.0);
            c.set_two_qubit_error(1, 0.1);
            c
        });
        let mut c: Circuit<PhysQubit> = Circuit::new(3);
        c.swap(PhysQubit(0), PhysQubit(1));
        c.cnot(PhysQubit(1), PhysQubit(2));
        let r = analytic_pst(&dev, &c, CoherenceModel::Disabled).unwrap();
        assert!((r.pst - 0.8f64.powi(3) * 0.9).abs() < 1e-12);
    }

    #[test]
    fn readout_counts_toward_pst() {
        let dev = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.0, 0.0, 0.1));
        let mut c: Circuit<PhysQubit> = Circuit::new(2);
        c.measure(PhysQubit(0), Cbit(0));
        let r = analytic_pst(&dev, &c, CoherenceModel::Disabled).unwrap();
        assert!((r.pst - 0.9).abs() < 1e-12);
        assert!(r.readout_failure_weight > 0.0);
        assert_eq!(r.gate_failure_weight, 0.0);
    }

    #[test]
    fn report_ratio_matches_weights() {
        let r = PstReport {
            pst: 0.5,
            gate_failure_weight: 0.8,
            readout_failure_weight: 0.1,
            coherence_failure_weight: 0.05,
        };
        assert!((r.gate_to_coherence_ratio() - 16.0).abs() < 1e-12);
    }
}
