//! Bit-parallel (SWAR) Monte-Carlo fault-injection kernel: 64 trials
//! per `u64` lane-word.
//!
//! # Why not 64 threshold compares?
//!
//! The naive SWAR formulation draws one uniform per (event, lane) and
//! threshold-compares — that is the scalar loop again, just transposed,
//! and saves nothing. The kernel instead samples, per `(word, event)`,
//! a *count* in O(1) with a Walker alias table and then touches only
//! that many lanes.
//!
//! The count is not the binomial number of failing lanes but the number
//! of placement *attempts* `m ~ Poisson(λ)` with `λ = −64·ln(1 − p)`,
//! and the attempts land on lanes uniformly **with replacement**. By
//! Poisson thinning, the per-lane hit counts are then independent
//! `Poisson(λ/64)` variables, so each lane is hit at least once with
//! probability `1 − e^(−λ/64) = p`, independently across lanes — the
//! hit mask is distributed exactly as 64 iid Bernoulli(p) draws. The
//! construction is exact, and because attempts need no distinctness
//! there is no acceptance test, no popcount, and no rejection fallback
//! anywhere in the kernel.
//!
//! For `p > 1/2` the same construction runs on the complement: attempts
//! at rate `λ = −64·ln(p)` place the *surviving* lanes and the mask is
//! inverted (`p = 1` degenerates to `m = 0`, all lanes fail, exactly).
//!
//! # Run fusion
//!
//! Poisson rates are additive, so a *run* of consecutive events with
//! the same [`EventClass`] is fused into a single row with
//! `λ = Σ λᵢ`: the fused hit mask is distributed exactly as the OR of
//! the individual event masks (per lane, `1 − Π(1 − pᵢ)`). Because a
//! run is class-homogeneous and fused rows keep program order,
//! first-failure *class* attribution is unchanged. Fusion stops at
//! [`FUSE_CAP`] so the folded tail stays negligible, and complement-
//! form events always stand alone.
//!
//! With the paper-scale event probabilities (p mostly well under 0.15)
//! the expected number of *firing* rows per word is small, so almost
//! all per-row work is the O(1) alias lookup; lane placement runs only
//! for rows that actually fired.
//!
//! # Counter-based draws and the determinism contract
//!
//! Every random draw is a pure function of `(word index, row index,
//! role)`: the word base is the SplitMix64 stream element at the
//! *global* word index (the same derivation [`McEngine`] uses for chunk
//! seeds), and the phase/placement draws are SplitMix64 finalizations
//! of salted offsets from that base. There is no sequential RNG state
//! anywhere, which yields two structural guarantees:
//!
//! * the traced and untraced paths consume *identical* draws — tracing
//!   cannot perturb the sample;
//! * merged counts are invariant under any partition of the trial range
//!   into chunks and any thread schedule, because a word's failure mask
//!   never depends on which chunk computed it.
//!
//! # Quantization
//!
//! Alias thresholds are quantized to 24 fractional bits, so each
//! per-row attempt-count pmf is realized to within 2⁻²⁴ ≈ 6·10⁻⁸
//! total variation, and attempt counts of 63 and above share one alias
//! slot. The folded tail mass is below 10⁻⁸ for λ ≤ [`FUSE_CAP`] and,
//! for a lone event, below 10⁻¹¹ for p ≤ 0.42 (or ≥ 0.58, where the
//! complement form runs); it peaks at ~3·10⁻³ at p = 0.5, where
//! capping attempts at 63 biases the per-lane failure probability by
//! ~5·10⁻⁵ — orders of magnitude below the binomial standard error of
//! any feasible trial count; the cross-validation gate (±4 SE at 100k
//! trials) could not see a bias below ~10⁻³.
//!
//! [`McEngine`]: crate::engine::McEngine

use crate::engine::splitmix;
use crate::profile::{EventClass, FailureProfile};

/// Trials per lane-word.
pub(crate) const LANES: u64 = 64;

/// Alias-table slots: attempt counts `0..=62`, with `m >= 63` folded
/// into slot 63 (see the module docs on quantization).
const SLOTS: usize = 64;

/// Fractional bits of each alias threshold.
const FRAC_BITS: u32 = 24;
const FRAC_MASK: u32 = (1 << FRAC_BITS) - 1;

/// Bit flagging a complement-form (`p > 1/2`) row in every cell of its
/// alias table, so phase 1 learns it from the cell it already loaded.
const INV_BIT: u32 = 1 << 31;

/// Rows per compaction block: small enough that the fire buffers
/// live comfortably on the stack, large enough that real circuits
/// (tens of events) need a single block.
const BLOCK: usize = 256;

/// Largest fused attempt rate: `P(Poisson(32) ≥ 63) < 3·10⁻⁸`, so
/// folding the tail into slot 63 stays invisible after fusion.
const FUSE_CAP: f64 = 32.0;

/// SplitMix64 increment (golden-ratio constant), matching the engine's
/// chunk-seed derivation.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Stream salt for the overflow placement draws of a row (attempts
/// beyond the five that ride in the phase draw).
const SALT_PLACE: u64 = 0xD1B5_4A32_D192_ED03;

/// The attempt rate and form of one event: `λ = −64·ln(1 − p̃)` with
/// `p̃ = min(p, 1 − p)`, and whether the complement form applies.
fn event_rate(p: f64) -> (f64, bool) {
    let p = p.clamp(0.0, 1.0);
    let inv = p > 0.5;
    let pt = if inv { 1.0 - p } else { p };
    (-64.0 * (1.0 - pt).ln(), inv)
}

/// Per-run tables for the bit-parallel kernel: one packed alias table
/// per fused event run, plus the run classes for abort attribution.
///
/// A cell `row[j]` packs the 24-bit acceptance threshold in the low
/// bits, the alias outcome in bits 24..30, and the complement flag in
/// bit 31, so the alias draw is one load, one mask-compare, and one
/// conditional move.
#[derive(Debug)]
pub(crate) struct LaneTable {
    rows: Box<[[u32; SLOTS]]>,
    classes: Box<[EventClass]>,
    /// Any complement-form row present? Selects the general sweep; the
    /// common all-direct case runs a specialization with the inversion
    /// plumbing compiled out.
    any_inv: bool,
}

impl LaneTable {
    /// Builds the fused alias rows from the profile's dense
    /// active-event table. Cost is O(events · 64) — microseconds,
    /// amortized over a whole run.
    pub(crate) fn new(profile: &FailureProfile) -> Self {
        let mut runs: Vec<(f64, bool, EventClass)> = Vec::new();
        for (&p, &class) in profile.active_events().iter().zip(profile.active_event_classes()) {
            let (lam, inv) = event_rate(p);
            if let Some(last) = runs.last_mut() {
                if !inv && !last.1 && last.2 == class && last.0 + lam <= FUSE_CAP {
                    last.0 += lam;
                    continue;
                }
            }
            runs.push((lam, inv, class));
        }
        let rows: Box<[[u32; SLOTS]]> = runs.iter().map(|&(lam, inv, _)| alias_row(lam, inv)).collect();
        let classes: Box<[EventClass]> = runs.iter().map(|&(_, _, c)| c).collect();
        let any_inv = runs.iter().any(|&(_, inv, _)| inv);
        LaneTable {
            rows,
            classes,
            any_inv,
        }
    }
}

/// The attempt-count pmf: `Poisson(λ)` with `m ≥ 63` folded into
/// index 63.
///
/// The worst case is `λ = 64·ln 2 ≈ 44.4` for a lone `p = 1/2` event,
/// where the recurrence start `e^(−λ) ≈ 5·10⁻²⁰` is still far from
/// underflow, so the simple ratio recurrence is accurate everywhere.
fn attempts_pmf(lam: f64) -> [f64; SLOTS] {
    let mut pmf = [0f64; SLOTS];
    let mut v = (-lam).exp();
    pmf[0] = v;
    for m in 1..=400usize {
        v *= lam / m as f64;
        pmf[m.min(SLOTS - 1)] += v;
    }
    pmf
}

/// Builds one packed alias table (Vose's construction) for attempt
/// rate `lam`, with [`INV_BIT`] set on every cell of a complement-form
/// row.
fn alias_row(lam: f64, inv: bool) -> [u32; SLOTS] {
    let pmf = attempts_pmf(lam);
    let total: f64 = pmf.iter().sum();
    let scale = SLOTS as f64 / total.max(f64::MIN_POSITIVE);

    let mut scaled = [0f64; SLOTS];
    let mut small = [0u8; SLOTS];
    let mut large = [0u8; SLOTS];
    let (mut ns, mut nl) = (0usize, 0usize);
    for (k, (&mass, slot)) in pmf.iter().zip(&mut scaled).enumerate() {
        *slot = mass * scale;
        if *slot < 1.0 {
            small[ns] = k as u8;
            ns += 1;
        } else {
            large[nl] = k as u8;
            nl += 1;
        }
    }

    let mut thresh = [FRAC_MASK; SLOTS];
    let mut alias: [u8; SLOTS] = core::array::from_fn(|k| k as u8);
    while ns > 0 && nl > 0 {
        ns -= 1;
        let s = small[ns] as usize;
        let l = large[nl - 1] as usize;
        thresh[s] = ((scaled[s] * f64::from(1u32 << FRAC_BITS)) as u32).min(FRAC_MASK);
        alias[s] = l as u8;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        if scaled[l] < 1.0 {
            nl -= 1;
            small[ns] = l as u8;
            ns += 1;
        }
    }
    // Leftovers (either list, from rounding) keep the self-aliasing
    // defaults: threshold saturated and alias[k] == k, so the branch
    // taken at the 2^-24 boundary cannot matter.

    let flag = if inv { INV_BIT } else { 0 };
    let mut row = [0u32; SLOTS];
    for (k, cell) in row.iter_mut().enumerate() {
        *cell = thresh[k] | u32::from(alias[k]) << FRAC_BITS | flag;
    }
    row
}

/// Places `m` lane attempts for row `e`, with replacement — no
/// distinctness test, per the Poissonized construction. Attempt 1 uses
/// the phase draw's low 6 bits and attempts 2..=5 its bits 36..60
/// (disjoint from the bits that decided `m`); attempts beyond five
/// pull 10-digit chunks from salted overflow draws keyed `(row,
/// chunk)`. Returns 0 for `m = 0`.
#[inline]
fn place(r: u64, m: usize, wb: u64, e: u64) -> u64 {
    let mut mask = (1u64 << (r & 63)) & 0u64.wrapping_sub(u64::from(m >= 1));
    let mut rr = r >> 36;
    let extra = m.saturating_sub(1);
    let take = extra.min(4);
    for j in 0..4usize {
        mask |= (1u64 << (rr & 63)) & 0u64.wrapping_sub(u64::from(j < take));
        rr >>= 6;
    }
    let mut left = extra - take;
    let mut c = 0u64;
    while left > 0 {
        // m <= 63 needs at most 6 overflow chunks, so `e << 3 | c`
        // keys every (row, chunk) draw uniquely.
        let mut rr = splitmix(
            wb.wrapping_add(SALT_PLACE)
                .wrapping_add(GOLDEN.wrapping_mul(e << 3 | c)),
        );
        let take = left.min(10);
        for j in 0..10usize {
            mask |= (1u64 << (rr & 63)) & 0u64.wrapping_sub(u64::from(j < take));
            rr >>= 6;
        }
        left -= take;
        c += 1;
    }
    mask
}

/// Reusable compaction buffers for the two-phase sweep. Callers keep
/// one per chunk: zero-initializing 3 KiB of stack per word would cost
/// more than the sweep itself.
#[derive(Debug)]
pub(crate) struct Scratch {
    r: [u64; BLOCK],
    ek: [u32; BLOCK],
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch {
            r: [0; BLOCK],
            ek: [0; BLOCK],
        }
    }
}

/// The two-phase sweep behind [`word_failures`], specialized on
/// whether complement-form rows exist: in the (overwhelmingly common)
/// all-direct case every inversion op folds to a no-op at compile
/// time. The specialization is sample-identical by construction — when
/// no complement rows exist, `inv` is zero in every expression the
/// general path evaluates.
#[inline]
fn sweep<const HAS_INV: bool>(table: &LaneTable, wb: u64, scratch: &mut Scratch) -> u64 {
    let mut fail = 0u64;
    for (blk, rows) in table.rows.chunks(BLOCK).enumerate() {
        let base_e = (blk * BLOCK) as u64;
        let mut idx = 0usize;
        let mut se = wb.wrapping_add(GOLDEN.wrapping_mul(base_e));
        for (er, row) in rows.iter().enumerate() {
            se = se.wrapping_add(GOLDEN);
            let r = splitmix(se);
            let j = ((r >> 6) & 63) as usize;
            let frac = (r >> 12) as u32 & FRAC_MASK;
            let cell = row[j];
            let m = if frac < cell & FRAC_MASK {
                j as u32
            } else {
                (cell >> FRAC_BITS) & 63
            };
            let inv = if HAS_INV { cell >> 31 } else { 0 };
            fail |= (1u64 << (r & 63)) & 0u64.wrapping_sub(u64::from(m == 1 && inv == 0));
            scratch.r[idx & (BLOCK - 1)] = r;
            scratch.ek[idx & (BLOCK - 1)] = inv << 16 | (er as u32) << 8 | m;
            idx += usize::from(m >= 2 || inv != 0);
        }
        for (&r, &ek) in scratch.r.iter().zip(&scratch.ek).take(idx) {
            let e = base_e + u64::from((ek >> 8) & 0xFF);
            let placed = place(r, (ek & 0xFF) as usize, wb, e);
            fail |= if HAS_INV {
                placed ^ 0u64.wrapping_sub(u64::from(ek >> 16))
            } else {
                placed
            };
        }
    }
    fail
}

/// The failure mask of global word `wb`: bit `l` set iff lane `l`'s
/// trial aborted at some event. Pure in `(table, wb)`.
///
/// Two phases per block: a branchless alias sweep that resolves `m`
/// per row (merging the ubiquitous direct-form `m == 1` case
/// immediately and compacting the rest of the fires into the scratch
/// buffers), then placement of the compacted fires only.
/// Complement-form rows are always buffered — even at `m = 0`, where
/// the inverted empty mask fails the whole word.
#[inline]
pub(crate) fn word_failures(table: &LaneTable, wb: u64, scratch: &mut Scratch) -> u64 {
    if table.any_inv {
        sweep::<true>(table, wb, scratch)
    } else {
        sweep::<false>(table, wb, scratch)
    }
}

/// Per-chunk tallies of the traced bit-parallel path, merged into
/// `sim.*` counters once per worker.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct BpTrace {
    /// Aborted trials per [`EventClass::index`].
    pub aborts: [u64; 5],
    /// Lane-words processed (partial edge words count once each).
    pub words: u64,
    /// Fused rows that fired (`m ≥ 1`, or any complement-form row)
    /// across all processed words.
    pub fires: u64,
}

/// The traced twin of [`sweep`]; see [`word_failures_traced`].
#[inline]
fn sweep_traced<const HAS_INV: bool>(
    table: &LaneTable,
    wb: u64,
    lanes: u64,
    trace: &mut BpTrace,
    scratch: &mut Scratch,
) -> u64 {
    let mut fail = 0u64;
    for (blk, rows) in table.rows.chunks(BLOCK).enumerate() {
        let base_e = (blk * BLOCK) as u64;
        let mut idx = 0usize;
        let mut se = wb.wrapping_add(GOLDEN.wrapping_mul(base_e));
        for (er, row) in rows.iter().enumerate() {
            se = se.wrapping_add(GOLDEN);
            let r = splitmix(se);
            let j = ((r >> 6) & 63) as usize;
            let frac = (r >> 12) as u32 & FRAC_MASK;
            let cell = row[j];
            let m = if frac < cell & FRAC_MASK {
                j as u32
            } else {
                (cell >> FRAC_BITS) & 63
            };
            let inv = if HAS_INV { cell >> 31 } else { 0 };
            scratch.r[idx & (BLOCK - 1)] = r;
            scratch.ek[idx & (BLOCK - 1)] = inv << 16 | (er as u32) << 8 | m;
            // Unlike the untraced sweep, m == 1 fires are buffered too:
            // attribution needs them interleaved in program order.
            idx += usize::from(m >= 1 || inv != 0);
        }
        trace.fires += idx as u64;
        for (&r, &ek) in scratch.r.iter().zip(&scratch.ek).take(idx) {
            let er = ((ek >> 8) & 0xFF) as usize;
            let e = base_e + er as u64;
            let placed = place(r, (ek & 0xFF) as usize, wb, e);
            let mask = if HAS_INV {
                placed ^ 0u64.wrapping_sub(u64::from(ek >> 16))
            } else {
                placed
            };
            let newly = mask & !fail & lanes;
            trace.aborts[table.classes[(blk * BLOCK) + er].index()] += u64::from(newly.count_ones());
            fail |= mask;
        }
    }
    fail
}

/// The instrumented twin of [`word_failures`]: identical draws and an
/// identical return value, plus first-failure attribution. A lane
/// aborts at the first row (program order) whose mask covers it — rows
/// are class-homogeneous, so this is the same class accounting the
/// scalar traced path performs — restricted to `lanes` so phantom
/// lanes of a partial word are never attributed.
#[inline]
pub(crate) fn word_failures_traced(
    table: &LaneTable,
    wb: u64,
    lanes: u64,
    trace: &mut BpTrace,
    scratch: &mut Scratch,
) -> u64 {
    trace.words += 1;
    if table.any_inv {
        sweep_traced::<true>(table, wb, lanes, trace, scratch)
    } else {
        sweep_traced::<false>(table, wb, lanes, trace, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CoherenceModel;
    use quva_circuit::{Cbit, Circuit, PhysQubit};
    use quva_device::{Calibration, Device, Topology};

    fn ladder_profile() -> FailureProfile {
        let device = Device::new(Topology::linear(5), |t| Calibration::uniform(t, 0.05, 0.01, 0.02));
        let mut c: Circuit<PhysQubit> = Circuit::new(5);
        c.h(PhysQubit(0));
        for q in 0..4 {
            c.cnot(PhysQubit(q), PhysQubit(q + 1));
        }
        for q in 0..5 {
            c.measure(PhysQubit(q), Cbit(q));
        }
        FailureProfile::new(&device, &c, CoherenceModel::IdleWindow).expect("ladder is routed")
    }

    #[test]
    fn attempts_pmf_sums_to_one_and_has_the_poisson_mean() {
        for p in [0.0, 1e-9, 0.003, 0.05, 0.13, 0.4, 0.5, 0.97, 0.999_999, 1.0] {
            let (lam, _) = event_rate(p);
            let pmf = attempts_pmf(lam);
            let total: f64 = pmf.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "p={p}: total {total}");
            let mean: f64 = pmf.iter().enumerate().map(|(m, mass)| m as f64 * mass).sum();
            // folding m >= 63 into 63 shifts the mean by the folded
            // tail's excess, bounded by 400 * P(m >= 63)
            let fold: f64 = pmf[SLOTS - 1];
            assert!(
                (mean - lam).abs() < 1e-9 + 400.0 * fold,
                "p={p}: mean {mean} vs λ {lam}"
            );
        }
    }

    /// Realized attempt-count pmf of a quantized alias row: the mass
    /// each outcome receives from the threshold and alias sides.
    fn realized_pmf(row: &[u32; SLOTS]) -> [f64; SLOTS] {
        let mut realized = [0f64; SLOTS];
        let slot_mass = 1.0 / SLOTS as f64;
        for (j, &cell) in row.iter().enumerate() {
            let t = f64::from(cell & FRAC_MASK) / f64::from(1u32 << FRAC_BITS);
            realized[j] += slot_mass * t;
            realized[((cell >> FRAC_BITS) & 63) as usize] += slot_mass * (1.0 - t);
        }
        realized
    }

    /// The per-lane hit probability a quantized row realizes: a lane
    /// of an m-attempt word is hit with probability 1 - (63/64)^m.
    fn realized_hit(row: &[u32; SLOTS]) -> f64 {
        realized_pmf(row)
            .iter()
            .enumerate()
            .map(|(m, mass)| mass * (1.0 - (63.0f64 / 64.0).powi(m as i32)))
            .sum()
    }

    #[test]
    fn alias_rows_realize_the_attempt_pmf_within_quantization() {
        for p in [0.0025, 0.05, 0.1299, 0.4] {
            let (lam, inv) = event_rate(p);
            let pmf = attempts_pmf(lam);
            let realized = realized_pmf(&alias_row(lam, inv));
            for m in 0..SLOTS {
                assert!(
                    (realized[m] - pmf[m]).abs() < 1e-6,
                    "p={p} m={m}: realized {} vs pmf {}",
                    realized[m],
                    pmf[m]
                );
            }
        }
    }

    #[test]
    fn quantized_rows_realize_the_lane_probability() {
        for p in [0.0, 1e-7, 0.0025, 0.05, 0.1299, 0.42, 0.58, 0.97, 0.999_999, 1.0] {
            let (lam, inv) = event_rate(p);
            let hit = realized_hit(&alias_row(lam, inv));
            let fail = if inv { 1.0 - hit } else { hit };
            assert!((fail - p).abs() < 1e-5, "p={p}: realized lane failure {fail}");
        }
        // the p = 0.5 fold bias peaks at ~5e-5 (see module docs)
        let (lam, inv) = event_rate(0.5);
        let hit = realized_hit(&alias_row(lam, inv));
        assert!(
            !inv && (hit - 0.5).abs() < 3e-4,
            "p=0.5: realized lane failure {hit}"
        );
    }

    #[test]
    fn fusion_realizes_the_product_failure_probability() {
        // runs of same-class events fuse into rows whose per-lane
        // survival product still equals the analytic PST exactly
        let profile = ladder_profile();
        let table = LaneTable::new(&profile);
        assert!(
            table.rows.len() < profile.active_events().len(),
            "ladder must fuse at least one run"
        );
        let survival: f64 = table.rows.iter().map(|row| 1.0 - realized_hit(row)).product();
        let analytic = profile.success_probability();
        assert!(
            (survival - analytic).abs() < 1e-4,
            "fused tables realize {survival}, analytic {analytic}"
        );
    }

    #[test]
    fn fusion_respects_the_rate_cap() {
        // each p = 0.33 event is λ ≈ 25.6, so fusing any two would
        // cross FUSE_CAP: all four must stand alone
        let device = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.33, 0.0, 0.0));
        let mut c: Circuit<PhysQubit> = Circuit::new(2);
        for _ in 0..4 {
            c.cnot(PhysQubit(0), PhysQubit(1));
        }
        let profile = FailureProfile::new(&device, &c, CoherenceModel::Disabled).expect("routed");
        let table = LaneTable::new(&profile);
        assert_eq!(table.rows.len(), 4, "λ-capped run must not fuse");
    }

    #[test]
    fn word_failures_is_deterministic_and_word_independent() {
        let table = LaneTable::new(&ladder_profile());
        let mut sc = Scratch::default();
        let a: Vec<u64> = (0..100)
            .map(|w| word_failures(&table, crate::engine::splitmix(w), &mut sc))
            .collect();
        let b: Vec<u64> = (0..100)
            .rev()
            .map(|w| word_failures(&table, crate::engine::splitmix(w), &mut sc))
            .collect();
        assert!(a.iter().eq(b.iter().rev()));
    }

    #[test]
    fn traced_mask_is_identical_and_attribution_is_complete() {
        let table = LaneTable::new(&ladder_profile());
        let mut total_aborted = 0u64;
        let mut total_failed = 0u64;
        let mut sc = Scratch::default();
        for w in 0..200u64 {
            let wb = splitmix(w.wrapping_mul(GOLDEN));
            let mut trace = BpTrace::default();
            let traced = word_failures_traced(&table, wb, !0u64, &mut trace, &mut sc);
            assert_eq!(traced, word_failures(&table, wb, &mut sc), "word {w} diverged");
            total_aborted += trace.aborts.iter().sum::<u64>();
            total_failed += u64::from(traced.count_ones());
        }
        // every failed lane is attributed to exactly one class
        assert_eq!(total_aborted, total_failed);
        assert!(total_failed > 0);
    }

    #[test]
    fn partial_word_attribution_respects_the_lane_mask() {
        let table = LaneTable::new(&ladder_profile());
        let lanes = (1u64 << 13) - 1;
        let mut narrow = BpTrace::default();
        let mut full = BpTrace::default();
        let mut sc = Scratch::default();
        for w in 0..200u64 {
            let wb = splitmix(w);
            let m_narrow = word_failures_traced(&table, wb, lanes, &mut narrow, &mut sc);
            let m_full = word_failures_traced(&table, wb, !0u64, &mut full, &mut sc);
            // the mask itself is lane-mask independent (same draws)
            assert_eq!(m_narrow, m_full);
        }
        let narrow_total: u64 = narrow.aborts.iter().sum();
        let full_total: u64 = full.aborts.iter().sum();
        assert!(narrow_total < full_total);
        assert_eq!(narrow.words, full.words);
    }

    #[test]
    fn single_event_word_matches_binomial_mean() {
        // one event at p = 0.1: mean failing lanes per word is 6.4
        let device = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.1, 0.0, 0.0));
        let mut c: Circuit<PhysQubit> = Circuit::new(2);
        c.cnot(PhysQubit(0), PhysQubit(1));
        let profile = FailureProfile::new(&device, &c, CoherenceModel::Disabled).expect("routed");
        let table = LaneTable::new(&profile);
        let words = 40_000u64;
        let mut sc = Scratch::default();
        let failing: u64 = (0..words)
            .map(|w| u64::from(word_failures(&table, splitmix(w), &mut sc).count_ones()))
            .sum();
        let mean = failing as f64 / words as f64;
        // SE of the mean of Binomial(64, 0.1) over 40k words ≈ 0.012
        assert!((mean - 6.4).abs() < 0.06, "mean failing lanes {mean}");
    }

    #[test]
    fn complement_form_words_match_the_survivor_mean() {
        // one event at p = 0.9 exercises the inverted placement: mean
        // surviving lanes per word is 6.4
        let device = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.9, 0.0, 0.0));
        let mut c: Circuit<PhysQubit> = Circuit::new(2);
        c.cnot(PhysQubit(0), PhysQubit(1));
        let profile = FailureProfile::new(&device, &c, CoherenceModel::Disabled).expect("routed");
        let table = LaneTable::new(&profile);
        assert!(table.any_inv);
        let words = 40_000u64;
        let mut sc = Scratch::default();
        let surviving: u64 = (0..words)
            .map(|w| u64::from((!word_failures(&table, splitmix(w), &mut sc)).count_ones()))
            .sum();
        let mean = surviving as f64 / words as f64;
        assert!((mean - 6.4).abs() < 0.06, "mean surviving lanes {mean}");
        // traced twin agrees on the inverted masks too
        let mut trace = BpTrace::default();
        for w in 0..200u64 {
            let wb = splitmix(w);
            assert_eq!(
                word_failures_traced(&table, wb, !0u64, &mut trace, &mut sc),
                word_failures(&table, wb, &mut sc)
            );
        }
    }

    #[test]
    fn extreme_probabilities_are_safe() {
        // p = 0 never attempts; p = 1 degenerates to m = 0 on the
        // complement form (all lanes fail, exactly); an all-lethal
        // profile kills every lane within a couple of events
        assert_eq!((alias_row(0.0, false)[0] >> FRAC_BITS) & 63, 0);
        assert_eq!(attempts_pmf(event_rate(1.0).0)[0], 1.0);
        let device = Device::new(Topology::linear(2), |t| Calibration::uniform(t, 0.999, 0.0, 0.0));
        let mut c: Circuit<PhysQubit> = Circuit::new(2);
        for _ in 0..4 {
            c.cnot(PhysQubit(0), PhysQubit(1));
        }
        let profile = FailureProfile::new(&device, &c, CoherenceModel::Disabled).expect("routed");
        let table = LaneTable::new(&profile);
        let mut sc = Scratch::default();
        let survivors: u32 = (0..100)
            .map(|w| (!word_failures(&table, splitmix(w), &mut sc)).count_ones())
            .sum();
        assert_eq!(survivors, 0, "hopeless device must fail every lane");
    }
}
