//! Golden-file tests for the machine-readable report surfaces.
//!
//! `lint --format json` and `audit --format json` are consumed by CI
//! jobs and external tooling, so their schema and byte-level rendering
//! are contractual: fixed key order, documented row sort orders, floats
//! via Rust's shortest-roundtrip formatting. These tests pin the exact
//! bytes against checked-in goldens.
//!
//! To regenerate after an intentional schema change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p quva-cli --test golden_reports
//! ```

use quva_cli::args::ParsedArgs;
use quva_cli::commands;

fn run(line: &[&str]) -> String {
    let parsed =
        ParsedArgs::parse(line, quva_cli::SWITCHES).unwrap_or_else(|e| panic!("argv parse failed: {e}"));
    commands::run(&parsed).unwrap_or_else(|e| panic!("command failed: {e}"))
}

fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; run with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn lint_json_matches_golden() {
    let out = run(&["lint", "--bench", "ghz:4", "--format", "json"]);
    check_golden("lint_ghz4.json", &out);
}

#[test]
fn audit_json_matches_golden() {
    let out = run(&[
        "audit",
        "--device",
        "q5",
        "--policy",
        "vqm",
        "--bench",
        "bv:4",
        "--format",
        "json",
        "--mc-trials",
        "20000",
    ]);
    check_golden("audit_q5_vqm_bv4.json", &out);
}

#[test]
fn cost_json_matches_golden() {
    let out = run(&[
        "cost", "--device", "q20", "--policy", "vqm", "--bench", "bv:8", "--format", "json",
    ]);
    check_golden("cost_q20_vqm_bv8.json", &out);
}

#[test]
fn cost_json_is_deterministic_and_schema_complete() {
    let line = [
        "cost",
        "--device",
        "q20",
        "--bench",
        "bv:16",
        "--trials",
        "20000",
        "--deadline-ms",
        "60000",
        "--ci-half-width",
        "0.01",
        "--format",
        "json",
    ];
    let a = run(&line);
    assert_eq!(a, run(&line), "cost JSON must be byte-deterministic");
    for key in [
        "\"events\"",
        "\"compile_ns\"",
        "\"mc_ns\"",
        "\"total_ns\"",
        "\"peak_bytes\"",
        "\"response_bytes\"",
        "\"predicted_ms\"",
        "\"feasible\": true",
        "\"trials_needed\": 10000",
    ] {
        assert!(a.contains(key), "cost JSON missing {key}:\n{a}");
    }
}

#[test]
fn audit_golden_is_thread_count_invariant() {
    let base = run(&[
        "audit",
        "--device",
        "q5",
        "--policy",
        "vqm",
        "--bench",
        "bv:4",
        "--format",
        "json",
        "--mc-trials",
        "20000",
    ]);
    let threaded = run(&[
        "audit",
        "--device",
        "q5",
        "--policy",
        "vqm",
        "--bench",
        "bv:4",
        "--format",
        "json",
        "--mc-trials",
        "20000",
        "--threads",
        "3",
    ]);
    assert_eq!(base, threaded, "--threads leaked into the audit JSON");
}

#[test]
fn diagnostics_sort_by_span_then_code() {
    // baseline routing of bv-8 on q20 emits a mix of spanned (QV105,
    // QV303-free) and span-less diagnostics; the JSON must order them
    // span-first (span-less last), then by code, deterministically.
    let out = run(&[
        "lint", "--bench", "bv:8", "--device", "q20", "--policy", "baseline", "--format", "json",
    ]);
    let codes: Vec<&str> = out
        .lines()
        .filter_map(|l| l.split("\"code\": \"").nth(1))
        .filter_map(|rest| rest.split('"').next())
        .collect();
    assert!(!codes.is_empty(), "expected diagnostics in:\n{out}");
    let rerun = run(&[
        "lint", "--bench", "bv:8", "--device", "q20", "--policy", "baseline", "--format", "json",
    ]);
    assert_eq!(out, rerun, "lint JSON must be deterministic");
}
