//! Observability contract of the CLI: `--trace` / `--metrics` /
//! `profile` / `trace-verify`.
//!
//! Every `--trace`/`--metrics` invocation owns the process-global
//! `quva-obs` recorder, so these tests live in their own
//! integration-test binary and serialize on a local mutex. The trace
//! schema golden pins the *shape* of the Chrome JSON (phases, keys,
//! event names) — timestamps and durations are excluded by
//! construction, so the golden is stable across machines.
//!
//! To regenerate after an intentional schema change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p quva-cli --test obs
//! ```

use std::sync::{Mutex, MutexGuard};

use quva_cli::args::ParsedArgs;
use quva_cli::commands;

fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn run(line: &[&str]) -> String {
    let parsed =
        ParsedArgs::parse(line, quva_cli::SWITCHES).unwrap_or_else(|e| panic!("argv parse failed: {e}"));
    commands::run(&parsed).unwrap_or_else(|e| panic!("command failed: {e}"))
}

fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; run with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

fn temp_path(name: &str) -> String {
    let dir = std::env::temp_dir().join("quva-cli-obs-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

/// The metrics block appended by `--metrics` (everything from the
/// `metrics:` line on). Counters and histograms carry no timestamps,
/// so this block is fully deterministic.
fn metrics_block(out: &str) -> &str {
    let at = out
        .find("metrics:")
        .unwrap_or_else(|| panic!("no metrics block in:\n{out}"));
    &out[at..]
}

#[test]
fn simulate_metrics_are_byte_identical_across_runs_and_threads() {
    let _g = guard();
    let run_with = |threads: &str| {
        run(&[
            "simulate",
            "--device",
            "q5",
            "--policy",
            "vqm",
            "--bench",
            "bv:4",
            "--trials",
            "20000",
            "--threads",
            threads,
            "--metrics",
        ])
    };
    let single = run_with("1");
    assert_eq!(
        single,
        run_with("1"),
        "same configuration must print identical bytes"
    );
    // the full output embeds sim.workers (configuration, not
    // measurement); everything else in the metrics block must be
    // schedule-independent
    let par = run_with("8");
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("sim.workers"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(metrics_block(&single)),
        strip(metrics_block(&par)),
        "--threads leaked into the metrics block"
    );
    assert!(single.contains("counter sim.trials = 20000"), "{single}");
}

#[test]
fn compile_stdout_is_unchanged_by_trace() {
    let _g = guard();
    let line = [
        "compile", "--device", "q20", "--policy", "vqm", "--bench", "bv:8", "--verify",
    ];
    let plain = run(&line);
    let path = temp_path("compile_unchanged.json");
    let mut traced_line: Vec<&str> = line.to_vec();
    traced_line.extend(["--trace", &path]);
    let traced = run(&traced_line);
    assert_eq!(plain, traced, "--trace must not alter the QASM on stdout");
    std::fs::remove_file(&path).ok();
}

#[test]
fn compile_trace_schema_matches_golden() {
    let _g = guard();
    let path = temp_path("compile_schema.json");
    // warm the process-global cost-envelope memo first: other tests in
    // this binary compile the same q20/vqm/bv:8 key, so without the
    // warm-up the traced run would record hit vs miss+insert counters
    // depending on test order
    run(&[
        "compile", "--device", "q20", "--policy", "vqm", "--bench", "bv:8", "--verify",
    ]);
    run(&[
        "compile", "--device", "q20", "--policy", "vqm", "--bench", "bv:8", "--verify", "--trace", &path,
    ]);
    let text = std::fs::read_to_string(&path).unwrap();
    // structural validity first: spans nest, durations non-negative
    let stats = quva_obs::validate_chrome_trace(&text).unwrap_or_else(|e| panic!("invalid trace: {e}"));
    assert!(
        stats.spans >= 4,
        "expected allocation/routing/verification spans, got {stats:?}"
    );
    assert!(
        stats.max_depth >= 2,
        "compile.total must contain its passes: {stats:?}"
    );
    // then the timestamp-free schema, pinned against a golden
    let schema = quva_obs::schema_summary(&text).unwrap();
    check_golden("compile_q20_vqm_bv8.trace-schema.txt", &schema);
    std::fs::remove_file(&path).ok();
}

#[test]
fn compile_verify_runs_exactly_once_per_compile() {
    let _g = guard();
    // `--verify` is threaded through the pipeline's verify pass — not
    // run again by CompileOptions — so one compile must mean exactly
    // one verification, pinned by the pass's own counter
    let out = run(&[
        "compile",
        "--device",
        "q5",
        "--policy",
        "vqm",
        "--bench",
        "bv:4",
        "--verify",
        "--metrics",
    ]);
    assert!(
        out.contains("counter compile.verify.runs = 1"),
        "verification must execute exactly once:\n{}",
        metrics_block(&out)
    );
    // and without --verify, not at all
    let out = run(&[
        "compile",
        "--device",
        "q5",
        "--policy",
        "vqm",
        "--bench",
        "bv:4",
        "--metrics",
    ]);
    assert!(
        !out.contains("compile.verify.runs"),
        "verification ran without --verify:\n{}",
        metrics_block(&out)
    );
}

#[test]
fn portfolio_compare_records_per_candidate_excess_weight() {
    let _g = guard();
    // the portfolio router probes route.excess_weight for every
    // reliability-routed candidate extension, and the whole run is
    // deterministic — so the histogram count (baseline route + every
    // surviving portfolio candidate) is pinnable exactly
    let out = run(&[
        "pipeline",
        "--compare",
        "--device",
        "q20",
        "--policy",
        "vqm",
        "--bench",
        "bv:16",
        "--metrics",
    ]);
    assert!(out.contains("portfolio >= baseline"), "{out}");
    assert!(
        out.contains("histogram route.excess_weight: count 111"),
        "per-candidate excess-weight count drifted:\n{}",
        metrics_block(&out)
    );
    assert!(out.contains("counter portfolio.kept = 45"), "{out}");
    assert!(out.contains("counter portfolio.pruned = 123"), "{out}");
}

#[test]
fn profile_reports_stage_timings_and_cache_counters() {
    let _g = guard();
    let out = run(&[
        "profile",
        "--device",
        "q5",
        "--bench",
        "ghz:3",
        "--trials",
        "2000",
        "--threads",
        "1",
    ]);
    // the matrix: one bench × the four default policies
    assert!(out.contains("4 case(s)"), "{out}");
    // per-stage span table
    for span in ["compile.total", "compile.route", "sim.run", "profile.case"] {
        assert!(out.contains(span), "profile output missing span {span}:\n{out}");
    }
    // memo-cache statistics: each case probes the PST memo twice
    assert!(out.contains("counter cache.pst.hit = 4"), "{out}");
    assert!(out.contains("counter cache.pst.miss = 4"), "{out}");
    assert!(out.contains("counter cache.esp.miss = 4"), "{out}");
    assert!(out.contains("counter profile.cases = 4"), "{out}");
}

#[test]
fn trace_verify_accepts_real_traces_and_rejects_corrupt_ones() {
    let _g = guard();
    let path = temp_path("verify_roundtrip.json");
    // bv:3 (not ghz:3): the PST memo is process-global, and the
    // profile matrix test asserts exact cold-cache counts for its keys
    run(&[
        "profile",
        "--device",
        "q5",
        "--bench",
        "bv:3",
        "--policy",
        "vqm",
        "--trials",
        "2000",
        "--threads",
        "1",
        "--trace",
        &path,
    ]);
    let ok = run(&["trace-verify", &path]);
    assert!(ok.contains("valid Chrome trace"), "{ok}");
    assert!(ok.contains("spans"), "{ok}");

    // corrupt it: not a trace document at all
    std::fs::write(&path, "{\"nope\": []}").unwrap();
    let parsed = ParsedArgs::parse(&["trace-verify", &path], quva_cli::SWITCHES).unwrap();
    let err = commands::run(&parsed).unwrap_err();
    assert!(err.to_string().contains("traceEvents"), "{err}");
    std::fs::remove_file(&path).ok();
}
