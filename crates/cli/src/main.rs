//! The `quva` binary: parse, dispatch, print.

use std::process::ExitCode;

use quva_cli::args::ParsedArgs;
use quva_cli::commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match ParsedArgs::parse(&argv, quva_cli::SWITCHES) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::usage());
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
