//! Implementations of the `quva` subcommands. Each returns its output
//! as a `String` so the logic is testable without capturing stdout.

use std::fmt::Write as _;

use quva::{partition_analysis, CompileOptions, MappingPolicy, PartitionChoice};
use quva_analysis::Verifier;
use quva_circuit::{qasm, Circuit};
use quva_device::{node_strengths, snapshot, Device, SanitizePolicy};
use quva_sim::{monte_carlo_pst_with, run_noisy_trials, CoherenceModel, McEngine, McKernel};
use quva_stats::{fmt3, Table};

use crate::args::{ArgsError, ParsedArgs};
use crate::spec::{parse_benchmark, parse_device, parse_policy};

/// Top-level dispatch: runs one subcommand and returns its report text.
///
/// With `--trace <file>` or `--metrics` (or for `profile`, which
/// implies both-style instrumentation) the process-global `quva-obs`
/// recorder is enabled around the command: the Chrome `trace_event`
/// JSON is written to the `--trace` path (even when the command fails,
/// so aborted compiles can be profiled) and `--metrics` appends the
/// deterministic counter/histogram summary to the report. Without
/// either flag the recorder stays off and the output is byte-identical
/// to an uninstrumented build.
///
/// # Errors
///
/// Returns a message for unknown commands, malformed specs, I/O
/// problems, or compilation failures.
pub fn run(args: &ParsedArgs) -> Result<String, ArgsError> {
    let profiling = args.command() == "profile";
    // `trace-verify` reads a --trace file; never re-enter the recorder
    // for it (the wrapper would overwrite its input).
    let observed = (args.get("trace").is_some() || args.has_switch("metrics") || profiling)
        && args.command() != "trace-verify";
    if !observed {
        return dispatch(args);
    }
    quva_obs::reset();
    quva_obs::enable();
    let result = dispatch(args);
    let report = quva_obs::drain();
    quva_obs::disable();
    if let Some(path) = args.get("trace") {
        std::fs::write(path, report.to_chrome_json())
            .map_err(|e| ArgsError::new(format!("cannot write {path}: {e}")))?;
    }
    let mut out = result?;
    if profiling {
        out.push_str(&report.render_text());
    } else if args.has_switch("metrics") {
        out.push_str(&report.render_metrics_text());
    }
    Ok(out)
}

fn dispatch(args: &ParsedArgs) -> Result<String, ArgsError> {
    match args.command() {
        "compile" => cmd_compile(args),
        "pipeline" => cmd_pipeline(args),
        "lint" => cmd_lint(args),
        "audit" => cmd_audit(args),
        "cost" => cmd_cost(args),
        "pst" => cmd_pst(args),
        "simulate" => cmd_simulate(args),
        "trials" => cmd_trials(args),
        "characterize" => cmd_characterize(args),
        "partition" => cmd_partition(args),
        "profile" => cmd_profile(args),
        "serve" => cmd_serve(args),
        "top" => cmd_top(args),
        "trace-verify" => cmd_trace_verify(args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(ArgsError::new(format!(
            "unknown command '{other}'\n\n{}",
            usage()
        ))),
    }
}

/// The CLI usage text.
pub fn usage() -> String {
    "\
quva — variation-aware qubit mapping for NISQ machines

USAGE:
    quva <COMMAND> [OPTIONS]

FLAGS:
    --stats       (compile) prefix the QASM with compilation statistics
    --optimize    (compile) run the peephole optimizer before mapping
    --verify      (compile) statically verify the routed output against
                  the source program; any QV error aborts the compile
    --strict      reject a --calibration snapshot with any invalid field
    --lenient     clamp invalid snapshot fields to pessimistic values,
                  reporting each repair on stderr (the default)
    --deny-warnings  (lint, audit) treat warnings as failures: exit
                  nonzero when any warning-severity finding is reported
    --metrics     append the deterministic observability summary
                  (counters, histograms, warnings) to the report

COMMANDS:
    compile       compile a program and emit routed OpenQASM
    pipeline      statically check a pass pipeline's contracts before it
                  runs (--check, the default): missing preconditions,
                  clobbered invariants, unreachable passes, and missing
                  output are QV5xx errors; or --compare portfolio
                  routing against the single-candidate baseline by
                  static ESP (no Monte Carlo)
    lint          run the static lint passes over a program (no compile);
                  with --policy, also compile and run the compiled-output
                  passes (legality + reliability lints)
    audit         compile a program and emit the static reliability
                  report: ESP bounds, per-link/per-qubit attribution,
                  and every verification finding
    cost          static WCET-style cost envelope: [lo, hi] bounds on
                  compile time, Monte-Carlo time, peak memory, and
                  response size, computed before compiling anything —
                  the same envelope quvad's admission control uses
    pst           estimate the probability of a successful trial
    simulate      Monte-Carlo PST as machine-readable JSON
    trials        run noisy state-vector trials and report outcomes
    characterize  print a device's calibration summary
    partition     decide between one strong copy and two copies (§8)
    profile       compile + simulate a suite × policy matrix and report
                  per-stage timings, counters, and cache statistics
    serve         run the quvad compilation daemon: line-delimited JSON
                  jobs (compile / simulate / audit) over TCP or a unix
                  socket, with a bounded queue, deadlines, a result
                  cache, and graceful drain (see DESIGN.md §12)
    top           live quvad telemetry: poll the daemon's `metrics`
                  verb and render queue depth, per-verb latency
                  quantiles, counters, and anomaly-dump totals
                  (see DESIGN.md §17)
    trace-verify  structurally validate a --trace output file (JSON
                  parses, spans nest, no negative durations)
    help          show this message

EXIT CODE: 0 on success (warnings allowed unless --deny-warnings);
    nonzero when any error-severity finding is reported, when
    --deny-warnings is set and a warning fires, when an audit
    Monte-Carlo cross-check (--mc-trials) falls outside the static ESP
    bound, or on usage/compile errors.

COMMON OPTIONS:
    --device  q20 | q5 | linear:N | ring:N | grid:RxC | full:N (append @SEED)
    --policy  baseline | vqm | vqm-mah:K | vqa-vqm | native:SEED
    --bench   bv:N | qft:N | ghz:N | alu | triswap | rnd-sd:N:C | rnd-ld:N:C
    --qasm    path to an OpenQASM 2.0 file (alternative to --bench)
    --format  (lint, audit, cost, pipeline) text | json
    --explain (lint) QVxxx or slug: print the code's description,
              severity, and rationale, then exit

PIPELINE OPTIONS:
    --check             contract-check mode (the default): validate the
                        pipeline statically; exit nonzero on any QV5xx
    --passes a,b,c      explicit pass list instead of the --policy
                        pipeline (optimize, allocate, route, select,
                        portfolio, verify)
    --verify            append the verification pass to the --policy
                        pipeline
    --width N           portfolio candidates kept per layer (default 4)
    --compare           compile --bench through the single-candidate
                        pipeline and the ESP-pruned portfolio router,
                        report both static ESP points, and exit nonzero
                        if the portfolio is worse

COST OPTIONS:
    --trials N          Monte-Carlo budget the envelope is computed for
                        (default 0: compile-only)
    --deadline-ms N     report feasibility against this deadline; exit
                        nonzero when it is statically infeasible
    --ci-half-width W   report the trial budget a 95% confidence
                        half-width of W requires
    --calibrate FILE    re-derive ns-per-event from a measured
                        BENCH_sim.json baseline instead of the defaults
    --policy SPEC       also compile and report the realized fault-event
                        count against the predicted interval
    --drift   (audit) relative calibration-drift uncertainty widening
              every error rate into an interval (default 0.1)
    --mc-trials (audit) also run a Monte-Carlo PST estimate with this
              many trials and fail unless it falls inside the bound
    --threads (pst, simulate) Monte-Carlo worker threads; defaults to
              the available parallelism. The estimate is bit-identical
              for every thread count — 1 gives the exact same numbers
              on a single thread
    --engine  (pst, simulate, audit) Monte-Carlo trial kernel:
              bitparallel (64 trials per lane-word, the default) or
              scalar (the per-trial loop kept as the cross-validation
              oracle). The kernels are distinct deterministic samples
              of the same model
    --seed    (pst, simulate) Monte-Carlo root seed (default 7)
    --calibration  JSON calibration snapshot overriding the device's
                   (export one with: characterize --export cal.json)
    --trace   write a Chrome trace_event JSON file of the run — open it
              in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
              Never alters the command's stdout
    --bench / --policy  (profile) restrict the matrix to one benchmark
              or one policy; defaults: the table-1 suite × baseline,
              vqm, vqm-mah:4, vqa-vqm

SERVE OPTIONS:
    --listen ADDR       TCP address (default 127.0.0.1:7411; port 0
                        picks an ephemeral port)
    --socket PATH       serve on a unix-domain socket instead of TCP
    --workers N         job worker threads (default 2)
    --queue N           bounded queue capacity (default 64); a full
                        queue answers overloaded + retry_after_ms
    --deadline-ms N     default per-job deadline (default 10000)
    --retry-after-ms N  backpressure hint on overloaded responses
    --idle-timeout-ms N close idle / stalled connections (default 10000)
    --max-connections N concurrent connection cap (default 64)
    --chaos             honor 'panic' fault-injection frames (testing)
    --flight-capacity N flight-recorder ring capacity in events
                        (default 4096); the ring is always armed
    --dump-dir DIR      write anomaly-triggered flight dumps here
                        (off unless given)
    --dump-file-cap-bytes N   per-dump-file byte cap (default 256 KiB)
    --dump-cap-bytes N  dump-directory total byte cap (default 4 MiB);
                        oldest dumps rotate out
    --journal FILE      append a per-job JSONL audit journal here
                        (off unless given)
    --journal-cap-bytes N     journal size-rotation threshold
                        (default 4 MiB; rotates to FILE.1)

TOP OPTIONS:
    --addr ADDR         daemon address (default 127.0.0.1:7411)
    --interval-ms N     refresh period (default 1000)
    --count N           number of refreshes, 0 = until interrupted
                        (default 0)
    --raw               print the raw exposition text instead of the
                        rendered dashboard (no screen clearing)

EXAMPLES:
    quva compile --device q20 --policy vqa-vqm --bench bv:16 --stats --verify
    quva pipeline --check --policy vqa-vqm --verify
    quva pipeline --check --passes allocate,route --format json
    quva pipeline --compare --device q20 --policy vqm --bench bv:16 --width 4
    quva lint --explain QV501
    quva lint --bench qft:12
    quva lint --qasm program.qasm --device q20 --format json
    quva lint --explain QV304
    quva lint --bench bv:16 --device q20 --policy baseline --deny-warnings
    quva audit --device q20 --policy vqa-vqm --bench bv:16 --format json
    quva audit --device q20 --policy baseline --bench qft:12 --mc-trials 100000
    quva cost --device q20 --bench bv:16 --trials 20000 --deadline-ms 2000
    quva cost --device q20 --policy vqm --bench bv:8 --format json
    quva cost --bench qft:12 --trials 100000 --ci-half-width 0.01 --calibrate BENCH_sim.json
    quva pst --device q20 --policy baseline --bench qft:12 --trials 100000
    quva simulate --device q20 --policy vqa-vqm --bench bv:16 --threads 8
    quva simulate --device q5 --policy baseline --bench ghz:3 --engine scalar
    quva trials --device q5 --policy vqa-vqm --bench ghz:3 --trials 4096
    quva characterize --device q20
    quva partition --device q20 --policy vqa-vqm --bench bv:10
    quva compile --device q20 --policy vqm --bench bv:16 --trace out.json
    quva simulate --device q20 --bench bv:16 --metrics
    quva profile --device q20 --trace profile.json
    quva trace-verify profile.json
    quva serve --listen 127.0.0.1:7411 --workers 2 --trace served.json
    quva serve --socket /tmp/quvad.sock --queue 128 --deadline-ms 5000
    quva serve --listen 127.0.0.1:7411 --dump-dir /var/tmp/quvad-dumps --journal /var/tmp/quvad.jsonl
    quva top --addr 127.0.0.1:7411 --interval-ms 500
    quva top --addr 127.0.0.1:7411 --count 1 --raw
"
    .to_string()
}

/// Loads the input program from `--bench` or `--qasm`.
fn load_program(args: &ParsedArgs) -> Result<(String, Circuit), ArgsError> {
    match (args.get("bench"), args.get("qasm")) {
        (Some(spec), None) => {
            let b = parse_benchmark(spec)?;
            Ok((b.name().to_string(), b.circuit().clone()))
        }
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgsError::new(format!("cannot read {path}: {e}")))?;
            let circuit = qasm::from_qasm(&text).map_err(|e| ArgsError::new(e.to_string()))?;
            Ok((path.to_string(), circuit))
        }
        (Some(_), Some(_)) => Err(ArgsError::new("give either --bench or --qasm, not both")),
        (None, None) => Err(ArgsError::new(
            "missing program: give --bench <spec> or --qasm <file>",
        )),
    }
}

fn load_setup(args: &ParsedArgs) -> Result<(Device, MappingPolicy, String, Circuit), ArgsError> {
    let device = load_device(args, "q20")?;
    let policy = parse_policy(args.get_or("policy", "vqa-vqm"))?;
    let (name, program) = load_program(args)?;
    Ok((device, policy, name, program))
}

/// The calibration-sanitization policy selected by `--strict` /
/// `--lenient` (default: lenient, i.e. clamp bad fields and warn).
fn sanitize_policy(args: &ParsedArgs) -> Result<SanitizePolicy, ArgsError> {
    match (args.has_switch("strict"), args.has_switch("lenient")) {
        (true, true) => Err(ArgsError::new("give either --strict or --lenient, not both")),
        (true, false) => Ok(SanitizePolicy::Reject),
        _ => Ok(SanitizePolicy::Clamp),
    }
}

/// Builds the device from `--device`, optionally replacing its
/// calibration with a JSON snapshot from `--calibration` (as exported by
/// `characterize --export`).
///
/// Snapshot fields are validated before use: under `--strict` any issue
/// rejects the snapshot; otherwise bad fields are clamped to pessimistic
/// values and each repair is reported on stderr.
fn load_device(args: &ParsedArgs, default_spec: &str) -> Result<Device, ArgsError> {
    let device = parse_device(args.get_or("device", default_spec))?;
    let policy = sanitize_policy(args)?;
    let Some(path) = args.get("calibration") else {
        return Ok(device);
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgsError::new(format!("cannot read {path}: {e}")))?;
    let raw = snapshot::parse_raw(&text)
        .map_err(|e| ArgsError::new(format!("{path} is not a calibration snapshot: {e}")))?;
    let (calibration, report) = raw
        .sanitize(device.topology(), policy, None)
        .map_err(|e| ArgsError::new(format!("{path} does not fit the device: {e}")))?;
    for line in report.diagnostics() {
        // stderr stays byte-identical with the recorder on or off; the
        // structured copy only surfaces under --trace / --metrics
        eprintln!("{path}: {line}");
        quva_obs::warn("calibration", &format!("{path}: {line}"));
    }
    device
        .with_calibration(calibration)
        .map_err(|e| ArgsError::new(format!("{path} does not fit the device: {e}")))
}

fn cmd_compile(args: &ParsedArgs) -> Result<String, ArgsError> {
    let (device, policy, name, mut program) = load_setup(args)?;
    let mut removed = 0;
    if args.has_switch("optimize") {
        let (optimized, stats) = quva_circuit::optimize(&program);
        removed = stats.total_removed();
        program = optimized;
    }
    let verifier = Verifier::new();
    let options = CompileOptions {
        verify: args
            .has_switch("verify")
            .then_some(&verifier as &dyn quva::CompileAudit),
    };
    let compiled = policy
        .compile_with(&program, &device, &options)
        .map_err(|e| ArgsError::new(e.to_string()))?;
    let mut out = String::new();
    if args.has_switch("optimize") && args.has_switch("stats") {
        let _ = writeln!(out, "// optimizer removed : {removed} gates");
    }
    if args.has_switch("stats") {
        let report = compiled
            .analytic_pst(&device, CoherenceModel::Disabled)
            .map_err(|e| ArgsError::new(e.to_string()))?;
        let _ = writeln!(out, "// program          : {name}");
        let _ = writeln!(out, "// device           : {device}");
        let _ = writeln!(out, "// policy           : {}", policy.name());
        let _ = writeln!(out, "// inserted swaps   : {}", compiled.inserted_swaps());
        let _ = writeln!(
            out,
            "// physical 2Q gates: {}",
            compiled.physical().two_qubit_gate_count()
        );
        let _ = writeln!(out, "// analytic PST     : {:.6}", report.pst);
        let _ = writeln!(out, "// initial mapping  : {}", compiled.initial_mapping());
        let _ = writeln!(out, "// final mapping    : {}", compiled.final_mapping());
    }
    out.push_str(&qasm::to_qasm(compiled.physical()));
    if let Some(path) = args.get("out") {
        std::fs::write(path, &out).map_err(|e| ArgsError::new(format!("cannot write {path}: {e}")))?;
        return Ok(format!("wrote routed program to {path}\n"));
    }
    Ok(out)
}

/// Builds a pipeline from a `--passes` comma list. Pass names:
/// `optimize`, `allocate`, `route`, `select`, `portfolio`, `verify`;
/// strategies and metrics come from `--policy`, the portfolio width
/// from `--width`, and `verify` audits with the standard [`Verifier`].
fn pipeline_from_names<'v>(
    names: &str,
    policy: &MappingPolicy,
    width: usize,
    verifier: &'v Verifier,
) -> Result<quva::Pipeline<'v>, ArgsError> {
    use quva::pipeline::{
        AllocatePass, OptimizePass, PortfolioRoutePass, RoutePass, SelectAlternativePass, VerifyPass,
    };
    let mut pipeline = quva::Pipeline::new();
    for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        pipeline = match name {
            "optimize" => pipeline.with_pass(OptimizePass),
            "allocate" => pipeline.with_pass(AllocatePass {
                strategy: policy.allocation,
            }),
            "route" => pipeline.with_pass(RoutePass {
                metric: policy.routing,
            }),
            "select" => pipeline.with_pass(SelectAlternativePass {
                alternative: MappingPolicy {
                    allocation: quva::AllocationStrategy::GreedyInteraction,
                    routing: policy.routing,
                },
            }),
            "portfolio" => pipeline.with_pass(PortfolioRoutePass {
                metric: policy.routing,
                width,
            }),
            "verify" => pipeline.with_pass(VerifyPass::new(verifier)),
            other => {
                return Err(ArgsError::new(format!(
                    "unknown pass '{other}' (passes: optimize, allocate, route, select, portfolio, verify)"
                )))
            }
        };
    }
    Ok(pipeline)
}

/// `quva pipeline`: statically checks a pass pipeline's contracts
/// (the default, `--check`) or compares portfolio routing against the
/// single-candidate baseline by static ESP (`--compare`).
///
/// The check never compiles anything: the pipeline is built — from
/// `--policy` (the standard policy pipeline, `--verify` appending the
/// verification pass) or from an explicit `--passes a,b,c` list — and
/// its contracts are walked exactly as `Pipeline::validate` would
/// before a compile. Violations render as stable `QV5xx` diagnostics
/// (see `quva lint --explain QV501`) in deterministic text or JSON,
/// and any violation makes the command exit nonzero, so CI can gate on
/// pipeline configurations the same way it gates on lints.
fn cmd_pipeline(args: &ParsedArgs) -> Result<String, ArgsError> {
    if args.has_switch("compare") {
        return cmd_pipeline_compare(args);
    }
    let policy = parse_policy(args.get_or("policy", "vqa-vqm"))?;
    let width: usize = args.get_parsed("width")?.unwrap_or(4);
    if width == 0 {
        return Err(ArgsError::new("--width must be at least 1"));
    }
    let verifier = Verifier::new();
    let pipeline = match args.get("passes") {
        Some(names) => pipeline_from_names(names, &policy, width, &verifier)?,
        None => quva::Pipeline::for_policy_with(
            &policy,
            args.has_switch("verify")
                .then_some(&verifier as &dyn quva::CompileAudit),
        ),
    };
    let report = quva_analysis::check_pipeline(&pipeline);
    let rendered = match args.get_or("format", "text") {
        "text" => {
            let mut out = String::new();
            let _ = writeln!(out, "pipeline check for policy {}", policy.name());
            let names = pipeline.pass_names();
            let _ = writeln!(
                out,
                "passes: {}",
                if names.is_empty() {
                    "(none)".to_string()
                } else {
                    names.join(" -> ")
                }
            );
            let inv_list =
                |list: &[quva::Invariant]| list.iter().map(|i| i.name()).collect::<Vec<_>>().join(", ");
            for (name, contract) in pipeline.contracts() {
                let _ = writeln!(
                    out,
                    "  {name}: requires [{}] guarantees [{}] clobbers [{}]",
                    inv_list(contract.requires),
                    inv_list(contract.guarantees),
                    inv_list(contract.clobbers)
                );
            }
            out.push_str(&report.render_text());
            out
        }
        "json" => report.render_json(),
        other => {
            return Err(ArgsError::new(format!(
                "unknown --format '{other}' (use text or json)"
            )))
        }
    };
    if report.is_clean() {
        Ok(rendered)
    } else {
        Err(ArgsError::new(rendered))
    }
}

/// `quva pipeline --compare`: compiles a benchmark twice — through the
/// policy's single-candidate pipeline and through the ESP-pruned
/// portfolio router at `--width` — and reports both static ESP points.
/// No Monte Carlo runs: the comparison is the same gate-order
/// `static_esp_point` fold the portfolio prunes by, so CI can assert
/// "portfolio never worse than baseline" cheaply and deterministically.
/// Exits nonzero if the portfolio falls below the baseline.
fn cmd_pipeline_compare(args: &ParsedArgs) -> Result<String, ArgsError> {
    use quva::pipeline::static_esp_point;
    let (device, policy, name, program) = load_setup(args)?;
    let width: usize = args.get_parsed("width")?.unwrap_or(4);
    if width == 0 {
        return Err(ArgsError::new("--width must be at least 1"));
    }
    let baseline = quva::Pipeline::for_policy(&policy)
        .compile(&program, &device)
        .map_err(|e| ArgsError::new(e.to_string()))?;
    let portfolio = quva::Pipeline::for_policy_portfolio(&policy, width)
        .compile(&program, &device)
        .map_err(|e| ArgsError::new(e.to_string()))?;
    let baseline_esp = static_esp_point(&device, baseline.physical());
    let portfolio_esp = static_esp_point(&device, portfolio.physical());
    let not_worse = portfolio_esp >= baseline_esp;
    let rendered = match args.get_or("format", "text") {
        "text" => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "portfolio comparison for {name} ({} on {device})",
                policy.name()
            );
            let _ = writeln!(out, "portfolio width    : {width}");
            let _ = writeln!(out, "baseline  esp point: {baseline_esp:.9}");
            let _ = writeln!(out, "portfolio esp point: {portfolio_esp:.9}");
            let _ = writeln!(out, "baseline  swaps    : {}", baseline.inserted_swaps());
            let _ = writeln!(out, "portfolio swaps    : {}", portfolio.inserted_swaps());
            let _ = writeln!(
                out,
                "result             : {}",
                if not_worse {
                    "portfolio >= baseline"
                } else {
                    "portfolio < baseline (REGRESSION)"
                }
            );
            out
        }
        "json" => {
            let mut out = String::new();
            out.push_str("{\n");
            let _ = writeln!(out, "  \"program\": \"{name}\",");
            let _ = writeln!(out, "  \"device\": \"{}\",", args.get_or("device", "q20"));
            let _ = writeln!(out, "  \"policy\": \"{}\",", policy.name());
            let _ = writeln!(out, "  \"width\": {width},");
            let _ = writeln!(out, "  \"baseline_esp_point\": {baseline_esp},");
            let _ = writeln!(out, "  \"portfolio_esp_point\": {portfolio_esp},");
            let _ = writeln!(out, "  \"baseline_swaps\": {},", baseline.inserted_swaps());
            let _ = writeln!(out, "  \"portfolio_swaps\": {},", portfolio.inserted_swaps());
            let _ = writeln!(out, "  \"portfolio_not_worse\": {not_worse}");
            out.push_str("}\n");
            out
        }
        other => {
            return Err(ArgsError::new(format!(
                "unknown --format '{other}' (use text or json)"
            )))
        }
    };
    if not_worse {
        Ok(rendered)
    } else {
        Err(ArgsError::new(rendered))
    }
}

/// `quva lint --explain QVxxx`: the code's description, severity, and
/// rationale.
fn explain_code(spec: &str) -> Result<String, ArgsError> {
    let code = quva_analysis::LintCode::from_code(spec).ok_or_else(|| {
        ArgsError::new(format!(
            "unknown lint code '{spec}' (codes are QV001..QV504; try e.g. QV304 or missed-vqm-route)"
        ))
    })?;
    Ok(format!(
        "{} ({})\nseverity : {}\n{}\n\nrationale: {}\n",
        code.code(),
        code.name(),
        code.severity(),
        code.description(),
        code.rationale()
    ))
}

/// `quva lint`: runs the static circuit passes over a program without
/// compiling it. With `--device` the device-dependent checks (register
/// width, calibration sanity) run too; with `--policy` (requires a
/// device) the program is additionally compiled and the compiled-output
/// passes — legality, consistency, and the reliability lints — run over
/// the result.
///
/// Exit-code contract: any error-severity finding makes the command
/// fail, so CI can gate on the exit code; warnings are reported but do
/// not fail the lint unless `--deny-warnings` is set.
fn cmd_lint(args: &ParsedArgs) -> Result<String, ArgsError> {
    if let Some(spec) = args.get("explain") {
        return explain_code(spec);
    }
    let (name, program) = load_program(args)?;
    let device = match args.get("device") {
        Some(_) => Some(load_device(args, "q20")?),
        None => None,
    };
    let mut report = quva_analysis::lint_circuit(&program, device.as_ref());
    if let Some(policy_spec) = args.get("policy") {
        let Some(device) = device.as_ref() else {
            return Err(ArgsError::new("--policy needs a --device to compile for"));
        };
        let policy = parse_policy(policy_spec)?;
        let compiled = policy
            .compile(&program, device)
            .map_err(|e| ArgsError::new(e.to_string()))?;
        report = report.merge(quva_analysis::verify_compiled(&program, device, &compiled));
    }
    let rendered = match args.get_or("format", "text") {
        "text" => format!("lint report for {name}\n{}", report.render_text()),
        "json" => report.render_json(),
        other => {
            return Err(ArgsError::new(format!(
                "unknown --format '{other}' (use text or json)"
            )))
        }
    };
    let denied = args.has_switch("deny-warnings") && report.warning_count() > 0;
    if report.is_clean() && !denied {
        Ok(rendered)
    } else {
        Err(ArgsError::new(rendered))
    }
}

/// `quva audit`: compiles a program and emits the static reliability
/// report — whole-circuit ESP interval, per-link/per-qubit error
/// attribution, decoherence exposure, and every verification finding.
///
/// With `--mc-trials N` a Monte-Carlo PST estimate (deterministic for a
/// fixed `--seed`, default 7) is embedded in the report and the command
/// fails if the estimate falls outside the static `[lo, hi]` bound —
/// the CI cross-check between the dataflow engine and the simulator.
fn cmd_audit(args: &ParsedArgs) -> Result<String, ArgsError> {
    let (device, policy, name, program) = load_setup(args)?;
    let drift: f64 = args.get_parsed("drift")?.unwrap_or(0.1);
    if !(0.0..1.0).contains(&drift) {
        return Err(ArgsError::new("--drift must be in [0, 1)"));
    }
    let compiled = policy
        .compile(&program, &device)
        .map_err(|e| ArgsError::new(e.to_string()))?;
    let report = quva_analysis::audit_with(&program, &device, &compiled, &quva_analysis::EspConfig { drift });

    let mc = match args.get_parsed::<u64>("mc-trials")? {
        Some(0) => return Err(ArgsError::new("--mc-trials must be at least 1")),
        Some(trials) => {
            let seed: u64 = args.get_parsed("seed")?.unwrap_or(7);
            let engine = parse_engine(args)?;
            let estimate = monte_carlo_pst_with(
                &device,
                compiled.physical(),
                trials,
                seed,
                CoherenceModel::Disabled,
                engine,
            )
            .map_err(|e| ArgsError::new(e.to_string()))?;
            Some((trials, seed, estimate.pst))
        }
        None => None,
    };
    // containment up to 4 binomial standard errors of sampling noise:
    // circuits with ESP well below 1/trials would otherwise fail on a
    // statistically-empty sample
    let mc_ok = mc.is_none_or(|(trials, _, pst)| {
        let p = report.esp.hi.max(pst);
        let tol = 4.0 * (p * (1.0 - p) / trials as f64).sqrt();
        report.esp.lo - tol <= pst && pst <= report.esp.hi + tol
    });

    let rendered = match args.get_or("format", "text") {
        "json" => {
            let mut extras: Vec<(&str, String)> = vec![
                ("program", format!("\"{name}\"")),
                ("device", format!("\"{}\"", args.get_or("device", "q20"))),
                ("policy", format!("\"{}\"", policy.name())),
                ("drift", drift.to_string()),
            ];
            if let Some((trials, seed, pst)) = mc {
                extras.push(("mc_trials", trials.to_string()));
                extras.push(("mc_seed", seed.to_string()));
                extras.push(("mc_pst", pst.to_string()));
                extras.push(("mc_within_bounds", mc_ok.to_string()));
            }
            report.render_json_with_extras(&extras)
        }
        "text" => {
            let mut out = format!("reliability audit for {name} ({} on {device})\n", policy.name());
            out.push_str(&report.render_text());
            if let Some((trials, _, pst)) = mc {
                let _ = writeln!(
                    out,
                    "monte-carlo PST: {pst:.6} over {trials} trials — {} the static bound",
                    if mc_ok { "inside" } else { "OUTSIDE" }
                );
            }
            out
        }
        other => {
            return Err(ArgsError::new(format!(
                "unknown --format '{other}' (use text or json)"
            )))
        }
    };

    let denied = args.has_switch("deny-warnings") && report.findings.warning_count() > 0;
    if report.findings.is_clean() && mc_ok && !denied {
        Ok(rendered)
    } else {
        Err(ArgsError::new(rendered))
    }
}

/// `quva cost`: the static WCET-style cost envelope of a job — closed
/// `[lo, hi]` bounds on compile time, Monte-Carlo time, peak memory,
/// and rendered-response size, derived from the source program, the
/// device's distance matrix, and the requested trial budget *before*
/// compiling or simulating anything. This is the same envelope quvad's
/// admission control evaluates when answering `infeasible`, picking a
/// shed victim, and deriving `retry_after_ms`.
///
/// With `--policy` the program is additionally compiled and the
/// realized fault-event count is reported next to the predicted
/// `[events_lo, events_hi]` interval — it must fall inside (the same
/// containment the envelope-soundness CI stage checks suite-wide).
/// With `--deadline-ms` the command reports feasibility and fails on a
/// statically infeasible deadline; `--ci-half-width` reports the trial
/// budget a 95 % confidence half-width needs. `--calibrate
/// BENCH_sim.json` re-derives ns-per-event from the committed measured
/// baseline (bv-16 on ibm-q20 under baseline mapping — the file's
/// workload) instead of the built-in defaults.
fn cmd_cost(args: &ParsedArgs) -> Result<String, ArgsError> {
    let device = load_device(args, "q20")?;
    let (name, program) = load_program(args)?;
    let trials: u64 = args.get_parsed("trials")?.unwrap_or(0);
    let deadline_ms: Option<u64> = args.get_parsed("deadline-ms")?;
    let ci_half_width: Option<f64> = args.get_parsed("ci-half-width")?;
    if let Some(w) = ci_half_width {
        if !(w > 0.0 && w < 1.0) {
            return Err(ArgsError::new("--ci-half-width must be in (0, 1)"));
        }
    }
    let model = match args.get("calibrate") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgsError::new(format!("cannot read {path}: {e}")))?;
            // events/trial of the file's workload — bv-16 on ibm-q20
            // under baseline mapping — counted on the compiled circuit
            let baseline = parse_benchmark("bv:16")?;
            let q20 = parse_device("q20")?;
            let compiled = MappingPolicy::baseline()
                .compile(baseline.circuit(), &q20)
                .map_err(|e| ArgsError::new(e.to_string()))?;
            let events = quva_analysis::total_events(compiled.physical()) as f64;
            quva_analysis::CostModel::from_bench(&text, events)
                .map_err(|e| ArgsError::new(format!("{path}: {e}")))?
        }
        None => quva_analysis::CostModel::default(),
    };
    let envelope = quva_analysis::envelope_of(&device, &program, trials, &model);
    let compiled_events = match args.get("policy") {
        Some(spec) => {
            let policy = parse_policy(spec)?;
            let compiled = policy
                .compile(&program, &device)
                .map_err(|e| ArgsError::new(e.to_string()))?;
            Some((policy.name(), quva_analysis::total_events(compiled.physical())))
        }
        None => None,
    };
    let feasible = deadline_ms.map(|d| !envelope.infeasible_for(d));
    let trials_needed = ci_half_width.map(quva_analysis::CostBudget::trials_needed);

    // conservative integer rendering: lo floors, hi ceils, so the
    // printed interval always contains the computed one
    let ns = |i: quva_analysis::CostInterval| (i.lo.floor() as u64, i.hi.ceil() as u64);
    let rendered = match args.get_or("format", "text") {
        "json" => {
            // Hand-rolled JSON (vendor policy: no serde); fixed key
            // order, integer bounds — byte-deterministic per input.
            let pair = |i| {
                let (lo, hi) = ns(i);
                format!("{{\"lo\": {lo}, \"hi\": {hi}}}")
            };
            let mut out = String::from("{\n");
            let _ = writeln!(out, "  \"program\": \"{name}\",");
            let _ = writeln!(out, "  \"device\": \"{}\",", args.get_or("device", "q20"));
            let _ = writeln!(out, "  \"trials\": {trials},");
            let _ = writeln!(out, "  \"ns_per_event\": {},", model.ns_per_event);
            let _ = writeln!(
                out,
                "  \"events\": {{\"lo\": {}, \"hi\": {}}},",
                envelope.events_lo, envelope.events_hi
            );
            let _ = writeln!(out, "  \"compile_ns\": {},", pair(envelope.compile_ns));
            let _ = writeln!(out, "  \"mc_ns\": {},", pair(envelope.mc_ns));
            let _ = writeln!(out, "  \"total_ns\": {},", pair(envelope.total_ns()));
            let _ = writeln!(out, "  \"peak_bytes\": {},", pair(envelope.peak_bytes));
            let _ = writeln!(out, "  \"response_bytes\": {},", pair(envelope.response_bytes));
            let _ = write!(out, "  \"predicted_ms\": {}", envelope.predicted_ms_lo());
            if let Some((policy, events)) = &compiled_events {
                let _ = write!(out, ",\n  \"compiled_policy\": \"{policy}\"");
                let _ = write!(out, ",\n  \"compiled_events\": {events}");
            }
            if let (Some(d), Some(f)) = (deadline_ms, feasible) {
                let _ = write!(out, ",\n  \"deadline_ms\": {d}");
                let _ = write!(out, ",\n  \"feasible\": {f}");
            }
            if let (Some(w), Some(n)) = (ci_half_width, trials_needed) {
                let _ = write!(out, ",\n  \"ci_half_width\": {w}");
                let _ = write!(out, ",\n  \"trials_needed\": {n}");
            }
            out.push_str("\n}\n");
            out
        }
        "text" => {
            let mut out = format!("static cost envelope for {name} on {device} ({trials} trial(s))\n");
            let row = |label: &str, i, unit: &str| {
                let (lo, hi) = ns(i);
                format!("  {label:<16}: [{lo}, {hi}] {unit}\n")
            };
            let _ = writeln!(
                out,
                "  {:<16}: [{}, {}] per trial",
                "fault events", envelope.events_lo, envelope.events_hi
            );
            out.push_str(&row("compile", envelope.compile_ns, "ns"));
            out.push_str(&row("monte-carlo", envelope.mc_ns, "ns"));
            out.push_str(&row("total", envelope.total_ns(), "ns"));
            out.push_str(&row("peak memory", envelope.peak_bytes, "B"));
            out.push_str(&row("response size", envelope.response_bytes, "B"));
            let _ = writeln!(out, "  {:<16}: ≥ {} ms", "predicted", envelope.predicted_ms_lo());
            if let Some((policy, events)) = &compiled_events {
                let inside = (envelope.events_lo..=envelope.events_hi).contains(events);
                let _ = writeln!(
                    out,
                    "  {:<16}: {events} ({policy}) — {} the predicted interval",
                    "compiled events",
                    if inside { "inside" } else { "OUTSIDE" }
                );
            }
            if let (Some(d), Some(f)) = (deadline_ms, feasible) {
                let _ = writeln!(
                    out,
                    "  {:<16}: {} ms — {}",
                    "deadline",
                    d,
                    if f { "feasible" } else { "statically INFEASIBLE" }
                );
            }
            if let (Some(w), Some(n)) = (ci_half_width, trials_needed) {
                let _ = writeln!(
                    out,
                    "  {:<16}: ±{w} needs ≥ {n} trial(s) (requested {trials})",
                    "ci half-width"
                );
            }
            out
        }
        other => {
            return Err(ArgsError::new(format!(
                "unknown --format '{other}' (use text or json)"
            )))
        }
    };
    if feasible == Some(false) {
        return Err(ArgsError::new(rendered));
    }
    Ok(rendered)
}

/// The Monte-Carlo execution engine selected by `--threads N`
/// (default: one worker per available hardware thread) and `--engine
/// scalar|bitparallel` (default: bit-parallel). The thread count
/// affects wall-clock only — estimates are bit-identical for every
/// thread count; the kernel selects which deterministic sample is
/// drawn (the scalar oracle and the bit-parallel kernel are distinct
/// samples of the same model).
fn parse_engine(args: &ParsedArgs) -> Result<McEngine, ArgsError> {
    let engine = match args.get_parsed::<usize>("threads")? {
        Some(0) => return Err(ArgsError::new("--threads must be at least 1")),
        Some(n) => McEngine::new(n),
        None => McEngine::auto(),
    };
    let kernel = match args.get("engine") {
        Some(spec) => spec.parse::<McKernel>().map_err(ArgsError::new)?,
        None => McKernel::default(),
    };
    Ok(engine.with_kernel(kernel))
}

fn cmd_pst(args: &ParsedArgs) -> Result<String, ArgsError> {
    let (device, policy, name, program) = load_setup(args)?;
    let trials: u64 = args.get_parsed("trials")?.unwrap_or(100_000);
    let seed: u64 = args.get_parsed("seed")?.unwrap_or(7);
    let engine = parse_engine(args)?;
    let compiled = policy
        .compile(&program, &device)
        .map_err(|e| ArgsError::new(e.to_string()))?;
    let analytic = compiled
        .analytic_pst(&device, CoherenceModel::Disabled)
        .map_err(|e| ArgsError::new(e.to_string()))?;
    let mc = monte_carlo_pst_with(
        &device,
        compiled.physical(),
        trials,
        seed,
        CoherenceModel::Disabled,
        engine,
    )
    .map_err(|e| ArgsError::new(e.to_string()))?;
    let mut table = Table::new(["metric", "value"]);
    table.row(["program".into(), name]);
    table.row(["policy".into(), policy.name()]);
    table.row(["inserted swaps".into(), compiled.inserted_swaps().to_string()]);
    table.row(["analytic PST".into(), format!("{:.6}", analytic.pst)]);
    table.row([
        "monte-carlo PST".into(),
        format!("{:.6} ± {:.6}", mc.pst, mc.std_error()),
    ]);
    table.row(["trials".into(), trials.to_string()]);
    Ok(table.to_string())
}

/// `quva simulate`: the Monte-Carlo estimator with machine-readable
/// JSON output.
///
/// The output never mentions the engine configuration: for a fixed
/// `(program, device, policy, trials, seed)` the bytes are identical
/// whatever `--threads` is. CI diffs `--threads 1` against
/// `--threads 8` across the benchmark suite to guard the engine's
/// seed-derivation contract.
fn cmd_simulate(args: &ParsedArgs) -> Result<String, ArgsError> {
    let (device, policy, name, program) = load_setup(args)?;
    let trials: u64 = args.get_parsed("trials")?.unwrap_or(100_000);
    let seed: u64 = args.get_parsed("seed")?.unwrap_or(7);
    let engine = parse_engine(args)?;
    let compiled = policy
        .compile(&program, &device)
        .map_err(|e| ArgsError::new(e.to_string()))?;
    let analytic = compiled
        .analytic_pst(&device, CoherenceModel::Disabled)
        .map_err(|e| ArgsError::new(e.to_string()))?;
    let mc = monte_carlo_pst_with(
        &device,
        compiled.physical(),
        trials,
        seed,
        CoherenceModel::Disabled,
        engine,
    )
    .map_err(|e| ArgsError::new(e.to_string()))?;
    // Hand-rolled JSON (vendor policy: no serde). Floats use Rust's
    // shortest-roundtrip Display — platform-independent bytes.
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"program\": \"{name}\",");
    let _ = writeln!(out, "  \"device\": \"{}\",", args.get_or("device", "q20"));
    let _ = writeln!(out, "  \"policy\": \"{}\",", policy.name());
    let _ = writeln!(out, "  \"inserted_swaps\": {},", compiled.inserted_swaps());
    let _ = writeln!(out, "  \"trials\": {trials},");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"successes\": {},", mc.successes);
    let _ = writeln!(out, "  \"pst\": {},", mc.pst);
    let _ = writeln!(out, "  \"std_error\": {},", mc.std_error());
    let _ = writeln!(out, "  \"analytic_pst\": {}", analytic.pst);
    out.push_str("}\n");
    Ok(out)
}

fn cmd_trials(args: &ParsedArgs) -> Result<String, ArgsError> {
    let device = load_device(args, "q5")?;
    let policy = parse_policy(args.get_or("policy", "vqa-vqm"))?;
    let bench = parse_benchmark(args.require("bench")?)?;
    let trials: u64 = args.get_parsed("trials")?.unwrap_or(4096);
    let compiled = policy
        .compile(bench.circuit(), &device)
        .map_err(|e| ArgsError::new(e.to_string()))?;
    let outcomes = run_noisy_trials(&device, compiled.physical(), trials, 11)
        .map_err(|e| ArgsError::new(e.to_string()))?;

    let mut rows: Vec<(u64, u64)> = outcomes.histogram().iter().map(|(&o, &c)| (o, c)).collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut table = Table::new(["outcome", "count", "fraction", "accepted"]);
    for (outcome, count) in rows.into_iter().take(10) {
        table.row([
            format!("{outcome:0width$b}", width = bench.circuit().num_qubits()),
            count.to_string(),
            fmt3(count as f64 / trials as f64),
            if bench.is_success(outcome) {
                "yes".into()
            } else {
                "no".to_string()
            },
        ]);
    }
    let mut out = table.to_string();
    let _ = writeln!(
        out,
        "\nPST (output correctness): {:.4} over {trials} noisy trials",
        outcomes.success_rate(|o| bench.is_success(o))
    );
    Ok(out)
}

fn cmd_characterize(args: &ParsedArgs) -> Result<String, ArgsError> {
    let device = load_device(args, "q20")?;
    if let Some(path) = args.get("export") {
        let json = snapshot::to_json(device.calibration());
        std::fs::write(path, json).map_err(|e| ArgsError::new(format!("cannot write {path}: {e}")))?;
        return Ok(format!("wrote calibration snapshot to {path}\n"));
    }
    let cal = device.calibration();
    let topo = device.topology();
    let strengths = node_strengths(&device);

    let mut out = format!("{device}\n\n");
    // ASCII device map for grid-convention layouts
    let shape = match args.get_or("device", "q20") {
        "q20" | "ibm-q20" => Some((4, 5)),
        spec => spec.strip_prefix("grid:").and_then(|dims| {
            let dims = dims.split('@').next().unwrap_or(dims);
            let (r, c) = dims.split_once('x')?;
            Some((r.parse().ok()?, c.parse().ok()?))
        }),
    };
    if let Some((r, c)) = shape {
        out.push_str(&quva_viz::render_grid_map(&device, r, c));
        out.push('\n');
    }
    let mut qubits = Table::new(["qubit", "T1_us", "T2_us", "err_1q", "err_readout", "strength"]);
    for q in topo.qubits() {
        let i = q.index();
        qubits.row([
            q.to_string(),
            format!("{:.1}", cal.t1_us(i)),
            format!("{:.1}", cal.t2_us(i)),
            format!("{:.4}", cal.one_qubit_error(i)),
            format!("{:.4}", cal.readout_error(i)),
            format!("{:.2}", strengths[i]),
        ]);
    }
    out.push_str(&qubits.to_string());

    let mut links = Table::new(["link", "err_2q", "swap_success"]);
    for (id, link) in topo.links().iter().enumerate() {
        links.row([
            link.to_string(),
            format!("{:.4}", cal.two_qubit_error(id)),
            format!("{:.4}", (1.0 - cal.two_qubit_error(id)).powi(3)),
        ]);
    }
    out.push('\n');
    out.push_str(&links.to_string());
    let (best, worst) = cal.two_qubit_error_range();
    let _ = writeln!(
        out,
        "\nbest link {best:.3}, worst link {worst:.3}, spread {:.1}x, mean {:.3}",
        cal.variation_ratio(),
        cal.mean_two_qubit_error()
    );
    Ok(out)
}

fn cmd_partition(args: &ParsedArgs) -> Result<String, ArgsError> {
    let (device, policy, name, program) = load_setup(args)?;
    let report = partition_analysis(&program, &device, policy, CoherenceModel::Disabled)
        .map_err(|e| ArgsError::new(e.to_string()))?;
    let mut out = format!("partitioning analysis for {name} on {device}\n\n");
    let _ = writeln!(
        out,
        "one strong copy : PST {:.4} (STPT {:.4})",
        report.one_strong.pst,
        report.stpt_one()
    );
    match &report.two_copies {
        Some((x, y)) => {
            let _ = writeln!(
                out,
                "two copies      : PST {:.4} + {:.4} (STPT {:.4})",
                x.pst,
                y.pst,
                report.stpt_two()
            );
        }
        None => {
            let _ = writeln!(out, "two copies      : do not fit");
        }
    }
    let verdict = match report.recommend() {
        PartitionChoice::OneStrongCopy => "run ONE strong copy",
        PartitionChoice::TwoCopies => "run TWO concurrent copies",
    };
    let _ = writeln!(out, "recommendation  : {verdict}");
    Ok(out)
}

/// `quva profile`: compiles and simulates a suite × policy matrix
/// under the observability recorder and reports, per case, the
/// analytic PST, the static ESP interval, and a Monte-Carlo estimate.
/// The caller ([`run`]) appends the per-stage span table and the
/// counter summary — including the `cache.pst.*` / `cache.esp.*`
/// memo statistics (each case evaluates its PST twice, so a healthy
/// cache shows one hit per case).
///
/// Defaults: the table-1 suite × {baseline, vqm, vqm-mah:4, vqa-vqm}
/// on `q20`; `--bench` / `--policy` restrict the matrix to one row or
/// column.
fn cmd_profile(args: &ParsedArgs) -> Result<String, ArgsError> {
    let device = load_device(args, "q20")?;
    let trials: u64 = args.get_parsed("trials")?.unwrap_or(20_000);
    if trials == 0 {
        return Err(ArgsError::new("--trials must be at least 1"));
    }
    let seed: u64 = args.get_parsed("seed")?.unwrap_or(7);
    let engine = parse_engine(args)?;
    let benches = match args.get("bench") {
        Some(spec) => vec![parse_benchmark(spec)?],
        None => quva_benchmarks::table1_suite(),
    };
    let policies = match args.get("policy") {
        Some(spec) => vec![parse_policy(spec)?],
        None => vec![
            MappingPolicy::baseline(),
            MappingPolicy::vqm(),
            parse_policy("vqm-mah:4")?,
            MappingPolicy::vqa_vqm(),
        ],
    };

    let mut table = Table::new(["bench", "policy", "analytic_pst", "esp_lo", "esp_hi", "mc_pst"]);
    for bench in &benches {
        for &policy in &policies {
            let _case = quva_obs::span("profile", "profile.case");
            quva_obs::counter("profile.cases", 1);
            // compile first so a failure is a reported error, not a
            // panic inside the memoized evaluators
            let compiled = policy
                .compile(bench.circuit(), &device)
                .map_err(|e| ArgsError::new(format!("{} on {}: {e}", policy.name(), bench.name())))?;
            let pst = quva_bench::policy_eval::pst_of(policy, bench, &device);
            // the second evaluation is the memo-cache probe: it must
            // land as a cache.pst.hit in the counter summary
            let _ = quva_bench::policy_eval::pst_of(policy, bench, &device);
            let esp = quva_bench::policy_eval::esp_interval_of(policy, bench, &device);
            let mc = {
                let _mc = quva_obs::span("profile", "profile.simulate");
                monte_carlo_pst_with(
                    &device,
                    compiled.physical(),
                    trials,
                    seed,
                    CoherenceModel::Disabled,
                    engine,
                )
                .map_err(|e| ArgsError::new(e.to_string()))?
            };
            table.row([
                bench.name().to_string(),
                policy.name(),
                format!("{pst:.4}"),
                format!("{:.4}", esp.lo),
                format!("{:.4}", esp.hi),
                format!("{:.4}", mc.pst),
            ]);
        }
    }
    Ok(format!(
        "profile: {} case(s) on {device}, {trials} trials, seed {seed}\n\n{table}\n",
        benches.len() * policies.len()
    ))
}

/// `quva serve`: runs the `quvad` compilation daemon until a client
/// sends a `shutdown` frame, then drains gracefully and reports the
/// final metrics. See DESIGN.md §12 for the protocol and failure-mode
/// table.
///
/// With `--trace <file>` the whole daemon lifetime is recorded: every
/// request span, queue-depth sample, and cache/shed/retry counter
/// lands in the Chrome trace written after the drain completes.
fn cmd_serve(args: &ParsedArgs) -> Result<String, ArgsError> {
    use quva_serve::{Listen, Server, ServerConfig};
    fn knob<T: std::str::FromStr + PartialEq + Default>(
        args: &ParsedArgs,
        name: &str,
        default: T,
    ) -> Result<T, ArgsError> {
        match args.get_parsed::<T>(name)? {
            Some(n) if n == T::default() => Err(ArgsError::new(format!("--{name} must be at least 1"))),
            Some(n) => Ok(n),
            None => Ok(default),
        }
    }
    let listen = match (args.get("listen"), args.get("socket")) {
        (Some(_), Some(_)) => {
            return Err(ArgsError::new("give either --listen or --socket, not both"));
        }
        (None, Some(path)) => Listen::Unix(std::path::PathBuf::from(path)),
        (addr, None) => Listen::Tcp(addr.unwrap_or("127.0.0.1:7411").to_string()),
    };
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        listen,
        workers: knob(args, "workers", defaults.workers)?,
        engine_threads: knob(args, "threads", defaults.engine_threads)?,
        engine_kernel: match args.get("engine") {
            Some(spec) => spec.parse::<McKernel>().map_err(ArgsError::new)?,
            None => McKernel::default(),
        },
        queue_capacity: knob(args, "queue", defaults.queue_capacity)?,
        default_deadline_ms: knob(args, "deadline-ms", defaults.default_deadline_ms)?,
        retry_after_ms: args
            .get_parsed("retry-after-ms")?
            .unwrap_or(defaults.retry_after_ms),
        idle_timeout_ms: knob(args, "idle-timeout-ms", defaults.idle_timeout_ms)?,
        max_connections: knob(args, "max-connections", defaults.max_connections)?,
        chaos_panics: args.has_switch("chaos"),
        flight_capacity: args
            .get_parsed("flight-capacity")?
            .unwrap_or(defaults.flight_capacity),
        dump_dir: args.get("dump-dir").map(std::path::PathBuf::from),
        dump_max_file_bytes: args
            .get_parsed("dump-file-cap-bytes")?
            .unwrap_or(defaults.dump_max_file_bytes),
        dump_max_total_bytes: args
            .get_parsed("dump-cap-bytes")?
            .unwrap_or(defaults.dump_max_total_bytes),
        journal_path: args.get("journal").map(std::path::PathBuf::from),
        journal_max_bytes: args
            .get_parsed("journal-cap-bytes")?
            .unwrap_or(defaults.journal_max_bytes),
        ..defaults
    };

    let workers = config.workers;
    let queue = config.queue_capacity;
    let endpoint = match &config.listen {
        Listen::Tcp(addr) => addr.clone(),
        Listen::Unix(path) => path.display().to_string(),
    };
    let handle = Server::spawn(config).map_err(|e| ArgsError::new(format!("cannot bind {endpoint}: {e}")))?;
    let bound = handle
        .local_addr()
        .map_or_else(|| endpoint.clone(), |a| a.to_string());
    // announce on stderr: stdout carries only the final drain report
    eprintln!("quvad listening on {bound} ({workers} worker(s), queue {queue})");
    let metrics = handle.join();
    Ok(format!("quvad drained cleanly\nfinal metrics: {metrics}\n"))
}

/// One numeric sample scraped off an exposition line.
fn expo_value(line: &str) -> Option<(&str, f64)> {
    let (name, value) = line.rsplit_once(' ')?;
    Some((name, value.parse().ok()?))
}

/// The label value inside `name{key="value"}` for a given key.
fn expo_label<'a>(name: &'a str, key: &str) -> Option<&'a str> {
    let rest = name.split_once('{')?.1;
    let marker = format!("{key}=\"");
    let tail = rest.split_once(marker.as_str())?.1;
    tail.split_once('"').map(|(v, _)| v)
}

/// Renders one `quva top` dashboard frame from an exposition snapshot.
/// Pure text-to-text, so it is testable without a daemon.
fn render_top(exposition: &str) -> String {
    let mut queue_depth = 0.0;
    let mut workers = 0.0;
    let mut uptime_us = 0.0;
    let mut counters: Vec<(String, f64)> = Vec::new();
    let mut dumps: Vec<(String, f64)> = Vec::new();
    // verb -> [p50, p95, p99, count]
    let mut latency: Vec<(String, [f64; 4])> = Vec::new();
    for line in exposition.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = expo_value(line) else {
            continue;
        };
        if name == "quvad_queue_depth" {
            queue_depth = value;
        } else if name == "quvad_workers_alive" {
            workers = value;
        } else if name == "quvad_uptime_us" {
            uptime_us = value;
        } else if name.starts_with("quvad_dumps_total{") {
            if let Some(trigger) = expo_label(name, "trigger") {
                dumps.push((trigger.to_string(), value));
            }
        } else if name.starts_with("quvad_latency_us{") || name.starts_with("quvad_latency_us_count{") {
            let Some(verb) = expo_label(name, "verb") else {
                continue;
            };
            let slot = match latency.iter().position(|(v, _)| v == verb) {
                Some(i) => i,
                None => {
                    latency.push((verb.to_string(), [0.0; 4]));
                    latency.len() - 1
                }
            };
            if name.starts_with("quvad_latency_us_count{") {
                latency[slot].1[3] = value;
            } else if let Some(q) = expo_label(name, "quantile") {
                match q {
                    "0.5" => latency[slot].1[0] = value,
                    "0.95" => latency[slot].1[1] = value,
                    "0.99" => latency[slot].1[2] = value,
                    _ => {}
                }
            }
        } else if let Some(counter) = name.strip_prefix("quvad_").and_then(|n| n.strip_suffix("_total")) {
            if !name.contains('{') {
                counters.push((counter.to_string(), value));
            }
        }
    }
    let mut out = format!(
        "quvad · up {:.1}s · queue depth {} · workers alive {}\n\n",
        uptime_us / 1e6,
        queue_depth as u64,
        workers as u64
    );
    out.push_str("counters:\n");
    for (name, value) in &counters {
        let _ = writeln!(out, "  {name:<22} {}", *value as u64);
    }
    out.push_str("\nlatency (us):\n");
    let _ = writeln!(
        out,
        "  {:<10} {:>10} {:>10} {:>10} {:>8}",
        "verb", "p50", "p95", "p99", "count"
    );
    for (verb, [p50, p95, p99, count]) in &latency {
        let _ = writeln!(
            out,
            "  {verb:<10} {:>10} {:>10} {:>10} {:>8}",
            *p50 as u64, *p95 as u64, *p99 as u64, *count as u64
        );
    }
    out.push_str("\nanomaly dumps:\n");
    for (trigger, value) in &dumps {
        let _ = writeln!(out, "  {trigger:<22} {}", *value as u64);
    }
    out
}

/// Pulls the exposition text out of one `metrics` response line.
fn extract_exposition(line: &str) -> Result<String, ArgsError> {
    let doc = quva_obs::parse_json(line.trim())
        .map_err(|e| ArgsError::new(format!("malformed metrics response: {e}: {line}")))?;
    if doc.get("status").and_then(|v| v.as_str()) != Some("ok") {
        return Err(ArgsError::new(format!("daemon refused metrics request: {line}")));
    }
    doc.get("result")
        .and_then(|r| r.get("exposition"))
        .and_then(|e| e.as_str())
        .map(str::to_string)
        .ok_or_else(|| ArgsError::new(format!("metrics response has no exposition: {line}")))
}

/// `quva top`: poll a running daemon's `metrics` verb and render live
/// telemetry. `--count N` stops after N refreshes (the last frame is
/// the command's output); `--raw` prints exposition text verbatim.
fn cmd_top(args: &ParsedArgs) -> Result<String, ArgsError> {
    use std::io::{BufRead, BufReader, Write};
    let addr = args.get_or("addr", "127.0.0.1:7411");
    let interval =
        std::time::Duration::from_millis(args.get_parsed::<u64>("interval-ms")?.unwrap_or(1000).max(50));
    let count: u64 = args.get_parsed("count")?.unwrap_or(0);
    let raw = args.has_switch("raw");
    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| ArgsError::new(format!("cannot connect to {addr}: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| ArgsError::new(format!("cannot clone connection: {e}")))?;
    let mut reader = BufReader::new(stream);
    let mut refresh: u64 = 0;
    loop {
        refresh += 1;
        writeln!(writer, "{{\"id\":\"top-{refresh}\",\"kind\":\"metrics\"}}")
            .map_err(|e| ArgsError::new(format!("connection to {addr} lost: {e}")))?;
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| ArgsError::new(format!("connection to {addr} lost: {e}")))?;
        if n == 0 {
            return Err(ArgsError::new(format!("daemon at {addr} closed the connection")));
        }
        let exposition = extract_exposition(&line)?;
        let frame = if raw { exposition } else { render_top(&exposition) };
        if count != 0 && refresh >= count {
            return Ok(frame);
        }
        if raw {
            println!("{frame}");
        } else {
            // clear + home between refreshes; the final frame goes
            // through the normal report path instead
            print!("\x1b[2J\x1b[H{frame}");
            let _ = std::io::stdout().flush();
        }
        std::thread::sleep(interval);
    }
}

/// `quva trace-verify <file>`: structural validation of a `--trace`
/// output — the JSON parses, every event carries the trace_event
/// schema, durations are non-negative, and spans nest per lane.
fn cmd_trace_verify(args: &ParsedArgs) -> Result<String, ArgsError> {
    let path = args
        .positionals()
        .first()
        .map(String::as_str)
        .or_else(|| args.get("trace"))
        .ok_or_else(|| ArgsError::new("missing trace file: quva trace-verify <trace.json>"))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgsError::new(format!("cannot read {path}: {e}")))?;
    let stats = quva_obs::validate_chrome_trace(&text)
        .map_err(|e| ArgsError::new(format!("{path}: invalid trace: {e}")))?;
    let mut out = format!("{path}: valid Chrome trace\n");
    let _ = writeln!(out, "  events    : {}", stats.events);
    let _ = writeln!(out, "  spans     : {}", stats.spans);
    let _ = writeln!(out, "  counters  : {}", stats.counters);
    let _ = writeln!(out, "  instants  : {}", stats.instants);
    let _ = writeln!(out, "  lanes     : {}", stats.threads);
    let _ = writeln!(out, "  max depth : {}", stats.max_depth);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &[&str]) -> Result<String, ArgsError> {
        let parsed = ParsedArgs::parse(line, crate::SWITCHES).unwrap();
        run(&parsed)
    }

    #[test]
    fn help_lists_commands() {
        let out = run_line(&["help"]).unwrap();
        for cmd in ["compile", "pst", "trials", "characterize", "partition"] {
            assert!(out.contains(cmd), "usage missing {cmd}");
        }
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let err = run_line(&["frobnicate"]).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
        assert!(err.to_string().contains("USAGE"));
    }

    #[test]
    fn compile_emits_qasm() {
        let out = run_line(&[
            "compile", "--device", "q20", "--policy", "vqa-vqm", "--bench", "bv:8",
        ])
        .unwrap();
        assert!(out.contains("OPENQASM 2.0;"));
        assert!(out.contains("cx q["));
    }

    #[test]
    fn compile_optimize_flag() {
        // a program with a cancellable pair: the optimizer shrinks it
        let out = run_line(&[
            "compile",
            "--device",
            "q5",
            "--policy",
            "baseline",
            "--bench",
            "bv:3",
            "--optimize",
            "--stats",
        ])
        .unwrap();
        assert!(out.contains("// optimizer removed"));
    }

    #[test]
    fn compile_stats_header() {
        let out = run_line(&[
            "compile", "--device", "q20", "--policy", "baseline", "--bench", "ghz:4", "--stats",
        ])
        .unwrap();
        assert!(out.contains("// analytic PST"));
        assert!(out.contains("// inserted swaps"));
    }

    #[test]
    fn compile_verify_flag_passes_on_real_output() {
        let out = run_line(&[
            "compile", "--device", "q20", "--policy", "vqa-vqm", "--bench", "bv:8", "--verify",
        ])
        .unwrap();
        assert!(out.contains("OPENQASM 2.0;"));
    }

    #[test]
    fn lint_clean_bench_reports_clean() {
        let out = run_line(&["lint", "--bench", "ghz:4"]).unwrap();
        assert!(out.contains("clean"), "{out}");
    }

    #[test]
    fn lint_with_device_runs_device_checks() {
        // bv's ancilla draws an unmeasured-qubit warning: reported, but
        // warnings alone keep the lint passing
        let out = run_line(&["lint", "--bench", "bv:8", "--device", "q20"]).unwrap();
        assert!(out.contains("0 error(s)"), "{out}");
        assert!(out.contains("QV102"), "{out}");
    }

    #[test]
    fn lint_catches_use_after_measure_in_qasm() {
        let dir = std::env::temp_dir().join("quva-cli-lint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("uam.qasm");
        std::fs::write(
            &path,
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\nmeasure q[0] -> c[0];\ncx q[0],q[1];\nmeasure q[1] -> c[1];\n",
        )
        .unwrap();
        let err = run_line(&["lint", "--qasm", path.to_str().unwrap()]).unwrap_err();
        assert!(err.to_string().contains("QV005"), "{err}");
        // json format carries the same code and also fails
        let err = run_line(&["lint", "--qasm", path.to_str().unwrap(), "--format", "json"]).unwrap_err();
        assert!(err.to_string().contains("\"code\": \"QV005\""), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn lint_json_format_renders_json() {
        let out = run_line(&["lint", "--bench", "ghz:4", "--format", "json"]).unwrap();
        assert!(out.contains("\"errors\": 0"), "{out}");
        assert!(out.contains("\"passes\""), "{out}");
    }

    #[test]
    fn lint_rejects_unknown_format() {
        let err = run_line(&["lint", "--bench", "ghz:4", "--format", "yaml"]).unwrap_err();
        assert!(err.to_string().contains("unknown --format"), "{err}");
    }

    #[test]
    fn pst_reports_both_estimators() {
        let out = run_line(&[
            "pst", "--device", "q5", "--policy", "vqm", "--bench", "bv:4", "--trials", "20000",
        ])
        .unwrap();
        assert!(out.contains("analytic PST"));
        assert!(out.contains("monte-carlo PST"));
    }

    #[test]
    fn pst_accepts_threads_and_seed() {
        let a = run_line(&[
            "pst",
            "--device",
            "q5",
            "--policy",
            "vqm",
            "--bench",
            "bv:4",
            "--trials",
            "20000",
            "--threads",
            "1",
            "--seed",
            "3",
        ])
        .unwrap();
        let b = run_line(&[
            "pst",
            "--device",
            "q5",
            "--policy",
            "vqm",
            "--bench",
            "bv:4",
            "--trials",
            "20000",
            "--threads",
            "4",
            "--seed",
            "3",
        ])
        .unwrap();
        assert_eq!(a, b, "thread count leaked into the pst report");
    }

    #[test]
    fn simulate_emits_json() {
        let out = run_line(&[
            "simulate", "--device", "q5", "--policy", "baseline", "--bench", "ghz:3", "--trials", "10000",
        ])
        .unwrap();
        assert!(out.contains("\"pst\":"), "{out}");
        assert!(out.contains("\"successes\":"), "{out}");
        assert!(out.contains("\"seed\": 7"), "{out}");
    }

    #[test]
    fn simulate_is_byte_identical_across_thread_counts() {
        let run_with = |threads: &str| {
            run_line(&[
                "simulate",
                "--device",
                "q20",
                "--policy",
                "vqa-vqm",
                "--bench",
                "bv:8",
                "--trials",
                "50000",
                "--threads",
                threads,
            ])
            .unwrap()
        };
        let single = run_with("1");
        for threads in ["2", "4", "8"] {
            assert_eq!(single, run_with(threads), "--threads {threads} diverged");
        }
    }

    #[test]
    fn zero_threads_is_rejected() {
        let err =
            run_line(&["simulate", "--device", "q5", "--bench", "ghz:3", "--threads", "0"]).unwrap_err();
        assert!(err.to_string().contains("--threads"), "{err}");
    }

    #[test]
    fn default_engine_is_bitparallel() {
        let base = &[
            "simulate", "--device", "q5", "--policy", "vqm", "--bench", "bv:4", "--trials", "20000",
        ];
        let implicit = run_line(base).unwrap();
        let mut explicit_args = base.to_vec();
        explicit_args.extend_from_slice(&["--engine", "bitparallel"]);
        let explicit = run_line(&explicit_args).unwrap();
        assert_eq!(implicit, explicit, "default kernel is not the bit-parallel one");
    }

    #[test]
    fn scalar_engine_draws_a_distinct_sample() {
        let run_with = |kernel: &str| {
            run_line(&[
                "simulate", "--device", "q5", "--policy", "vqm", "--bench", "bv:4", "--trials", "20000",
                "--engine", kernel,
            ])
            .unwrap()
        };
        assert_ne!(
            run_with("scalar"),
            run_with("bitparallel"),
            "the two kernels should be distinct deterministic samples"
        );
    }

    #[test]
    fn unknown_engine_is_rejected() {
        let err = run_line(&["pst", "--device", "q5", "--bench", "ghz:3", "--engine", "simd"]).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("simd") && msg.contains("scalar|bitparallel"),
            "{msg}"
        );
    }

    #[test]
    fn trials_reports_histogram_and_pst() {
        let out = run_line(&["trials", "--device", "q5", "--bench", "ghz:3", "--trials", "512"]).unwrap();
        assert!(out.contains("outcome"));
        assert!(out.contains("PST (output correctness)"));
    }

    #[test]
    fn characterize_lists_links() {
        let out = run_line(&["characterize", "--device", "q5"]).unwrap();
        assert!(out.contains("Q0–Q1") || out.contains("err_2q"));
        assert!(out.contains("spread"));
    }

    #[test]
    fn characterize_draws_the_tokyo_map() {
        let out = run_line(&["characterize", "--device", "q20"]).unwrap();
        assert!(out.contains("diagonal couplings"), "missing map in:\n{out}");
    }

    #[test]
    fn characterize_draws_grid_maps() {
        let out = run_line(&["characterize", "--device", "grid:2x3"]).unwrap();
        assert!(out.contains("Q5"), "missing grid map in:\n{out}");
    }

    #[test]
    fn partition_recommends() {
        let out = run_line(&["partition", "--device", "q20", "--bench", "bv:10"]).unwrap();
        assert!(out.contains("recommendation"));
    }

    #[test]
    fn calibration_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("quva-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cal.json");
        let path_str = path.to_str().unwrap();
        let out = run_line(&["characterize", "--device", "q5", "--export", path_str]).unwrap();
        assert!(out.contains("wrote calibration snapshot"));
        // reuse the exported snapshot on the same topology
        let report = run_line(&[
            "pst",
            "--device",
            "q5",
            "--calibration",
            path_str,
            "--bench",
            "bv:3",
        ])
        .unwrap();
        assert!(report.contains("analytic PST"));
        // and reject it on a mismatched topology
        let err = run_line(&[
            "pst",
            "--device",
            "q20",
            "--calibration",
            path_str,
            "--bench",
            "bv:3",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("does not fit"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_snapshot_strict_rejects_lenient_repairs() {
        let dir = std::env::temp_dir().join("quva-cli-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        let path_str = path.to_str().unwrap();
        // export a valid q5 snapshot, then corrupt one 2Q error rate
        run_line(&["characterize", "--device", "q5", "--export", path_str]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let cal = snapshot::parse_raw(&text).unwrap();
        let mut bad = cal;
        bad.err_2q[0] = f64::NAN;
        let dev = parse_device("q5").unwrap();
        let (repaired, _) = bad.sanitize(dev.topology(), SanitizePolicy::Clamp, None).unwrap();
        // serialize the NaN directly — the snapshot format carries it
        let mut doc = snapshot::to_json(&repaired);
        let good = format!("{}", repaired.two_qubit_error(0));
        doc = doc.replacen(&good, "NaN", 1);
        std::fs::write(&path, &doc).unwrap();

        let err = run_line(&[
            "pst",
            "--device",
            "q5",
            "--calibration",
            path_str,
            "--bench",
            "bv:3",
            "--strict",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("err_2q"), "{err}");

        // lenient mode repairs and proceeds
        let out = run_line(&[
            "pst",
            "--device",
            "q5",
            "--calibration",
            path_str,
            "--bench",
            "bv:3",
            "--lenient",
        ])
        .unwrap();
        assert!(out.contains("analytic PST"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn strict_and_lenient_conflict() {
        let err = run_line(&[
            "pst",
            "--device",
            "q5",
            "--bench",
            "bv:3",
            "--strict",
            "--lenient",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("not both"));
    }

    #[test]
    fn missing_program_is_friendly() {
        let err = run_line(&["pst", "--device", "q20"]).unwrap_err();
        assert!(err.to_string().contains("--bench"));
    }

    #[test]
    fn qasm_and_bench_conflict() {
        let err = run_line(&["pst", "--bench", "bv:4", "--qasm", "x.qasm"]).unwrap_err();
        assert!(err.to_string().contains("not both"));
    }

    #[test]
    fn explain_describes_a_code_by_id_or_name() {
        let out = run_line(&["lint", "--explain", "QV304"]).unwrap();
        assert!(out.contains("missed-vqm-route"), "{out}");
        assert!(out.contains("rationale"), "{out}");
        // names resolve too, case-insensitively
        let by_name = run_line(&["lint", "--explain", "weak-region-allocation"]).unwrap();
        assert!(by_name.contains("QV305"), "{by_name}");
    }

    #[test]
    fn explain_rejects_unknown_codes() {
        let err = run_line(&["lint", "--explain", "QV999"]).unwrap_err();
        assert!(err.to_string().contains("unknown lint code"), "{err}");
    }

    #[test]
    fn deny_warnings_flips_warning_only_lint_to_failure() {
        // bv's ancilla produces QV102 warnings: exit 0 by default…
        let out = run_line(&["lint", "--bench", "bv:8", "--device", "q20"]).unwrap();
        assert!(out.contains("0 error(s)"), "{out}");
        // …but nonzero under --deny-warnings
        let err = run_line(&["lint", "--bench", "bv:8", "--device", "q20", "--deny-warnings"]).unwrap_err();
        assert!(err.to_string().contains("QV102"), "{err}");
        // a genuinely clean program still passes under the flag
        let ok = run_line(&["lint", "--bench", "ghz:4", "--deny-warnings"]).unwrap();
        assert!(ok.contains("clean"), "{ok}");
    }

    #[test]
    fn lint_policy_merges_compiled_findings() {
        let out = run_line(&[
            "lint", "--bench", "bv:8", "--device", "q20", "--policy", "baseline", "--format", "json",
        ])
        .unwrap();
        // compiled-output passes ran alongside the source-level ones
        assert!(out.contains("esp-reliability"), "{out}");
        assert!(out.contains("coupler-legality"), "{out}");
        assert!(out.contains("QV102"), "{out}");
    }

    #[test]
    fn lint_policy_requires_device() {
        let err = run_line(&["lint", "--bench", "bv:8", "--policy", "baseline"]).unwrap_err();
        assert!(err.to_string().contains("--device"), "{err}");
    }

    #[test]
    fn audit_text_reports_esp_and_attribution() {
        let out = run_line(&[
            "audit", "--device", "q20", "--policy", "vqa-vqm", "--bench", "bv:8",
        ])
        .unwrap();
        assert!(out.contains("reliability audit"), "{out}");
        assert!(out.contains("static ESP:"), "{out}");
        assert!(out.contains("link attribution"), "{out}");
    }

    #[test]
    fn audit_json_is_deterministic_and_schema_complete() {
        let line = [
            "audit", "--device", "q20", "--policy", "vqm", "--bench", "bv:8", "--format", "json",
        ];
        let a = run_line(&line).unwrap();
        let b = run_line(&line).unwrap();
        assert_eq!(a, b, "audit JSON must be byte-deterministic");
        for key in [
            "\"esp\"",
            "\"links\"",
            "\"qubits\"",
            "\"findings\"",
            "\"program\"",
            "\"device\"",
            "\"policy\"",
            "\"drift\"",
            "\"passes\"",
        ] {
            assert!(a.contains(key), "audit JSON missing {key}:\n{a}");
        }
    }

    #[test]
    fn audit_mc_cross_check_lands_inside_interval() {
        let out = run_line(&[
            "audit",
            "--device",
            "q5",
            "--policy",
            "vqm",
            "--bench",
            "bv:4",
            "--mc-trials",
            "20000",
            "--format",
            "json",
        ])
        .unwrap();
        assert!(out.contains("\"mc_within_bounds\": true"), "{out}");
        assert!(out.contains("\"mc_trials\": 20000"), "{out}");
    }

    #[test]
    fn audit_rejects_bad_drift() {
        for bad in ["1.5", "-0.1", "nope"] {
            let err = run_line(&[
                "audit", "--device", "q5", "--policy", "vqm", "--bench", "bv:4", "--drift", bad,
            ])
            .unwrap_err();
            assert!(err.to_string().contains("--drift"), "{err}");
        }
    }

    #[test]
    fn audit_rejects_zero_mc_trials() {
        let err = run_line(&[
            "audit",
            "--device",
            "q5",
            "--policy",
            "vqm",
            "--bench",
            "bv:4",
            "--mc-trials",
            "0",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--mc-trials"), "{err}");
    }

    #[test]
    fn pipeline_check_accepts_every_standard_policy() {
        for policy in ["baseline", "vqm", "vqm-mah:4", "vqa-vqm", "native:7"] {
            let out = run_line(&["pipeline", "--check", "--policy", policy]).unwrap();
            assert!(out.contains("clean"), "{policy}: {out}");
            let out = run_line(&["pipeline", "--check", "--policy", policy, "--verify"]).unwrap();
            assert!(out.contains("verify"), "{policy}: {out}");
        }
    }

    #[test]
    fn pipeline_check_rejects_broken_pass_lists_with_stable_codes() {
        // one per violation class, each with its QV5xx code in the output
        for (passes, code) in [
            ("route", "QV501"),
            ("allocate,optimize,route", "QV502"),
            ("allocate,allocate,route", "QV503"),
            ("allocate", "QV504"),
        ] {
            let err = run_line(&["pipeline", "--check", "--passes", passes]).unwrap_err();
            assert!(err.to_string().contains(code), "{passes}: {err}");
        }
    }

    #[test]
    fn pipeline_check_json_is_deterministic_and_carries_codes() {
        let err = run_line(&["pipeline", "--check", "--passes", "route", "--format", "json"]).unwrap_err();
        let again = run_line(&["pipeline", "--check", "--passes", "route", "--format", "json"]).unwrap_err();
        assert_eq!(err.to_string(), again.to_string());
        assert!(err.to_string().contains("\"code\": \"QV501\""), "{err}");
        assert!(err.to_string().contains("\"pipeline-contracts\""), "{err}");
    }

    #[test]
    fn pipeline_check_portfolio_list_is_clean() {
        let out = run_line(&[
            "pipeline",
            "--check",
            "--passes",
            "allocate,portfolio,verify",
            "--width",
            "3",
        ])
        .unwrap();
        assert!(out.contains("portfolio"), "{out}");
        assert!(out.contains("clean"), "{out}");
    }

    #[test]
    fn pipeline_rejects_unknown_pass_and_zero_width() {
        let err = run_line(&["pipeline", "--check", "--passes", "allocate,teleport"]).unwrap_err();
        assert!(err.to_string().contains("unknown pass 'teleport'"), "{err}");
        let err = run_line(&["pipeline", "--check", "--width", "0"]).unwrap_err();
        assert!(err.to_string().contains("--width"), "{err}");
    }

    #[test]
    fn pipeline_compare_portfolio_not_worse_than_baseline() {
        let out = run_line(&[
            "pipeline",
            "--compare",
            "--device",
            "q5",
            "--policy",
            "vqm",
            "--bench",
            "bv:4",
        ])
        .unwrap();
        assert!(out.contains("portfolio >= baseline"), "{out}");
    }

    #[test]
    fn pipeline_compare_json_reports_both_points() {
        let out = run_line(&[
            "pipeline",
            "--compare",
            "--device",
            "q5",
            "--policy",
            "baseline",
            "--bench",
            "ghz:4",
            "--format",
            "json",
        ])
        .unwrap();
        assert!(out.contains("\"baseline_esp_point\""), "{out}");
        assert!(out.contains("\"portfolio_not_worse\": true"), "{out}");
    }

    #[test]
    fn explain_covers_pipeline_codes() {
        for code in ["QV501", "QV502", "QV503", "QV504"] {
            let out = run_line(&["lint", "--explain", code]).unwrap();
            assert!(out.contains("severity : error"), "{code}: {out}");
            assert!(out.contains("pipeline"), "{code}: {out}");
        }
    }

    #[test]
    fn render_top_shows_all_dashboard_sections() {
        let exposition = "\
# TYPE quvad_requests_total counter\n\
quvad_requests_total 42\n\
# TYPE quvad_queue_depth gauge\n\
quvad_queue_depth 3\n\
# TYPE quvad_workers_alive gauge\n\
quvad_workers_alive 2\n\
quvad_dumps_total{trigger=\"deadline_exceeded\"} 1\n\
quvad_latency_us{verb=\"simulate\",quantile=\"0.5\"} 120\n\
quvad_latency_us{verb=\"simulate\",quantile=\"0.95\"} 900\n\
quvad_latency_us{verb=\"simulate\",quantile=\"0.99\"} 1500\n\
quvad_latency_us_count{verb=\"simulate\"} 7\n\
quvad_uptime_us 2500000\n";
        let out = render_top(exposition);
        assert!(out.contains("up 2.5s"), "{out}");
        assert!(out.contains("queue depth 3"), "{out}");
        assert!(out.contains("workers alive 2"), "{out}");
        assert!(out.contains("requests"), "{out}");
        assert!(out.contains("simulate"), "{out}");
        assert!(out.contains("1500"), "{out}");
        assert!(out.contains("deadline_exceeded"), "{out}");
    }

    #[test]
    fn top_scrapes_a_live_daemon() {
        use quva_serve::{Listen, Server, ServerConfig};
        let handle = Server::spawn(ServerConfig {
            listen: Listen::Tcp("127.0.0.1:0".to_string()),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = handle.local_addr().unwrap().to_string();
        let raw = run_line(&["top", "--addr", &addr, "--count", "1", "--raw"]).unwrap();
        assert!(raw.contains("quvad_requests_total"), "{raw}");
        assert!(raw.contains("quvad_queue_depth"), "{raw}");
        assert!(
            raw.contains("quvad_latency_us{verb=\"metrics\",quantile=\"0.99\"}"),
            "{raw}"
        );
        let rendered = run_line(&["top", "--addr", &addr, "--count", "1"]).unwrap();
        assert!(rendered.contains("workers alive 2"), "{rendered}");
        handle.shutdown();
        handle.join();
    }
}
