//! Textual specifications for devices, policies, and workloads — the
//! vocabulary of the `quva` CLI.
//!
//! The parsers themselves live in `quva_serve::spec` (they are shared
//! with the daemon's wire protocol); this module adapts their typed
//! [`quva_serve::SpecError`] into the CLI's [`ArgsError`].

use quva::MappingPolicy;
use quva_benchmarks::Benchmark;
use quva_device::Device;

use crate::args::ArgsError;

/// Builds a device from a spec string.
///
/// Supported specs:
/// * `q20` — IBM-Q20 Tokyo with the paper's average error map;
/// * `q5` — IBM-Q5 Tenerife with the §7 error map;
/// * `linear:N`, `ring:N`, `grid:RxC`, `full:N` — generic layouts with a
///   seeded synthetic calibration (append `@SEED` to change the seed,
///   e.g. `grid:4x5@7`).
///
/// # Errors
///
/// Fails on unknown names or malformed dimensions.
pub fn parse_device(spec: &str) -> Result<Device, ArgsError> {
    quva_serve::parse_device(spec).map_err(|e| ArgsError::new(e.to_string()))
}

/// Builds a mapping policy from a spec string: `baseline`, `vqm`,
/// `vqm-mah:K`, `vqa-vqm`, `vqa`, `native:SEED`.
///
/// # Errors
///
/// Fails on unknown names or malformed parameters.
pub fn parse_policy(spec: &str) -> Result<MappingPolicy, ArgsError> {
    quva_serve::parse_policy(spec).map_err(|e| ArgsError::new(e.to_string()))
}

/// Builds a named benchmark workload: `bv:N`, `qft:N`, `ghz:N`, `alu`,
/// `triswap`, `rnd-sd:N:CNOTS`, `rnd-ld:N:CNOTS`.
///
/// # Errors
///
/// Fails on unknown names or malformed parameters.
pub fn parse_benchmark(spec: &str) -> Result<Benchmark, ArgsError> {
    quva_serve::parse_benchmark(spec).map_err(|e| ArgsError::new(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva::RoutingMetric;

    #[test]
    fn named_devices() {
        assert_eq!(parse_device("q20").unwrap().num_qubits(), 20);
        assert_eq!(parse_device("q5").unwrap().num_qubits(), 5);
    }

    #[test]
    fn parametric_devices() {
        assert_eq!(parse_device("melbourne").unwrap().num_qubits(), 14);
        assert_eq!(parse_device("heavyhex:3x5").unwrap().num_qubits(), 15);
        assert_eq!(parse_device("linear:7").unwrap().num_qubits(), 7);
        assert_eq!(parse_device("grid:3x4").unwrap().num_qubits(), 12);
        assert_eq!(parse_device("ring:5").unwrap().num_qubits(), 5);
        assert_eq!(parse_device("full:4").unwrap().num_qubits(), 4);
    }

    #[test]
    fn device_seed_changes_calibration() {
        let a = parse_device("grid:3x4@1").unwrap();
        let b = parse_device("grid:3x4@2").unwrap();
        assert_ne!(a.calibration(), b.calibration());
        // same seed reproduces
        let c = parse_device("grid:3x4@1").unwrap();
        assert_eq!(a.calibration(), c.calibration());
    }

    #[test]
    fn bad_devices_error() {
        assert!(parse_device("mesh").is_err());
        assert!(parse_device("grid:3").is_err());
        assert!(parse_device("linear:0").is_err());
        assert!(parse_device("linear:abc").is_err());
        assert!(parse_device("grid:3x4@x").is_err());
    }

    #[test]
    fn policies() {
        assert_eq!(parse_policy("baseline").unwrap(), MappingPolicy::baseline());
        assert_eq!(parse_policy("vqm").unwrap(), MappingPolicy::vqm());
        assert_eq!(parse_policy("vqa-vqm").unwrap(), MappingPolicy::vqa_vqm());
        assert_eq!(parse_policy("native:7").unwrap(), MappingPolicy::native(7));
        let mah2 = parse_policy("vqm-mah:2").unwrap();
        assert_eq!(
            mah2.routing,
            RoutingMetric::Reliability {
                max_additional_hops: Some(2),
                optimize_meeting_edge: false
            }
        );
        assert!(parse_policy("qiskit").is_err());
        assert!(parse_policy("vqm-mah:x").is_err());
    }

    #[test]
    fn benchmarks() {
        assert_eq!(parse_benchmark("bv:16").unwrap().name(), "bv-16");
        assert_eq!(parse_benchmark("w:4").unwrap().name(), "w-4");
        assert_eq!(parse_benchmark("grover2:2").unwrap().name(), "grover2-2");
        assert_eq!(parse_benchmark("mirror:5:4").unwrap().name(), "mirror-5x4");
        assert_eq!(parse_benchmark("alu").unwrap().name(), "alu");
        assert_eq!(parse_benchmark("triswap").unwrap().name(), "TriSwap");
        assert_eq!(parse_benchmark("rnd-ld:20:80").unwrap().name(), "rnd-LD");
        assert!(parse_benchmark("shor:2048").is_err());
        assert!(parse_benchmark("bv").is_err());
    }
}
