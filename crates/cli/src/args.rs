//! Minimal argument parsing for the `quva` binary.
//!
//! Hand-rolled on purpose: the CLI needs exactly flags-with-values and
//! positionals, and the workspace keeps its dependency set small.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Parsed command line: a subcommand, `--flag value` options, boolean
/// `--flag` switches, and positionals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    command: String,
    options: BTreeMap<String, String>,
    switches: Vec<String>,
    positionals: Vec<String>,
}

/// Error produced for malformed command lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError(String);

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for ArgsError {}

impl ArgsError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        ArgsError(msg.into())
    }
}

impl ParsedArgs {
    /// Parses `argv` (without the program name). The first token is the
    /// subcommand; `--name value` pairs become options unless `name` is
    /// listed in `switches`, in which case it is a boolean flag.
    ///
    /// # Errors
    ///
    /// Fails on a missing subcommand or an option with no value.
    pub fn parse<S: AsRef<str>>(argv: &[S], switches: &[&str]) -> Result<Self, ArgsError> {
        let mut it = argv.iter().map(|s| s.as_ref().to_string()).peekable();
        let command = it
            .next()
            .ok_or_else(|| ArgsError::new("missing subcommand; try `quva help`"))?;
        let mut parsed = ParsedArgs {
            command,
            ..Default::default()
        };
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if switches.contains(&name) {
                    parsed.switches.push(name.to_string());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| ArgsError::new(format!("option --{name} needs a value")))?;
                    parsed.options.insert(name.to_string(), value);
                }
            } else {
                parsed.positionals.push(tok);
            }
        }
        Ok(parsed)
    }

    /// The subcommand name.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// An option's value, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// An option's value or a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.get(name).unwrap_or(default)
    }

    /// A required option.
    ///
    /// # Errors
    ///
    /// Fails when the option is absent.
    pub fn require(&self, name: &str) -> Result<&str, ArgsError> {
        self.get(name)
            .ok_or_else(|| ArgsError::new(format!("missing required option --{name}")))
    }

    /// Whether a boolean switch was given.
    pub fn has_switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Parses an option as a value of type `T`.
    ///
    /// # Errors
    ///
    /// Fails when present but unparsable.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgsError> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| ArgsError::new(format!("option --{name} has invalid value '{v}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_options_and_positionals() {
        let a = ParsedArgs::parse(
            &["compile", "--device", "q20", "prog.qasm", "--trials", "100"],
            &[],
        )
        .unwrap();
        assert_eq!(a.command(), "compile");
        assert_eq!(a.get("device"), Some("q20"));
        assert_eq!(a.get("trials"), Some("100"));
        assert_eq!(a.positionals(), ["prog.qasm"]);
    }

    #[test]
    fn switches_take_no_value() {
        let a = ParsedArgs::parse(&["compile", "--stats", "file.qasm"], &["stats"]).unwrap();
        assert!(a.has_switch("stats"));
        assert_eq!(a.positionals(), ["file.qasm"]);
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = ParsedArgs::parse(&["compile", "--device"], &[]).unwrap_err();
        assert!(err.to_string().contains("--device"));
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        let err = ParsedArgs::parse::<&str>(&[], &[]).unwrap_err();
        assert!(err.to_string().contains("subcommand"));
    }

    #[test]
    fn require_and_defaults() {
        let a = ParsedArgs::parse(&["pst", "--policy", "vqm"], &[]).unwrap();
        assert_eq!(a.require("policy").unwrap(), "vqm");
        assert!(a.require("device").is_err());
        assert_eq!(a.get_or("device", "q20"), "q20");
    }

    #[test]
    fn typed_access() {
        let a = ParsedArgs::parse(&["pst", "--trials", "5000", "--bad", "xyz"], &[]).unwrap();
        assert_eq!(a.get_parsed::<u64>("trials").unwrap(), Some(5000));
        assert_eq!(a.get_parsed::<u64>("absent").unwrap(), None);
        assert!(a.get_parsed::<u64>("bad").is_err());
    }
}
