//! # quva-cli — command-line interface for the quva NISQ compiler
//!
//! Subcommands: `compile` (emit routed OpenQASM), `pipeline`
//! (statically contract-check a pass pipeline, or compare portfolio
//! routing against the single-candidate baseline by static ESP),
//! `lint` (static checks without compiling), `audit` (compile + static reliability
//! report: ESP bounds, error attribution, findings), `cost` (static
//! WCET-style cost envelope: `[lo, hi]` bounds on compile time,
//! Monte-Carlo time, memory, and response size — the envelope quvad's
//! admission control evaluates), `pst` (reliability
//! estimation), `simulate` (Monte-Carlo PST as machine-readable JSON),
//! `trials` (noisy state-vector execution), `characterize` (calibration
//! summary), `partition` (§8 one-vs-two copies analysis), `profile`
//! (suite × policy matrix with per-stage timings and counters),
//! `trace-verify` (structural validation of a `--trace` output),
//! `serve` (the `quvad` compilation daemon: line-delimited JSON jobs
//! over TCP or a unix socket, with admission control, deadlines, and
//! graceful drain), and `top` (live daemon telemetry: polls the
//! `metrics` verb and renders queue depth, per-verb latency quantiles,
//! and anomaly-dump totals). See [`commands::usage`] for the full
//! syntax.
//!
//! Monte-Carlo commands accept `--threads N` (default: available
//! parallelism); results are bit-identical for every thread count.
//! Every pipeline command additionally accepts `--trace <file>` (write
//! Chrome `trace_event` JSON for Perfetto / `chrome://tracing`) and
//! `--metrics` (append the deterministic counter/histogram summary).
//!
//! # Examples
//!
//! ```
//! use quva_cli::{args::ParsedArgs, commands};
//!
//! let argv = ["pst", "--device", "q5", "--bench", "ghz:3", "--trials", "10000"];
//! let parsed = ParsedArgs::parse(&argv, quva_cli::SWITCHES).unwrap();
//! let report = commands::run(&parsed).unwrap();
//! assert!(report.contains("analytic PST"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;
pub mod commands;
pub mod spec;

/// The boolean switches every subcommand recognizes: `--stats`,
/// `--optimize`, and `--verify` (compile, pipeline), `--deny-warnings`
/// (lint / audit), `--metrics` (append the observability summary),
/// `--chaos` (serve: honor `panic` fault-injection frames), `--check` /
/// `--compare` (pipeline: contract check / portfolio-vs-baseline ESP
/// comparison), `--raw` (top: print the exposition text verbatim),
/// plus the `--strict` / `--lenient` calibration-sanitization modes.
pub const SWITCHES: &[&str] = &[
    "stats",
    "optimize",
    "verify",
    "strict",
    "lenient",
    "deny-warnings",
    "metrics",
    "chaos",
    "check",
    "compare",
    "raw",
];
