//! Named benchmark workloads with their success criteria.
//!
//! A [`Benchmark`] bundles a circuit with the set of classical outcomes
//! that count as a *successful trial* — the predicate behind the PST
//! metric. Suites reproduce the paper's workload tables: Table 1's
//! simulation set, §7's IBM-Q5 set, and §8's 10-qubit partitioning set.

use quva_circuit::Circuit;

use crate::generators::{self, RandDistance};

/// A named NISQ workload: circuit plus success predicate.
///
/// `accepted` lists the classical outcomes (bit `i` of the mask = cbit
/// `i`) an ideal machine can produce; a trial whose measured outcome is
/// in this set counts as successful. `None` means the workload has no
/// closed-form answer set (the random kernels) and success is judged by
/// fault-freeness alone.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    name: String,
    circuit: Circuit,
    accepted: Option<Vec<u64>>,
}

impl Benchmark {
    /// Bundles a circuit under a display name with an optional accepted
    /// outcome set.
    pub fn new(name: impl Into<String>, circuit: Circuit, accepted: Option<Vec<u64>>) -> Self {
        Benchmark {
            name: name.into(),
            circuit,
            accepted,
        }
    }

    /// The display name used in tables ("bv-16", "qft-12", ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The accepted classical outcomes, if the workload has an exact
    /// answer set.
    pub fn accepted(&self) -> Option<&[u64]> {
        self.accepted.as_deref()
    }

    /// Whether a measured outcome counts as a successful trial.
    /// Workloads without an answer set accept every outcome (their PST
    /// is judged by fault-injection instead).
    pub fn is_success(&self, outcome: u64) -> bool {
        match &self.accepted {
            Some(set) => set.contains(&outcome),
            None => true,
        }
    }

    /// Bernstein–Vazirani over `n` qubits with the all-ones secret; the
    /// accepted outcome is the secret itself.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn bv(n: usize) -> Self {
        let secret = (1u64 << (n - 1)) - 1;
        Benchmark::new(format!("bv-{n}"), generators::bv(n), Some(vec![secret]))
    }

    /// `n`-qubit QFT applied to |0…0⟩. Every outcome is equally likely
    /// on an ideal machine, so there is no answer set; reliability is
    /// assessed by fault-injection.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn qft(n: usize) -> Self {
        Benchmark::new(format!("qft-{n}"), generators::qft(n), None)
    }

    /// The 10-qubit Cuccaro adder computing 9 + 5 = 14; accepted outcome
    /// is the 5-bit sum `0b01110`.
    pub fn alu() -> Self {
        Benchmark::new("alu", generators::alu(), Some(vec![14]))
    }

    /// `n`-qubit GHZ preparation; ideal outcomes are all-zeros and
    /// all-ones.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn ghz(n: usize) -> Self {
        let ones = (1u64 << n) - 1;
        Benchmark::new(format!("GHZ-{n}"), generators::ghz(n), Some(vec![0, ones]))
    }

    /// §7's TriSwap kernel; the excitation ends on qubit 2.
    pub fn triswap() -> Self {
        Benchmark::new("TriSwap", generators::triswap(), Some(vec![0b100]))
    }

    /// Random short-distance CNOT kernel (`rnd-SD`).
    pub fn rnd_sd(n: usize, num_cnots: usize, seed: u64) -> Self {
        Benchmark::new(
            "rnd-SD",
            generators::rnd(n, num_cnots, RandDistance::Short, seed),
            None,
        )
    }

    /// Random long-distance CNOT kernel (`rnd-LD`).
    pub fn rnd_ld(n: usize, num_cnots: usize, seed: u64) -> Self {
        Benchmark::new(
            "rnd-LD",
            generators::rnd(n, num_cnots, RandDistance::Long, seed),
            None,
        )
    }

    /// 2-qubit Grover search for `marked`; the only ideal outcome is the
    /// marked item itself.
    ///
    /// # Panics
    ///
    /// Panics if `marked > 3`.
    pub fn grover2(marked: u64) -> Self {
        Benchmark::new(
            format!("grover2-{marked}"),
            generators::grover2(marked),
            Some(vec![marked]),
        )
    }

    /// `n`-qubit W state; ideal outcomes are the `n` one-hot strings.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn w_state(n: usize) -> Self {
        let accepted = (0..n).map(|i| 1u64 << i).collect();
        Benchmark::new(format!("w-{n}"), generators::w_state(n), Some(accepted))
    }

    /// Mirror benchmark: random layers followed by their inverse, so
    /// the only accepted outcome is all-zeros. The standard scalable
    /// machine-reliability probe.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn mirror(n: usize, depth: usize, seed: u64) -> Self {
        Benchmark::new(
            format!("mirror-{n}x{depth}"),
            generators::mirror(n, depth, seed),
            Some(vec![0]),
        )
    }
}

/// The seven Table 1 workloads, in table order: alu, bv-16, bv-20,
/// qft-12, qft-14, rnd-SD, rnd-LD.
///
/// # Examples
///
/// ```
/// use quva_benchmarks::table1_suite;
///
/// let suite = table1_suite();
/// assert_eq!(suite.len(), 7);
/// assert_eq!(suite[1].name(), "bv-16");
/// ```
pub fn table1_suite() -> Vec<Benchmark> {
    vec![
        Benchmark::alu(),
        Benchmark::bv(16),
        Benchmark::bv(20),
        Benchmark::qft(12),
        Benchmark::qft(14),
        Benchmark::rnd_sd(20, 80, 1),
        Benchmark::rnd_ld(20, 80, 2),
    ]
}

/// The §7 IBM-Q5 workloads: bv-3, bv-4, TriSwap, GHZ-3.
pub fn ibm_q5_suite() -> Vec<Benchmark> {
    vec![
        Benchmark::bv(3),
        Benchmark::bv(4),
        Benchmark::triswap(),
        Benchmark::ghz(3),
    ]
}

/// The §8 partitioning workloads, modified to 10 program qubits:
/// alu-10, bv-10, qft-10.
pub fn partition_suite() -> Vec<Benchmark> {
    vec![
        Benchmark::new("alu_10", generators::alu(), Some(vec![14])),
        Benchmark::new("bv_10", generators::bv(10), Some(vec![(1 << 9) - 1])),
        Benchmark::new("qft_10", generators::qft(10), None),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bv_accepts_only_secret() {
        let b = Benchmark::bv(4);
        assert!(b.is_success(0b111));
        assert!(!b.is_success(0b110));
    }

    #[test]
    fn ghz_accepts_both_poles() {
        let b = Benchmark::ghz(3);
        assert!(b.is_success(0));
        assert!(b.is_success(0b111));
        assert!(!b.is_success(0b010));
    }

    #[test]
    fn qft_accepts_everything() {
        let b = Benchmark::qft(4);
        assert!(b.is_success(0));
        assert!(b.is_success(13));
        assert_eq!(b.accepted(), None);
    }

    #[test]
    fn alu_expects_fourteen() {
        let b = Benchmark::alu();
        assert!(b.is_success(14));
        assert!(!b.is_success(9));
    }

    #[test]
    fn triswap_expects_excitation_on_q2() {
        let b = Benchmark::triswap();
        assert!(b.is_success(0b100));
        assert!(!b.is_success(0b001));
    }

    #[test]
    fn table1_names_and_sizes() {
        let suite = table1_suite();
        let names: Vec<&str> = suite.iter().map(Benchmark::name).collect();
        assert_eq!(
            names,
            ["alu", "bv-16", "bv-20", "qft-12", "qft-14", "rnd-SD", "rnd-LD"]
        );
        assert_eq!(suite[0].circuit().num_qubits(), 10);
        assert_eq!(suite[2].circuit().num_qubits(), 20);
        assert_eq!(suite[5].circuit().num_qubits(), 20);
    }

    #[test]
    fn q5_suite_fits_five_qubits() {
        for b in ibm_q5_suite() {
            assert!(b.circuit().num_qubits() <= 5, "{} too large", b.name());
        }
    }

    #[test]
    fn partition_suite_is_ten_qubits() {
        for b in partition_suite() {
            assert_eq!(b.circuit().num_qubits(), 10, "{}", b.name());
        }
    }
}
