//! # quva-benchmarks — the paper's NISQ workloads
//!
//! Generators for every workload the evaluation uses:
//!
//! * Table 1 set: [`alu`] (Cuccaro adder), [`bv`] (Bernstein–Vazirani),
//!   [`qft`], and the random kernels [`rnd`] (`rnd-SD` / `rnd-LD`);
//! * §7 IBM-Q5 set: `bv-3`, `bv-4`, [`triswap`], [`ghz`];
//! * §8 partitioning set: 10-qubit variants.
//!
//! [`Benchmark`] pairs a circuit with its success predicate;
//! [`table1_suite`], [`ibm_q5_suite`] and [`partition_suite`] reproduce
//! the paper's workload tables.
//!
//! # Examples
//!
//! ```
//! use quva_benchmarks::Benchmark;
//!
//! let bv = Benchmark::bv(16);
//! assert_eq!(bv.circuit().cnot_count(), 15);
//! assert!(bv.is_success((1 << 15) - 1)); // the all-ones secret
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod generators;
mod suite;

pub use generators::{
    alu, alu_adder, bv, bv_with_secret, ghz, grover2, mirror, qft, rnd, triswap, w_state, RandDistance,
};
pub use suite::{ibm_q5_suite, partition_suite, table1_suite, Benchmark};
