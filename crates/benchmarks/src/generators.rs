//! Generators for the paper's benchmark circuits (Table 1 and §7).

use quva_circuit::{Cbit, Circuit, Qubit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a Bernstein–Vazirani circuit over `n` qubits (`n − 1` data
/// qubits plus one ancilla) for the given secret bit-string.
///
/// The secret's bit `i` controls whether data qubit `i` CNOTs into the
/// ancilla; measuring the data register recovers the secret in one shot.
///
/// # Panics
///
/// Panics if `n < 2` or if the secret has bits at or above `n − 1`.
///
/// # Examples
///
/// ```
/// use quva_benchmarks::bv_with_secret;
///
/// let c = bv_with_secret(4, 0b111);
/// assert_eq!(c.num_qubits(), 4);
/// assert_eq!(c.cnot_count(), 3);
/// ```
pub fn bv_with_secret(n: usize, secret: u64) -> Circuit {
    assert!(n >= 2, "Bernstein–Vazirani needs a data qubit and an ancilla");
    let data = n - 1;
    assert!(
        secret < (1u64 << data),
        "secret has bits beyond the data register"
    );
    let mut c = Circuit::new(n);
    let ancilla = Qubit((n - 1) as u32);
    // |-> on the ancilla
    c.x(ancilla);
    c.h(ancilla);
    for i in 0..data {
        c.h(Qubit(i as u32));
    }
    for i in 0..data {
        if secret >> i & 1 == 1 {
            c.cnot(Qubit(i as u32), ancilla);
        }
    }
    for i in 0..data {
        c.h(Qubit(i as u32));
    }
    for i in 0..data {
        c.measure(Qubit(i as u32), Cbit(i as u32));
    }
    c
}

/// Bernstein–Vazirani with the all-ones secret (the maximal-CNOT
/// configuration the paper's `bv-n` rows use).
pub fn bv(n: usize) -> Circuit {
    bv_with_secret(n, (1u64 << (n - 1)) - 1)
}

/// Builds an `n`-qubit Quantum Fourier Transform with controlled-phase
/// gates decomposed to {CNOT, Rz} and the final reversal SWAPs.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use quva_benchmarks::qft;
///
/// let c = qft(4);
/// // each of the C(4,2)=6 controlled phases costs 2 CNOTs
/// assert_eq!(c.cnot_count(), 12);
/// assert_eq!(c.swap_count(), 2);
/// ```
pub fn qft(n: usize) -> Circuit {
    assert!(n >= 1, "QFT needs at least one qubit");
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.h(Qubit(i as u32));
        for j in (i + 1)..n {
            let angle = std::f64::consts::PI / (1u64 << (j - i)) as f64;
            controlled_phase(&mut c, Qubit(j as u32), Qubit(i as u32), angle);
        }
    }
    // bit reversal
    for i in 0..n / 2 {
        c.swap(Qubit(i as u32), Qubit((n - 1 - i) as u32));
    }
    c.measure_all();
    c
}

/// Appends a controlled-phase CU1(angle) using the standard
/// {Rz, CNOT} decomposition.
fn controlled_phase(c: &mut Circuit, control: Qubit, target: Qubit, angle: f64) {
    c.rz(angle / 2.0, control);
    c.cnot(control, target);
    c.rz(-angle / 2.0, target);
    c.cnot(control, target);
    c.rz(angle / 2.0, target);
}

/// Appends a Toffoli (CCNOT) via the textbook 6-CNOT, 7-T decomposition.
fn toffoli(c: &mut Circuit, a: Qubit, b: Qubit, t: Qubit) {
    c.h(t);
    c.cnot(b, t);
    c.tdg(t);
    c.cnot(a, t);
    c.t(t);
    c.cnot(b, t);
    c.tdg(t);
    c.cnot(a, t);
    c.t(b);
    c.t(t);
    c.h(t);
    c.cnot(a, b);
    c.t(a);
    c.tdg(b);
    c.cnot(a, b);
}

/// Builds the paper's `alu` workload: a Cuccaro ripple-carry quantum
/// adder computing `a + b` for two `bits`-bit operands, on
/// `2·bits + 2` qubits (carry-in ancilla + a-register + b-register +
/// carry-out). `bits = 4` gives the 10-qubit `alu` of Table 1.
///
/// Register layout: qubit 0 = carry-in, qubits `1..=bits` = a, qubits
/// `bits+1..=2·bits` = b (receives the sum), last qubit = carry-out.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn alu_adder(bits: usize, a_value: u64, b_value: u64) -> Circuit {
    assert!(bits >= 1, "adder needs at least one bit");
    let n = 2 * bits + 2;
    let mut c = Circuit::new(n);
    let a = |i: usize| Qubit((1 + i) as u32);
    let b = |i: usize| Qubit((1 + bits + i) as u32);
    let carry_in = Qubit(0);
    let carry_out = Qubit((n - 1) as u32);
    // operand initialization
    for i in 0..bits {
        if a_value >> i & 1 == 1 {
            c.x(a(i));
        }
        if b_value >> i & 1 == 1 {
            c.x(b(i));
        }
    }
    // MAJ ladder
    maj(&mut c, carry_in, b(0), a(0));
    for i in 1..bits {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cnot(a(bits - 1), carry_out);
    // UMA ladder
    for i in (1..bits).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, carry_in, b(0), a(0));
    // read the sum from the b register and the carry
    for i in 0..bits {
        c.measure(b(i), Cbit(i as u32));
    }
    c.measure(carry_out, Cbit(bits as u32));
    c
}

/// The Table 1 `alu` benchmark: the 10-qubit, 4-bit Cuccaro adder
/// computing 9 + 5.
pub fn alu() -> Circuit {
    alu_adder(4, 9, 5)
}

fn maj(c: &mut Circuit, x: Qubit, y: Qubit, z: Qubit) {
    c.cnot(z, y);
    c.cnot(z, x);
    toffoli(c, x, y, z);
}

fn uma(c: &mut Circuit, x: Qubit, y: Qubit, z: Qubit) {
    toffoli(c, x, y, z);
    c.cnot(z, x);
    c.cnot(x, y);
}

/// Builds an `n`-qubit GHZ state preparation followed by measurement
/// (§7's `GHZ-3`): H on qubit 0, then a CNOT chain.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn ghz(n: usize) -> Circuit {
    assert!(n >= 2, "GHZ needs at least two qubits");
    let mut c = Circuit::new(n);
    c.h(Qubit(0));
    for i in 1..n {
        c.cnot(Qubit((i - 1) as u32), Qubit(i as u32));
    }
    c.measure_all();
    c
}

/// Builds §7's `TriSwap` kernel: rotate the basis state |100⟩ through
/// three qubits with two SWAPs (each compiled to 3 CNOTs on hardware),
/// ending in |001⟩.
pub fn triswap() -> Circuit {
    let mut c = Circuit::new(3);
    c.x(Qubit(0));
    c.swap(Qubit(0), Qubit(1));
    c.swap(Qubit(1), Qubit(2));
    c.measure_all();
    c
}

/// Communication-distance band for the random benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandDistance {
    /// `rnd-SD`: CNOT partners at index distance 1–2 (local traffic).
    Short,
    /// `rnd-LD`: CNOT partners at index distance ≥ n/4 (global traffic).
    Long,
}

/// Builds the paper's randomized CNOT benchmark: `num_cnots` CNOTs over
/// `n` qubits with partner distance governed by `distance`, followed by
/// measurement of every qubit. Deterministic per seed.
///
/// # Panics
///
/// Panics if `n < 4`.
///
/// # Examples
///
/// ```
/// use quva_benchmarks::{rnd, RandDistance};
///
/// let c = rnd(20, 100, RandDistance::Short, 1);
/// assert_eq!(c.cnot_count(), 100);
/// ```
pub fn rnd(n: usize, num_cnots: usize, distance: RandDistance, seed: u64) -> Circuit {
    assert!(n >= 4, "random benchmark needs at least 4 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..num_cnots {
        let (a, b) = loop {
            let a = rng.random_range(0..n);
            let d = match distance {
                RandDistance::Short => rng.random_range(1..=2usize),
                RandDistance::Long => rng.random_range(n / 4..n),
            };
            let b = if rng.random::<bool>() {
                a + d
            } else {
                a.wrapping_sub(d)
            };
            if b < n && b != a {
                break (a, b);
            }
        };
        c.cnot(Qubit(a as u32), Qubit(b as u32));
    }
    c.measure_all();
    c
}

/// Builds a *mirror* benchmark: a random layered circuit followed by
/// its inverse, so an ideal machine always returns |0…0⟩. Mirror
/// circuits are the standard scalable NISQ reliability probe — any
/// deviation from the all-zeros outcome is machine error, not
/// algorithmic distribution.
///
/// `depth` counts forward layers; each layer applies a random
/// single-qubit gate to every qubit and CNOTs across a random pairing.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use quva_benchmarks::mirror;
///
/// let c = mirror(4, 3, 7);
/// // forward and inverse halves plus measurement
/// assert_eq!(c.measure_count(), 4);
/// assert_eq!(c.cnot_count() % 2, 0);
/// ```
pub fn mirror(n: usize, depth: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "mirror benchmark needs at least 2 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut forward = Circuit::new(n);
    for _ in 0..depth {
        for q in 0..n {
            let kind = match rng.random_range(0..5) {
                0 => quva_circuit::OneQubitKind::H,
                1 => quva_circuit::OneQubitKind::S,
                2 => quva_circuit::OneQubitKind::T,
                3 => quva_circuit::OneQubitKind::X,
                _ => quva_circuit::OneQubitKind::Rz(rng.random_range(-314..314) as f64 / 100.0),
            };
            forward.one(kind, Qubit(q as u32));
        }
        // random disjoint pairing
        let mut order: Vec<u32> = (0..n as u32).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        for pair in order.chunks_exact(2) {
            forward.cnot(Qubit(pair[0]), Qubit(pair[1]));
        }
    }
    // the forward half is built gate-by-gate with no measurements, so
    // inversion cannot fail; fall back to an empty suffix structurally
    let inverse = forward.inverse().unwrap_or_else(|_| Circuit::new(n));
    let mut c = forward;
    c.append(&inverse);
    c.measure_all();
    c
}

/// Builds a 2-qubit Grover search for the given marked item (0–3):
/// one Grover iteration finds the item with certainty on an ideal
/// machine — the smallest algorithm with a deterministic non-trivial
/// answer, a classic NISQ demo kernel.
///
/// # Panics
///
/// Panics if `marked > 3`.
///
/// # Examples
///
/// ```
/// use quva_benchmarks::grover2;
///
/// let c = grover2(0b10);
/// assert_eq!(c.num_qubits(), 2);
/// assert_eq!(c.measure_count(), 2);
/// ```
pub fn grover2(marked: u64) -> Circuit {
    assert!(marked <= 3, "2-qubit Grover marks an item in 0..4");
    let mut c = Circuit::new(2);
    let (q0, q1) = (Qubit(0), Qubit(1));
    c.h(q0);
    c.h(q1);
    // oracle: flip the phase of |marked⟩ via CZ conjugated by X's
    if marked & 1 == 0 {
        c.x(q0);
    }
    if marked >> 1 & 1 == 0 {
        c.x(q1);
    }
    cz(&mut c, q0, q1);
    if marked & 1 == 0 {
        c.x(q0);
    }
    if marked >> 1 & 1 == 0 {
        c.x(q1);
    }
    // diffusion about the mean
    c.h(q0);
    c.h(q1);
    c.x(q0);
    c.x(q1);
    cz(&mut c, q0, q1);
    c.x(q0);
    c.x(q1);
    c.h(q0);
    c.h(q1);
    c.measure_all();
    c
}

/// Appends a controlled-Z as H-conjugated CNOT.
fn cz(c: &mut Circuit, control: Qubit, target: Qubit) {
    c.h(target);
    c.cnot(control, target);
    c.h(target);
}

/// Builds an `n`-qubit W-state preparation (a single excitation in
/// equal superposition over all qubits) using the cascade of
/// controlled-Ry rotations plus CNOTs, followed by measurement. Ideal
/// outcomes are exactly the `n` one-hot bit strings.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn w_state(n: usize) -> Circuit {
    assert!(n >= 2, "a W state needs at least 2 qubits");
    let mut c = Circuit::new(n);
    c.x(Qubit(0));
    // distribute the excitation: at step k (0-based), split amplitude
    // between qubit k and qubit k+1 with the angle that leaves 1/(n-k)
    // of the remaining weight on qubit k
    for k in 0..n - 1 {
        let remaining = (n - k) as f64;
        let theta = 2.0 * (1.0 / remaining.sqrt()).acos();
        let (a, b) = (Qubit(k as u32), Qubit((k + 1) as u32));
        // controlled-Ry(theta) from a onto b, decomposed to Ry halves
        // around a CNOT
        c.ry(theta / 2.0, b);
        c.cnot(a, b);
        c.ry(-theta / 2.0, b);
        c.cnot(a, b);
        // move the "remaining" excitation marker: if b took the
        // excitation, clear a
        c.cnot(b, a);
    }
    c.measure_all();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva_circuit::Gate;

    #[test]
    fn bv_structure() {
        let c = bv(16);
        assert_eq!(c.num_qubits(), 16);
        assert_eq!(c.cnot_count(), 15);
        assert_eq!(c.measure_count(), 15);
        // H data twice + ancilla H = 31, plus ancilla X
        assert_eq!(c.one_qubit_gate_count(), 32);
    }

    #[test]
    fn bv_secret_controls_cnots() {
        let c = bv_with_secret(5, 0b1010);
        assert_eq!(c.cnot_count(), 2);
    }

    #[test]
    #[should_panic(expected = "beyond the data register")]
    fn bv_rejects_oversized_secret() {
        bv_with_secret(3, 0b100);
    }

    #[test]
    fn qft_gate_counts() {
        let n = 12;
        let c = qft(n);
        let pairs = n * (n - 1) / 2;
        assert_eq!(c.cnot_count(), 2 * pairs);
        assert_eq!(c.swap_count(), n / 2);
        assert_eq!(c.measure_count(), n);
    }

    #[test]
    fn qft_table1_scale() {
        // Table 1: qft-12 has ~344 instructions — ours lands in that band
        let c = qft(12);
        assert!(
            (300..400).contains(&c.op_count()),
            "qft-12 op count {}",
            c.op_count()
        );
    }

    #[test]
    fn alu_is_ten_qubits_and_table1_scale() {
        let c = alu();
        assert_eq!(c.num_qubits(), 10);
        // Table 1 lists 299 instructions in IBM's u1/u2/u3+cx basis; our
        // compact Toffoli decomposition lands lower but same order.
        assert!(
            (120..350).contains(&c.op_count()),
            "alu op count {}",
            c.op_count()
        );
        // 8 toffolis x 6 CX + 2 CX per MAJ/UMA + carry CX
        assert_eq!(c.cnot_count(), 8 * 6 + 8 * 2 + 1);
    }

    #[test]
    fn ghz_chain() {
        let c = ghz(3);
        assert_eq!(c.cnot_count(), 2);
        assert_eq!(c.measure_count(), 3);
    }

    #[test]
    fn triswap_two_swaps() {
        let c = triswap();
        assert_eq!(c.swap_count(), 2);
        assert_eq!(c.total_cnot_cost(), 6);
    }

    #[test]
    fn rnd_is_deterministic_per_seed() {
        let a = rnd(20, 100, RandDistance::Long, 5);
        let b = rnd(20, 100, RandDistance::Long, 5);
        assert_eq!(a, b);
        let c = rnd(20, 100, RandDistance::Long, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn rnd_short_distance_band() {
        let c = rnd(20, 100, RandDistance::Short, 2);
        for g in c.gates() {
            if let Gate::Cnot { control, target } = g {
                let d = control.index().abs_diff(target.index());
                assert!((1..=2).contains(&d), "short-distance CNOT at distance {d}");
            }
        }
    }

    #[test]
    fn rnd_long_distance_band() {
        let c = rnd(20, 100, RandDistance::Long, 2);
        for g in c.gates() {
            if let Gate::Cnot { control, target } = g {
                let d = control.index().abs_diff(target.index());
                assert!(d >= 5, "long-distance CNOT at distance {d}");
            }
        }
    }

    #[test]
    fn mirror_is_deterministic_and_balanced() {
        let a = mirror(4, 3, 7);
        let b = mirror(4, 3, 7);
        assert_eq!(a, b);
        assert_ne!(a, mirror(4, 3, 8));
        // the forward and inverse halves contribute equal CNOT counts
        assert_eq!(a.cnot_count() % 2, 0);
        assert_eq!(a.measure_count(), 4);
    }

    #[test]
    fn grover2_structure() {
        let c = grover2(3);
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.cnot_count(), 2); // two CZs, each one CNOT
        assert!(std::panic::catch_unwind(|| grover2(4)).is_err());
    }

    #[test]
    fn w_state_structure() {
        let c = w_state(4);
        assert_eq!(c.num_qubits(), 4);
        // 3 cascade steps x 3 CNOTs
        assert_eq!(c.cnot_count(), 9);
        assert_eq!(c.measure_count(), 4);
        assert!(std::panic::catch_unwind(|| w_state(1)).is_err());
    }

    #[test]
    fn generators_validate_inputs() {
        assert!(std::panic::catch_unwind(|| bv(1)).is_err());
        assert!(std::panic::catch_unwind(|| ghz(1)).is_err());
        assert!(std::panic::catch_unwind(|| rnd(3, 10, RandDistance::Short, 0)).is_err());
        assert!(std::panic::catch_unwind(|| alu_adder(0, 0, 0)).is_err());
    }
}
