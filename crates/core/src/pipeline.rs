//! The statically-checked compile pipeline: compilation as a sequence
//! of registered passes over a typed [`PassContext`], each declaring a
//! [`PassContract`] — the invariants it requires, guarantees, and
//! clobbers — so that a whole pipeline can be *validated before it
//! runs*.
//!
//! The contract vocabulary is a fixed lattice of [`Invariant`]s.
//! [`Pipeline::violations`] walks the pass sequence with a forward
//! dataflow over that lattice and reports every misconfiguration:
//! a pass whose precondition no earlier pass establishes, a pass whose
//! precondition an intermediate pass *clobbered*, a pass that neither
//! adds nor disturbs anything (dead in this pipeline), and a pipeline
//! that never produces a compiled circuit at all. Only a pipeline with
//! zero violations converts into a [`CheckedPipeline`], the sole type
//! that can execute — a rejected pipeline is refused before any pass
//! runs.
//!
//! `quva-analysis::contracts` maps these typed violations onto the
//! stable `QV5xx` lint codes; `quva pipeline --check` renders them.
//!
//! The four paper policies are expressible as pipeline configurations
//! ([`Pipeline::for_policy`]) whose compiled output is byte-identical
//! to the historical monolithic compiler — pinned by the golden QASM
//! tests in `quva-cli`. On top of the single-candidate [`RoutePass`],
//! [`PortfolioRoutePass`] keeps several candidate routings alive per
//! layer (ForeSight-style) and prunes them by *static* projected ESP —
//! no Monte-Carlo in the loop.

use std::error::Error;
use std::fmt;

use quva_circuit::{Circuit, Gate, PhysQubit};
use quva_device::{Device, HopMatrix};
use quva_sim::CoherenceModel;

use crate::allocator::AllocationStrategy;
use crate::compiler::{
    metric_distances, route, route_positions, CompileAudit, CompileError, CompiledCircuit, MappingPolicy,
    RouteBase,
};
use crate::mapping::Mapping;
use crate::router::{Router, RoutingMetric};

/// The fixed invariant vocabulary pass contracts draw from.
///
/// Invariants describe what has been *established about the context* at
/// a point in the pipeline: they are set by a pass's guarantees and
/// removed by a later pass's clobbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// The working circuit has been through the peephole optimizer.
    Optimized,
    /// An initial program-to-physical mapping exists.
    Mapped,
    /// A compiled circuit exists whose two-qubit gates all sit on
    /// coupling links reachable from the mapping.
    Routed,
    /// Every two-qubit gate of the compiled circuit addresses an
    /// *active* coupler.
    CouplerLegal,
    /// Replaying the compiled SWAPs from the initial mapping reproduces
    /// the final mapping.
    PermutationConsistent,
    /// A static ESP bound has been computed for the compiled circuit.
    EspBounded,
    /// The compiled circuit is the best of a candidate portfolio, not
    /// merely the first one found.
    BestOfPortfolio,
    /// The compiled circuit passed a post-compile audit.
    Verified,
}

impl Invariant {
    /// Every invariant, in declaration order.
    pub const ALL: [Invariant; 8] = [
        Invariant::Optimized,
        Invariant::Mapped,
        Invariant::Routed,
        Invariant::CouplerLegal,
        Invariant::PermutationConsistent,
        Invariant::EspBounded,
        Invariant::BestOfPortfolio,
        Invariant::Verified,
    ];

    /// The stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::Optimized => "Optimized",
            Invariant::Mapped => "Mapped",
            Invariant::Routed => "Routed",
            Invariant::CouplerLegal => "CouplerLegal",
            Invariant::PermutationConsistent => "PermutationConsistent",
            Invariant::EspBounded => "EspBounded",
            Invariant::BestOfPortfolio => "BestOfPortfolio",
            Invariant::Verified => "Verified",
        }
    }

    fn idx(self) -> usize {
        match self {
            Invariant::Optimized => 0,
            Invariant::Mapped => 1,
            Invariant::Routed => 2,
            Invariant::CouplerLegal => 3,
            Invariant::PermutationConsistent => 4,
            Invariant::EspBounded => 5,
            Invariant::BestOfPortfolio => 6,
            Invariant::Verified => 7,
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a pass declares about itself: the invariants it needs live on
/// entry, the ones it establishes, and the ones it destroys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassContract {
    /// Invariants that must be live when the pass runs.
    pub requires: &'static [Invariant],
    /// Invariants live after the pass ran.
    pub guarantees: &'static [Invariant],
    /// Invariants the pass destroys (applied before `guarantees`).
    pub clobbers: &'static [Invariant],
}

/// One statically-detected pipeline misconfiguration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractViolation {
    kind: ContractViolationKind,
    pass: &'static str,
    index: usize,
}

/// The misconfiguration classes the checker distinguishes. Each maps
/// onto a stable `QV5xx` lint code in `quva-analysis`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractViolationKind {
    /// A required invariant is not live and no earlier pass ever
    /// established it (`QV501`).
    MissingPrecondition {
        /// The invariant the pass requires.
        invariant: Invariant,
    },
    /// A required invariant was established and then destroyed by an
    /// intermediate pass (`QV502`).
    ClobberedInvariant {
        /// The invariant the pass requires.
        invariant: Invariant,
        /// The pass that destroyed it.
        clobbered_by: &'static str,
    },
    /// The pass neither adds a new invariant nor disturbs a live one:
    /// it is dead in this pipeline (`QV503`).
    UnreachablePass,
    /// The pipeline terminates without the invariant a compiled output
    /// needs (`QV504`).
    OutputMissing {
        /// The missing terminal invariant.
        invariant: Invariant,
    },
}

impl ContractViolation {
    /// The misconfiguration class.
    pub fn kind(&self) -> &ContractViolationKind {
        &self.kind
    }

    /// The name of the offending pass (`"<end>"` for terminal checks).
    pub fn pass(&self) -> &'static str {
        self.pass
    }

    /// The position of the offending pass in the pipeline (the pass
    /// count for terminal checks).
    pub fn index(&self) -> usize {
        self.index
    }
}

impl fmt::Display for ContractViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ContractViolationKind::MissingPrecondition { invariant } => write!(
                f,
                "pass '{}' (position {}) requires {invariant}, which no earlier pass guarantees",
                self.pass, self.index
            ),
            ContractViolationKind::ClobberedInvariant {
                invariant,
                clobbered_by,
            } => write!(
                f,
                "pass '{}' (position {}) requires {invariant}, which pass '{clobbered_by}' clobbered",
                self.pass, self.index
            ),
            ContractViolationKind::UnreachablePass => write!(
                f,
                "pass '{}' (position {}) adds no invariant and disturbs none: it is dead in this pipeline",
                self.pass, self.index
            ),
            ContractViolationKind::OutputMissing { invariant } => write!(
                f,
                "pipeline ends after {} pass(es) without establishing {invariant}: no compiled circuit \
                 would be produced",
                self.index
            ),
        }
    }
}

/// The aggregate outcome of a failed contract check: every violation,
/// in pipeline order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractError {
    violations: Vec<ContractViolation>,
}

impl ContractError {
    /// Every violation, in pipeline order.
    pub fn violations(&self) -> &[ContractViolation] {
        &self.violations
    }

    fn single(v: ContractViolation) -> Self {
        ContractError { violations: vec![v] }
    }
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline contract check failed:")?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

impl Error for ContractError {}

/// Everything a compile pass can read and write: the source program,
/// the target device, and the artifacts established so far.
#[derive(Debug)]
pub struct PassContext<'a> {
    /// The logical program handed to the pipeline.
    pub source: &'a Circuit,
    /// The target device.
    pub device: &'a Device,
    /// The rewritten working circuit, if an optimizing pass produced
    /// one; passes read the program through [`PassContext::circuit`].
    pub work: Option<Circuit>,
    /// The initial program-to-physical mapping, once allocated.
    pub mapping: Option<Mapping>,
    /// The compiled circuit, once routed.
    pub compiled: Option<CompiledCircuit>,
    /// The static ESP point estimate of `compiled`, when a pass
    /// computed one (portfolio routing does).
    pub esp_point: Option<f64>,
    /// The position of the currently running pass (set by the runner;
    /// used to anchor runtime contract errors).
    pub pass_index: usize,
}

impl<'a> PassContext<'a> {
    fn new(source: &'a Circuit, device: &'a Device) -> Self {
        PassContext {
            source,
            device,
            work: None,
            mapping: None,
            compiled: None,
            esp_point: None,
            pass_index: 0,
        }
    }

    /// The circuit passes should compile: the optimized working copy
    /// when one exists, the source program otherwise.
    pub fn circuit(&self) -> &Circuit {
        self.work.as_ref().unwrap_or(self.source)
    }

    /// A typed runtime error for a pass entered without `invariant`
    /// materialized — unreachable through [`CheckedPipeline`], but
    /// custom passes with dishonest contracts degrade to this instead
    /// of panicking.
    pub fn missing(&self, pass: &'static str, invariant: Invariant) -> CompileError {
        CompileError::Contract(ContractError::single(ContractViolation {
            kind: ContractViolationKind::MissingPrecondition { invariant },
            pass,
            index: self.pass_index,
        }))
    }
}

/// One registered compile pass. Mirrors `quva-analysis::PassRegistry`'s
/// pass idiom, with a declared [`PassContract`] on top.
///
/// `Send + Sync` is a supertrait so checked pipelines can be cached and
/// shared across worker threads (`quvad` reuses them across jobs).
pub trait CompilePass: Send + Sync {
    /// The stable pass name shown in reports and span names.
    fn name(&self) -> &'static str;
    /// The declared contract, validated before any pass runs.
    fn contract(&self) -> PassContract;
    /// Executes the pass over the evolving context.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`] aborts the pipeline at this pass.
    fn run(&self, cx: &mut PassContext<'_>) -> Result<(), CompileError>;
}

/// Peephole-optimizes the working circuit (`quva-circuit::optimize`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizePass;

impl CompilePass for OptimizePass {
    fn name(&self) -> &'static str {
        "optimize"
    }

    fn contract(&self) -> PassContract {
        PassContract {
            requires: &[],
            guarantees: &[Invariant::Optimized],
            // rewriting the program invalidates every placement-derived
            // artifact
            clobbers: &[
                Invariant::Mapped,
                Invariant::Routed,
                Invariant::CouplerLegal,
                Invariant::PermutationConsistent,
                Invariant::EspBounded,
                Invariant::BestOfPortfolio,
                Invariant::Verified,
            ],
        }
    }

    fn run(&self, cx: &mut PassContext<'_>) -> Result<(), CompileError> {
        let _opt = quva_obs::span("compile", "compile.optimize");
        let (optimized, stats) = quva_circuit::optimize(cx.circuit());
        quva_obs::counter("optimize.gates_removed", stats.total_removed() as u64);
        cx.work = Some(optimized);
        cx.mapping = None;
        cx.compiled = None;
        cx.esp_point = None;
        Ok(())
    }
}

/// Establishes the initial mapping with an [`AllocationStrategy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocatePass {
    /// The placement strategy to run.
    pub strategy: AllocationStrategy,
}

impl CompilePass for AllocatePass {
    fn name(&self) -> &'static str {
        "allocate"
    }

    fn contract(&self) -> PassContract {
        PassContract {
            requires: &[],
            guarantees: &[Invariant::Mapped],
            clobbers: &[
                Invariant::Routed,
                Invariant::CouplerLegal,
                Invariant::PermutationConsistent,
                Invariant::EspBounded,
                Invariant::BestOfPortfolio,
                Invariant::Verified,
            ],
        }
    }

    fn run(&self, cx: &mut PassContext<'_>) -> Result<(), CompileError> {
        let mapping = {
            let _alloc = quva_obs::span("compile", "compile.allocate");
            self.strategy
                .allocate(cx.circuit(), cx.device)
                .map_err(CompileError::Allocation)?
        };
        cx.mapping = Some(mapping);
        cx.compiled = None;
        cx.esp_point = None;
        Ok(())
    }
}

/// Routes the mapped circuit with the single-candidate stepwise router
/// — the historical `MappingPolicy` movement engine, byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutePass {
    /// The movement cost metric.
    pub metric: RoutingMetric,
}

impl CompilePass for RoutePass {
    fn name(&self) -> &'static str {
        "route"
    }

    fn contract(&self) -> PassContract {
        PassContract {
            requires: &[Invariant::Mapped],
            guarantees: &[
                Invariant::Routed,
                Invariant::CouplerLegal,
                Invariant::PermutationConsistent,
            ],
            clobbers: &[
                Invariant::EspBounded,
                Invariant::BestOfPortfolio,
                Invariant::Verified,
            ],
        }
    }

    fn run(&self, cx: &mut PassContext<'_>) -> Result<(), CompileError> {
        let mapping = match cx.mapping.clone() {
            Some(m) => m,
            None => return Err(cx.missing("route", Invariant::Mapped)),
        };
        let compiled = route(cx.circuit(), cx.device, mapping, self.metric)?;
        cx.compiled = Some(compiled);
        cx.esp_point = None;
        Ok(())
    }
}

/// The VQA portfolio selection (paper Fig. 13): also compiles an
/// alternative policy and keeps whichever output the analytic
/// gate-error model predicts to be more reliable. Ties keep the
/// current (restricted-placement) output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectAlternativePass {
    /// The unrestricted policy to compile as the comparison candidate.
    pub alternative: MappingPolicy,
}

impl CompilePass for SelectAlternativePass {
    fn name(&self) -> &'static str {
        "select"
    }

    fn contract(&self) -> PassContract {
        PassContract {
            requires: &[Invariant::Routed],
            guarantees: &[Invariant::BestOfPortfolio],
            clobbers: &[Invariant::EspBounded, Invariant::Verified],
        }
    }

    fn run(&self, cx: &mut PassContext<'_>) -> Result<(), CompileError> {
        let current = match cx.compiled.take() {
            Some(c) => c,
            None => return Err(cx.missing("select", Invariant::Routed)),
        };
        let _portfolio = quva_obs::span("compile", "compile.portfolio");
        let device = cx.device;
        let alt = Pipeline::for_policy(&self.alternative)
            .validate()
            .ok()
            .and_then(|p| p.run(cx.circuit(), device).ok());
        let pst = |c: &CompiledCircuit| {
            c.analytic_pst(device, CoherenceModel::Disabled)
                .map(|r| r.pst)
                .unwrap_or(0.0)
        };
        cx.compiled = Some(match alt {
            Some(alt) if pst(&alt) > pst(&current) => {
                quva_obs::counter("compile.portfolio.greedy_won", 1);
                alt
            }
            Some(_) => {
                quva_obs::counter("compile.portfolio.vqa_won", 1);
                current
            }
            None => current,
        });
        cx.esp_point = None;
        Ok(())
    }
}

/// Runs a post-compile audit exactly once per compile.
pub struct VerifyPass<'v> {
    auditor: &'v dyn CompileAudit,
}

impl<'v> VerifyPass<'v> {
    /// A verify pass over the given auditor.
    pub fn new(auditor: &'v dyn CompileAudit) -> Self {
        VerifyPass { auditor }
    }
}

impl fmt::Debug for VerifyPass<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VerifyPass").finish_non_exhaustive()
    }
}

impl CompilePass for VerifyPass<'_> {
    fn name(&self) -> &'static str {
        "verify"
    }

    fn contract(&self) -> PassContract {
        PassContract {
            requires: &[
                Invariant::Routed,
                Invariant::CouplerLegal,
                Invariant::PermutationConsistent,
            ],
            guarantees: &[Invariant::Verified],
            clobbers: &[],
        }
    }

    fn run(&self, cx: &mut PassContext<'_>) -> Result<(), CompileError> {
        let compiled = match cx.compiled.as_ref() {
            Some(c) => c,
            None => return Err(cx.missing("verify", Invariant::Routed)),
        };
        let _verify = quva_obs::span("compile", "compile.verify");
        quva_obs::counter("compile.verify.runs", 1);
        self.auditor
            .audit(cx.circuit(), cx.device, compiled)
            .map_err(CompileError::Verification)
    }
}

/// ForeSight-style multi-candidate routing: per circuit layer, every
/// surviving candidate is extended under a small family of routing
/// metrics, and the beam is pruned to `width` candidates ranked by
/// *static* projected ESP (the analytic success-probability point
/// estimate — no Monte-Carlo in the loop).
///
/// The candidate that always extends with the base metric is protected
/// from pruning, so the final selection can never score below the
/// single-candidate [`RoutePass`] baseline for the same metric — the
/// structural analogue of the VQA-never-loses-to-VQM portfolio
/// property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortfolioRoutePass {
    /// The base movement metric (the protected candidate's).
    pub metric: RoutingMetric,
    /// How many candidates stay alive per layer (min 1).
    pub width: usize,
}

impl PortfolioRoutePass {
    /// The metric family candidates are extended under: the base
    /// metric first (the protected chain), then the remaining distinct
    /// paper metrics.
    fn metric_family(&self) -> Vec<RoutingMetric> {
        let mut family = vec![self.metric];
        for m in [
            RoutingMetric::reliability(),
            RoutingMetric::reliability_hop_limited(),
            RoutingMetric::reliability_with_meeting_edge(),
            RoutingMetric::Hops,
        ] {
            if !family.contains(&m) {
                family.push(m);
            }
        }
        family
    }
}

struct RouteCandidate {
    mapping: Mapping,
    out: Circuit<PhysQubit>,
    inserted: usize,
    protected: bool,
    score: f64,
}

impl CompilePass for PortfolioRoutePass {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn contract(&self) -> PassContract {
        PassContract {
            requires: &[Invariant::Mapped],
            guarantees: &[
                Invariant::Routed,
                Invariant::CouplerLegal,
                Invariant::PermutationConsistent,
                Invariant::EspBounded,
                Invariant::BestOfPortfolio,
            ],
            clobbers: &[Invariant::Verified],
        }
    }

    fn run(&self, cx: &mut PassContext<'_>) -> Result<(), CompileError> {
        let initial = match cx.mapping.clone() {
            Some(m) => m,
            None => return Err(cx.missing("portfolio", Invariant::Mapped)),
        };
        let _route_span = quva_obs::span("compile", "compile.route");
        let device = cx.device;
        let width = self.width.max(1);
        let (compiled, score) = {
            let circuit = cx.circuit();
            let base = RouteBase::of(circuit);
            let hops = HopMatrix::of_active(device);
            let family = self.metric_family();
            // per-metric distance tables and excess-weight probes; the
            // degradation warning fires once (for the base metric only)
            let tables: Vec<(RoutingMetric, _, Option<Router<'_>>)> = family
                .iter()
                .enumerate()
                .map(|(mi, &m)| {
                    let (dist, usable) = metric_distances(device, m, mi == 0);
                    let probe =
                        (quva_obs::enabled() && usable && matches!(m, RoutingMetric::Reliability { .. }))
                            .then(|| Router::new(device, m));
                    (m, dist, probe)
                })
                .collect();

            let mut candidates = vec![RouteCandidate {
                mapping: initial.clone(),
                out: Circuit::with_cbits(device.num_qubits(), circuit.num_cbits().max(1)),
                inserted: 0,
                protected: true,
                score: 1.0,
            }];

            for &(lo, hi) in &base.layer_bounds {
                let mut children: Vec<RouteCandidate> = Vec::new();
                let mut pruned = 0u64;
                for cand in &candidates {
                    for (mi, (metric, dist, probe)) in tables.iter().enumerate() {
                        let mut child = RouteCandidate {
                            mapping: cand.mapping.clone(),
                            out: cand.out.clone(),
                            inserted: cand.inserted,
                            protected: cand.protected && mi == 0,
                            score: 0.0,
                        };
                        let routed = route_positions(
                            circuit,
                            device,
                            &hops,
                            dist,
                            *metric,
                            probe.as_ref(),
                            &base,
                            lo..hi,
                            &mut child.mapping,
                            &mut child.out,
                            &mut child.inserted,
                        );
                        match routed {
                            Ok(()) => {
                                child.score = static_esp_point(device, &child.out);
                                // identical siblings add no diversity;
                                // the earliest (base-metric-first) copy
                                // survives, so the protected chain is
                                // never the one dropped
                                let duplicate = children.iter().any(|c| {
                                    c.score.to_bits() == child.score.to_bits()
                                        && c.inserted == child.inserted
                                        && c.mapping == child.mapping
                                });
                                if duplicate {
                                    pruned += 1;
                                } else {
                                    children.push(child);
                                }
                            }
                            // the protected chain failing means the
                            // single-candidate baseline fails: propagate
                            // its error instead of silently switching
                            // metric
                            Err(e) if child.protected => return Err(e),
                            Err(_) => pruned += 1,
                        }
                    }
                }
                // prune to the beam width by projected static ESP;
                // the protected chain always survives
                let mut ranked: Vec<usize> = (0..children.len()).collect();
                ranked.sort_by(|&ia, &ib| {
                    children[ib]
                        .score
                        .total_cmp(&children[ia].score)
                        .then_with(|| ia.cmp(&ib))
                });
                let mut keep: Vec<usize> = Vec::with_capacity(width);
                if let Some(pi) = children.iter().position(|c| c.protected) {
                    keep.push(pi);
                }
                for i in ranked {
                    if keep.len() >= width {
                        break;
                    }
                    if !keep.contains(&i) {
                        keep.push(i);
                    }
                }
                keep.sort_unstable();
                pruned += (children.len() - keep.len()) as u64;
                let mut next = Vec::with_capacity(keep.len());
                for (i, child) in children.into_iter().enumerate() {
                    if keep.contains(&i) {
                        next.push(child);
                    }
                }
                quva_obs::counter("portfolio.kept", next.len() as u64);
                quva_obs::counter("portfolio.pruned", pruned);
                candidates = next;
            }

            let best = candidates
                .into_iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| {
                    a.score
                        .total_cmp(&b.score)
                        .then_with(|| a.protected.cmp(&b.protected))
                        .then_with(|| ib.cmp(ia))
                })
                .map(|(_, c)| c);
            let Some(chosen) = best else {
                // width >= 1 and the protected candidate survives every
                // layer, so an empty beam is unreachable; degrade to a
                // typed error all the same
                return Err(cx.missing("portfolio", Invariant::Mapped));
            };
            quva_obs::counter("route.gates", base.two_qubit_positions.len() as u64);
            quva_obs::counter("route.swaps_inserted", chosen.inserted as u64);
            (
                CompiledCircuit::from_parts(chosen.out, initial, chosen.mapping, chosen.inserted),
                chosen.score,
            )
        };
        cx.compiled = Some(compiled);
        cx.esp_point = Some(score);
        Ok(())
    }
}

/// The static ESP point estimate of a physical circuit: the product of
/// every operation's success probability at the calibrated rates —
/// computed gate-by-gate in circuit order, matching
/// `quva-analysis::esp_interval(..).point` bit for bit (and the
/// simulator's analytic PST under the gate + readout model).
///
/// Two-qubit gates on uncoupled or disabled pairs contribute nothing,
/// exactly as in the interval analysis.
pub fn static_esp_point(device: &Device, circuit: &Circuit<PhysQubit>) -> f64 {
    let cal = device.calibration();
    let mut point = 1.0f64;
    for gate in circuit.iter() {
        let factor = match gate {
            Gate::OneQubit { qubit, .. } => (1.0 - cal.one_qubit_error(qubit.index())).powi(1),
            Gate::Cnot { control, target } => match device.link_error(*control, *target) {
                Some(e) => (1.0 - e).powi(1),
                None => continue,
            },
            Gate::Swap { a, b } => match device.link_error(*a, *b) {
                Some(e) => (1.0 - e).powi(3),
                None => continue,
            },
            Gate::Measure { qubit, .. } => (1.0 - cal.readout_error(qubit.index())).powi(1),
            Gate::Barrier { .. } => continue,
        };
        point *= factor;
    }
    point
}

/// An ordered, not-yet-validated sequence of compile passes.
///
/// # Examples
///
/// A policy's standard pipeline validates cleanly and compiles:
///
/// ```
/// use quva::pipeline::Pipeline;
/// use quva::MappingPolicy;
/// use quva_benchmarks::bv;
/// use quva_device::Device;
///
/// # fn main() -> Result<(), quva::CompileError> {
/// let device = Device::ibm_q20();
/// let checked = Pipeline::for_policy(&MappingPolicy::vqm())
///     .validate()
///     .expect("standard pipelines are contract-clean");
/// let compiled = checked.run(&bv(8), &device)?;
/// assert!(compiled.physical().two_qubit_gate_count() >= 7);
/// # Ok(())
/// # }
/// ```
///
/// A misconfigured pipeline is refused before any pass runs:
///
/// ```
/// use quva::pipeline::{Pipeline, RoutePass};
/// use quva::RoutingMetric;
///
/// let broken = Pipeline::new().with_pass(RoutePass { metric: RoutingMetric::Hops });
/// let violations = broken.violations();
/// assert!(!violations.is_empty(), "routing without allocating must be rejected");
/// assert!(broken.validate().is_err());
/// ```
pub struct Pipeline<'a> {
    passes: Vec<Box<dyn CompilePass + 'a>>,
}

impl fmt::Debug for Pipeline<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("passes", &self.pass_names())
            .finish()
    }
}

impl Default for Pipeline<'_> {
    fn default() -> Self {
        Pipeline::new()
    }
}

impl<'a> Pipeline<'a> {
    /// An empty pipeline (which, as such, fails validation: it never
    /// establishes [`Invariant::Routed`]).
    pub fn new() -> Self {
        Pipeline { passes: Vec::new() }
    }

    /// Appends a pass (builder style).
    #[must_use]
    pub fn with_pass(mut self, pass: impl CompilePass + 'a) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends a boxed pass.
    pub fn push(&mut self, pass: Box<dyn CompilePass + 'a>) {
        self.passes.push(pass);
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the pipeline has no passes.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// The registered pass names, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// The registered passes' names and contracts, in run order.
    pub fn contracts(&self) -> Vec<(&'static str, PassContract)> {
        self.passes.iter().map(|p| (p.name(), p.contract())).collect()
    }

    /// The pipeline configuration equivalent to a policy's historical
    /// monolithic compile: allocate, route, and — for the VQA
    /// restricted-placement policies — the portfolio selection.
    pub fn for_policy(policy: &MappingPolicy) -> Pipeline<'static> {
        let mut p = Pipeline::new()
            .with_pass(AllocatePass {
                strategy: policy.allocation,
            })
            .with_pass(RoutePass {
                metric: policy.routing,
            });
        if matches!(policy.allocation, AllocationStrategy::StrongestSubgraph { .. }) {
            p = p.with_pass(SelectAlternativePass {
                alternative: MappingPolicy {
                    allocation: AllocationStrategy::GreedyInteraction,
                    routing: policy.routing,
                },
            });
        }
        p
    }

    /// The ESP-pruned portfolio variant of a policy's pipeline:
    /// [`Pipeline::for_policy`] with the single-candidate route pass
    /// replaced by [`PortfolioRoutePass`] at `width`, every other pass
    /// kept. Because the portfolio's protected chain *is* the
    /// single-candidate route and every later pass (the VQA selection)
    /// takes a pointwise maximum, this pipeline's static ESP point can
    /// never fall below [`Pipeline::for_policy`]'s on the same inputs.
    pub fn for_policy_portfolio(policy: &MappingPolicy, width: usize) -> Pipeline<'static> {
        let mut p = Pipeline::new()
            .with_pass(AllocatePass {
                strategy: policy.allocation,
            })
            .with_pass(PortfolioRoutePass {
                metric: policy.routing,
                width,
            });
        if matches!(policy.allocation, AllocationStrategy::StrongestSubgraph { .. }) {
            p = p.with_pass(SelectAlternativePass {
                alternative: MappingPolicy {
                    allocation: AllocationStrategy::GreedyInteraction,
                    routing: policy.routing,
                },
            });
        }
        p
    }

    /// [`Pipeline::for_policy`] plus a trailing verify pass when an
    /// auditor is supplied — the `compile_with` configuration.
    pub fn for_policy_with(policy: &MappingPolicy, verify: Option<&'a dyn CompileAudit>) -> Pipeline<'a> {
        let mut p = Pipeline::for_policy(policy);
        if let Some(auditor) = verify {
            p = p.with_pass(VerifyPass::new(auditor));
        }
        p
    }

    /// Statically checks every pass contract against the pass order:
    /// a forward walk over the invariant lattice reporting missing
    /// preconditions, clobbered invariants, dead passes, and a missing
    /// terminal [`Invariant::Routed`]. Empty means the pipeline is
    /// well-formed.
    pub fn violations(&self) -> Vec<ContractViolation> {
        let n = Invariant::ALL.len();
        // which pass established each live invariant / destroyed each
        // dead one (for clobber attribution)
        let mut live: Vec<Option<&'static str>> = vec![None; n];
        let mut killed: Vec<Option<&'static str>> = vec![None; n];
        let mut out = Vec::new();

        for (index, pass) in self.passes.iter().enumerate() {
            let name = pass.name();
            let contract = pass.contract();
            let mut requires_ok = true;
            for &req in contract.requires {
                if live[req.idx()].is_some() {
                    continue;
                }
                requires_ok = false;
                let kind = match killed[req.idx()] {
                    Some(clobberer) => ContractViolationKind::ClobberedInvariant {
                        invariant: req,
                        clobbered_by: clobberer,
                    },
                    None => ContractViolationKind::MissingPrecondition { invariant: req },
                };
                out.push(ContractViolation {
                    kind,
                    pass: name,
                    index,
                });
            }
            // a pass that adds nothing new and disturbs nothing live is
            // dead; only meaningful when its preconditions held (a
            // mis-ordered pass gets the precise precondition diagnostic
            // instead)
            let adds_nothing = contract.guarantees.iter().all(|g| live[g.idx()].is_some());
            let disturbs_nothing = contract.clobbers.iter().all(|c| live[c.idx()].is_none());
            if requires_ok && adds_nothing && disturbs_nothing {
                out.push(ContractViolation {
                    kind: ContractViolationKind::UnreachablePass,
                    pass: name,
                    index,
                });
            }
            for &c in contract.clobbers {
                if live[c.idx()].take().is_some() {
                    killed[c.idx()] = Some(name);
                }
            }
            for &g in contract.guarantees {
                live[g.idx()] = Some(name);
                killed[g.idx()] = None;
            }
        }

        if live[Invariant::Routed.idx()].is_none() {
            out.push(ContractViolation {
                kind: ContractViolationKind::OutputMissing {
                    invariant: Invariant::Routed,
                },
                pass: "<end>",
                index: self.passes.len(),
            });
        }
        out
    }

    /// Converts the pipeline into its runnable form, or reports every
    /// contract violation. Only a [`CheckedPipeline`] can execute.
    ///
    /// # Errors
    ///
    /// [`ContractError`] carrying each [`ContractViolation`] in
    /// pipeline order.
    pub fn validate(self) -> Result<CheckedPipeline<'a>, ContractError> {
        let violations = self.violations();
        if violations.is_empty() {
            Ok(CheckedPipeline { passes: self.passes })
        } else {
            Err(ContractError { violations })
        }
    }

    /// Validates, then runs: the one-call form used where the pipeline
    /// is built per compile.
    ///
    /// # Errors
    ///
    /// [`CompileError::Contract`] when validation rejects the pipeline
    /// (before any pass executes), otherwise whatever the failing pass
    /// returned.
    pub fn compile(self, circuit: &Circuit, device: &Device) -> Result<CompiledCircuit, CompileError> {
        let checked = self.validate().map_err(CompileError::Contract)?;
        checked.run(circuit, device)
    }
}

/// A contract-validated pipeline: the only pipeline form that can run.
pub struct CheckedPipeline<'a> {
    passes: Vec<Box<dyn CompilePass + 'a>>,
}

impl fmt::Debug for CheckedPipeline<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckedPipeline")
            .field("passes", &self.pass_names())
            .finish()
    }
}

impl CheckedPipeline<'_> {
    /// The pass names, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass in order over a fresh [`PassContext`].
    ///
    /// # Errors
    ///
    /// The first failing pass's [`CompileError`]; later passes do not
    /// run.
    pub fn run(&self, circuit: &Circuit, device: &Device) -> Result<CompiledCircuit, CompileError> {
        let mut cx = PassContext::new(circuit, device);
        for (index, pass) in self.passes.iter().enumerate() {
            cx.pass_index = index;
            let _pass_span = quva_obs::enabled()
                .then(|| quva_obs::span("pipeline", &format!("pipeline.pass.{}", pass.name())));
            pass.run(&mut cx)?;
        }
        match cx.compiled.take() {
            Some(compiled) => Ok(compiled),
            // unreachable through validation (Routed is terminal-checked)
            None => Err(cx.missing("<end>", Invariant::Routed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva_circuit::{Cbit, Qubit};
    use quva_device::{Calibration, Topology};

    fn uniform(topo: Topology, e: f64) -> Device {
        Device::new(topo, |t| Calibration::uniform(t, e, 0.001, 0.02))
    }

    fn program() -> Circuit {
        let mut c = Circuit::new(4);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(3));
        c.cnot(Qubit(1), Qubit(2));
        c.measure(Qubit(3), Cbit(0));
        c
    }

    fn policies() -> [MappingPolicy; 5] {
        [
            MappingPolicy::baseline(),
            MappingPolicy::vqm(),
            MappingPolicy::vqm_hop_limited(),
            MappingPolicy::vqa_vqm(),
            MappingPolicy::native(3),
        ]
    }

    #[test]
    fn standard_policy_pipelines_are_contract_clean() {
        for policy in policies() {
            let p = Pipeline::for_policy(&policy);
            assert_eq!(p.violations(), vec![], "{}", policy.name());
        }
    }

    #[test]
    fn pipeline_output_matches_monolithic_compile() {
        let dev = uniform(Topology::grid(2, 3), 0.05);
        for policy in policies() {
            let mono = policy.compile(&program(), &dev).unwrap();
            let piped = Pipeline::for_policy(&policy).compile(&program(), &dev).unwrap();
            assert_eq!(mono, piped, "{}", policy.name());
        }
    }

    #[test]
    fn empty_pipeline_reports_missing_output() {
        let v = Pipeline::new().violations();
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0].kind(),
            ContractViolationKind::OutputMissing {
                invariant: Invariant::Routed
            }
        ));
        assert_eq!(v[0].pass(), "<end>");
    }

    #[test]
    fn route_without_allocate_is_missing_precondition() {
        let v = Pipeline::new()
            .with_pass(RoutePass {
                metric: RoutingMetric::Hops,
            })
            .violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(
            v[0].kind(),
            ContractViolationKind::MissingPrecondition {
                invariant: Invariant::Mapped
            }
        ));
        assert_eq!((v[0].pass(), v[0].index()), ("route", 0));
    }

    #[test]
    fn optimize_between_allocate_and_route_is_clobbered_invariant() {
        let v = Pipeline::new()
            .with_pass(AllocatePass {
                strategy: AllocationStrategy::GreedyInteraction,
            })
            .with_pass(OptimizePass)
            .with_pass(RoutePass {
                metric: RoutingMetric::Hops,
            })
            .violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(
            v[0].kind(),
            ContractViolationKind::ClobberedInvariant {
                invariant: Invariant::Mapped,
                clobbered_by: "optimize"
            }
        ));
    }

    #[test]
    fn duplicate_pass_is_unreachable() {
        let v = Pipeline::new()
            .with_pass(AllocatePass {
                strategy: AllocationStrategy::GreedyInteraction,
            })
            .with_pass(AllocatePass {
                strategy: AllocationStrategy::GreedyInteraction,
            })
            .with_pass(RoutePass {
                metric: RoutingMetric::Hops,
            })
            .violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(v[0].kind(), ContractViolationKind::UnreachablePass));
        assert_eq!(v[0].index(), 1);
    }

    #[test]
    fn double_verify_is_unreachable() {
        let verifier = AcceptAll;
        let v = Pipeline::new()
            .with_pass(AllocatePass {
                strategy: AllocationStrategy::GreedyInteraction,
            })
            .with_pass(RoutePass {
                metric: RoutingMetric::Hops,
            })
            .with_pass(VerifyPass::new(&verifier))
            .with_pass(VerifyPass::new(&verifier))
            .violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(v[0].kind(), ContractViolationKind::UnreachablePass));
        assert_eq!(v[0].index(), 3);
    }

    #[test]
    fn rejected_pipeline_never_runs_a_pass() {
        let dev = uniform(Topology::linear(4), 0.05);
        let err = Pipeline::new()
            .with_pass(RoutePass {
                metric: RoutingMetric::Hops,
            })
            .compile(&program(), &dev)
            .unwrap_err();
        let CompileError::Contract(contract) = err else {
            panic!("expected a contract rejection");
        };
        assert_eq!(contract.violations().len(), 1);
        assert!(contract.to_string().contains("requires Mapped"));
    }

    #[test]
    fn contract_error_display_lists_every_violation() {
        let verifier = AcceptAll;
        let err = Pipeline::new()
            .with_pass(VerifyPass::new(&verifier))
            .validate()
            .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("pass 'verify'"), "{text}");
        assert!(text.contains("Routed"), "{text}");
        assert!(text.contains("no compiled circuit"), "{text}");
    }

    #[test]
    fn optimize_pass_rewrites_working_circuit() {
        let dev = uniform(Topology::linear(4), 0.05);
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.h(Qubit(0)); // cancels
        c.cnot(Qubit(0), Qubit(1));
        c.measure(Qubit(1), Cbit(0));
        let compiled = Pipeline::new()
            .with_pass(OptimizePass)
            .with_pass(AllocatePass {
                strategy: AllocationStrategy::GreedyInteraction,
            })
            .with_pass(RoutePass {
                metric: RoutingMetric::Hops,
            })
            .compile(&c, &dev)
            .unwrap();
        assert_eq!(compiled.physical().one_qubit_gate_count(), 0);
    }

    struct AcceptAll;
    impl CompileAudit for AcceptAll {
        fn audit(&self, _: &Circuit, _: &Device, _: &CompiledCircuit) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn static_esp_point_matches_analytic_pst() {
        let dev = uniform(Topology::linear(4), 0.05);
        let compiled = MappingPolicy::vqm().compile(&program(), &dev).unwrap();
        let pst = compiled.analytic_pst(&dev, CoherenceModel::Disabled).unwrap().pst;
        let point = static_esp_point(&dev, compiled.physical());
        assert!((pst - point).abs() < 1e-12, "pst {pst} vs esp point {point}");
    }

    #[test]
    fn portfolio_routing_never_scores_below_single_candidate() {
        let dev = uniform(Topology::grid(2, 3), 0.05);
        for policy in [MappingPolicy::baseline(), MappingPolicy::vqm()] {
            let single = policy.compile(&program(), &dev).unwrap();
            let baseline_point = static_esp_point(&dev, single.physical());
            let portfolio = Pipeline::new()
                .with_pass(AllocatePass {
                    strategy: policy.allocation,
                })
                .with_pass(PortfolioRoutePass {
                    metric: policy.routing,
                    width: 4,
                })
                .compile(&program(), &dev)
                .unwrap();
            let portfolio_point = static_esp_point(&dev, portfolio.physical());
            assert!(
                portfolio_point >= baseline_point,
                "{}: portfolio {portfolio_point} < baseline {baseline_point}",
                policy.name()
            );
        }
    }

    #[test]
    fn portfolio_width_one_reproduces_single_candidate_routing() {
        let dev = uniform(Topology::grid(2, 3), 0.05);
        let policy = MappingPolicy::vqm();
        let single = policy.compile(&program(), &dev).unwrap();
        let portfolio = Pipeline::new()
            .with_pass(AllocatePass {
                strategy: policy.allocation,
            })
            .with_pass(PortfolioRoutePass {
                metric: policy.routing,
                width: 1,
            })
            .compile(&program(), &dev)
            .unwrap();
        assert_eq!(single, portfolio, "width-1 portfolio must be the protected chain");
    }

    #[test]
    fn portfolio_pipeline_is_contract_clean_and_verifiable() {
        let verifier = AcceptAll;
        let p = Pipeline::new()
            .with_pass(AllocatePass {
                strategy: AllocationStrategy::GreedyInteraction,
            })
            .with_pass(PortfolioRoutePass {
                metric: RoutingMetric::reliability(),
                width: 3,
            })
            .with_pass(VerifyPass::new(&verifier));
        assert_eq!(p.violations(), vec![]);
        let dev = uniform(Topology::grid(2, 3), 0.05);
        assert!(p.compile(&program(), &dev).is_ok());
    }

    #[test]
    fn checked_pipeline_is_reusable_across_jobs() {
        let dev = uniform(Topology::grid(2, 3), 0.05);
        let checked = Pipeline::for_policy(&MappingPolicy::vqm()).validate().unwrap();
        let a = checked.run(&program(), &dev).unwrap();
        let b = checked.run(&program(), &dev).unwrap();
        assert_eq!(a, b, "a checked pipeline must be a pure function of its inputs");
        assert_eq!(checked.pass_names(), ["allocate", "route"]);
    }

    #[test]
    fn pipeline_debug_and_introspection() {
        let p = Pipeline::for_policy(&MappingPolicy::vqa_vqm());
        assert_eq!(p.pass_names(), ["allocate", "route", "select"]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(format!("{p:?}").contains("select"));
        let contracts = p.contracts();
        assert_eq!(contracts[1].0, "route");
        assert!(contracts[1].1.requires.contains(&Invariant::Mapped));
    }

    #[test]
    fn invariant_vocabulary_is_stable() {
        assert_eq!(Invariant::ALL.len(), 8);
        for (i, inv) in Invariant::ALL.into_iter().enumerate() {
            assert_eq!(inv.idx(), i);
            assert!(!inv.name().is_empty());
        }
        assert_eq!(Invariant::Mapped.to_string(), "Mapped");
    }
}
