//! Machine partitioning: two weak copies versus one strong copy (§8).
//!
//! When a program needs at most half the machine, the operator can run
//! two concurrent copies (more trials per unit time, but one copy is
//! stuck with weaker qubits) or a single copy on the strongest region
//! (fewer, better trials). The figure of merit is **STPT** — successful
//! trials per unit time: `PST_X + PST_Y` for two concurrent copies
//! versus `PST_strong` for one.

use quva_circuit::{Circuit, PhysQubit};
use quva_device::{candidate_regions, try_strongest_subgraph, Device};
use quva_sim::CoherenceModel;

use crate::compiler::{CompileError, MappingPolicy};

/// Which configuration a partitioning analysis recommends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionChoice {
    /// Run a single copy on the strongest region.
    OneStrongCopy,
    /// Run two concurrent copies.
    TwoCopies,
}

/// One program copy's placement and reliability.
#[derive(Debug, Clone, PartialEq)]
pub struct CopyPlan {
    /// The physical qubits (of the full device) hosting the copy.
    pub region: Vec<PhysQubit>,
    /// The analytic PST of the compiled copy.
    pub pst: f64,
}

/// The §8 analysis result for one workload on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionReport {
    /// The single strong copy.
    pub one_strong: CopyPlan,
    /// The two concurrent copies, if the machine can host them.
    pub two_copies: Option<(CopyPlan, CopyPlan)>,
}

impl PartitionReport {
    /// STPT of the single-copy configuration (successful trials per
    /// trial window).
    pub fn stpt_one(&self) -> f64 {
        self.one_strong.pst
    }

    /// STPT of the two-copy configuration; zero when two copies do not
    /// fit.
    pub fn stpt_two(&self) -> f64 {
        match &self.two_copies {
            Some((x, y)) => x.pst + y.pst,
            None => 0.0,
        }
    }

    /// The configuration with the higher STPT (ties go to the simpler
    /// single copy).
    pub fn recommend(&self) -> PartitionChoice {
        if self.stpt_two() > self.stpt_one() {
            PartitionChoice::TwoCopies
        } else {
            PartitionChoice::OneStrongCopy
        }
    }
}

/// Analyzes the one-strong-copy versus two-weak-copies trade-off for
/// `circuit` on `device` under `policy`.
///
/// The single copy compiles onto the whole machine (a variation-aware
/// policy then gravitates to the strongest region by itself). For two
/// copies, copy X gets the strongest connected region of the program's
/// size, and copy Y the strongest connected region of the remainder;
/// both compile under the same policy, mirroring the paper's setup where
/// only the available qubit set differs.
///
/// # Errors
///
/// Returns [`CompileError`] if even a single copy cannot be compiled.
pub fn partition_analysis(
    circuit: &Circuit,
    device: &Device,
    policy: MappingPolicy,
    coherence: CoherenceModel,
) -> Result<PartitionReport, CompileError> {
    let k = circuit.num_qubits();

    // Single strong copy on the full machine.
    let single = policy.compile(circuit, device)?;
    let single_pst = single
        .analytic_pst(device, coherence)
        .map_err(|e| CompileError::Allocation(e.to_string()))?
        .pst;
    let single_region: Vec<PhysQubit> = circuit
        .used_qubits()
        .iter()
        .map(|&q| single.initial_mapping().phys_of(q))
        .collect();
    let one_strong = CopyPlan {
        region: single_region,
        pst: single_pst,
    };

    // Two copies: strongest region for X, strongest remaining region
    // for Y.
    let two_copies = plan_two_copies(circuit, device, policy, coherence, k)?;

    Ok(PartitionReport {
        one_strong,
        two_copies,
    })
}

fn plan_two_copies(
    circuit: &Circuit,
    device: &Device,
    policy: MappingPolicy,
    coherence: CoherenceModel,
    k: usize,
) -> Result<Option<(CopyPlan, CopyPlan)>, CompileError> {
    if 2 * k > device.num_qubits() {
        return Ok(None);
    }

    let compile_on = |region: &[PhysQubit]| -> Result<Option<f64>, CompileError> {
        let (sub, _) = device.induced(region);
        match policy.compile(circuit, &sub) {
            Ok(compiled) => {
                let pst = compiled
                    .analytic_pst(&sub, coherence)
                    .map_err(|e| CompileError::Allocation(e.to_string()))?
                    .pst;
                Ok(Some(pst))
            }
            // a region can be too sparse to route on; that partition
            // simply is not available
            Err(CompileError::Disconnected { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    };

    // explore candidate X-regions strongest-first (the paper explores
    // all partitions and keeps the best); for each, the Y copy takes
    // the strongest region of the complement
    let mut best: Option<(f64, (CopyPlan, CopyPlan))> = None;
    for region_x in candidate_regions(device, k) {
        let mut in_x = vec![false; device.num_qubits()];
        for q in &region_x {
            in_x[q.index()] = true;
        }
        let complement: Vec<PhysQubit> = device.topology().qubits().filter(|q| !in_x[q.index()]).collect();
        let (comp_device, comp_back) = device.induced(&complement);
        let Some(region_y_local) = try_strongest_subgraph(&comp_device, k) else {
            continue;
        };
        let Some(pst_x) = compile_on(&region_x)? else {
            continue;
        };
        let region_y: Vec<PhysQubit> = region_y_local.iter().map(|q| comp_back[q.index()]).collect();
        let Some(pst_y) = compile_on(&region_y)? else {
            continue;
        };
        let stpt = pst_x + pst_y;
        if best.as_ref().is_none_or(|(b, _)| stpt > *b) {
            best = Some((
                stpt,
                (
                    CopyPlan {
                        region: region_x,
                        pst: pst_x,
                    },
                    CopyPlan {
                        region: region_y,
                        pst: pst_y,
                    },
                ),
            ));
        }
    }
    Ok(best.map(|(_, copies)| copies))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva_circuit::Qubit;
    use quva_device::{Calibration, Topology};

    fn small_program() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(1), Qubit(2));
        c.measure_all();
        c
    }

    #[test]
    fn two_copies_fit_on_big_machine() {
        let dev = Device::ibm_q20();
        let report = partition_analysis(
            &small_program(),
            &dev,
            MappingPolicy::vqa_vqm(),
            CoherenceModel::Disabled,
        )
        .unwrap();
        let (x, y) = report
            .two_copies
            .as_ref()
            .expect("20 qubits host two 3-qubit copies");
        // regions must be disjoint
        for q in &x.region {
            assert!(!y.region.contains(q), "regions share {q}");
        }
        assert!(report.stpt_two() > 0.0);
        assert!(report.stpt_one() > 0.0);
    }

    #[test]
    fn strong_copy_beats_each_individual_copy() {
        let dev = Device::ibm_q20();
        let report = partition_analysis(
            &small_program(),
            &dev,
            MappingPolicy::vqa_vqm(),
            CoherenceModel::Disabled,
        )
        .unwrap();
        let (x, y) = report.two_copies.as_ref().unwrap();
        // the strong copy has the whole machine to pick from, so it is
        // essentially as reliable as either constrained copy (heuristic
        // placement tie-breaks may differ by a hair)
        let best_copy = x.pst.max(y.pst);
        assert!(
            report.one_strong.pst >= best_copy * 0.95,
            "single strong copy {} lost to a constrained copy {}",
            report.one_strong.pst,
            best_copy
        );
    }

    #[test]
    fn no_room_for_two_copies() {
        let dev = Device::new(Topology::linear(4), |t| Calibration::uniform(t, 0.05, 0.0, 0.0));
        let report = partition_analysis(
            &small_program(),
            &dev,
            MappingPolicy::vqa_vqm(),
            CoherenceModel::Disabled,
        )
        .unwrap();
        assert!(report.two_copies.is_none());
        assert_eq!(report.stpt_two(), 0.0);
        assert_eq!(report.recommend(), PartitionChoice::OneStrongCopy);
    }

    #[test]
    fn uniform_device_prefers_two_copies() {
        // no variation: the strong copy has no edge, so doubling the
        // trial rate wins
        let dev = Device::new(Topology::grid(2, 4), |t| Calibration::uniform(t, 0.03, 0.0, 0.0));
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        c.measure_all();
        let report =
            partition_analysis(&c, &dev, MappingPolicy::vqa_vqm(), CoherenceModel::Disabled).unwrap();
        assert_eq!(report.recommend(), PartitionChoice::TwoCopies);
        assert!((report.stpt_two() - 2.0 * report.stpt_one()).abs() < 0.05);
    }

    #[test]
    fn recommendation_follows_stpt() {
        let strong = CopyPlan {
            region: vec![PhysQubit(0)],
            pst: 0.5,
        };
        let x = CopyPlan {
            region: vec![PhysQubit(1)],
            pst: 0.2,
        };
        let y = CopyPlan {
            region: vec![PhysQubit(2)],
            pst: 0.1,
        };
        let two_win = PartitionReport {
            one_strong: CopyPlan {
                pst: 0.25,
                ..strong.clone()
            },
            two_copies: Some((x.clone(), y.clone())),
        };
        assert_eq!(two_win.recommend(), PartitionChoice::TwoCopies);
        assert!((two_win.stpt_two() - 0.3).abs() < 1e-12);
        let one_win = PartitionReport {
            one_strong: strong,
            two_copies: Some((x, y)),
        };
        assert_eq!(one_win.recommend(), PartitionChoice::OneStrongCopy);
    }

    #[test]
    fn confinement_hurts_the_partitioned_copy() {
        // The §8 mechanism: a single copy may route through qubits a
        // partitioned copy must not touch. Machine: a weak 4-path whose
        // middle pair is bridged by a strong detour qubit.
        //   0 –w– 1 –w– 2 –w– 3      w = weak (0.25)
        //         1 –s– 4 –s– 2      s = strong (0.01)
        // plus weak appendix links 5–0 and 5–3 so the complement
        // {0, 3, 5} stays connected and a second region exists.
        let topo = Topology::from_links(
            "bridge",
            6,
            [(0, 1), (1, 2), (2, 3), (1, 4), (4, 2), (5, 0), (5, 3)],
        );
        let dev = Device::new(topo, |t| {
            let mut cal = Calibration::uniform(t, 0.25, 0.0, 0.0);
            cal.set_two_qubit_error(t.link_id(PhysQubit(1), PhysQubit(4)).unwrap(), 0.01);
            cal.set_two_qubit_error(t.link_id(PhysQubit(4), PhysQubit(2)).unwrap(), 0.01);
            cal
        });
        // chatty 3-qubit program
        let mut c = Circuit::new(3);
        for _ in 0..6 {
            c.cnot(Qubit(0), Qubit(1));
            c.cnot(Qubit(1), Qubit(2));
        }
        let report =
            partition_analysis(&c, &dev, MappingPolicy::vqa_vqm(), CoherenceModel::Disabled).unwrap();
        // the full-machine copy can use the strong bridge 1–4–2
        let (x, y) = report
            .two_copies
            .as_ref()
            .expect("6 qubits host two 3-qubit copies");
        assert!(
            report.one_strong.pst > x.pst.min(y.pst),
            "single {} vs copies {}/{}",
            report.one_strong.pst,
            x.pst,
            y.pst
        );
    }
}
