//! The program-qubit ↔ physical-qubit mapping maintained during
//! compilation.

use std::fmt;

use quva_circuit::{PhysQubit, Qubit};

/// A (partial) bijection from program qubits to physical qubits.
///
/// Every program qubit is mapped; physical qubits may be unmapped
/// (`prog_of` returns `None`). SWAPs exchange the occupants of two
/// physical locations, whether occupied or free.
///
/// # Examples
///
/// ```
/// use quva::Mapping;
/// use quva_circuit::{PhysQubit, Qubit};
///
/// let mut m = Mapping::from_assignment(2, 4, |q| PhysQubit(q.0 * 2)).unwrap();
/// assert_eq!(m.phys_of(Qubit(1)), PhysQubit(2));
/// m.apply_swap(PhysQubit(2), PhysQubit(3));
/// assert_eq!(m.phys_of(Qubit(1)), PhysQubit(3));
/// assert_eq!(m.prog_of(PhysQubit(2)), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    /// phys[q] = physical location of program qubit q.
    phys: Vec<u32>,
    /// prog[p] = program qubit at physical location p, u32::MAX if free.
    prog: Vec<u32>,
}

const FREE: u32 = u32::MAX;

impl Mapping {
    /// Builds a mapping for `num_prog` program qubits on `num_phys`
    /// physical qubits from an assignment function.
    ///
    /// # Errors
    ///
    /// Returns a message if the assignment is out of range or collides.
    pub fn from_assignment(
        num_prog: usize,
        num_phys: usize,
        mut assign: impl FnMut(Qubit) -> PhysQubit,
    ) -> Result<Self, String> {
        if num_prog > num_phys {
            return Err(format!(
                "{num_prog} program qubits cannot fit on {num_phys} physical qubits"
            ));
        }
        let mut phys = vec![FREE; num_prog];
        let mut prog = vec![FREE; num_phys];
        for (q, slot) in phys.iter_mut().enumerate() {
            let p = assign(Qubit(q as u32));
            if p.index() >= num_phys {
                return Err(format!("program qubit q{q} assigned to out-of-range {p}"));
            }
            if prog[p.index()] != FREE {
                return Err(format!("physical qubit {p} assigned twice"));
            }
            *slot = p.0;
            prog[p.index()] = q as u32;
        }
        Ok(Mapping { phys, prog })
    }

    /// The identity mapping: program qubit i on physical qubit i.
    ///
    /// # Panics
    ///
    /// Panics if `num_prog > num_phys`.
    pub fn identity(num_prog: usize, num_phys: usize) -> Self {
        Mapping::from_assignment(num_prog, num_phys, |q| PhysQubit(q.0))
            .unwrap_or_else(|e| panic!("identity assignment cannot collide: {e}"))
    }

    /// Number of program qubits.
    pub fn num_prog(&self) -> usize {
        self.phys.len()
    }

    /// Number of physical qubits.
    pub fn num_phys(&self) -> usize {
        self.prog.len()
    }

    /// The physical location of a program qubit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn phys_of(&self, q: Qubit) -> PhysQubit {
        PhysQubit(self.phys[q.index()])
    }

    /// The program qubit at a physical location, `None` if free.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn prog_of(&self, p: PhysQubit) -> Option<Qubit> {
        let q = self.prog[p.index()];
        if q == FREE {
            None
        } else {
            Some(Qubit(q))
        }
    }

    /// Exchanges the occupants of two physical locations (either may be
    /// free).
    ///
    /// # Panics
    ///
    /// Panics if the locations coincide or are out of range.
    pub fn apply_swap(&mut self, a: PhysQubit, b: PhysQubit) {
        assert!(a != b, "swap locations must differ");
        let qa = self.prog[a.index()];
        let qb = self.prog[b.index()];
        self.prog[a.index()] = qb;
        self.prog[b.index()] = qa;
        if qa != FREE {
            self.phys[qa as usize] = b.0;
        }
        if qb != FREE {
            self.phys[qb as usize] = a.0;
        }
    }

    /// Iterates over `(program, physical)` pairs in program-qubit order.
    pub fn iter(&self) -> impl Iterator<Item = (Qubit, PhysQubit)> + '_ {
        self.phys
            .iter()
            .enumerate()
            .map(|(q, &p)| (Qubit(q as u32), PhysQubit(p)))
    }

    /// The set of occupied physical qubits, in program-qubit order.
    pub fn occupied(&self) -> Vec<PhysQubit> {
        self.phys.iter().map(|&p| PhysQubit(p)).collect()
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (q, p)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{q}→{p}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let m = Mapping::identity(3, 5);
        for q in 0..3u32 {
            assert_eq!(m.phys_of(Qubit(q)), PhysQubit(q));
            assert_eq!(m.prog_of(PhysQubit(q)), Some(Qubit(q)));
        }
        assert_eq!(m.prog_of(PhysQubit(4)), None);
    }

    #[test]
    fn from_assignment_detects_collision() {
        let err = Mapping::from_assignment(2, 4, |_| PhysQubit(1)).unwrap_err();
        assert!(err.contains("twice"));
    }

    #[test]
    fn from_assignment_detects_overflow() {
        assert!(Mapping::from_assignment(5, 3, |q| PhysQubit(q.0)).is_err());
        assert!(Mapping::from_assignment(2, 3, |_| PhysQubit(7)).is_err());
    }

    #[test]
    fn swap_occupied_pair() {
        let mut m = Mapping::identity(2, 2);
        m.apply_swap(PhysQubit(0), PhysQubit(1));
        assert_eq!(m.phys_of(Qubit(0)), PhysQubit(1));
        assert_eq!(m.phys_of(Qubit(1)), PhysQubit(0));
    }

    #[test]
    fn swap_with_free_location() {
        let mut m = Mapping::identity(1, 3);
        m.apply_swap(PhysQubit(0), PhysQubit(2));
        assert_eq!(m.phys_of(Qubit(0)), PhysQubit(2));
        assert_eq!(m.prog_of(PhysQubit(0)), None);
        assert_eq!(m.prog_of(PhysQubit(2)), Some(Qubit(0)));
    }

    #[test]
    fn swap_two_free_locations_is_noop_semantically() {
        let mut m = Mapping::identity(1, 3);
        m.apply_swap(PhysQubit(1), PhysQubit(2));
        assert_eq!(m.phys_of(Qubit(0)), PhysQubit(0));
    }

    #[test]
    fn double_swap_restores() {
        let mut m = Mapping::identity(3, 4);
        m.apply_swap(PhysQubit(1), PhysQubit(3));
        m.apply_swap(PhysQubit(1), PhysQubit(3));
        assert_eq!(m, Mapping::identity(3, 4));
    }

    #[test]
    fn display_lists_pairs() {
        let m = Mapping::identity(2, 3);
        assert_eq!(m.to_string(), "{q0→Q0, q1→Q1}");
    }

    #[test]
    fn occupied_lists_locations() {
        let m = Mapping::from_assignment(2, 5, |q| PhysQubit(q.0 + 3)).unwrap();
        assert_eq!(m.occupied(), vec![PhysQubit(3), PhysQubit(4)]);
    }
}
