//! Route planning for qubit movement (paper §5).
//!
//! Given two physical locations that must interact, a [`Router`]
//! produces the SWAP chain that brings them together:
//!
//! * metric [`RoutingMetric::Hops`] — the baseline: fewest SWAPs,
//!   deterministic tie-break (§4.5);
//! * metric [`RoutingMetric::Reliability`] — VQM: minimize accumulated
//!   failure weight, optionally hop-limited by *Maximum Additional
//!   Hops* (Algorithm 1).
//!
//! A route is a path plus a *meeting edge*: the occupant of one end
//! swaps forward along the prefix, the occupant of the other end swaps
//! backward along the suffix, and the CNOT executes across the meeting
//! edge. Under the reliability metric the meeting edge is chosen to
//! minimize total failure weight (a SWAP costs three CNOTs, so routing
//! *through* a weak link costs 3× what executing *across* it does).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use quva_circuit::PhysQubit;
use quva_device::{Device, HopMatrix};

/// The cost metric a router optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingMetric {
    /// Minimize the number of SWAPs (variation-unaware baseline).
    Hops,
    /// Minimize accumulated failure weight (VQM). `max_additional_hops`
    /// caps the detour length relative to the shortest path; `None`
    /// leaves it unconstrained.
    Reliability {
        /// The MAH budget of §5.3; the paper's hop-limited policy uses 4.
        max_additional_hops: Option<u32>,
        /// Extension beyond the paper: also choose *which* edge of the
        /// route the CNOT executes across (swapping through the strong
        /// edges and executing across the weakest one costs `1×` the
        /// weak edge instead of `3×`). The paper's Algorithm 1 always
        /// makes the moved qubit adjacent to the stationary one, i.e.
        /// executes across the final path edge.
        optimize_meeting_edge: bool,
    },
}

impl RoutingMetric {
    /// The unconstrained VQM metric (paper Algorithm 1).
    pub fn reliability() -> Self {
        RoutingMetric::Reliability {
            max_additional_hops: None,
            optimize_meeting_edge: false,
        }
    }

    /// The hop-limited VQM metric with the paper's MAH = 4.
    pub fn reliability_hop_limited() -> Self {
        RoutingMetric::Reliability {
            max_additional_hops: Some(4),
            optimize_meeting_edge: false,
        }
    }

    /// VQM extended with meeting-edge optimization (see
    /// [`RoutingMetric::Reliability::optimize_meeting_edge`]); evaluated
    /// as an ablation in the benchmark harness.
    pub fn reliability_with_meeting_edge() -> Self {
        RoutingMetric::Reliability {
            max_additional_hops: None,
            optimize_meeting_edge: true,
        }
    }
}

/// Why a route could not be planned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// Both endpoints are the same physical qubit — there is nothing to
    /// route and the request indicates a mapping bug upstream.
    SelfRoute(PhysQubit),
    /// No path of *active* links connects the endpoints (the coupling
    /// graph is split, possibly by disabled links).
    Disconnected {
        /// One endpoint of the failed route.
        a: PhysQubit,
        /// The other endpoint.
        b: PhysQubit,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::SelfRoute(q) => write!(f, "cannot route {q} to itself"),
            RouteError::Disconnected { a, b } => {
                write!(f, "no active path connects {a} and {b}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A movement plan: bring the occupants of `path[0]` and `path.last()`
/// together across the meeting edge `(path[meet], path[meet + 1])`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePlan {
    /// The physical qubits along the route, endpoints inclusive.
    pub path: Vec<PhysQubit>,
    /// Index of the meeting edge within `path` (`0 ..= path.len() − 2`).
    pub meet: usize,
}

impl RoutePlan {
    /// The SWAPs to perform, in order: prefix swaps move the first
    /// occupant forward, suffix swaps move the second occupant backward.
    pub fn swaps(&self) -> Vec<(PhysQubit, PhysQubit)> {
        let mut out = Vec::with_capacity(self.path.len() - 2);
        for j in 0..self.meet {
            out.push((self.path[j], self.path[j + 1]));
        }
        for j in ((self.meet + 1)..(self.path.len() - 1)).rev() {
            out.push((self.path[j + 1], self.path[j]));
        }
        out
    }

    /// Where the occupant of `path[0]` ends up.
    pub fn first_lands_at(&self) -> PhysQubit {
        self.path[self.meet]
    }

    /// Where the occupant of `path.last()` ends up.
    pub fn second_lands_at(&self) -> PhysQubit {
        self.path[self.meet + 1]
    }

    /// Number of SWAPs the plan inserts.
    pub fn swap_count(&self) -> usize {
        self.path.len() - 2
    }
}

/// FNV-1a over a handful of words — the deterministic "arbitrary"
/// tie-break for shortest-route selection.
fn fnv_mix(words: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Plans routes over one device under one metric.
#[derive(Debug)]
pub struct Router<'d> {
    device: &'d Device,
    metric: RoutingMetric,
    hops: HopMatrix,
}

impl<'d> Router<'d> {
    /// Builds a router (precomputes the hop-distance matrix over the
    /// device's *active* coupling graph — disabled links are never
    /// routed over).
    pub fn new(device: &'d Device, metric: RoutingMetric) -> Self {
        Router {
            device,
            metric,
            hops: HopMatrix::of_active(device),
        }
    }

    /// The metric this router optimizes.
    pub fn metric(&self) -> RoutingMetric {
        self.metric
    }

    /// The hop-distance matrix (shared with allocators).
    pub fn hop_matrix(&self) -> &HopMatrix {
        &self.hops
    }

    /// Plans the movement that lets the occupants of `a` and `b`
    /// interact.
    ///
    /// # Errors
    ///
    /// * [`RouteError::SelfRoute`] when `a == b`;
    /// * [`RouteError::Disconnected`] when no path of active links joins
    ///   the endpoints (split topology or dead links in the way).
    pub fn plan(&self, a: PhysQubit, b: PhysQubit) -> Result<RoutePlan, RouteError> {
        quva_obs::counter("router.plans", 1);
        if a == b {
            return Err(RouteError::SelfRoute(a));
        }
        let disconnected = RouteError::Disconnected { a, b };
        let path = match self.metric {
            RoutingMetric::Hops => self.shortest_hop_path(a, b).ok_or(disconnected)?,
            RoutingMetric::Reliability {
                max_additional_hops, ..
            } => {
                let cap = max_additional_hops.map(|mah| self.hops.get(a, b).saturating_add(mah));
                self.most_reliable_path(a, b, cap).ok_or(disconnected)?
            }
        };
        let meet = match self.metric {
            // total failure weight = Σ swap_w(all edges) − swap_w(meet)
            // + exec_w(meet); with swap_w = 3·exec_w, minimize by
            // putting the meeting on the *weakest* edge of the path
            RoutingMetric::Reliability {
                optimize_meeting_edge: true,
                ..
            } => {
                let mut best = 0;
                let mut best_w = f64::NEG_INFINITY;
                for j in 0..path.len() - 1 {
                    // every path edge is an active link, so the weight is
                    // present; fall back to the default split otherwise
                    let Some(w) = self.device.cnot_failure_weight(path[j], path[j + 1]) else {
                        continue;
                    };
                    if w > best_w {
                        best_w = w;
                        best = j;
                    }
                }
                best
            }
            // default: meet in the middle — both occupants move toward
            // the route's center (any split has the same SWAP count for
            // this gate, but central meeting keeps the pair's
            // neighbourhoods compact for future gates)
            _ => (path.len() - 1) / 2,
        };
        Ok(RoutePlan { path, meet })
    }

    /// The total failure weight of executing a CNOT via `plan`:
    /// SWAP weights over non-meeting edges plus the execution weight of
    /// the meeting edge.
    ///
    /// A plan whose edges are not all active links (e.g. one produced
    /// before a link was disabled) weighs `f64::INFINITY` — certain
    /// failure — rather than panicking.
    pub fn plan_failure_weight(&self, plan: &RoutePlan) -> f64 {
        let mut total = 0.0;
        for j in 0..plan.path.len() - 1 {
            let (u, v) = (plan.path[j], plan.path[j + 1]);
            let w = if j == plan.meet {
                self.device.cnot_failure_weight(u, v)
            } else {
                self.device.swap_failure_weight(u, v)
            };
            total += w.unwrap_or(f64::INFINITY);
        }
        total
    }

    /// Deterministic BFS shortest path. Ties between equally-short
    /// routes are broken by a hash of the endpoints and position — the
    /// paper's baseline "may arbitrarily pick one" of the shortest
    /// routes (§2.4), and an arbitrary-but-deterministic spread avoids
    /// artificially funnelling all traffic through one corridor (which
    /// would make the variation-unaware baseline look far worse than it
    /// is whenever that corridor contains a weak link).
    fn shortest_hop_path(&self, a: PhysQubit, b: PhysQubit) -> Option<Vec<PhysQubit>> {
        if self.hops.get(a, b) == quva_device::UNREACHABLE_HOPS {
            return None;
        }
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            let descending: Vec<PhysQubit> = self
                .device
                .active_neighbors(cur)
                .into_iter()
                .filter(|&n| self.hops.get(n, b) == self.hops.get(cur, b) - 1)
                .collect();
            if descending.is_empty() {
                // unreachable in practice: a finite active hop distance
                // implies a descending active neighbor
                return None;
            }
            let pick = fnv_mix(&[a.0, b.0, cur.0]) as usize % descending.len();
            let next = descending[pick];
            path.push(next);
            cur = next;
        }
        Some(path)
    }

    /// Dijkstra over SWAP failure weights, optionally capped at
    /// `max_hops` edges.
    fn most_reliable_path(
        &self,
        a: PhysQubit,
        b: PhysQubit,
        max_hops: Option<u32>,
    ) -> Option<Vec<PhysQubit>> {
        let topo = self.device.topology();
        let n = topo.num_qubits();
        let cap = max_hops.map(|c| c.min(n as u32)).unwrap_or(n as u32) as usize;

        // state = (node, hops used); dist and parent tables per state
        let idx = |node: usize, hops: usize| node * (cap + 1) + hops;
        let mut dist = vec![f64::INFINITY; n * (cap + 1)];
        let mut parent = vec![usize::MAX; n * (cap + 1)];
        dist[idx(a.index(), 0)] = 0.0;

        #[derive(PartialEq)]
        struct Entry {
            cost: f64,
            node: usize,
            hops: usize,
        }
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, o: &Self) -> Ordering {
                o.cost
                    .total_cmp(&self.cost)
                    .then(o.hops.cmp(&self.hops))
                    .then(o.node.cmp(&self.node))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
                Some(self.cmp(o))
            }
        }

        let mut heap = BinaryHeap::new();
        heap.push(Entry {
            cost: 0.0,
            node: a.index(),
            hops: 0,
        });
        let mut pops = 0u64;
        while let Some(Entry { cost, node, hops }) = heap.pop() {
            pops += 1;
            if cost > dist[idx(node, hops)] {
                continue;
            }
            if node == b.index() {
                // reconstruct
                let mut rev = vec![b];
                let (mut cn, mut ch) = (node, hops);
                while !(cn == a.index() && ch == 0) {
                    let p = parent[idx(cn, ch)];
                    debug_assert_ne!(p, usize::MAX);
                    cn = p;
                    ch -= 1;
                    rev.push(PhysQubit(cn as u32));
                }
                rev.reverse();
                quva_obs::counter("router.dijkstra_pops", pops);
                return Some(rev);
            }
            if hops == cap {
                continue;
            }
            for nb in self.device.active_neighbors(PhysQubit(node as u32)) {
                // active neighbors always carry a weight; a link whose
                // weight is missing or unusable is simply not traversed
                let Some(w) = self.device.swap_failure_weight(PhysQubit(node as u32), nb) else {
                    continue;
                };
                if !w.is_finite() {
                    continue;
                }
                let nd = cost + w;
                let ni = idx(nb.index(), hops + 1);
                if nd < dist[ni] {
                    dist[ni] = nd;
                    parent[ni] = node;
                    heap.push(Entry {
                        cost: nd,
                        node: nb.index(),
                        hops: hops + 1,
                    });
                }
            }
        }
        quva_obs::counter("router.dijkstra_pops", pops);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva_device::{Calibration, Topology};

    fn uniform(topo: Topology, e: f64) -> Device {
        Device::new(topo, |t| Calibration::uniform(t, e, 0.0, 0.0))
    }

    #[test]
    fn hop_route_is_shortest_and_deterministic() {
        let dev = uniform(Topology::grid(2, 3), 0.05);
        let r = Router::new(&dev, RoutingMetric::Hops);
        // 0-1-2 / 3-4-5: from 0 to 5 every route is 3 hops
        let plan = r.plan(PhysQubit(0), PhysQubit(5)).unwrap();
        assert_eq!(plan.swap_count(), 2);
        assert_eq!(plan.path.len(), 4);
        // deterministic: replanning yields the identical route
        assert_eq!(plan, r.plan(PhysQubit(0), PhysQubit(5)).unwrap());
        // and the route is a real path over links
        for w in plan.path.windows(2) {
            assert!(dev.topology().has_link(w[0], w[1]));
        }
    }

    #[test]
    fn hop_tie_break_spreads_traffic() {
        // on a 5x5 grid many corner-to-corner pairs have route choices;
        // the arbitrary tie-break should not send every pair through
        // one corridor
        let dev = uniform(Topology::grid(5, 5), 0.05);
        let r = Router::new(&dev, RoutingMetric::Hops);
        let mut used = std::collections::HashSet::new();
        for b in [6u32, 12, 18, 24, 16, 8] {
            let plan = r.plan(PhysQubit(0), PhysQubit(b)).unwrap();
            used.extend(plan.path);
        }
        assert!(used.len() > 8, "routes collapsed onto {} nodes", used.len());
    }

    #[test]
    fn adjacent_pair_needs_no_swaps() {
        let dev = uniform(Topology::linear(3), 0.05);
        for metric in [RoutingMetric::Hops, RoutingMetric::reliability()] {
            let r = Router::new(&dev, metric);
            let plan = r.plan(PhysQubit(0), PhysQubit(1)).unwrap();
            assert_eq!(plan.swap_count(), 0);
            assert!(plan.swaps().is_empty());
            assert_eq!(plan.first_lands_at(), PhysQubit(0));
            assert_eq!(plan.second_lands_at(), PhysQubit(1));
        }
    }

    #[test]
    fn reliability_route_detours_around_weak_link() {
        // Figure 1: 5-qubit ring where the short path crosses weak links
        // and the long way round is stronger.
        let topo = Topology::ring(5);
        let dev = Device::new(topo, |t| {
            let mut c = Calibration::uniform(t, 0.1, 0.0, 0.0);
            // ring links: (0,1) (1,2) (2,3) (3,4) (4,0)
            c.set_two_qubit_error(0, 0.4); // A-B weak
            c.set_two_qubit_error(1, 0.3); // B-C weak
            c
        });
        let hop_router = Router::new(&dev, RoutingMetric::Hops);
        let rel_router = Router::new(&dev, RoutingMetric::reliability());
        let short = hop_router.plan(PhysQubit(0), PhysQubit(2)).unwrap();
        let strong = rel_router.plan(PhysQubit(0), PhysQubit(2)).unwrap();
        assert_eq!(short.swap_count(), 1);
        assert_eq!(
            strong.swap_count(),
            2,
            "VQM should take the longer, stronger route"
        );
        assert_eq!(
            strong.path,
            vec![PhysQubit(0), PhysQubit(4), PhysQubit(3), PhysQubit(2)]
        );
        assert!(rel_router.plan_failure_weight(&strong) < rel_router.plan_failure_weight(&short));
    }

    #[test]
    fn hop_limit_constrains_detour() {
        // same weak ring, but MAH = 0 forbids any detour
        let topo = Topology::ring(5);
        let dev = Device::new(topo, |t| {
            let mut c = Calibration::uniform(t, 0.1, 0.0, 0.0);
            c.set_two_qubit_error(0, 0.4);
            c.set_two_qubit_error(1, 0.3);
            c
        });
        let r = Router::new(
            &dev,
            RoutingMetric::Reliability {
                max_additional_hops: Some(0),
                optimize_meeting_edge: false,
            },
        );
        let plan = r.plan(PhysQubit(0), PhysQubit(2)).unwrap();
        assert_eq!(plan.swap_count(), 1, "MAH=0 must keep the shortest hop count");
    }

    #[test]
    fn uniform_errors_make_metrics_agree_on_length() {
        let dev = uniform(Topology::ibm_q20_tokyo(), 0.05);
        let hop = Router::new(&dev, RoutingMetric::Hops);
        let rel = Router::new(&dev, RoutingMetric::reliability());
        for a in 0..20u32 {
            for b in 0..20u32 {
                if a == b {
                    continue;
                }
                let ph = hop.plan(PhysQubit(a), PhysQubit(b)).unwrap();
                let pr = rel.plan(PhysQubit(a), PhysQubit(b)).unwrap();
                assert_eq!(ph.swap_count(), pr.swap_count(), "{a}->{b}");
            }
        }
    }

    #[test]
    fn meeting_edge_extension_picks_weakest_on_path() {
        // line with a weak middle link: with the extension enabled the
        // CNOT executes across the weak link rather than swapping
        // through it (1 use vs 3)
        let topo = Topology::linear(4);
        let dev = Device::new(topo, |t| {
            let mut c = Calibration::uniform(t, 0.02, 0.0, 0.0);
            c.set_two_qubit_error(1, 0.2); // link 1-2 weak
            c
        });
        let r = Router::new(&dev, RoutingMetric::reliability_with_meeting_edge());
        let plan = r.plan(PhysQubit(0), PhysQubit(3)).unwrap();
        assert_eq!(plan.meet, 1, "meeting edge should be the weak 1–2 link");
        let swaps = plan.swaps();
        assert_eq!(
            swaps,
            vec![(PhysQubit(0), PhysQubit(1)), (PhysQubit(3), PhysQubit(2))]
        );
        assert_eq!(plan.first_lands_at(), PhysQubit(1));
        assert_eq!(plan.second_lands_at(), PhysQubit(2));
        // the extension never costs more failure weight than the
        // default central meeting
        let faithful = Router::new(&dev, RoutingMetric::reliability());
        let default_plan = faithful.plan(PhysQubit(0), PhysQubit(3)).unwrap();
        let ext_plan = r.plan(PhysQubit(0), PhysQubit(3)).unwrap();
        assert!(r.plan_failure_weight(&ext_plan) <= faithful.plan_failure_weight(&default_plan) + 1e-12);
    }

    #[test]
    fn swaps_meet_in_the_middle() {
        let dev = uniform(Topology::linear(4), 0.05);
        let r = Router::new(&dev, RoutingMetric::Hops);
        let plan = r.plan(PhysQubit(0), PhysQubit(3)).unwrap();
        // central meeting: both occupants move one step
        assert_eq!(plan.meet, 1);
        assert_eq!(
            plan.swaps(),
            vec![(PhysQubit(0), PhysQubit(1)), (PhysQubit(3), PhysQubit(2))]
        );
        assert_eq!(plan.first_lands_at(), PhysQubit(1));
        assert_eq!(plan.second_lands_at(), PhysQubit(2));
    }

    #[test]
    fn disconnected_pair_is_typed_error() {
        let dev = uniform(Topology::from_links("split", 4, [(0, 1), (2, 3)]), 0.05);
        for metric in [RoutingMetric::Hops, RoutingMetric::reliability()] {
            let r = Router::new(&dev, metric);
            assert_eq!(
                r.plan(PhysQubit(0), PhysQubit(3)),
                Err(RouteError::Disconnected {
                    a: PhysQubit(0),
                    b: PhysQubit(3)
                })
            );
        }
    }

    #[test]
    fn self_route_rejected() {
        let dev = uniform(Topology::linear(2), 0.05);
        let r = Router::new(&dev, RoutingMetric::Hops);
        assert_eq!(
            r.plan(PhysQubit(0), PhysQubit(0)),
            Err(RouteError::SelfRoute(PhysQubit(0)))
        );
    }

    #[test]
    fn dead_link_forces_detour() {
        // ring 0-1-2-3-4; with 0-1 dead, 0→1 must go the long way round
        let dev = uniform(Topology::ring(5), 0.05).with_disabled_links([(PhysQubit(0), PhysQubit(1))]);
        for metric in [RoutingMetric::Hops, RoutingMetric::reliability()] {
            let r = Router::new(&dev, metric);
            let plan = r.plan(PhysQubit(0), PhysQubit(1)).unwrap();
            assert_eq!(
                plan.path,
                vec![
                    PhysQubit(0),
                    PhysQubit(4),
                    PhysQubit(3),
                    PhysQubit(2),
                    PhysQubit(1)
                ]
            );
            for w in plan.path.windows(2) {
                assert!(dev.has_active_link(w[0], w[1]));
            }
        }
    }

    #[test]
    fn dead_links_splitting_device_yield_error() {
        // line 0-1-2-3 with the middle link dead: the halves cannot talk
        let dev = uniform(Topology::linear(4), 0.05).with_disabled_links([(PhysQubit(1), PhysQubit(2))]);
        for metric in [
            RoutingMetric::Hops,
            RoutingMetric::reliability(),
            RoutingMetric::reliability_hop_limited(),
        ] {
            let r = Router::new(&dev, metric);
            assert_eq!(
                r.plan(PhysQubit(0), PhysQubit(3)),
                Err(RouteError::Disconnected {
                    a: PhysQubit(0),
                    b: PhysQubit(3)
                })
            );
            // pairs inside one half still route fine
            assert!(r.plan(PhysQubit(0), PhysQubit(1)).is_ok());
        }
    }

    #[test]
    fn route_error_displays() {
        let e = RouteError::Disconnected {
            a: PhysQubit(0),
            b: PhysQubit(3),
        };
        assert!(e.to_string().contains("no active path"));
        assert!(RouteError::SelfRoute(PhysQubit(2)).to_string().contains("itself"));
    }

    #[test]
    fn metric_constructors() {
        assert_eq!(
            RoutingMetric::reliability(),
            RoutingMetric::Reliability {
                max_additional_hops: None,
                optimize_meeting_edge: false
            }
        );
        assert_eq!(
            RoutingMetric::reliability_hop_limited(),
            RoutingMetric::Reliability {
                max_additional_hops: Some(4),
                optimize_meeting_edge: false
            }
        );
        assert_eq!(
            RoutingMetric::reliability_with_meeting_edge(),
            RoutingMetric::Reliability {
                max_additional_hops: None,
                optimize_meeting_edge: true
            }
        );
    }
}
