//! # quva — Variation-Aware Policies for NISQ-Era Quantum Computers
//!
//! A full reproduction of Tannu & Qureshi, *"Not All Qubits Are Created
//! Equal: A Case for Variability-Aware Policies for NISQ-Era Quantum
//! Computers"* (ASPLOS 2019): qubit mapping policies that exploit the
//! large (up to 7.5x) variation in link error rates measured on real
//! IBM machines.
//!
//! ## The policies
//!
//! | Policy | Allocation | Movement |
//! |---|---|---|
//! | [`MappingPolicy::native`] | random (IBM-compiler-like) | fewest SWAPs |
//! | [`MappingPolicy::baseline`] | greedy interaction placement | fewest SWAPs |
//! | [`MappingPolicy::vqm`] | greedy interaction placement | most reliable route |
//! | [`MappingPolicy::vqm_hop_limited`] | greedy interaction placement | most reliable, MAH = 4 |
//! | [`MappingPolicy::vqa_vqm`] | strongest subgraph + activity | most reliable route |
//!
//! ## Quickstart
//!
//! ```
//! use quva::MappingPolicy;
//! use quva_benchmarks::bv;
//! use quva_device::Device;
//! use quva_sim::CoherenceModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let device = Device::ibm_q20();
//! let program = bv(16);
//!
//! let baseline = MappingPolicy::baseline().compile(&program, &device)?;
//! let aware = MappingPolicy::vqa_vqm().compile(&program, &device)?;
//!
//! let pst_base = baseline.analytic_pst(&device, CoherenceModel::IdleWindow)?.pst;
//! let pst_aware = aware.analytic_pst(&device, CoherenceModel::IdleWindow)?.pst;
//! assert!(pst_aware >= pst_base * 0.95); // variation-awareness pays off
//! # Ok(())
//! # }
//! ```
//!
//! The sibling crates provide the substrates: `quva-circuit` (IR),
//! `quva-device` (topologies + calibration), `quva-benchmarks`
//! (workloads), `quva-sim` (PST estimation and noisy simulation), and
//! `quva-bench` (the per-figure experiment harness).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod allocator;
mod compiler;
mod mapping;
mod partition;
pub mod pipeline;
mod router;

pub use allocator::AllocationStrategy;
pub use compiler::{CompileAudit, CompileError, CompileOptions, CompiledCircuit, MappingPolicy};
pub use mapping::Mapping;
pub use partition::{partition_analysis, CopyPlan, PartitionChoice, PartitionReport};
pub use pipeline::{
    CheckedPipeline, CompilePass, ContractError, ContractViolation, ContractViolationKind, Invariant,
    PassContext, PassContract, Pipeline,
};
pub use router::{RouteError, RoutePlan, Router, RoutingMetric};
