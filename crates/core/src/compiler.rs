//! The end-to-end mapping pipeline: allocate, then route layer by
//! layer, emitting a physical circuit.

use std::error::Error;
use std::fmt;

use quva_circuit::{Circuit, Gate, Layers, PhysQubit, Qubit};
use quva_device::{Device, HopMatrix, ReliabilityMatrix};
use quva_sim::{analytic_pst, CoherenceModel, PstReport, SimError};

use crate::allocator::AllocationStrategy;
use crate::mapping::Mapping;
use crate::router::RoutingMetric;

/// A complete mapping policy: an allocation strategy plus a routing
/// metric. The paper's four policies are provided as constructors.
///
/// # Examples
///
/// ```
/// use quva::MappingPolicy;
/// use quva_device::Device;
/// use quva_benchmarks::bv;
///
/// # fn main() -> Result<(), quva::CompileError> {
/// let device = Device::ibm_q20();
/// let program = bv(16);
/// let compiled = MappingPolicy::vqa_vqm().compile(&program, &device)?;
/// assert!(compiled.physical().two_qubit_gate_count() >= program.two_qubit_gate_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingPolicy {
    /// Initial placement strategy.
    pub allocation: AllocationStrategy,
    /// Movement cost metric.
    pub routing: RoutingMetric,
}

impl MappingPolicy {
    /// The variation-unaware baseline (§4.5): greedy interaction
    /// placement + minimum-SWAP routing.
    pub fn baseline() -> Self {
        MappingPolicy {
            allocation: AllocationStrategy::GreedyInteraction,
            routing: RoutingMetric::Hops,
        }
    }

    /// VQM (§5): baseline allocation, reliability-optimal movement.
    pub fn vqm() -> Self {
        MappingPolicy {
            allocation: AllocationStrategy::GreedyInteraction,
            routing: RoutingMetric::reliability(),
        }
    }

    /// Hop-limited VQM with the paper's MAH = 4 (§5.3).
    pub fn vqm_hop_limited() -> Self {
        MappingPolicy {
            allocation: AllocationStrategy::GreedyInteraction,
            routing: RoutingMetric::reliability_hop_limited(),
        }
    }

    /// VQA + VQM (§6): strongest-subgraph allocation, reliability
    /// movement — the paper's headline policy.
    pub fn vqa_vqm() -> Self {
        MappingPolicy {
            allocation: AllocationStrategy::vqa(),
            routing: RoutingMetric::reliability(),
        }
    }

    /// The IBM-native-compiler stand-in (§6.4): seeded random
    /// allocation, minimum-SWAP routing.
    pub fn native(seed: u64) -> Self {
        MappingPolicy {
            allocation: AllocationStrategy::Random { seed },
            routing: RoutingMetric::Hops,
        }
    }

    /// A short display name for tables.
    pub fn name(&self) -> String {
        match (self.allocation, self.routing) {
            (AllocationStrategy::Random { .. }, _) => "native".into(),
            (AllocationStrategy::GreedyInteraction, RoutingMetric::Hops) => "baseline".into(),
            (
                AllocationStrategy::GreedyInteraction,
                RoutingMetric::Reliability {
                    max_additional_hops: None,
                    ..
                },
            ) => "VQM".into(),
            (
                AllocationStrategy::GreedyInteraction,
                RoutingMetric::Reliability {
                    max_additional_hops: Some(m),
                    ..
                },
            ) => {
                format!("VQM(MAH={m})")
            }
            (AllocationStrategy::StrongestSubgraph { .. }, RoutingMetric::Hops) => "VQA".into(),
            (AllocationStrategy::StrongestSubgraph { .. }, RoutingMetric::Reliability { .. }) => {
                "VQA+VQM".into()
            }
        }
    }

    /// Compiles a program circuit into a routed physical circuit.
    ///
    /// The strongest-subgraph (VQA) allocation is a *restriction* of the
    /// placement space, so the compiler treats it as a portfolio: it
    /// also routes the unrestricted interaction-greedy placement and
    /// keeps whichever compiled circuit the analytic gate-error model
    /// predicts to be more reliable. This realizes the paper's Fig. 13
    /// property that VQA+VQM never falls below VQM alone.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the program does not fit the device
    /// or a required movement is impossible — the topology is
    /// disconnected outright, or disabled links split it into pieces
    /// too small or too far apart. Dead links never panic the pipeline.
    pub fn compile(&self, circuit: &Circuit, device: &Device) -> Result<CompiledCircuit, CompileError> {
        self.compile_with(circuit, device, &CompileOptions::default())
    }

    /// Like [`MappingPolicy::compile`], with explicit [`CompileOptions`].
    ///
    /// This is now a thin front over the pass pipeline: the policy is
    /// expressed as [`crate::pipeline::Pipeline::for_policy_with`],
    /// contract-validated, and run. Standard policy pipelines always
    /// validate; verification — when [`CompileOptions::verify`] is set —
    /// is a pipeline pass that runs exactly once, on the finally chosen
    /// circuit (after VQA portfolio selection). A finding surfaces as
    /// [`CompileError::Verification`].
    ///
    /// # Errors
    ///
    /// Everything [`MappingPolicy::compile`] returns, plus
    /// [`CompileError::Verification`] when the audit rejects the output.
    pub fn compile_with(
        &self,
        circuit: &Circuit,
        device: &Device,
        options: &CompileOptions<'_>,
    ) -> Result<CompiledCircuit, CompileError> {
        let _total = quva_obs::span("compile", "compile.total");
        crate::pipeline::Pipeline::for_policy_with(self, options.verify).compile(circuit, device)
    }

    /// Compiles with the *plan-based* router instead of the default
    /// stepwise lookahead router: each separated two-qubit gate gets a
    /// whole SWAP chain from [`crate::Router::plan`] at once, with no
    /// lookahead over future gates. Kept as the architecture ablation —
    /// the stepwise router exists because this variant's trajectories
    /// are chaotic on dense workloads (see DESIGN.md).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the program does not fit the device
    /// or a required movement is impossible.
    pub fn compile_plan_based(
        &self,
        circuit: &Circuit,
        device: &Device,
    ) -> Result<CompiledCircuit, CompileError> {
        let mut mapping = self
            .allocation
            .allocate(circuit, device)
            .map_err(CompileError::Allocation)?;
        let router = crate::router::Router::new(device, self.routing);
        let initial = mapping.clone();
        let mut out: Circuit<PhysQubit> =
            Circuit::with_cbits(device.num_qubits(), circuit.num_cbits().max(1));
        let mut inserted = 0usize;

        let layers = Layers::of(circuit);
        for li in 0..layers.len() {
            for &gi in layers.layer(li) {
                match &circuit.gates()[gi] {
                    Gate::OneQubit { kind, qubit } => {
                        out.one(*kind, mapping.phys_of(*qubit));
                    }
                    Gate::Measure { qubit, cbit } => {
                        out.measure(mapping.phys_of(*qubit), *cbit);
                    }
                    Gate::Barrier { qubits } => {
                        let mapped = qubits.iter().map(|&q| mapping.phys_of(q)).collect();
                        out.push(Gate::Barrier { qubits: mapped });
                    }
                    Gate::Cnot {
                        control: a,
                        target: b,
                    }
                    | Gate::Swap { a, b } => {
                        let (pa, pb) = (mapping.phys_of(*a), mapping.phys_of(*b));
                        if !device.has_active_link(pa, pb) {
                            let plan = router
                                .plan(pa, pb)
                                .map_err(|_| CompileError::Disconnected { a: *a, b: *b })?;
                            for (u, v) in plan.swaps() {
                                out.swap(u, v);
                                mapping.apply_swap(u, v);
                                inserted += 1;
                            }
                        }
                        let (pa, pb) = (mapping.phys_of(*a), mapping.phys_of(*b));
                        match &circuit.gates()[gi] {
                            Gate::Cnot { .. } => {
                                out.cnot(pa, pb);
                            }
                            _ => {
                                out.swap(pa, pb);
                            }
                        }
                    }
                }
            }
        }
        Ok(CompiledCircuit {
            physical: out,
            initial,
            final_mapping: mapping,
            inserted_swaps: inserted,
        })
    }
}

/// A post-compile audit over the compiler's chosen output.
///
/// Defined here so `quva` never depends on the analysis machinery
/// (dependency inversion): `quva-analysis::Verifier` implements this
/// trait, and callers thread it in through [`CompileOptions::verify`].
///
/// `Sync` is a supertrait so a verify pass holding an auditor keeps
/// checked pipelines shareable across threads (`quvad` caches them).
pub trait CompileAudit: Sync {
    /// Audits `compiled` against its source program and target device.
    ///
    /// # Errors
    ///
    /// A human-readable description of every finding; it fails the
    /// compile as [`CompileError::Verification`].
    fn audit(&self, source: &Circuit, device: &Device, compiled: &CompiledCircuit) -> Result<(), String>;
}

/// Options for [`MappingPolicy::compile_with`].
#[derive(Default)]
pub struct CompileOptions<'a> {
    /// Post-compile audit to run on the chosen output, if any.
    pub verify: Option<&'a dyn CompileAudit>,
}

impl fmt::Debug for CompileOptions<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompileOptions")
            .field("verify", &self.verify.is_some())
            .finish()
    }
}

/// Error produced when compilation fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Initial allocation failed (program larger than device, ...).
    Allocation(String),
    /// Two program qubits must interact but their physical locations
    /// are disconnected.
    Disconnected {
        /// First program qubit.
        a: Qubit,
        /// Second program qubit.
        b: Qubit,
    },
    /// The post-compile audit rejected the output; the string is the
    /// auditor's rendered report.
    Verification(String),
    /// The pass pipeline was rejected by the static contract checker
    /// before any pass executed.
    Contract(crate::pipeline::ContractError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Allocation(msg) => write!(f, "allocation failed: {msg}"),
            CompileError::Disconnected { a, b } => {
                write!(f, "program qubits {a} and {b} sit on disconnected device regions")
            }
            CompileError::Verification(report) => {
                write!(f, "compiled output failed verification:\n{report}")
            }
            CompileError::Contract(err) => write!(f, "{err}"),
        }
    }
}

impl Error for CompileError {}

/// The output of compilation: a hardware-level circuit plus the mapping
/// bookkeeping needed to interpret it.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCircuit {
    physical: Circuit<PhysQubit>,
    initial: Mapping,
    final_mapping: Mapping,
    inserted_swaps: usize,
}

impl CompiledCircuit {
    /// Assembles a compiled circuit from raw parts.
    ///
    /// No invariant is checked here — the parts are *trusted*, exactly
    /// like the compiler's own output. `quva-analysis` exists to audit
    /// them; this constructor is the interop/test seam that lets a
    /// verifier be pointed at hand-built (or deliberately corrupted)
    /// outputs.
    pub fn from_parts(
        physical: Circuit<PhysQubit>,
        initial: Mapping,
        final_mapping: Mapping,
        inserted_swaps: usize,
    ) -> Self {
        CompiledCircuit {
            physical,
            initial,
            final_mapping,
            inserted_swaps,
        }
    }

    /// The routed physical circuit (every two-qubit gate on a coupling
    /// link).
    pub fn physical(&self) -> &Circuit<PhysQubit> {
        &self.physical
    }

    /// Where each program qubit started.
    pub fn initial_mapping(&self) -> &Mapping {
        &self.initial
    }

    /// Where each program qubit ended up.
    pub fn final_mapping(&self) -> &Mapping {
        &self.final_mapping
    }

    /// Number of SWAPs the router inserted (excludes SWAPs present in
    /// the source program).
    pub fn inserted_swaps(&self) -> usize {
        self.inserted_swaps
    }

    /// Analytic PST of the compiled circuit on `device`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the circuit does not fit `device` (e.g.
    /// it was compiled for a different machine).
    pub fn analytic_pst(&self, device: &Device, coherence: CoherenceModel) -> Result<PstReport, SimError> {
        analytic_pst(device, &self.physical, coherence)
    }

    /// Per-link utilization in physical CNOT-equivalents (a SWAP counts
    /// as 3): index i = link id of `device.topology().links()[i]`.
    /// Gates on pairs absent from the device, or on *disabled* links, are
    /// skipped here — such gates are illegal output, and it is the
    /// verifier's job (`quva-analysis`, QV001/QV002) to flag them, not
    /// this profile's to silently fold them into utilization.
    ///
    /// The core claim of the paper — variation-aware policies *steer
    /// traffic away from weak links* — is directly observable in this
    /// profile (see the `vqm_shifts_traffic_off_weak_links` test).
    pub fn link_utilization(&self, device: &Device) -> Vec<usize> {
        let topo = device.topology();
        let mut use_count = vec![0usize; topo.num_links()];
        for gate in &self.physical {
            if let Gate::Cnot {
                control: a,
                target: b,
            }
            | Gate::Swap { a, b } = gate
            {
                if let Some(id) = topo.link_id(*a, *b) {
                    if device.link_enabled(id) {
                        use_count[id] += gate.cnot_cost();
                    }
                }
            }
        }
        use_count
    }

    /// The utilization-weighted mean link error of the compiled
    /// circuit: the average two-qubit error rate actually *experienced*
    /// per CNOT-equivalent. Lower is better; variation-aware policies
    /// push this below the device's plain mean.
    pub fn experienced_link_error(&self, device: &Device) -> f64 {
        let usage = self.link_utilization(device);
        let total: usize = usage.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let cal = device.calibration();
        usage
            .iter()
            .enumerate()
            .map(|(id, &u)| u as f64 * cal.two_qubit_error(id))
            .sum::<f64>()
            / total as f64
    }
}

/// How many upcoming two-qubit gates the router's lookahead inspects.
const LOOKAHEAD_WINDOW: usize = 16;
/// Relative weight of the lookahead term against the current gate.
const LOOKAHEAD_WEIGHT: f64 = 0.5;

/// The metric distance table between physical locations — expected
/// failure weight (reliability) or SWAP count (hops) to bring them
/// together — plus whether the device's reliability weights were
/// usable at all.
///
/// Degradation: if any active link's reliability weight is unusable
/// (non-finite), the reliability metric falls back to hop-count
/// distances — VQM degrades to baseline routing rather than panicking.
/// The warning is emitted only when `warn_on_degraded` is set, so the
/// portfolio router's extra metric tables don't repeat it.
pub(crate) fn metric_distances(
    device: &Device,
    metric: RoutingMetric,
    warn_on_degraded: bool,
) -> (ReliabilityMatrix, bool) {
    let topo = device.topology();
    let weights_usable = (0..topo.num_links()).all(|id| {
        let link = topo.links()[id];
        !device.link_enabled(id)
            || device
                .swap_failure_weight(link.low(), link.high())
                .is_some_and(|w| w.is_finite() && w >= 0.0)
    });
    let dist = match metric {
        RoutingMetric::Reliability { .. } if weights_usable => {
            ReliabilityMatrix::of_active(device, |id| {
                let link = topo.links()[id];
                device.swap_failure_weight(link.low(), link.high()).unwrap_or(0.0)
                // enabled links always carry a weight
            })
        }
        // the documented VQM degradation: unusable reliability weights
        // fall back to hop-count distances (uniform cost = hops)
        RoutingMetric::Reliability { .. } => {
            if warn_on_degraded {
                quva_obs::warn(
                    "router",
                    "reliability weights unusable; VQM routing degraded to hop-count distances",
                );
            }
            ReliabilityMatrix::of_active(device, |_| 1.0)
        }
        RoutingMetric::Hops => ReliabilityMatrix::of_active(device, |_| 1.0),
    };
    (dist, weights_usable)
}

/// The routing order shared by every candidate of a portfolio: gates
/// flattened in layer order, the positions of two-qubit gates (feeding
/// the lookahead), and per-layer position bounds so the portfolio
/// router can extend candidates one layer at a time.
pub(crate) struct RouteBase {
    /// Gate indices in layer order.
    pub(crate) order: Vec<usize>,
    /// Positions (into `order`) of the two-qubit gates.
    pub(crate) two_qubit_positions: Vec<usize>,
    /// Per position, the count of two-qubit gates at positions `<=`
    /// it: the lookahead starts at `two_qubit_positions[rank_2q[pos]]`.
    pub(crate) rank_2q: Vec<usize>,
    /// Half-open `(start, end)` position ranges, one per circuit layer.
    pub(crate) layer_bounds: Vec<(usize, usize)>,
}

impl RouteBase {
    pub(crate) fn of(circuit: &Circuit) -> Self {
        let layers = Layers::of(circuit);
        let mut order = Vec::new();
        let mut layer_bounds = Vec::with_capacity(layers.len());
        for li in 0..layers.len() {
            let start = order.len();
            order.extend_from_slice(layers.layer(li));
            layer_bounds.push((start, order.len()));
        }
        let two_qubit_positions: Vec<usize> = (0..order.len())
            .filter(|&i| circuit.gates()[order[i]].is_two_qubit())
            .collect();
        let mut rank_2q = vec![0usize; order.len()];
        let mut rank = 0usize;
        for (pos, &gi) in order.iter().enumerate() {
            if circuit.gates()[gi].is_two_qubit() {
                rank += 1;
            }
            rank_2q[pos] = rank;
        }
        RouteBase {
            order,
            two_qubit_positions,
            rank_2q,
            layer_bounds,
        }
    }
}

/// Routes the positions in `range` (indices into `base.order`) onto
/// `out`, advancing `mapping` and `inserted` — the stepwise routing
/// step shared by [`route`] (whole circuit at once) and the portfolio
/// router (layer by layer per candidate).
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_positions(
    circuit: &Circuit,
    device: &Device,
    hops: &HopMatrix,
    dist: &ReliabilityMatrix,
    metric: RoutingMetric,
    excess_router: Option<&crate::router::Router<'_>>,
    base: &RouteBase,
    range: std::ops::Range<usize>,
    mapping: &mut Mapping,
    out: &mut Circuit<PhysQubit>,
    inserted: &mut usize,
) -> Result<(), CompileError> {
    for pos in range {
        let gi = base.order[pos];
        let gate = &circuit.gates()[gi];
        match gate {
            Gate::OneQubit { kind, qubit } => {
                out.one(*kind, mapping.phys_of(*qubit));
            }
            Gate::Measure { qubit, cbit } => {
                out.measure(mapping.phys_of(*qubit), *cbit);
            }
            Gate::Barrier { qubits } => {
                let mapped = qubits.iter().map(|&q| mapping.phys_of(q)).collect();
                out.push(Gate::Barrier { qubits: mapped });
            }
            Gate::Cnot {
                control: a,
                target: b,
            }
            | Gate::Swap { a, b } => {
                debug_assert!(pos < base.order.len());
                let upcoming: Vec<(Qubit, Qubit)> = base.two_qubit_positions[base.rank_2q[pos]..]
                    .iter()
                    .take(LOOKAHEAD_WINDOW)
                    .map(|&i| {
                        let qs = circuit.gates()[base.order[i]].qubits();
                        (qs[0], qs[1])
                    })
                    .collect();
                let start_len = out.gates().len();
                let start_locs = (mapping.phys_of(*a), mapping.phys_of(*b));
                bring_together(
                    device, hops, dist, metric, mapping, out, inserted, *a, *b, &upcoming,
                )?;
                let (pa, pb) = (mapping.phys_of(*a), mapping.phys_of(*b));
                match gate {
                    Gate::Cnot { .. } => {
                        out.cnot(pa, pb);
                    }
                    // a SWAP demanded by the source program executes
                    // physically; register contents exchange, homes stay
                    _ => {
                        out.swap(pa, pb);
                    }
                }
                if let Some(router) = excess_router {
                    if matches!(gate, Gate::Cnot { .. }) && start_locs.0 != start_locs.1 {
                        observe_excess_weight(device, router, start_locs, &out.gates()[start_len..]);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Routes an allocated circuit with stepwise SWAP insertion: for each
/// two-qubit gate whose operands are separated, single SWAPs are chosen
/// one at a time by a score combining the metric's cost of the SWAP,
/// the remaining separation of the active pair, and a lookahead over
/// the next [`LOOKAHEAD_WINDOW`] two-qubit gates — the displacement of
/// bystander qubits is thereby accounted for instead of compounding
/// silently (the instability the paper's MAH heuristic also targets).
///
/// All distance matrices are built over the device's *active* coupling
/// graph: disabled links are never routed over, and a mapping split
/// across dead links surfaces as [`CompileError::Disconnected`].
///
/// Degradation: see [`metric_distances`] — VQM degrades to baseline
/// routing rather than panicking on unusable reliability weights.
pub(crate) fn route(
    circuit: &Circuit,
    device: &Device,
    mut mapping: Mapping,
    metric: RoutingMetric,
) -> Result<CompiledCircuit, CompileError> {
    let _route_span = quva_obs::span("compile", "compile.route");
    let hops = HopMatrix::of_active(device);
    let (dist, weights_usable) = metric_distances(device, metric, true);
    // chosen-vs-best bookkeeping: when tracing is on, each separated
    // CNOT's realized failure weight is compared against the plan-based
    // router's optimum for the same endpoints (negative excess means
    // the stepwise lookahead beat the single-gate plan)
    let excess_router =
        (quva_obs::enabled() && weights_usable && matches!(metric, RoutingMetric::Reliability { .. }))
            .then(|| crate::router::Router::new(device, metric));

    let initial = mapping.clone();
    let mut out: Circuit<PhysQubit> = Circuit::with_cbits(device.num_qubits(), circuit.num_cbits().max(1));
    let mut inserted = 0usize;

    let base = RouteBase::of(circuit);
    route_positions(
        circuit,
        device,
        &hops,
        &dist,
        metric,
        excess_router.as_ref(),
        &base,
        0..base.order.len(),
        &mut mapping,
        &mut out,
        &mut inserted,
    )?;

    quva_obs::counter("route.gates", base.two_qubit_positions.len() as u64);
    quva_obs::counter("route.swaps_inserted", inserted as u64);
    Ok(CompiledCircuit {
        physical: out,
        initial,
        final_mapping: mapping,
        inserted_swaps: inserted,
    })
}

/// Records how much failure weight the stepwise router's realized gate
/// sequence (`emitted`: inserted SWAPs plus the executed CNOT) spent
/// over the plan-based optimum for the same starting endpoints.
///
/// The value may be *negative*: the stepwise lookahead sometimes finds
/// a better meeting split than the plan's, and bounding it at zero
/// would hide exactly the signal this histogram exists to expose.
fn observe_excess_weight(
    device: &Device,
    router: &crate::router::Router<'_>,
    start: (PhysQubit, PhysQubit),
    emitted: &[Gate<PhysQubit>],
) {
    let Ok(plan) = router.plan(start.0, start.1) else {
        return;
    };
    let best = router.plan_failure_weight(&plan);
    let chosen: f64 = emitted
        .iter()
        .map(|g| match g {
            Gate::Swap { a, b } => device.swap_failure_weight(*a, *b).unwrap_or(f64::INFINITY),
            Gate::Cnot {
                control: a,
                target: b,
            } => device.cnot_failure_weight(*a, *b).unwrap_or(f64::INFINITY),
            _ => 0.0,
        })
        .sum();
    if chosen.is_finite() && best.is_finite() {
        quva_obs::observe("route.excess_weight", chosen - best);
    }
}

/// Inserts SWAPs one at a time until program qubits `a` and `b` sit on
/// coupled physical qubits.
#[allow(clippy::too_many_arguments)]
fn bring_together(
    device: &Device,
    hops: &HopMatrix,
    dist: &ReliabilityMatrix,
    metric: RoutingMetric,
    mapping: &mut Mapping,
    out: &mut Circuit<PhysQubit>,
    inserted: &mut usize,
    a: Qubit,
    b: Qubit,
    upcoming: &[(Qubit, Qubit)],
) -> Result<(), CompileError> {
    if hops.get(mapping.phys_of(a), mapping.phys_of(b)) == quva_device::UNREACHABLE_HOPS {
        return Err(CompileError::Disconnected { a, b });
    }
    let start_swaps = hops.swaps_needed(mapping.phys_of(a), mapping.phys_of(b)) as usize;
    // after this budget, fall back to strict hop descent (guaranteed
    // progress); MAH additionally caps the exploratory phase
    let explore_budget = match metric {
        RoutingMetric::Reliability {
            max_additional_hops: Some(mah),
            ..
        } => start_swaps + mah as usize,
        _ => start_swaps + 4,
    };
    let mut steps = 0usize;
    let mut last_swap: Option<(PhysQubit, PhysQubit)> = None;
    let mut candidates = 0u64;

    loop {
        let (pa, pb) = (mapping.phys_of(a), mapping.phys_of(b));
        if device.has_active_link(pa, pb) {
            quva_obs::counter("route.candidates", candidates);
            return Ok(());
        }
        let strict = steps >= explore_budget;

        // candidate swaps: active links incident to either active
        // location (SWAPs across dead links are impossible)
        let mut best: Option<(f64, (PhysQubit, PhysQubit))> = None;
        for &active in &[pa, pb] {
            for nb in device.active_neighbors(active) {
                let cand = (active, nb);
                candidates += 1;
                if last_swap == Some((cand.1, cand.0)) || last_swap == Some(cand) {
                    continue; // never undo the previous step
                }
                // positions after the candidate swap
                let move_pos = |p: PhysQubit| -> PhysQubit {
                    if p == cand.0 {
                        cand.1
                    } else if p == cand.1 {
                        cand.0
                    } else {
                        p
                    }
                };
                let (na, nbq) = (move_pos(pa), move_pos(pb));
                if strict && hops.get(na, nbq) >= hops.get(pa, pb) {
                    continue; // strict mode: only hop-descending swaps
                }
                let swap_cost = match metric {
                    RoutingMetric::Hops => 1.0,
                    RoutingMetric::Reliability { .. } => {
                        // active neighbors always carry a weight; a link
                        // with an unusable weight is never swapped over
                        match device.swap_failure_weight(cand.0, cand.1) {
                            Some(w) if w.is_finite() => w,
                            _ => continue,
                        }
                    }
                };
                // remaining cost after this swap: the swap-weight
                // distance, except that with the meeting-edge extension
                // a landing edge is charged at its true execution cost
                // (1× the link weight instead of a SWAP's 3×)
                let remaining = match metric {
                    RoutingMetric::Reliability {
                        optimize_meeting_edge: true,
                        ..
                    } if device.has_active_link(na, nbq) => device
                        .cnot_failure_weight(na, nbq)
                        .unwrap_or_else(|| dist.get(na, nbq)),
                    _ => dist.get(na, nbq),
                };
                let mut score = swap_cost + remaining;
                if !upcoming.is_empty() {
                    let mut future = 0.0;
                    for &(fa, fb) in upcoming {
                        let (fa_p, fb_p) = (mapping.phys_of(fa), mapping.phys_of(fb));
                        future += dist.get(move_pos(fa_p), move_pos(fb_p));
                    }
                    score += LOOKAHEAD_WEIGHT * future / upcoming.len() as f64;
                }
                let better = match best {
                    None => true,
                    Some((bs, bc)) => score < bs - 1e-12 || (score < bs + 1e-12 && cand < bc),
                };
                if better {
                    best = Some((score, cand));
                }
            }
        }

        // a separated pair connected in the active graph always has a
        // candidate swap; anything else (e.g. every incident weight
        // unusable) degrades to a typed error instead of a panic
        let Some((_, (u, v))) = best else {
            quva_obs::counter("route.candidates", candidates);
            return Err(CompileError::Disconnected { a, b });
        };
        out.swap(u, v);
        mapping.apply_swap(u, v);
        *inserted += 1;
        last_swap = Some((u, v));
        steps += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva_circuit::Cbit;
    use quva_device::{Calibration, Topology};

    fn uniform(topo: Topology, e: f64) -> Device {
        Device::new(topo, |t| Calibration::uniform(t, e, 0.001, 0.02))
    }

    fn long_cnot_program() -> Circuit {
        let mut c = Circuit::new(4);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(3));
        c.measure(Qubit(3), Cbit(0));
        c
    }

    /// Every two-qubit gate of a compiled circuit must sit on a link.
    fn assert_routed(compiled: &CompiledCircuit, device: &Device) {
        for g in compiled.physical() {
            if let Gate::Cnot {
                control: a,
                target: b,
            }
            | Gate::Swap { a, b } = g
            {
                assert!(device.topology().has_link(*a, *b), "{g} not on a coupling link");
            }
        }
    }

    #[test]
    fn compile_produces_routed_circuit() {
        let dev = uniform(Topology::linear(4), 0.05);
        for policy in [
            MappingPolicy::baseline(),
            MappingPolicy::vqm(),
            MappingPolicy::vqm_hop_limited(),
            MappingPolicy::vqa_vqm(),
            MappingPolicy::native(3),
        ] {
            let compiled = policy.compile(&long_cnot_program(), &dev).unwrap();
            assert_routed(&compiled, &dev);
            assert_eq!(compiled.physical().cnot_count(), 1, "{}", policy.name());
        }
    }

    #[test]
    fn adjacent_cnot_needs_no_swaps() {
        let dev = uniform(Topology::linear(2), 0.05);
        let mut c = Circuit::new(2);
        c.cnot(Qubit(0), Qubit(1));
        let compiled = MappingPolicy::baseline().compile(&c, &dev).unwrap();
        assert_eq!(compiled.inserted_swaps(), 0);
        assert_eq!(compiled.physical().swap_count(), 0);
    }

    #[test]
    fn swap_chain_updates_mapping() {
        // on a line, allocation may already place q0 and q3 adjacent;
        // force the identity placement via the native policy with a
        // seed that yields identity? Instead test the mapping algebra
        // directly: compile and check measurements land correctly.
        let dev = uniform(Topology::linear(4), 0.05);
        let compiled = MappingPolicy::baseline()
            .compile(&long_cnot_program(), &dev)
            .unwrap();
        // the measured physical qubit must be q3's final home
        let measured = compiled
            .physical()
            .iter()
            .find_map(|g| match g {
                Gate::Measure { qubit, .. } => Some(*qubit),
                _ => None,
            })
            .unwrap();
        assert_eq!(measured, compiled.final_mapping().phys_of(Qubit(3)));
    }

    #[test]
    fn program_swaps_execute_physically() {
        let dev = uniform(Topology::linear(3), 0.05);
        let mut c = Circuit::new(3);
        c.swap(Qubit(0), Qubit(1));
        let compiled = MappingPolicy::baseline().compile(&c, &dev).unwrap();
        assert_eq!(compiled.physical().swap_count(), 1);
        assert_eq!(compiled.inserted_swaps(), 0);
    }

    #[test]
    fn vqm_avoids_weak_link_at_cost_of_swaps() {
        // ring with a weak arc between the allocated qubits
        let topo = Topology::ring(5);
        let dev = Device::new(topo, |t| {
            let mut cal = Calibration::uniform(t, 0.02, 0.0, 0.0);
            cal.set_two_qubit_error(0, 0.45); // 0-1
            cal.set_two_qubit_error(1, 0.45); // 1-2
            cal
        });
        let mut c = Circuit::new(5);
        // identity-friendly: touch all qubits so allocation is full
        for i in 0..5u32 {
            c.h(Qubit(i));
        }
        c.cnot(Qubit(0), Qubit(2));
        let base = MappingPolicy::native(0).compile(&c, &dev).unwrap();
        let vqm = MappingPolicy {
            allocation: AllocationStrategy::Random { seed: 0 },
            routing: RoutingMetric::reliability(),
        }
        .compile(&c, &dev)
        .unwrap();
        let pst_base = base.analytic_pst(&dev, CoherenceModel::Disabled).unwrap().pst;
        let pst_vqm = vqm.analytic_pst(&dev, CoherenceModel::Disabled).unwrap().pst;
        assert!(
            pst_vqm >= pst_base,
            "VQM PST {pst_vqm} must not lose to baseline {pst_base} with identical allocation"
        );
    }

    #[test]
    fn disconnected_device_reports_error() {
        let dev = uniform(Topology::from_links("split", 4, [(0, 1), (2, 3)]), 0.05);
        let mut c = Circuit::new(4);
        c.h(Qubit(0)).h(Qubit(1)).h(Qubit(2)).h(Qubit(3));
        c.cnot(Qubit(0), Qubit(3));
        // random placement may or may not split the pair; try seeds until
        // the pair lands on different components to exercise the error
        let mut saw_error = false;
        for seed in 0..16 {
            match MappingPolicy::native(seed).compile(&c, &dev) {
                Err(CompileError::Disconnected { .. }) => {
                    saw_error = true;
                    break;
                }
                Ok(compiled) => assert_routed(&compiled, &dev),
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_error, "no seed exercised the disconnected path");
    }

    #[test]
    fn dead_links_split_yields_error_not_panic() {
        // a 2x3 grid split in half by disabling the three rung links
        let topo = Topology::grid(2, 3);
        let dev = uniform(topo, 0.05).with_disabled_links([
            (PhysQubit(0), PhysQubit(3)),
            (PhysQubit(1), PhysQubit(4)),
            (PhysQubit(2), PhysQubit(5)),
        ]);
        // a 6-qubit CNOT chain: any placement over two 3-qubit
        // components leaves at least one chain edge crossing the split
        let mut c = Circuit::new(6);
        for i in 0..5u32 {
            c.cnot(Qubit(i), Qubit(i + 1));
        }
        for policy in [
            MappingPolicy::baseline(),
            MappingPolicy::vqm(),
            MappingPolicy::vqm_hop_limited(),
            MappingPolicy::vqa_vqm(),
            MappingPolicy::native(1),
        ] {
            let err = policy.compile(&c, &dev).unwrap_err();
            assert!(
                matches!(
                    err,
                    CompileError::Disconnected { .. } | CompileError::Allocation(_)
                ),
                "{}: {err}",
                policy.name()
            );
        }
        let err = MappingPolicy::baseline()
            .compile_plan_based(&c, &dev)
            .unwrap_err();
        assert!(matches!(err, CompileError::Disconnected { .. }));
    }

    #[test]
    fn compile_routes_around_dead_link() {
        // ring stays connected with one dead link; every policy must
        // still produce a fully routed circuit avoiding it
        let dead = (PhysQubit(0), PhysQubit(1));
        let dev = uniform(Topology::ring(5), 0.05).with_disabled_links([dead]);
        let mut c = Circuit::new(5);
        for i in 0..5u32 {
            c.h(Qubit(i));
        }
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(2), Qubit(4));
        for policy in [
            MappingPolicy::baseline(),
            MappingPolicy::vqm(),
            MappingPolicy::vqa_vqm(),
        ] {
            let compiled = policy.compile(&c, &dev).unwrap();
            for g in compiled.physical() {
                if let Gate::Cnot {
                    control: a,
                    target: b,
                }
                | Gate::Swap { a, b } = g
                {
                    assert!(
                        dev.has_active_link(*a, *b),
                        "{}: {g} uses a dead link",
                        policy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn plan_based_compile_is_routed_and_consistent() {
        let dev = uniform(Topology::linear(4), 0.05);
        for policy in [MappingPolicy::baseline(), MappingPolicy::vqm()] {
            let compiled = policy.compile_plan_based(&long_cnot_program(), &dev).unwrap();
            assert_routed(&compiled, &dev);
            assert_eq!(compiled.physical().cnot_count(), 1);
            // mapping bookkeeping holds
            let measured = compiled
                .physical()
                .iter()
                .find_map(|g| match g {
                    Gate::Measure { qubit, .. } => Some(*qubit),
                    _ => None,
                })
                .unwrap();
            assert_eq!(measured, compiled.final_mapping().phys_of(Qubit(3)));
        }
    }

    #[test]
    fn policy_names() {
        assert_eq!(MappingPolicy::baseline().name(), "baseline");
        assert_eq!(MappingPolicy::vqm().name(), "VQM");
        assert_eq!(MappingPolicy::vqm_hop_limited().name(), "VQM(MAH=4)");
        assert_eq!(MappingPolicy::vqa_vqm().name(), "VQA+VQM");
        assert_eq!(MappingPolicy::native(7).name(), "native");
    }

    #[test]
    fn oversized_program_is_allocation_error() {
        let dev = uniform(Topology::linear(3), 0.05);
        let c = Circuit::new(5);
        let err = MappingPolicy::baseline().compile(&c, &dev).unwrap_err();
        assert!(matches!(err, CompileError::Allocation(_)));
        assert!(err.to_string().contains("allocation failed"));
    }

    #[test]
    fn link_utilization_skips_disabled_links() {
        let mut phys: Circuit<PhysQubit> = Circuit::with_cbits(3, 3);
        phys.cnot(PhysQubit(0), PhysQubit(1));
        phys.cnot(PhysQubit(1), PhysQubit(2));
        let m = Mapping::identity(3, 3);
        let compiled = CompiledCircuit::from_parts(phys, m.clone(), m, 0);

        let dev = uniform(Topology::linear(3), 0.05);
        assert_eq!(compiled.link_utilization(&dev), vec![1, 1]);
        assert!((compiled.experienced_link_error(&dev) - 0.05).abs() < 1e-12);

        let degraded = uniform(Topology::linear(3), 0.05).with_disabled_links([(PhysQubit(0), PhysQubit(1))]);
        assert_eq!(compiled.link_utilization(&degraded), vec![0, 1]);
        assert!((compiled.experienced_link_error(&degraded) - 0.05).abs() < 1e-12);
    }

    struct RejectAll;
    impl CompileAudit for RejectAll {
        fn audit(&self, _: &Circuit, _: &Device, _: &CompiledCircuit) -> Result<(), String> {
            Err("synthetic audit failure".into())
        }
    }

    struct AcceptAll;
    impl CompileAudit for AcceptAll {
        fn audit(&self, _: &Circuit, _: &Device, _: &CompiledCircuit) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn compile_with_runs_the_audit() {
        let dev = uniform(Topology::linear(4), 0.05);
        let program = long_cnot_program();
        let accepted = MappingPolicy::baseline().compile_with(
            &program,
            &dev,
            &CompileOptions {
                verify: Some(&AcceptAll),
            },
        );
        assert!(accepted.is_ok());
        let err = MappingPolicy::baseline()
            .compile_with(
                &program,
                &dev,
                &CompileOptions {
                    verify: Some(&RejectAll),
                },
            )
            .unwrap_err();
        assert!(matches!(err, CompileError::Verification(_)));
        assert!(err.to_string().contains("synthetic audit failure"));
    }

    #[test]
    fn compile_options_debug_shows_presence() {
        assert!(format!("{:?}", CompileOptions::default()).contains("verify: false"));
        let opts = CompileOptions {
            verify: Some(&AcceptAll),
        };
        assert!(format!("{opts:?}").contains("verify: true"));
    }

    #[test]
    fn compiled_pst_on_wrong_device_errors() {
        let dev = uniform(Topology::linear(4), 0.05);
        let small = uniform(Topology::linear(2), 0.05);
        let compiled = MappingPolicy::baseline()
            .compile(&long_cnot_program(), &dev)
            .unwrap();
        assert!(compiled.analytic_pst(&small, CoherenceModel::Disabled).is_err());
    }
}
