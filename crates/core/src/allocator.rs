//! Initial qubit allocation policies (paper §6).
//!
//! * [`AllocationStrategy::GreedyInteraction`] — the baseline: place
//!   heavily-interacting program qubits close together, oblivious to
//!   link quality (§4.5);
//! * [`AllocationStrategy::StrongestSubgraph`] — VQA (Algorithm 2):
//!   confine the program to the connected region with the highest
//!   aggregate node strength and give the most *active* program qubits
//!   the strongest physical homes;
//! * [`AllocationStrategy::Random`] — the IBM-native-compiler stand-in:
//!   a seeded random placement (§6.4 evaluates 32 of these).

use quva_circuit::{qubit_activity, Circuit, InteractionGraph, PhysQubit, Qubit};
use quva_device::{node_strengths, try_strongest_subgraph, Device, HopMatrix, ReliabilityMatrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::mapping::Mapping;

/// How the initial program-qubit → physical-qubit mapping is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// Interaction-aware greedy placement minimizing hop distance
    /// between communicating qubits (variation-unaware baseline).
    GreedyInteraction,
    /// VQA: allocate inside the strongest k-subgraph, most active
    /// program qubits on the strongest physical qubits. `activity_window`
    /// is the number of leading layers inspected (the paper's *first-t*
    /// parameter); `usize::MAX` inspects the whole program.
    StrongestSubgraph {
        /// Leading layers whose CNOTs define qubit activity.
        activity_window: usize,
        /// Extension beyond the paper: also pull *measured* program
        /// qubits towards physical qubits with low readout error —
        /// "steer operations towards strong qubits" applied to the
        /// measurement operation itself.
        readout_aware: bool,
    },
    /// Uniformly random placement from the given seed (IBM-native
    /// comparator).
    Random {
        /// RNG seed; §6.4 averages 32 different seeds.
        seed: u64,
    },
}

impl AllocationStrategy {
    /// VQA with the whole program as the activity window.
    pub fn vqa() -> Self {
        AllocationStrategy::StrongestSubgraph {
            activity_window: usize::MAX,
            readout_aware: false,
        }
    }

    /// VQA extended with readout awareness (see
    /// [`AllocationStrategy::StrongestSubgraph::readout_aware`]).
    pub fn vqa_readout_aware() -> Self {
        AllocationStrategy::StrongestSubgraph {
            activity_window: usize::MAX,
            readout_aware: true,
        }
    }

    /// Computes the initial mapping of `circuit` onto `device`.
    ///
    /// # Errors
    ///
    /// Returns a message if the circuit needs more qubits than the
    /// device has, or (for `StrongestSubgraph`) if no connected region
    /// of active links is large enough to host the program — e.g. a
    /// disconnected device, or one whose dead links split it into
    /// components smaller than the program.
    pub fn allocate(&self, circuit: &Circuit, device: &Device) -> Result<Mapping, String> {
        let k = circuit.num_qubits();
        let n = device.num_qubits();
        if k > n {
            return Err(format!("circuit needs {k} qubits, device has {n}"));
        }
        match *self {
            AllocationStrategy::GreedyInteraction => Ok(greedy_interaction(circuit, device, None)),
            AllocationStrategy::StrongestSubgraph {
                activity_window,
                readout_aware,
            } => vqa_allocate(circuit, device, activity_window, readout_aware),
            AllocationStrategy::Random { seed } => Ok(random_allocate(k, n, seed)),
        }
    }
}

/// Greedy interaction placement, optionally restricted to a candidate
/// region. Program qubits are placed in descending interaction-degree
/// order; each lands on the free candidate qubit minimizing the
/// interaction-weighted distance to its already-placed partners (hop
/// distance for the baseline, reliability distance when `weighted`
/// carries a reliability matrix).
fn greedy_interaction(circuit: &Circuit, device: &Device, region: Option<&[PhysQubit]>) -> Mapping {
    let ig = InteractionGraph::of(circuit);
    let hops = HopMatrix::of_active(device);
    let k = circuit.num_qubits();
    let n = device.num_qubits();

    let candidates: Vec<PhysQubit> = match region {
        Some(r) => r.to_vec(),
        None => device.topology().qubits().collect(),
    };

    // placement order: start from the heaviest program qubit, then
    // repeatedly take the unplaced qubit most connected to the placed
    // set — each new qubit then has partners to be placed next to,
    // which embeds chain- and star-shaped programs compactly
    let order = connectivity_order(&ig, k);

    let mut assigned: Vec<Option<PhysQubit>> = vec![None; k];
    let mut used = vec![false; n];
    for &q in &order {
        let q = Qubit(q);
        let mut best: Option<(f64, PhysQubit)> = None;
        for &p in &candidates {
            if used[p.index()] {
                continue;
            }
            // distance to already-placed partners, weighted by CNOT count;
            // unplaced partners contribute nothing yet
            let mut cost = 0.0;
            for (other, slot) in assigned.iter().enumerate() {
                if let Some(loc) = slot {
                    let w = ig.count(q, Qubit(other as u32)) as f64;
                    if w > 0.0 {
                        cost += w * hops.get(p, *loc) as f64;
                    }
                }
            }
            // prefer central qubits when unconstrained by partners
            let centrality: f64 = candidates.iter().map(|&o| hops.get(p, o) as f64).sum();
            let score = cost * 1e6 + centrality;
            if best.is_none_or(|(b, bp)| score < b || (score == b && p < bp)) {
                best = Some((score, p));
            }
        }
        let (_, p) = best.unwrap_or_else(|| unreachable!("k <= n guarantees a free candidate"));
        assigned[q.index()] = Some(p);
        used[p.index()] = true;
    }

    let mut positions: Vec<PhysQubit> = assigned
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| unreachable!("all qubits placed")))
        .collect();
    refine_by_exchange(&mut positions, &candidates, &ig, |a, b| hops.get(a, b) as f64);
    Mapping::from_assignment(k, n, |q| positions[q.index()])
        .unwrap_or_else(|e| unreachable!("refined placement cannot collide: {e}"))
}

/// Iterated local search over placements: repeatedly try swapping two
/// program qubits' homes, or relocating one qubit to a free candidate
/// slot, keeping any move that lowers the interaction-weighted distance
/// Σ w(i,j)·D(π(i), π(j)). Greedy construction is myopic; this pass
/// removes its worst misplacements deterministically.
fn refine_by_exchange(
    positions: &mut [PhysQubit],
    candidates: &[PhysQubit],
    ig: &InteractionGraph,
    dist: impl Fn(PhysQubit, PhysQubit) -> f64,
) {
    let k = positions.len();
    // the cost contribution of program qubit q at location `at`, given
    // every other qubit's current position
    let cost_of = |positions: &[PhysQubit], q: usize, at: PhysQubit| -> f64 {
        (0..k)
            .filter(|&o| o != q)
            .map(|o| {
                let w = ig.count(Qubit(q as u32), Qubit(o as u32)) as f64;
                if w > 0.0 {
                    w * dist(at, positions[o])
                } else {
                    0.0
                }
            })
            .sum()
    };

    for _pass in 0..20 {
        quva_obs::counter("alloc.refine_passes", 1);
        let mut improved = false;
        // relocations to free slots
        let mut occupied: std::collections::HashSet<PhysQubit> = positions.iter().copied().collect();
        for q in 0..k {
            let here = positions[q];
            let current = cost_of(positions, q, here);
            let mut best: Option<(f64, PhysQubit)> = None;
            for &slot in candidates {
                if occupied.contains(&slot) {
                    continue;
                }
                let c = cost_of(positions, q, slot);
                if c < current - 1e-12 && best.is_none_or(|(b, _)| c < b) {
                    best = Some((c, slot));
                }
            }
            if let Some((_, slot)) = best {
                positions[q] = slot;
                occupied.remove(&here);
                occupied.insert(slot);
                improved = true;
            }
        }
        // pairwise exchanges
        for q in 0..k {
            for o in (q + 1)..k {
                let (pq, po) = (positions[q], positions[o]);
                let before = cost_of(positions, q, pq) + cost_of(positions, o, po);
                positions[q] = po;
                positions[o] = pq;
                let after = cost_of(positions, q, po) + cost_of(positions, o, pq);
                if after < before - 1e-12 {
                    improved = true;
                } else {
                    positions[q] = pq;
                    positions[o] = po;
                }
            }
        }
        if !improved {
            break;
        }
    }
}

/// Placement order over program qubits: heaviest interaction degree
/// first, then greedily the qubit with the most CNOT traffic to the
/// already-ordered set (ties by degree, then index). Qubits in other
/// interaction components follow by the same rule.
fn connectivity_order(ig: &InteractionGraph, k: usize) -> Vec<u32> {
    let mut order: Vec<u32> = Vec::with_capacity(k);
    let mut placed = vec![false; k];
    for _ in 0..k {
        let next = (0..k)
            .filter(|&q| !placed[q])
            .max_by(|&a, &b| {
                let traffic =
                    |q: usize| -> u32 { order.iter().map(|&p| ig.count(Qubit(q as u32), Qubit(p))).sum() };
                traffic(a)
                    .cmp(&traffic(b))
                    .then(ig.degree(Qubit(a as u32)).cmp(&ig.degree(Qubit(b as u32))))
                    .then(b.cmp(&a)) // prefer the smaller index on full ties
            })
            .unwrap_or_else(|| unreachable!("k iterations over k qubits"));
        placed[next] = true;
        order.push(next as u32);
    }
    order
}

/// VQA allocation (Algorithm 2): strongest k-subgraph + activity-ordered
/// placement with reliability-weighted distances.
fn vqa_allocate(
    circuit: &Circuit,
    device: &Device,
    activity_window: usize,
    readout_aware: bool,
) -> Result<Mapping, String> {
    // which program qubits end in a measurement
    let measured: Vec<bool> = {
        let mut m = vec![false; circuit.num_qubits()];
        for g in circuit.iter() {
            if let quva_circuit::Gate::Measure { qubit, .. } = g {
                m[qubit.index()] = true;
            }
        }
        m
    };
    let k = circuit.num_qubits();
    let n = device.num_qubits();
    let region = try_strongest_subgraph(device, k)
        .ok_or_else(|| format!("no connected region of {k} qubits over active links on {n}-qubit device"))?;
    quva_obs::observe("alloc.region_size", region.len() as f64);

    let strengths = node_strengths(device);
    let rel = ReliabilityMatrix::of_active(device, |id| {
        -(1.0 - device.calibration().two_qubit_error(id))
            .max(f64::MIN_POSITIVE)
            .ln()
    });
    let ig = InteractionGraph::of(circuit);
    let activity = qubit_activity(circuit, activity_window);

    // placement sequence: connectivity order (as the baseline), so each
    // qubit is placed next to already-placed partners; the *activity*
    // ranking decides how strongly a qubit is pulled towards
    // high-strength homes (Algorithm 2's "top active qubits onto the
    // strongest qubits")
    let order = connectivity_order(&ig, k);
    let max_activity = activity.iter().copied().max().unwrap_or(0).max(1) as f64;

    let mut assigned: Vec<Option<PhysQubit>> = vec![None; k];
    let mut used = vec![false; n];
    for &q in &order {
        let q = Qubit(q);
        let mut best: Option<(f64, PhysQubit)> = None;
        for &p in &region {
            if used[p.index()] {
                continue;
            }
            let mut cost = 0.0;
            for (other, slot) in assigned.iter().enumerate() {
                if let Some(loc) = slot {
                    let w = ig.count(q, Qubit(other as u32)) as f64;
                    if w > 0.0 {
                        cost += w * rel.get(p, *loc);
                    }
                }
            }
            // prefer strong physical homes, proportionally to how
            // active the program qubit is
            let pull = activity[q.index()] as f64 / max_activity;
            let mut score = cost * 1e6 - pull * strengths[p.index()] - 1e-3 * strengths[p.index()];
            if readout_aware && measured[q.index()] {
                // measured qubits are also pulled towards reliable
                // readout resonators
                score -= 1.0 - device.calibration().readout_error(p.index());
            }
            if best.is_none_or(|(b, bp)| score < b || (score == b && p < bp)) {
                best = Some((score, p));
            }
        }
        let (_, p) = best.unwrap_or_else(|| unreachable!("region has k free slots"));
        assigned[q.index()] = Some(p);
        used[p.index()] = true;
    }

    let mut positions: Vec<PhysQubit> = assigned
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| unreachable!("all qubits placed")))
        .collect();
    // refine under the reliability metric, still confined to the region
    refine_by_exchange(&mut positions, &region, &ig, |a, b| rel.get(a, b));
    Mapping::from_assignment(k, n, |q| positions[q.index()]).map_err(|e| e.to_string())
}

/// Seeded uniformly-random placement.
fn random_allocate(k: usize, n: usize, seed: u64) -> Mapping {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut slots: Vec<u32> = (0..n as u32).collect();
    slots.shuffle(&mut rng);
    Mapping::from_assignment(k, n, |q| PhysQubit(slots[q.index()]))
        .unwrap_or_else(|e| unreachable!("shuffled slots cannot collide: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva_device::{Calibration, Topology};

    fn uniform(topo: Topology, e: f64) -> Device {
        Device::new(topo, |t| Calibration::uniform(t, e, 0.0, 0.0))
    }

    fn chain_circuit(k: usize) -> Circuit {
        let mut c = Circuit::new(k);
        for i in 0..(k - 1) as u32 {
            c.cnot(Qubit(i), Qubit(i + 1));
        }
        c
    }

    #[test]
    fn greedy_places_all_qubits_distinctly() {
        let dev = uniform(Topology::ibm_q20_tokyo(), 0.05);
        let c = chain_circuit(10);
        let m = AllocationStrategy::GreedyInteraction.allocate(&c, &dev).unwrap();
        let mut seen = std::collections::HashSet::new();
        for (_, p) in m.iter() {
            assert!(seen.insert(p), "location {p} reused");
        }
    }

    #[test]
    fn greedy_keeps_partners_adjacent_on_easy_device() {
        let dev = uniform(Topology::linear(5), 0.05);
        let mut c = Circuit::new(2);
        c.cnot(Qubit(0), Qubit(1));
        let m = AllocationStrategy::GreedyInteraction.allocate(&c, &dev).unwrap();
        let hops = HopMatrix::of(dev.topology());
        assert_eq!(hops.get(m.phys_of(Qubit(0)), m.phys_of(Qubit(1))), 1);
    }

    #[test]
    fn vqa_prefers_strong_region() {
        // line of 6 with a weak left half: VQA must allocate on the right
        let dev = Device::new(Topology::linear(6), |t| {
            let mut cal = Calibration::uniform(t, 0.02, 0.0, 0.0);
            cal.set_two_qubit_error(0, 0.3);
            cal.set_two_qubit_error(1, 0.3);
            cal
        });
        let c = chain_circuit(3);
        let m = AllocationStrategy::vqa().allocate(&c, &dev).unwrap();
        for (_, p) in m.iter() {
            assert!(p.index() >= 2, "VQA placed a qubit on the weak side: {p}");
        }
    }

    #[test]
    fn vqa_gives_most_active_qubit_the_strongest_home() {
        // star program: q0 talks to everyone
        let mut c = Circuit::new(3);
        c.cnot(Qubit(1), Qubit(0));
        c.cnot(Qubit(2), Qubit(0));
        c.cnot(Qubit(1), Qubit(0));
        c.cnot(Qubit(2), Qubit(0));
        // device: path 0-1-2-3 where middle links are strongest
        let dev = Device::new(Topology::linear(4), |t| {
            let mut cal = Calibration::uniform(t, 0.08, 0.0, 0.0);
            cal.set_two_qubit_error(1, 0.01); // 1-2 strongest
            cal
        });
        let m = AllocationStrategy::vqa().allocate(&c, &dev).unwrap();
        let p0 = m.phys_of(Qubit(0));
        let strengths = node_strengths(&dev);
        // q0 should sit on one of the two strongest physical qubits
        let mut ranked: Vec<usize> = (0..4).collect();
        ranked.sort_by(|&a, &b| strengths[b].total_cmp(&strengths[a]));
        assert!(
            ranked[..2].contains(&p0.index()),
            "hub q0 placed on {p0}, strengths {strengths:?}"
        );
    }

    #[test]
    fn random_is_deterministic_and_seed_sensitive() {
        let a = random_allocate(5, 20, 1);
        let b = random_allocate(5, 20, 1);
        let c = random_allocate(5, 20, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_allocations_are_valid() {
        for seed in 0..32 {
            let m = random_allocate(10, 20, seed);
            let mut seen = std::collections::HashSet::new();
            for (_, p) in m.iter() {
                assert!(p.index() < 20);
                assert!(seen.insert(p));
            }
        }
    }

    #[test]
    fn readout_aware_vqa_avoids_bad_readout_for_measured_qubits() {
        // uniform links, but node 0 has terrible readout: the aware
        // variant must keep measured qubits off it when slack exists
        let dev = Device::new(Topology::linear(4), |t| {
            let cal = Calibration::uniform(t, 0.05, 0.0, 0.02);
            // rebuild with a distinct readout profile on node 0
            let ro: Vec<f64> = vec![0.4, 0.02, 0.02, 0.02];
            quva_device::Calibration::new(
                t,
                cal.t1_table().to_vec(),
                cal.t2_table().to_vec(),
                cal.one_qubit_errors().to_vec(),
                ro,
                cal.two_qubit_errors().to_vec(),
                cal.durations(),
            )
            .unwrap()
        });
        // only q0 is measured: with symmetric chain ends, the aware
        // variant must give q0 the good-readout end
        let mut c = Circuit::new(3);
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(1), Qubit(2));
        c.measure(Qubit(0), quva_circuit::Cbit(0));
        let aware = AllocationStrategy::vqa_readout_aware()
            .allocate(&c, &dev)
            .unwrap();
        assert_ne!(
            aware.phys_of(Qubit(0)).index(),
            0,
            "measured qubit q0 placed on the bad-readout node"
        );
    }

    #[test]
    fn oversized_circuit_rejected() {
        let dev = uniform(Topology::linear(3), 0.05);
        let c = chain_circuit(5);
        for strat in [
            AllocationStrategy::GreedyInteraction,
            AllocationStrategy::vqa(),
            AllocationStrategy::Random { seed: 0 },
        ] {
            assert!(
                strat.allocate(&c, &dev).is_err(),
                "{strat:?} accepted oversized circuit"
            );
        }
    }

    #[test]
    fn vqa_errors_when_dead_links_shrink_components() {
        // line of 6 split 3|3 by a dead middle link: a 4-qubit program
        // no longer fits any connected active region
        let dev = uniform(Topology::linear(6), 0.05).with_disabled_links([(PhysQubit(2), PhysQubit(3))]);
        let err = AllocationStrategy::vqa()
            .allocate(&chain_circuit(4), &dev)
            .unwrap_err();
        assert!(err.contains("no connected region"), "{err}");
        // a 3-qubit program still fits inside one half
        let m = AllocationStrategy::vqa()
            .allocate(&chain_circuit(3), &dev)
            .unwrap();
        let side = m.phys_of(Qubit(0)).index() < 3;
        for (_, p) in m.iter() {
            assert_eq!(p.index() < 3, side, "allocation straddles the dead link");
        }
    }

    #[test]
    fn full_device_allocation_works() {
        let dev = uniform(Topology::ibm_q20_tokyo(), 0.05);
        let c = chain_circuit(20);
        for strat in [AllocationStrategy::GreedyInteraction, AllocationStrategy::vqa()] {
            let m = strat.allocate(&c, &dev).unwrap();
            assert_eq!(m.num_prog(), 20);
        }
    }
}
