//! # quva-viz — ASCII rendering for quva reports
//!
//! Terminal-friendly views of the objects the experiments talk about:
//!
//! * [`render_grid_map`] — a device map in the style of the paper's
//!   Fig. 9: qubits laid out on their grid with per-link error rates on
//!   the edges (diagonals listed below the grid);
//! * [`bar_chart`] — horizontal labelled bars for PST comparisons.
//!
//! # Examples
//!
//! ```
//! use quva_device::Device;
//! use quva_viz::render_grid_map;
//!
//! let map = render_grid_map(&Device::ibm_q20(), 4, 5);
//! assert!(map.contains("Q14"));
//! assert!(map.contains("15.0%")); // the worst link of Fig. 9
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt::Write as _;

use quva_circuit::PhysQubit;
use quva_device::Device;

/// Renders a device whose qubits follow the `q = row·cols + col` grid
/// convention (all `Topology::grid` layouts and the IBM-Q20 Tokyo map)
/// as an ASCII map with per-link error percentages. Links that are not
/// horizontal or vertical grid edges (Tokyo's diagonals) are listed
/// under the grid.
///
/// # Panics
///
/// Panics if `rows * cols` does not match the device size.
pub fn render_grid_map(device: &Device, rows: usize, cols: usize) -> String {
    assert_eq!(rows * cols, device.num_qubits(), "grid shape mismatch");
    let q = |r: usize, c: usize| PhysQubit((r * cols + c) as u32);
    let err = |a: PhysQubit, b: PhysQubit| -> Option<String> {
        device.link_error(a, b).map(|e| format!("{:.1}%", e * 100.0))
    };

    let cell = 9; // width allotted per column
    let mut out = String::new();
    for r in 0..rows {
        // qubit row
        let mut line = String::new();
        for c in 0..cols {
            let label = format!("Q{:<2}", q(r, c).index());
            let link = if c + 1 < cols {
                err(q(r, c), q(r, c + 1))
            } else {
                None
            };
            match link {
                Some(e) => {
                    let _ = write!(line, "{label}—{e:<w$}", w = cell - label.len() - 1);
                }
                None => {
                    let _ = write!(line, "{label:<cell$}");
                }
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
        // vertical links
        if r + 1 < rows {
            let mut vline = String::new();
            for c in 0..cols {
                match err(q(r, c), q(r + 1, c)) {
                    Some(e) => {
                        let _ = write!(vline, "{:<cell$}", format!("|{e}"));
                    }
                    None => {
                        let _ = write!(vline, "{:<cell$}", "");
                    }
                }
            }
            out.push_str(vline.trim_end());
            out.push('\n');
        }
    }

    // non-grid links (diagonals)
    let mut extras = Vec::new();
    for (id, link) in device.topology().links().iter().enumerate() {
        let (a, b) = (link.low().index(), link.high().index());
        let (ra, ca) = (a / cols, a % cols);
        let (rb, cb) = (b / cols, b % cols);
        let is_grid_edge = (ra == rb && ca.abs_diff(cb) == 1) || (ca == cb && ra.abs_diff(rb) == 1);
        if !is_grid_edge {
            extras.push(format!(
                "  {} {:.1}%",
                link,
                device.calibration().two_qubit_error(id) * 100.0
            ));
        }
    }
    if !extras.is_empty() {
        out.push_str("diagonal couplings:\n");
        for e in extras {
            out.push_str(&e);
            out.push('\n');
        }
    }
    out
}

/// Renders labelled horizontal bars scaled to `width` characters, with
/// the numeric value appended — the report binaries' PST comparisons.
///
/// # Examples
///
/// ```
/// let chart = quva_viz::bar_chart(&[("baseline", 0.05), ("VQA+VQM", 0.10)], 20);
/// assert!(chart.contains("VQA+VQM"));
/// assert!(chart.lines().count() == 2);
/// ```
pub fn bar_chart(rows: &[(&str, f64)], width: usize) -> String {
    let peak = rows
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let filled = ((value / peak) * width as f64).round() as usize;
        let _ = writeln!(
            out,
            "{label:<label_w$} |{:<width$} {value:.4}",
            "█".repeat(filled.min(width))
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use quva_device::{Calibration, Topology};

    #[test]
    fn grid_map_covers_all_grid_links() {
        let dev = Device::new(Topology::grid(2, 3), |t| Calibration::uniform(t, 0.042, 0.0, 0.0));
        let map = render_grid_map(&dev, 2, 3);
        // 7 links, each printed as 4.2%
        assert_eq!(map.matches("4.2%").count(), 7, "{map}");
        for i in 0..6 {
            assert!(map.contains(&format!("Q{i}")), "missing Q{i} in\n{map}");
        }
        assert!(!map.contains("diagonal"));
    }

    #[test]
    fn tokyo_map_lists_diagonals() {
        let map = render_grid_map(&Device::ibm_q20(), 4, 5);
        assert!(map.contains("diagonal couplings:"));
        assert!(map.contains("Q14–Q18 15.0%"), "{map}");
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_shape_rejected() {
        render_grid_map(&Device::ibm_q20(), 2, 5);
    }

    #[test]
    fn bars_scale_to_peak() {
        let chart = bar_chart(&[("a", 1.0), ("b", 0.5)], 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines[0].matches('█').count(), 10);
        assert_eq!(lines[1].matches('█').count(), 5);
    }

    #[test]
    fn empty_chart_is_empty() {
        assert!(bar_chart(&[], 10).is_empty());
    }

    #[test]
    fn zero_values_render_without_panic() {
        let chart = bar_chart(&[("zero", 0.0)], 10);
        assert!(chart.contains("zero"));
    }
}
