//! The [`Circuit`] container and its builder-style construction API.

use std::fmt;
use std::hash::Hash;

use crate::gate::{Gate, OneQubitKind};
use crate::qubit::{Cbit, PhysQubit, Qubit};

/// Types usable as a qubit index inside a [`Circuit`].
///
/// Implemented for [`Qubit`] (program circuits) and [`PhysQubit`] (routed
/// circuits). External implementations are possible but rarely needed.
pub trait QubitId: Copy + Eq + Hash + Ord + fmt::Debug + fmt::Display + Send + Sync + 'static {
    /// The raw index of the qubit.
    fn index(self) -> usize;
    /// Builds the qubit with the given raw index.
    fn from_index(index: usize) -> Self;
}

impl QubitId for Qubit {
    fn index(self) -> usize {
        Qubit::index(self)
    }
    fn from_index(index: usize) -> Self {
        Qubit(index as u32)
    }
}

impl QubitId for PhysQubit {
    fn index(self) -> usize {
        PhysQubit::index(self)
    }
    fn from_index(index: usize) -> Self {
        PhysQubit(index as u32)
    }
}

/// A quantum program: an ordered list of gates over `num_qubits` qubits
/// and `num_cbits` classical bits.
///
/// The type parameter picks program ([`Qubit`], the default) or physical
/// ([`PhysQubit`]) addressing.
///
/// # Examples
///
/// Building a 2-qubit Bell-pair circuit:
///
/// ```
/// use quva_circuit::{Circuit, Qubit, Cbit};
///
/// let mut c = Circuit::new(2);
/// c.h(Qubit(0));
/// c.cnot(Qubit(0), Qubit(1));
/// c.measure(Qubit(0), Cbit(0));
/// c.measure(Qubit(1), Cbit(1));
///
/// assert_eq!(c.len(), 4);
/// assert_eq!(c.two_qubit_gate_count(), 1);
/// assert_eq!(c.depth(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit<Q = Qubit> {
    num_qubits: usize,
    num_cbits: usize,
    gates: Vec<Gate<Q>>,
}

impl<Q: QubitId> Circuit<Q> {
    /// Creates an empty circuit over `num_qubits` qubits and an equal
    /// number of classical bits.
    pub fn new(num_qubits: usize) -> Self {
        Self::with_cbits(num_qubits, num_qubits)
    }

    /// Creates an empty circuit with an explicit classical register size.
    pub fn with_cbits(num_qubits: usize, num_cbits: usize) -> Self {
        Circuit {
            num_qubits,
            num_cbits,
            gates: Vec::new(),
        }
    }

    /// The number of qubits in the quantum register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of classical bits in the classical register.
    pub fn num_cbits(&self) -> usize {
        self.num_cbits
    }

    /// The gates, in program order.
    pub fn gates(&self) -> &[Gate<Q>] {
        &self.gates
    }

    /// A 64-bit structural fingerprint: register sizes plus every
    /// gate's kind and operands in program order (rotation angles by
    /// exact bit pattern). Two circuits with equal structure share a
    /// fingerprint whatever path built them — suitable as a memo-cache
    /// key for per-circuit work. Not cryptographic; collisions are
    /// astronomically unlikely, not impossible.
    pub fn fingerprint(&self) -> u64 {
        use crate::gate::OneQubitKind;
        use std::hash::{DefaultHasher, Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.num_qubits.hash(&mut h);
        self.num_cbits.hash(&mut h);
        for gate in &self.gates {
            match gate {
                Gate::OneQubit { kind, qubit } => {
                    let (tag, angle): (u8, f64) = match kind {
                        OneQubitKind::I => (0, 0.0),
                        OneQubitKind::X => (1, 0.0),
                        OneQubitKind::Y => (2, 0.0),
                        OneQubitKind::Z => (3, 0.0),
                        OneQubitKind::H => (4, 0.0),
                        OneQubitKind::S => (5, 0.0),
                        OneQubitKind::Sdg => (6, 0.0),
                        OneQubitKind::T => (7, 0.0),
                        OneQubitKind::Tdg => (8, 0.0),
                        OneQubitKind::Rx(a) => (9, *a),
                        OneQubitKind::Ry(a) => (10, *a),
                        OneQubitKind::Rz(a) => (11, *a),
                    };
                    (0u8, tag, angle.to_bits(), qubit.index()).hash(&mut h);
                }
                Gate::Cnot { control, target } => {
                    (1u8, control.index(), target.index()).hash(&mut h);
                }
                Gate::Swap { a, b } => {
                    (2u8, a.index(), b.index()).hash(&mut h);
                }
                Gate::Measure { qubit, cbit } => {
                    (3u8, qubit.index(), cbit.index()).hash(&mut h);
                }
                Gate::Barrier { qubits } => {
                    (4u8, qubits.len()).hash(&mut h);
                    for q in qubits {
                        q.index().hash(&mut h);
                    }
                }
            }
        }
        h.finish()
    }

    /// The number of gates (including barriers).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if any qubit operand is out of range, or a measurement
    /// targets an out-of-range classical bit.
    pub fn push(&mut self, gate: Gate<Q>) -> &mut Self {
        for q in gate.qubits() {
            assert!(
                q.index() < self.num_qubits,
                "qubit {q} out of range for {}-qubit circuit",
                self.num_qubits
            );
        }
        if let Gate::Measure { cbit, .. } = &gate {
            assert!(
                cbit.index() < self.num_cbits,
                "classical bit {cbit} out of range for {}-bit register",
                self.num_cbits
            );
        }
        self.gates.push(gate);
        self
    }

    /// Appends every gate of `other` (registers must be compatible).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits or classical bits than `self`.
    pub fn append(&mut self, other: &Circuit<Q>) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "appended circuit uses more qubits"
        );
        assert!(
            other.num_cbits <= self.num_cbits,
            "appended circuit uses more classical bits"
        );
        for g in &other.gates {
            self.push(g.clone());
        }
        self
    }

    /// Appends a single-qubit gate of the given kind.
    pub fn one(&mut self, kind: OneQubitKind, q: Q) -> &mut Self {
        self.push(Gate::one(kind, q))
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: Q) -> &mut Self {
        self.one(OneQubitKind::H, q)
    }

    /// Appends a Pauli-X.
    pub fn x(&mut self, q: Q) -> &mut Self {
        self.one(OneQubitKind::X, q)
    }

    /// Appends a Pauli-Y.
    pub fn y(&mut self, q: Q) -> &mut Self {
        self.one(OneQubitKind::Y, q)
    }

    /// Appends a Pauli-Z.
    pub fn z(&mut self, q: Q) -> &mut Self {
        self.one(OneQubitKind::Z, q)
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: Q) -> &mut Self {
        self.one(OneQubitKind::S, q)
    }

    /// Appends an S† gate.
    pub fn sdg(&mut self, q: Q) -> &mut Self {
        self.one(OneQubitKind::Sdg, q)
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: Q) -> &mut Self {
        self.one(OneQubitKind::T, q)
    }

    /// Appends a T† gate.
    pub fn tdg(&mut self, q: Q) -> &mut Self {
        self.one(OneQubitKind::Tdg, q)
    }

    /// Appends an X-rotation by `angle` radians.
    pub fn rx(&mut self, angle: f64, q: Q) -> &mut Self {
        self.one(OneQubitKind::Rx(angle), q)
    }

    /// Appends a Y-rotation by `angle` radians.
    pub fn ry(&mut self, angle: f64, q: Q) -> &mut Self {
        self.one(OneQubitKind::Ry(angle), q)
    }

    /// Appends a Z-rotation by `angle` radians.
    pub fn rz(&mut self, angle: f64, q: Q) -> &mut Self {
        self.one(OneQubitKind::Rz(angle), q)
    }

    /// Appends a CNOT.
    ///
    /// # Panics
    ///
    /// Panics if `control == target`.
    pub fn cnot(&mut self, control: Q, target: Q) -> &mut Self {
        assert!(control != target, "cnot control and target must differ");
        self.push(Gate::cnot(control, target))
    }

    /// Appends a SWAP.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn swap(&mut self, a: Q, b: Q) -> &mut Self {
        assert!(a != b, "swap operands must differ");
        self.push(Gate::swap(a, b))
    }

    /// Appends a measurement of `q` into `c`.
    pub fn measure(&mut self, q: Q, c: Cbit) -> &mut Self {
        self.push(Gate::measure(q, c))
    }

    /// Measures every qubit into the classical bit of the same index.
    ///
    /// # Panics
    ///
    /// Panics if the classical register is smaller than the quantum one.
    pub fn measure_all(&mut self) -> &mut Self {
        assert!(
            self.num_cbits >= self.num_qubits,
            "classical register too small for measure_all"
        );
        for i in 0..self.num_qubits {
            self.measure(Q::from_index(i), Cbit(i as u32));
        }
        self
    }

    /// Appends a barrier across all qubits.
    pub fn barrier_all(&mut self) -> &mut Self {
        let qubits = (0..self.num_qubits).map(Q::from_index).collect();
        self.push(Gate::Barrier { qubits })
    }

    /// Count of CNOT gates.
    pub fn cnot_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::Cnot { .. }))
            .count()
    }

    /// Count of SWAP gates.
    pub fn swap_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::Swap { .. }))
            .count()
    }

    /// Count of gates touching two qubits (CNOT + SWAP).
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Count of single-qubit gates.
    pub fn one_qubit_gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::OneQubit { .. }))
            .count()
    }

    /// Count of measurement operations.
    pub fn measure_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_measurement()).count()
    }

    /// Total operation count excluding barriers.
    pub fn op_count(&self) -> usize {
        self.gates.iter().filter(|g| !g.is_barrier()).count()
    }

    /// Total physical CNOT cost (CNOTs + 3 per SWAP).
    pub fn total_cnot_cost(&self) -> usize {
        self.gates.iter().map(Gate::cnot_cost).sum()
    }

    /// Circuit depth: the length of the longest qubit-dependency chain
    /// (barriers synchronize but add no depth).
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.num_qubits];
        for g in &self.gates {
            let qs = g.qubits();
            if qs.is_empty() {
                continue;
            }
            let level = qs.iter().map(|q| frontier[q.index()]).max().unwrap_or(0);
            let next = if g.is_barrier() { level } else { level + 1 };
            for q in qs {
                frontier[q.index()] = next;
            }
        }
        frontier.into_iter().max().unwrap_or(0)
    }

    /// The set of qubits actually referenced by at least one gate.
    pub fn used_qubits(&self) -> Vec<Q> {
        let mut used = vec![false; self.num_qubits];
        for g in &self.gates {
            for q in g.qubits() {
                used[q.index()] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter(|&(_, &u)| u)
            .map(|(i, _)| Q::from_index(i))
            .collect()
    }

    /// Rewrites every qubit operand through `f`, producing a circuit over
    /// a different index type with `new_num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if a rewritten operand exceeds `new_num_qubits`.
    pub fn map_qubits<R: QubitId>(&self, new_num_qubits: usize, mut f: impl FnMut(Q) -> R) -> Circuit<R> {
        let mut out = Circuit::with_cbits(new_num_qubits, self.num_cbits);
        for g in &self.gates {
            out.push(g.map_qubits(&mut f));
        }
        out
    }

    /// Iterates over the gates.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate<Q>> {
        self.gates.iter()
    }

    /// The inverse circuit: gates reversed, each replaced by its
    /// inverse, so `c` followed by `c.inverse()` is the identity.
    /// Barriers are kept in place (reversed order).
    ///
    /// # Errors
    ///
    /// Returns the index of the first measurement encountered —
    /// measurements are not invertible.
    ///
    /// # Examples
    ///
    /// ```
    /// use quva_circuit::{Circuit, Gate, Qubit};
    ///
    /// let mut c = Circuit::new(2);
    /// c.h(Qubit(0)).t(Qubit(0)).cnot(Qubit(0), Qubit(1));
    /// let inv = c.inverse().unwrap();
    /// assert_eq!(inv.gates()[0], Gate::cnot(Qubit(0), Qubit(1)));
    /// ```
    pub fn inverse(&self) -> Result<Circuit<Q>, usize> {
        let mut out = Circuit::with_cbits(self.num_qubits, self.num_cbits);
        for (idx, gate) in self.gates.iter().enumerate().rev() {
            let inv = match gate {
                Gate::OneQubit { kind, qubit } => Gate::OneQubit {
                    kind: kind.inverse(),
                    qubit: *qubit,
                },
                Gate::Cnot { .. } | Gate::Swap { .. } | Gate::Barrier { .. } => gate.clone(),
                Gate::Measure { .. } => return Err(idx),
            };
            out.push(inv);
        }
        Ok(out)
    }
}

impl<Q: QubitId> fmt::Display for Circuit<Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit[{} qubits, {} gates]",
            self.num_qubits,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g};")?;
        }
        Ok(())
    }
}

impl<'a, Q: QubitId> IntoIterator for &'a Circuit<Q> {
    type Item = &'a Gate<Q>;
    type IntoIter = std::slice::Iter<'a, Gate<Q>>;

    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

impl<Q: QubitId> Extend<Gate<Q>> for Circuit<Q> {
    fn extend<T: IntoIterator<Item = Gate<Q>>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).cnot(Qubit(0), Qubit(1)).measure_all();
        c
    }

    #[test]
    fn builder_counts() {
        let c = bell();
        assert_eq!(c.len(), 4);
        assert_eq!(c.cnot_count(), 1);
        assert_eq!(c.one_qubit_gate_count(), 1);
        assert_eq!(c.measure_count(), 2);
        assert_eq!(c.op_count(), 4);
        assert_eq!(c.total_cnot_cost(), 1);
    }

    #[test]
    fn fingerprint_is_structural() {
        // same structure, built twice → same fingerprint
        assert_eq!(bell().fingerprint(), bell().fingerprint());
        // operand change
        let mut swapped = Circuit::new(2);
        swapped.h(Qubit(1)).cnot(Qubit(0), Qubit(1)).measure_all();
        assert_ne!(bell().fingerprint(), swapped.fingerprint());
        // gate-kind change with identical operands
        let mut x_instead = Circuit::new(2);
        x_instead.x(Qubit(0)).cnot(Qubit(0), Qubit(1)).measure_all();
        assert_ne!(bell().fingerprint(), x_instead.fingerprint());
        // rotation angle (exact bits) participates
        let mut ry1 = Circuit::new(1);
        ry1.push(Gate::one(OneQubitKind::Ry(0.25), Qubit(0)));
        let mut ry2 = Circuit::new(1);
        ry2.push(Gate::one(OneQubitKind::Ry(0.5), Qubit(0)));
        assert_ne!(ry1.fingerprint(), ry2.fingerprint());
        // register width participates even with no gates
        assert_ne!(
            Circuit::<Qubit>::new(2).fingerprint(),
            Circuit::<Qubit>::new(3).fingerprint()
        );
    }

    #[test]
    fn depth_counts_longest_chain() {
        let c = bell();
        // h q0 (1) ; cx q0,q1 (2); measure q0 (3); measure q1 (3)
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn depth_of_parallel_gates() {
        let mut c = Circuit::new(4);
        c.h(Qubit(0)).h(Qubit(1)).h(Qubit(2)).h(Qubit(3));
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn barriers_synchronize_without_depth() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.barrier_all();
        c.h(Qubit(1));
        // barrier forces h q1 after h q0's level
        assert_eq!(c.depth(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range_qubit() {
        let mut c = Circuit::new(2);
        c.h(Qubit(2));
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn cnot_rejects_equal_operands() {
        let mut c = Circuit::new(2);
        c.cnot(Qubit(1), Qubit(1));
    }

    #[test]
    #[should_panic(expected = "classical bit")]
    fn measure_rejects_out_of_range_cbit() {
        let mut c = Circuit::with_cbits(2, 1);
        c.measure(Qubit(0), Cbit(1));
    }

    #[test]
    fn swap_cost_three_cnots() {
        let mut c = Circuit::new(3);
        c.swap(Qubit(0), Qubit(1)).cnot(Qubit(1), Qubit(2));
        assert_eq!(c.total_cnot_cost(), 4);
        assert_eq!(c.swap_count(), 1);
        assert_eq!(c.two_qubit_gate_count(), 2);
    }

    #[test]
    fn used_qubits_skips_idle() {
        let mut c = Circuit::new(5);
        c.h(Qubit(1)).cnot(Qubit(1), Qubit(3));
        assert_eq!(c.used_qubits(), vec![Qubit(1), Qubit(3)]);
    }

    #[test]
    fn map_qubits_to_physical() {
        let c = bell();
        let routed: Circuit<PhysQubit> = c.map_qubits(10, |q| PhysQubit(q.0 + 5));
        assert_eq!(routed.num_qubits(), 10);
        assert_eq!(routed.gates()[1], Gate::cnot(PhysQubit(5), PhysQubit(6)));
        // classical bits are preserved untouched
        assert_eq!(routed.gates()[2], Gate::measure(PhysQubit(5), Cbit(0)));
    }

    #[test]
    fn append_concatenates() {
        let mut c = bell();
        let d = bell();
        c.append(&d);
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn extend_from_iterator() {
        let mut c = Circuit::new(2);
        c.extend(vec![
            Gate::one(OneQubitKind::H, Qubit(0)),
            Gate::cnot(Qubit(0), Qubit(1)),
        ]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn display_lists_gates() {
        let text = bell().to_string();
        assert!(text.contains("cx q0, q1;"));
        assert!(text.contains("2 qubits"));
    }

    #[test]
    fn empty_circuit() {
        let c: Circuit = Circuit::new(3);
        assert!(c.is_empty());
        assert_eq!(c.depth(), 0);
        assert!(c.used_qubits().is_empty());
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.s(Qubit(0)).rx(0.7, Qubit(1)).cnot(Qubit(0), Qubit(1));
        let inv = c.inverse().unwrap();
        assert_eq!(inv.gates()[0], Gate::cnot(Qubit(0), Qubit(1)));
        assert_eq!(inv.gates()[1], Gate::one(OneQubitKind::Rx(-0.7), Qubit(1)));
        assert_eq!(inv.gates()[2], Gate::one(OneQubitKind::Sdg, Qubit(0)));
    }

    #[test]
    fn inverse_of_inverse_is_original() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0))
            .t(Qubit(1))
            .swap(Qubit(1), Qubit(2))
            .cnot(Qubit(0), Qubit(2));
        assert_eq!(c.inverse().unwrap().inverse().unwrap(), c);
    }

    #[test]
    fn inverse_rejects_measurement() {
        let mut c = Circuit::new(1);
        c.h(Qubit(0)).measure(Qubit(0), Cbit(0));
        assert_eq!(c.inverse(), Err(1));
    }
}
