//! # quva-circuit — quantum circuit IR for the quva NISQ compiler
//!
//! This crate provides the intermediate representation shared by every
//! other `quva` crate:
//!
//! * [`Qubit`] / [`PhysQubit`] / [`Cbit`] index newtypes, so program and
//!   physical addressing can never be confused;
//! * [`Gate`] — the NISQ-era gate set (single-qubit Cliffords + T and
//!   rotations, CNOT, SWAP, measurement, barriers);
//! * [`Circuit`] — an ordered gate list with a fluent builder API;
//! * [`Layers`] — ASAP partitioning into parallel layers, the unit the
//!   mapping policies iterate over;
//! * [`InteractionGraph`] and [`qubit_activity`] — the static analyses
//!   variation-aware allocation feeds on;
//! * [`qasm`] — OpenQASM 2.0 export and subset import.
//!
//! # Examples
//!
//! Build a GHZ state preparation and inspect its structure:
//!
//! ```
//! use quva_circuit::{Circuit, Layers, Qubit};
//!
//! let mut c = Circuit::new(3);
//! c.h(Qubit(0));
//! c.cnot(Qubit(0), Qubit(1));
//! c.cnot(Qubit(1), Qubit(2));
//! c.measure_all();
//!
//! assert_eq!(c.two_qubit_gate_count(), 2);
//! let layers = Layers::of(&c);
//! assert_eq!(layers.len(), c.depth());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
mod circuit;
mod dag;
mod gate;
mod layers;
mod optimize;
pub mod qasm;
mod qubit;
mod schedule;

pub use analysis::{qubit_activity, qubits_by_activity, InteractionGraph};
pub use circuit::{Circuit, QubitId};
pub use dag::GateDag;
pub use gate::{Gate, OneQubitKind};
pub use layers::Layers;
pub use optimize::{optimize, OptimizeStats};
pub use qubit::{Cbit, PhysQubit, Qubit};
pub use schedule::{GateTimes, Schedule};
