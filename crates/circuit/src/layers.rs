//! ASAP layer partitioning of a circuit (§4.5 step 3 of the paper).
//!
//! A *layer* is a set of gates that touch pairwise-disjoint qubits and
//! whose dependencies are all satisfied by earlier layers, so the whole
//! layer can execute in parallel. Both the baseline mapper and the
//! variation-aware mappers iterate layer by layer.

use crate::circuit::{Circuit, QubitId};
use crate::gate::Gate;

/// The result of partitioning a circuit into parallel layers.
///
/// Layers store indices into the original circuit's gate list, so no gate
/// is cloned.
///
/// # Examples
///
/// ```
/// use quva_circuit::{Circuit, Qubit, Layers};
///
/// let mut c = Circuit::new(3);
/// c.h(Qubit(0));
/// c.h(Qubit(1));            // parallel with the first H
/// c.cnot(Qubit(0), Qubit(1)); // must wait for both
///
/// let layers = Layers::of(&c);
/// assert_eq!(layers.len(), 2);
/// assert_eq!(layers.layer(0).len(), 2);
/// assert_eq!(layers.layer(1).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layers {
    layers: Vec<Vec<usize>>,
}

impl Layers {
    /// Partitions `circuit` into ASAP layers.
    ///
    /// Each gate is placed in the earliest layer strictly after every
    /// layer containing a gate that shares a qubit with it. Barriers
    /// force all subsequent gates on their qubits into later layers but
    /// occupy no layer themselves.
    pub fn of<Q: QubitId>(circuit: &Circuit<Q>) -> Self {
        let mut frontier = vec![0usize; circuit.num_qubits()];
        let mut layers: Vec<Vec<usize>> = Vec::new();
        for (idx, gate) in circuit.iter().enumerate() {
            let qs = gate.qubits();
            if qs.is_empty() {
                continue;
            }
            let level = qs.iter().map(|q| frontier[q.index()]).max().unwrap_or(0);
            if gate.is_barrier() {
                // A barrier aligns its qubits to a common level without
                // consuming a layer slot.
                for q in qs {
                    frontier[q.index()] = level;
                }
                continue;
            }
            if level == layers.len() {
                layers.push(Vec::new());
            }
            layers[level].push(idx);
            for q in qs {
                frontier[q.index()] = level + 1;
            }
        }
        Layers { layers }
    }

    /// The number of layers (the circuit depth excluding barriers).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether there are no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The gate indices of layer `i`, in program order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn layer(&self, i: usize) -> &[usize] {
        &self.layers[i]
    }

    /// Iterates over layers as slices of gate indices.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> {
        self.layers.iter().map(Vec::as_slice)
    }

    /// The CNOT gates of layer `i` as `(control, target)` pairs, resolved
    /// against `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()` or the layering was built from a
    /// different circuit.
    pub fn cnots_in_layer<Q: QubitId>(&self, circuit: &Circuit<Q>, i: usize) -> Vec<(Q, Q)> {
        self.layers[i]
            .iter()
            .filter_map(|&g| match &circuit.gates()[g] {
                Gate::Cnot { control, target } => Some((*control, *target)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::Qubit;

    #[test]
    fn serial_chain_gets_one_gate_per_layer() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).x(Qubit(0)).z(Qubit(0));
        let l = Layers::of(&c);
        assert_eq!(l.len(), 3);
        for i in 0..3 {
            assert_eq!(l.layer(i), &[i]);
        }
    }

    #[test]
    fn independent_gates_share_layer() {
        let mut c = Circuit::new(4);
        c.h(Qubit(0)).h(Qubit(1)).cnot(Qubit(2), Qubit(3));
        let l = Layers::of(&c);
        assert_eq!(l.len(), 1);
        assert_eq!(l.layer(0).len(), 3);
    }

    #[test]
    fn cnot_waits_for_both_operands() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0));
        c.h(Qubit(0)); // q0 busy for 2 layers
        c.cnot(Qubit(0), Qubit(1));
        let l = Layers::of(&c);
        assert_eq!(l.len(), 3);
        assert_eq!(l.layer(2), &[2]);
    }

    #[test]
    fn layers_cover_all_gates_exactly_once() {
        let mut c = Circuit::new(4);
        c.h(Qubit(0))
            .cnot(Qubit(0), Qubit(1))
            .cnot(Qubit(2), Qubit(3))
            .cnot(Qubit(1), Qubit(2))
            .measure_all();
        let l = Layers::of(&c);
        let mut seen: Vec<usize> = l.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..c.len()).collect::<Vec<_>>());
    }

    #[test]
    fn gates_within_layer_are_disjoint() {
        let mut c = Circuit::new(6);
        for i in 0..5 {
            c.cnot(Qubit(i), Qubit(i + 1));
        }
        c.h(Qubit(0));
        let l = Layers::of(&c);
        for i in 0..l.len() {
            let mut used = [false; 6];
            for &g in l.layer(i) {
                for q in c.gates()[g].qubits() {
                    assert!(!used[q.index()], "layer {i} reuses {q}");
                    used[q.index()] = true;
                }
            }
        }
    }

    #[test]
    fn barrier_separates_layers() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.barrier_all();
        c.h(Qubit(1));
        let l = Layers::of(&c);
        // without the barrier both H's would share layer 0
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn cnots_in_layer_extracts_pairs() {
        let mut c = Circuit::new(4);
        c.cnot(Qubit(0), Qubit(1)).cnot(Qubit(2), Qubit(3)).h(Qubit(0));
        let l = Layers::of(&c);
        let pairs = l.cnots_in_layer(&c, 0);
        assert_eq!(pairs, vec![(Qubit(0), Qubit(1)), (Qubit(2), Qubit(3))]);
    }

    #[test]
    fn empty_circuit_has_no_layers() {
        let c: Circuit = Circuit::new(3);
        let l = Layers::of(&c);
        assert!(l.is_empty());
    }

    #[test]
    fn layer_count_matches_depth() {
        let mut c = Circuit::new(5);
        c.h(Qubit(0))
            .cnot(Qubit(0), Qubit(1))
            .cnot(Qubit(1), Qubit(2))
            .cnot(Qubit(3), Qubit(4));
        let l = Layers::of(&c);
        assert_eq!(l.len(), c.depth());
    }
}
