//! The gate set of the circuit IR.
//!
//! The set mirrors what the paper's workloads need: the standard
//! single-qubit Cliffords + T, parameterized rotations, CNOT as the only
//! native two-qubit entangler (IBM hardware of that era), SWAP (compiled
//! to 3 CNOTs on hardware without a native SWAP), measurement, and
//! barriers.

use std::fmt;

use crate::qubit::{Cbit, Qubit};

/// The single-qubit operation kinds supported by the IR.
///
/// # Examples
///
/// ```
/// use quva_circuit::OneQubitKind;
///
/// assert!(OneQubitKind::H.is_clifford());
/// assert!(!OneQubitKind::T.is_clifford());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OneQubitKind {
    /// Identity (explicit idle).
    I,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = sqrt(Z).
    S,
    /// Inverse phase gate.
    Sdg,
    /// T = sqrt(S).
    T,
    /// Inverse T.
    Tdg,
    /// Rotation about X by the contained angle (radians).
    Rx(f64),
    /// Rotation about Y by the contained angle (radians).
    Ry(f64),
    /// Rotation about Z by the contained angle (radians).
    Rz(f64),
}

impl OneQubitKind {
    /// The inverse operation: applying a kind then its inverse is the
    /// identity.
    ///
    /// # Examples
    ///
    /// ```
    /// use quva_circuit::OneQubitKind;
    ///
    /// assert_eq!(OneQubitKind::S.inverse(), OneQubitKind::Sdg);
    /// assert_eq!(OneQubitKind::H.inverse(), OneQubitKind::H);
    /// ```
    pub fn inverse(self) -> Self {
        match self {
            OneQubitKind::S => OneQubitKind::Sdg,
            OneQubitKind::Sdg => OneQubitKind::S,
            OneQubitKind::T => OneQubitKind::Tdg,
            OneQubitKind::Tdg => OneQubitKind::T,
            OneQubitKind::Rx(a) => OneQubitKind::Rx(-a),
            OneQubitKind::Ry(a) => OneQubitKind::Ry(-a),
            OneQubitKind::Rz(a) => OneQubitKind::Rz(-a),
            self_inverse => self_inverse,
        }
    }

    /// Whether this operation is a Clifford gate (stabilizer-preserving).
    ///
    /// Rotations are conservatively classified non-Clifford even at
    /// Clifford angles.
    pub fn is_clifford(self) -> bool {
        !matches!(
            self,
            OneQubitKind::T
                | OneQubitKind::Tdg
                | OneQubitKind::Rx(_)
                | OneQubitKind::Ry(_)
                | OneQubitKind::Rz(_)
        )
    }

    /// The lowercase OpenQASM 2.0 mnemonic for this kind.
    pub fn qasm_name(self) -> &'static str {
        match self {
            OneQubitKind::I => "id",
            OneQubitKind::X => "x",
            OneQubitKind::Y => "y",
            OneQubitKind::Z => "z",
            OneQubitKind::H => "h",
            OneQubitKind::S => "s",
            OneQubitKind::Sdg => "sdg",
            OneQubitKind::T => "t",
            OneQubitKind::Tdg => "tdg",
            OneQubitKind::Rx(_) => "rx",
            OneQubitKind::Ry(_) => "ry",
            OneQubitKind::Rz(_) => "rz",
        }
    }

    /// The rotation angle carried by the kind, if any.
    pub fn angle(self) -> Option<f64> {
        match self {
            OneQubitKind::Rx(a) | OneQubitKind::Ry(a) | OneQubitKind::Rz(a) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for OneQubitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.angle() {
            Some(a) => write!(f, "{}({:.6})", self.qasm_name(), a),
            None => f.write_str(self.qasm_name()),
        }
    }
}

/// One instruction of a quantum program.
///
/// Generic over the qubit index type so the same IR serves both the
/// source program (over [`Qubit`]) and the routed, hardware-level program
/// (over [`crate::PhysQubit`]).
///
/// # Examples
///
/// ```
/// use quva_circuit::{Gate, OneQubitKind, Qubit};
///
/// let g = Gate::cnot(Qubit(0), Qubit(1));
/// assert!(g.is_two_qubit());
/// assert_eq!(g.qubits(), vec![Qubit(0), Qubit(1)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Gate<Q = Qubit> {
    /// A single-qubit operation.
    OneQubit {
        /// Which operation.
        kind: OneQubitKind,
        /// Target qubit.
        qubit: Q,
    },
    /// Controlled-NOT between two (coupled, after routing) qubits.
    Cnot {
        /// Control qubit.
        control: Q,
        /// Target qubit.
        target: Q,
    },
    /// State exchange between two neighbouring qubits (3 CNOTs on IBM
    /// hardware).
    Swap {
        /// First qubit.
        a: Q,
        /// Second qubit.
        b: Q,
    },
    /// Projective Z-basis measurement into a classical bit.
    Measure {
        /// Measured qubit.
        qubit: Q,
        /// Destination classical bit.
        cbit: Cbit,
    },
    /// Scheduling barrier across the listed qubits.
    Barrier {
        /// Qubits the barrier spans.
        qubits: Vec<Q>,
    },
}

impl<Q: Copy> Gate<Q> {
    /// Convenience constructor for a single-qubit gate.
    pub fn one(kind: OneQubitKind, qubit: Q) -> Self {
        Gate::OneQubit { kind, qubit }
    }

    /// Convenience constructor for a CNOT.
    pub fn cnot(control: Q, target: Q) -> Self {
        Gate::Cnot { control, target }
    }

    /// Convenience constructor for a SWAP.
    pub fn swap(a: Q, b: Q) -> Self {
        Gate::Swap { a, b }
    }

    /// Convenience constructor for a measurement.
    pub fn measure(qubit: Q, cbit: Cbit) -> Self {
        Gate::Measure { qubit, cbit }
    }

    /// All qubits this gate touches, in operand order.
    pub fn qubits(&self) -> Vec<Q> {
        match self {
            Gate::OneQubit { qubit, .. } | Gate::Measure { qubit, .. } => vec![*qubit],
            Gate::Cnot { control, target } => vec![*control, *target],
            Gate::Swap { a, b } => vec![*a, *b],
            Gate::Barrier { qubits } => qubits.clone(),
        }
    }

    /// Whether the gate involves exactly two qubits (CNOT or SWAP).
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Cnot { .. } | Gate::Swap { .. })
    }

    /// Whether the gate is a measurement.
    pub fn is_measurement(&self) -> bool {
        matches!(self, Gate::Measure { .. })
    }

    /// Whether the gate is a barrier (no physical operation).
    pub fn is_barrier(&self) -> bool {
        matches!(self, Gate::Barrier { .. })
    }

    /// The number of physical CNOTs this gate costs on CNOT-native
    /// hardware: 1 for a CNOT, 3 for a SWAP, 0 otherwise.
    pub fn cnot_cost(&self) -> usize {
        match self {
            Gate::Cnot { .. } => 1,
            Gate::Swap { .. } => 3,
            _ => 0,
        }
    }

    /// Applies `f` to every qubit operand, producing a gate over a new
    /// index type. Used to rewrite program qubits to physical qubits.
    pub fn map_qubits<R: Copy>(&self, mut f: impl FnMut(Q) -> R) -> Gate<R> {
        match self {
            Gate::OneQubit { kind, qubit } => Gate::OneQubit {
                kind: *kind,
                qubit: f(*qubit),
            },
            Gate::Cnot { control, target } => Gate::Cnot {
                control: f(*control),
                target: f(*target),
            },
            Gate::Swap { a, b } => Gate::Swap { a: f(*a), b: f(*b) },
            Gate::Measure { qubit, cbit } => Gate::Measure {
                qubit: f(*qubit),
                cbit: *cbit,
            },
            Gate::Barrier { qubits } => Gate::Barrier {
                qubits: qubits.iter().map(|&q| f(q)).collect(),
            },
        }
    }
}

impl<Q: Copy + fmt::Display> fmt::Display for Gate<Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::OneQubit { kind, qubit } => write!(f, "{kind} {qubit}"),
            Gate::Cnot { control, target } => write!(f, "cx {control}, {target}"),
            Gate::Swap { a, b } => write!(f, "swap {a}, {b}"),
            Gate::Measure { qubit, cbit } => write!(f, "measure {qubit} -> {cbit}"),
            Gate::Barrier { qubits } => {
                f.write_str("barrier ")?;
                for (i, q) in qubits.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{q}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::PhysQubit;

    #[test]
    fn qubits_of_each_variant() {
        assert_eq!(Gate::one(OneQubitKind::H, Qubit(0)).qubits(), vec![Qubit(0)]);
        assert_eq!(Gate::cnot(Qubit(1), Qubit(2)).qubits(), vec![Qubit(1), Qubit(2)]);
        assert_eq!(Gate::swap(Qubit(3), Qubit(4)).qubits(), vec![Qubit(3), Qubit(4)]);
        assert_eq!(Gate::measure(Qubit(5), Cbit(0)).qubits(), vec![Qubit(5)]);
        let b: Gate = Gate::Barrier {
            qubits: vec![Qubit(0), Qubit(1)],
        };
        assert_eq!(b.qubits().len(), 2);
    }

    #[test]
    fn cnot_cost() {
        assert_eq!(Gate::cnot(Qubit(0), Qubit(1)).cnot_cost(), 1);
        assert_eq!(Gate::swap(Qubit(0), Qubit(1)).cnot_cost(), 3);
        assert_eq!(Gate::one(OneQubitKind::H, Qubit(0)).cnot_cost(), 0);
        assert_eq!(Gate::measure(Qubit(0), Cbit(0)).cnot_cost(), 0);
    }

    #[test]
    fn classification() {
        assert!(Gate::cnot(Qubit(0), Qubit(1)).is_two_qubit());
        assert!(Gate::swap(Qubit(0), Qubit(1)).is_two_qubit());
        assert!(!Gate::measure(Qubit(0), Cbit(0)).is_two_qubit());
        assert!(Gate::measure(Qubit(0), Cbit(0)).is_measurement());
        let b: Gate = Gate::Barrier { qubits: vec![] };
        assert!(b.is_barrier());
    }

    #[test]
    fn map_qubits_to_physical() {
        let g = Gate::cnot(Qubit(0), Qubit(1));
        let p: Gate<PhysQubit> = g.map_qubits(|q| PhysQubit(q.0 + 10));
        assert_eq!(p, Gate::cnot(PhysQubit(10), PhysQubit(11)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Gate::cnot(Qubit(0), Qubit(1)).to_string(), "cx q0, q1");
        assert_eq!(Gate::one(OneQubitKind::H, Qubit(2)).to_string(), "h q2");
        assert_eq!(Gate::measure(Qubit(0), Cbit(0)).to_string(), "measure q0 -> c0");
        let rz = Gate::one(OneQubitKind::Rz(1.5), Qubit(0));
        assert!(rz.to_string().starts_with("rz(1.5"));
    }

    #[test]
    fn clifford_classification() {
        for k in [
            OneQubitKind::I,
            OneQubitKind::X,
            OneQubitKind::Y,
            OneQubitKind::Z,
            OneQubitKind::H,
            OneQubitKind::S,
            OneQubitKind::Sdg,
        ] {
            assert!(k.is_clifford(), "{k:?} should be Clifford");
        }
        for k in [
            OneQubitKind::T,
            OneQubitKind::Tdg,
            OneQubitKind::Rx(0.1),
            OneQubitKind::Ry(0.1),
            OneQubitKind::Rz(0.1),
        ] {
            assert!(!k.is_clifford(), "{k:?} should not be Clifford");
        }
    }

    #[test]
    fn angle_extraction() {
        assert_eq!(OneQubitKind::Rx(0.5).angle(), Some(0.5));
        assert_eq!(OneQubitKind::H.angle(), None);
    }
}
