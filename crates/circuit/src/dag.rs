//! The gate dependency DAG of a circuit.
//!
//! Two gates depend on each other iff they share a qubit; the DAG's
//! edges connect each gate to the *next* gate on each of its qubits.
//! [`Layers`](crate::Layers) is the level structure of this DAG; the DAG
//! itself additionally answers predecessor/successor and critical-path
//! queries, which schedulers and routers use for lookahead.

use crate::circuit::{Circuit, QubitId};

/// The dependency DAG of one circuit (node = gate index).
///
/// # Examples
///
/// ```
/// use quva_circuit::{Circuit, GateDag, Qubit};
///
/// let mut c = Circuit::new(3);
/// c.h(Qubit(0));                 // 0
/// c.cnot(Qubit(0), Qubit(1));    // 1: depends on 0
/// c.h(Qubit(2));                 // 2: independent
/// c.cnot(Qubit(1), Qubit(2));    // 3: depends on 1 and 2
///
/// let dag = GateDag::of(&c);
/// assert_eq!(dag.predecessors(1), &[0]);
/// assert_eq!(dag.successors(1), &[3]);
/// assert_eq!(dag.predecessors(3), &[1, 2]);
/// assert_eq!(dag.critical_path_len(), 3); // 0 → 1 → 3
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateDag {
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    level: Vec<usize>,
}

impl GateDag {
    /// Builds the DAG of `circuit`. Barriers participate as
    /// synchronization nodes (they depend on, and are depended on by,
    /// their qubits' neighbours).
    pub fn of<Q: QubitId>(circuit: &Circuit<Q>) -> Self {
        let n = circuit.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        for (i, gate) in circuit.iter().enumerate() {
            for q in gate.qubits() {
                if let Some(p) = last_on_qubit[q.index()] {
                    if !preds[i].contains(&p) {
                        preds[i].push(p);
                        succs[p].push(i);
                    }
                }
                last_on_qubit[q.index()] = Some(i);
            }
        }
        // levels by longest path from a source
        let mut level = vec![0usize; n];
        for i in 0..n {
            // program order is a topological order
            level[i] = preds[i].iter().map(|&p| level[p] + 1).max().unwrap_or(0);
        }
        GateDag { preds, succs, level }
    }

    /// Number of gates (nodes).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the circuit had no gates.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The direct predecessors of gate `i`, in discovery order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// The direct successors of gate `i`, in discovery order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// The dependency level of gate `i` (its longest-path depth; gates
    /// with no predecessors sit at level 0).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn level(&self, i: usize) -> usize {
        self.level[i]
    }

    /// Gates with no predecessors (the executable frontier).
    pub fn sources(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.preds[i].is_empty()).collect()
    }

    /// Gates with no successors (the final gate on each qubit chain).
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.succs[i].is_empty()).collect()
    }

    /// Length (in gates) of the longest dependency chain; equals the
    /// barrier-free circuit depth.
    pub fn critical_path_len(&self) -> usize {
        self.level.iter().map(|&l| l + 1).max().unwrap_or(0)
    }

    /// One longest dependency chain, front to back.
    pub fn critical_path(&self) -> Vec<usize> {
        let Some(mut cur) = (0..self.len())
            .max_by_key(|&i| self.level[i])
            .filter(|_| !self.is_empty())
        else {
            return Vec::new();
        };
        let mut path = vec![cur];
        while let Some(&deepest) = self.preds[cur].iter().max_by_key(|&&p| self.level[p]) {
            cur = deepest;
            path.push(cur);
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::Qubit;

    fn diamond() -> Circuit {
        // 0: h q0; 1: h q1; 2: cx q0,q1; 3: h q0; 4: h q1
        let mut c = Circuit::new(2);
        c.h(Qubit(0))
            .h(Qubit(1))
            .cnot(Qubit(0), Qubit(1))
            .h(Qubit(0))
            .h(Qubit(1));
        c
    }

    #[test]
    fn diamond_structure() {
        let dag = GateDag::of(&diamond());
        assert_eq!(dag.predecessors(2), &[0, 1]);
        assert_eq!(dag.successors(2), &[3, 4]);
        assert_eq!(dag.sources(), vec![0, 1]);
        assert_eq!(dag.sinks(), vec![3, 4]);
    }

    #[test]
    fn levels_match_layers() {
        let c = diamond();
        let dag = GateDag::of(&c);
        assert_eq!(dag.level(0), 0);
        assert_eq!(dag.level(1), 0);
        assert_eq!(dag.level(2), 1);
        assert_eq!(dag.level(3), 2);
        assert_eq!(dag.critical_path_len(), c.depth());
    }

    #[test]
    fn critical_path_is_a_real_chain() {
        let c = diamond();
        let dag = GateDag::of(&c);
        let path = dag.critical_path();
        assert_eq!(path.len(), 3);
        for w in path.windows(2) {
            assert!(dag.successors(w[0]).contains(&w[1]), "{w:?} not an edge");
        }
    }

    #[test]
    fn two_qubit_gate_dedupes_shared_predecessor() {
        // both operands of the CNOT last touched the same gate (a swap)
        let mut c = Circuit::new(2);
        c.swap(Qubit(0), Qubit(1));
        c.cnot(Qubit(0), Qubit(1));
        let dag = GateDag::of(&c);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn independent_gates_have_no_edges() {
        let mut c = Circuit::new(4);
        c.h(Qubit(0)).h(Qubit(1)).h(Qubit(2)).h(Qubit(3));
        let dag = GateDag::of(&c);
        assert_eq!(dag.sources().len(), 4);
        assert_eq!(dag.sinks().len(), 4);
        assert_eq!(dag.critical_path_len(), 1);
    }

    #[test]
    fn empty_circuit() {
        let c: Circuit = Circuit::new(2);
        let dag = GateDag::of(&c);
        assert!(dag.is_empty());
        assert_eq!(dag.critical_path_len(), 0);
        assert!(dag.critical_path().is_empty());
    }
}
