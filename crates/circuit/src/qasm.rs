//! OpenQASM 2.0 export and a parser for the subset this IR emits.
//!
//! The exporter writes every circuit the compiler produces; the parser
//! accepts that dialect back plus common real-world conveniences:
//! multiple named quantum/classical registers (flattened into one index
//! space in declaration order), standard gate names, `cx`, `swap`,
//! `measure`, `barrier`, `pi`-expression angles, and comments.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::circuit::{Circuit, QubitId};
use crate::gate::{Gate, OneQubitKind};
use crate::qubit::Cbit;

/// Serializes a circuit as OpenQASM 2.0.
///
/// The quantum register is named `q` and the classical register `c`.
///
/// # Examples
///
/// ```
/// use quva_circuit::{Circuit, Qubit, qasm};
///
/// let mut c = Circuit::new(2);
/// c.h(Qubit(0)).cnot(Qubit(0), Qubit(1));
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("cx q[0], q[1];"));
/// ```
pub fn to_qasm<Q: QubitId>(circuit: &Circuit<Q>) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    if circuit.num_cbits() > 0 {
        let _ = writeln!(out, "creg c[{}];", circuit.num_cbits());
    }
    for gate in circuit {
        match gate {
            Gate::OneQubit { kind, qubit } => match kind.angle() {
                Some(a) => {
                    let _ = writeln!(
                        out,
                        "{}({}) q[{}];",
                        kind.qasm_name(),
                        fmt_angle(a),
                        qubit.index()
                    );
                }
                None => {
                    let _ = writeln!(out, "{} q[{}];", kind.qasm_name(), qubit.index());
                }
            },
            Gate::Cnot { control, target } => {
                let _ = writeln!(out, "cx q[{}], q[{}];", control.index(), target.index());
            }
            Gate::Swap { a, b } => {
                let _ = writeln!(out, "swap q[{}], q[{}];", a.index(), b.index());
            }
            Gate::Measure { qubit, cbit } => {
                let _ = writeln!(out, "measure q[{}] -> c[{}];", qubit.index(), cbit.index());
            }
            Gate::Barrier { qubits } => {
                let operands: Vec<String> = qubits.iter().map(|q| format!("q[{}]", q.index())).collect();
                let _ = writeln!(out, "barrier {};", operands.join(", "));
            }
        }
    }
    out
}

fn fmt_angle(a: f64) -> String {
    // Maximum round-trip precision without trailing-zero noise.
    let s = format!("{a:.17}");
    match s.parse::<f64>() {
        Ok(v) if v == a => {
            let short = format!("{a}");
            if short.parse::<f64>() == Ok(a) {
                short
            } else {
                s
            }
        }
        _ => s,
    }
}

/// Error produced when parsing OpenQASM fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQasmError {
    line: usize,
    message: String,
}

impl ParseQasmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseQasmError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number where parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qasm parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseQasmError {}

/// Parses the OpenQASM 2.0 subset produced by [`to_qasm`].
///
/// # Errors
///
/// Returns [`ParseQasmError`] on unknown statements, malformed operands,
/// out-of-range indices, or missing register declarations.
///
/// # Examples
///
/// ```
/// use quva_circuit::qasm;
///
/// # fn main() -> Result<(), quva_circuit::qasm::ParseQasmError> {
/// let c = qasm::from_qasm(
///     "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\n",
/// )?;
/// assert_eq!(c.num_qubits(), 2);
/// assert_eq!(c.cnot_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn from_qasm(text: &str) -> Result<Circuit, ParseQasmError> {
    let mut pending: Vec<(usize, String)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            pending.push((lineno, stmt.to_string()));
        }
    }

    // first pass: registers (multiple qregs/cregs are concatenated into
    // one global index space, in declaration order)
    let mut gates: Vec<(usize, String)> = Vec::new();
    let mut qregs = RegisterTable::default();
    let mut cregs = RegisterTable::default();
    for (lineno, stmt) in pending {
        if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("qreg") {
            qregs.declare(lineno, rest)?;
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("creg") {
            cregs.declare(lineno, rest)?;
            continue;
        }
        gates.push((lineno, stmt));
    }

    if qregs.total == 0 {
        return Err(ParseQasmError::new(1, "missing qreg declaration"));
    }
    let mut c = Circuit::with_cbits(qregs.total, cregs.total.max(qregs.total));
    for (lineno, stmt) in gates {
        parse_statement(&mut c, &qregs, &cregs, lineno, &stmt)?;
    }
    Ok(c)
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Named registers flattened into one global index space.
#[derive(Debug, Default)]
struct RegisterTable {
    /// (name, offset, size), in declaration order.
    regs: Vec<(String, usize, usize)>,
    total: usize,
}

impl RegisterTable {
    fn declare(&mut self, lineno: usize, rest: &str) -> Result<(), ParseQasmError> {
        let rest = rest.trim();
        let open = rest
            .find('[')
            .ok_or_else(|| ParseQasmError::new(lineno, "malformed register declaration"))?;
        let close = rest
            .find(']')
            .ok_or_else(|| ParseQasmError::new(lineno, "malformed register declaration"))?;
        let name = rest[..open].trim();
        if name.is_empty() || !name.chars().all(|ch| ch.is_ascii_alphanumeric() || ch == '_') {
            return Err(ParseQasmError::new(lineno, format!("bad register name '{name}'")));
        }
        if self.regs.iter().any(|(n, _, _)| n == name) {
            return Err(ParseQasmError::new(
                lineno,
                format!("register '{name}' declared twice"),
            ));
        }
        let size: usize = rest[open + 1..close]
            .trim()
            .parse()
            .map_err(|_| ParseQasmError::new(lineno, "register size is not a number"))?;
        self.regs.push((name.to_string(), self.total, size));
        self.total += size;
        Ok(())
    }

    /// Resolves `name[i]` to a global index.
    fn resolve(&self, lineno: usize, text: &str) -> Result<u32, ParseQasmError> {
        let text = text.trim();
        let open = text.find('[').ok_or_else(|| {
            ParseQasmError::new(lineno, format!("expected operand like reg[i], got '{text}'"))
        })?;
        let inner = text[open + 1..]
            .strip_suffix(']')
            .ok_or_else(|| ParseQasmError::new(lineno, format!("unclosed index in operand '{text}'")))?;
        let name = text[..open].trim();
        let idx: usize = inner
            .trim()
            .parse()
            .map_err(|_| ParseQasmError::new(lineno, format!("bad index in operand '{text}'")))?;
        let (_, offset, size) = self
            .regs
            .iter()
            .find(|(n, _, _)| n == name)
            .ok_or_else(|| ParseQasmError::new(lineno, format!("unknown register '{name}'")))?;
        if idx >= *size {
            return Err(ParseQasmError::new(
                lineno,
                format!("index {idx} out of range for register '{name}' of size {size}"),
            ));
        }
        Ok((offset + idx) as u32)
    }
}

fn parse_angle(lineno: usize, text: &str) -> Result<f64, ParseQasmError> {
    let text = text.trim();
    // Accept simple `pi`-expressions: pi, pi/2, -pi/4, 2*pi, plus numbers.
    let normalized = text.replace(' ', "");
    let value = if let Some(rest) = normalized.strip_prefix("-") {
        -parse_angle(lineno, rest)?
    } else if normalized == "pi" {
        std::f64::consts::PI
    } else if let Some(den) = normalized.strip_prefix("pi/") {
        let d: f64 = den
            .parse()
            .map_err(|_| ParseQasmError::new(lineno, format!("bad angle '{text}'")))?;
        std::f64::consts::PI / d
    } else if let Some(mul) = normalized.strip_suffix("*pi") {
        let m: f64 = mul
            .parse()
            .map_err(|_| ParseQasmError::new(lineno, format!("bad angle '{text}'")))?;
        m * std::f64::consts::PI
    } else {
        normalized
            .parse()
            .map_err(|_| ParseQasmError::new(lineno, format!("bad angle '{text}'")))?
    };
    Ok(value)
}

fn parse_statement(
    c: &mut Circuit,
    qregs: &RegisterTable,
    cregs: &RegisterTable,
    lineno: usize,
    stmt: &str,
) -> Result<(), ParseQasmError> {
    let (head, args) = match stmt.find(|ch: char| ch.is_whitespace()) {
        Some(pos) => (&stmt[..pos], stmt[pos..].trim()),
        None => {
            return Err(ParseQasmError::new(
                lineno,
                format!("malformed statement '{stmt}'"),
            ))
        }
    };

    let check = |_c: &Circuit, q: u32| -> Result<crate::Qubit, ParseQasmError> { Ok(crate::Qubit(q)) };

    if head == "measure" {
        let parts: Vec<&str> = args.split("->").collect();
        if parts.len() != 2 {
            return Err(ParseQasmError::new(lineno, "measure needs 'q[i] -> c[j]'"));
        }
        let q = qregs.resolve(lineno, parts[0])?;
        let b = cregs.resolve(lineno, parts[1])?;
        if (b as usize) >= c.num_cbits() {
            return Err(ParseQasmError::new(
                lineno,
                format!("classical index {b} out of range"),
            ));
        }
        c.measure(check(c, q)?, Cbit(b));
        return Ok(());
    }

    if head == "barrier" {
        let mut qubits = Vec::new();
        for part in args.split(',') {
            let q = qregs.resolve(lineno, part)?;
            qubits.push(check(c, q)?);
        }
        c.push(Gate::Barrier { qubits });
        return Ok(());
    }

    if head == "cx" || head == "swap" {
        let parts: Vec<&str> = args.split(',').collect();
        if parts.len() != 2 {
            return Err(ParseQasmError::new(lineno, format!("{head} needs two operands")));
        }
        let a = check(c, qregs.resolve(lineno, parts[0])?)?;
        let b = check(c, qregs.resolve(lineno, parts[1])?)?;
        if a == b {
            return Err(ParseQasmError::new(
                lineno,
                format!("{head} operands must differ"),
            ));
        }
        if head == "cx" {
            c.cnot(a, b);
        } else {
            c.swap(a, b);
        }
        return Ok(());
    }

    // Single-qubit gates, possibly parameterized: name(angle) q[i]
    let (name, angle) = match head.find('(') {
        Some(open) => {
            let close = head
                .rfind(')')
                .ok_or_else(|| ParseQasmError::new(lineno, "unclosed parameter list"))?;
            (&head[..open], Some(parse_angle(lineno, &head[open + 1..close])?))
        }
        None => (head, None),
    };
    let kind = match (name, angle) {
        ("id", None) => OneQubitKind::I,
        ("x", None) => OneQubitKind::X,
        ("y", None) => OneQubitKind::Y,
        ("z", None) => OneQubitKind::Z,
        ("h", None) => OneQubitKind::H,
        ("s", None) => OneQubitKind::S,
        ("sdg", None) => OneQubitKind::Sdg,
        ("t", None) => OneQubitKind::T,
        ("tdg", None) => OneQubitKind::Tdg,
        ("rx", Some(a)) => OneQubitKind::Rx(a),
        ("ry", Some(a)) => OneQubitKind::Ry(a),
        ("rz", Some(a)) => OneQubitKind::Rz(a),
        _ => {
            return Err(ParseQasmError::new(lineno, format!("unsupported gate '{head}'")));
        }
    };
    let q = qregs.resolve(lineno, args)?;
    c.one(kind, check(c, q)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::Qubit;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(Qubit(0))
            .x(Qubit(1))
            .rz(0.5, Qubit(2))
            .cnot(Qubit(0), Qubit(1))
            .swap(Qubit(1), Qubit(2))
            .barrier_all()
            .measure_all();
        c
    }

    #[test]
    fn roundtrip_preserves_circuit() {
        let c = sample();
        let text = to_qasm(&c);
        let back = from_qasm(&text).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn export_contains_headers() {
        let text = to_qasm(&sample());
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("creg c[3];"));
    }

    #[test]
    fn parses_pi_angles() {
        let c = from_qasm("qreg q[1];\nrz(pi/2) q[0];\nrx(-pi/4) q[0];\nry(2*pi) q[0];\n").unwrap();
        let angles: Vec<f64> = c
            .iter()
            .filter_map(|g| match g {
                Gate::OneQubit { kind, .. } => kind.angle(),
                _ => None,
            })
            .collect();
        assert!((angles[0] - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((angles[1] + std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        assert!((angles[2] - 2.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let c = from_qasm("// header\nqreg q[1];\n\nh q[0]; // inline\n").unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn multiple_statements_on_one_line() {
        let c = from_qasm("qreg q[2]; h q[0]; cx q[0], q[1];").unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn rejects_unknown_gate() {
        let err = from_qasm("qreg q[1];\nfoo q[0];\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("unsupported gate"));
    }

    #[test]
    fn rejects_missing_qreg() {
        let err = from_qasm("h q[0];\n").unwrap_err();
        assert!(err.to_string().contains("malformed statement") || err.to_string().contains("missing qreg"));
    }

    #[test]
    fn rejects_out_of_range_qubit() {
        let err = from_qasm("qreg q[2];\ncx q[0], q[5];\n").unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_equal_cx_operands() {
        let err = from_qasm("qreg q[2];\ncx q[1], q[1];\n").unwrap_err();
        assert!(err.to_string().contains("must differ"));
    }

    #[test]
    fn parse_error_reports_line_number() {
        let err = from_qasm("qreg q[1];\nh q[0];\nbadness q[0];\n").unwrap_err();
        assert_eq!(err.line(), 3);
    }

    #[test]
    fn multiple_registers_flatten_in_declaration_order() {
        let c = from_qasm(
            "qreg a[2];\nqreg b[3];\ncreg m[2];\ncreg n[1];\n\
             h a[0];\ncx a[1], b[0];\nx b[2];\nmeasure b[0] -> n[0];\n",
        )
        .unwrap();
        assert_eq!(c.num_qubits(), 5);
        // a[1] = global 1, b[0] = global 2
        assert_eq!(c.gates()[1], Gate::cnot(crate::Qubit(1), crate::Qubit(2)));
        // b[2] = global 4
        assert_eq!(c.gates()[2], Gate::one(OneQubitKind::X, crate::Qubit(4)));
        // n[0] = global cbit 2
        assert_eq!(c.gates()[3], Gate::measure(crate::Qubit(2), Cbit(2)));
    }

    #[test]
    fn register_errors_are_descriptive() {
        let err = from_qasm("qreg a[2];\nqreg a[3];\n").unwrap_err();
        assert!(err.to_string().contains("declared twice"));
        let err = from_qasm("qreg a[2];\nh z[0];\n").unwrap_err();
        assert!(err.to_string().contains("unknown register 'z'"));
        let err = from_qasm("qreg a[2];\nh a[5];\n").unwrap_err();
        assert!(err.to_string().contains("out of range for register 'a'"));
    }

    #[test]
    fn angle_roundtrip_precision() {
        let mut c = Circuit::new(1);
        c.rz(std::f64::consts::PI / 3.0, Qubit(0));
        let back = from_qasm(&to_qasm(&c)).unwrap();
        assert_eq!(c, back);
    }
}
