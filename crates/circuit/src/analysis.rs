//! Static circuit analyses consumed by the allocation policies.
//!
//! VQA (Algorithm 2 of the paper) needs two program properties: the
//! pairwise CNOT *interaction* counts (who talks to whom) and the
//! per-qubit *activity* over the first `t` layers (who talks most, and
//! earliest).

use crate::circuit::{Circuit, QubitId};
use crate::gate::Gate;
use crate::layers::Layers;

/// Symmetric matrix of CNOT interaction counts between qubit pairs.
///
/// # Examples
///
/// ```
/// use quva_circuit::{Circuit, Qubit, InteractionGraph};
///
/// let mut c = Circuit::new(3);
/// c.cnot(Qubit(0), Qubit(1));
/// c.cnot(Qubit(1), Qubit(0));
/// c.cnot(Qubit(1), Qubit(2));
///
/// let ig = InteractionGraph::of(&c);
/// assert_eq!(ig.count(Qubit(0), Qubit(1)), 2);
/// assert_eq!(ig.count(Qubit(0), Qubit(2)), 0);
/// assert_eq!(ig.degree(Qubit(1)), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteractionGraph<Q = crate::Qubit> {
    n: usize,
    counts: Vec<u32>,
    _marker: std::marker::PhantomData<Q>,
}

impl<Q: QubitId> InteractionGraph<Q> {
    /// Builds the interaction graph of a whole circuit.
    pub fn of(circuit: &Circuit<Q>) -> Self {
        Self::of_gates(circuit.num_qubits(), circuit.iter())
    }

    /// Builds the interaction graph from an explicit gate iterator.
    pub fn of_gates<'a>(num_qubits: usize, gates: impl Iterator<Item = &'a Gate<Q>>) -> Self {
        let mut ig = InteractionGraph {
            n: num_qubits,
            counts: vec![0; num_qubits * num_qubits],
            _marker: std::marker::PhantomData,
        };
        for g in gates {
            if let Gate::Cnot { control, target } = g {
                ig.record(*control, *target);
            }
        }
        ig
    }

    fn record(&mut self, a: Q, b: Q) {
        let (i, j) = (a.index(), b.index());
        self.counts[i * self.n + j] += 1;
        self.counts[j * self.n + i] += 1;
    }

    /// The number of qubits the graph covers.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// CNOT count between a pair of qubits (symmetric).
    pub fn count(&self, a: Q, b: Q) -> u32 {
        self.counts[a.index() * self.n + b.index()]
    }

    /// Total CNOT endpoints on `q` (its weighted degree in the
    /// interaction graph).
    pub fn degree(&self, q: Q) -> u32 {
        (0..self.n).map(|j| self.counts[q.index() * self.n + j]).sum()
    }

    /// All interacting pairs `(a, b, count)` with `a < b` and `count > 0`,
    /// sorted by descending count (ties by index).
    pub fn pairs(&self) -> Vec<(Q, Q, u32)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let c = self.counts[i * self.n + j];
                if c > 0 {
                    out.push((Q::from_index(i), Q::from_index(j), c));
                }
            }
        }
        out.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        out
    }
}

/// Per-qubit CNOT activity over the first `t` layers of a circuit
/// (paper §6.2 step 2).
///
/// Returns one count per qubit: the number of CNOT endpoints the qubit
/// contributes within the window. `t = usize::MAX` counts the whole
/// circuit.
///
/// # Examples
///
/// ```
/// use quva_circuit::{Circuit, Qubit, qubit_activity};
///
/// let mut c = Circuit::new(3);
/// c.cnot(Qubit(0), Qubit(1));
/// c.cnot(Qubit(0), Qubit(2));
///
/// let act = qubit_activity(&c, usize::MAX);
/// assert_eq!(act, vec![2, 1, 1]);
/// ```
pub fn qubit_activity<Q: QubitId>(circuit: &Circuit<Q>, t: usize) -> Vec<u32> {
    let layers = Layers::of(circuit);
    let mut activity = vec![0u32; circuit.num_qubits()];
    for (li, layer) in layers.iter().enumerate() {
        if li >= t {
            break;
        }
        for &g in layer {
            if let Gate::Cnot { control, target } = &circuit.gates()[g] {
                activity[control.index()] += 1;
                activity[target.index()] += 1;
            }
        }
    }
    activity
}

/// Qubits ordered by descending activity (ties broken by index), the
/// priority order VQA uses when assigning program qubits.
pub fn qubits_by_activity<Q: QubitId>(circuit: &Circuit<Q>, t: usize) -> Vec<Q> {
    let activity = qubit_activity(circuit, t);
    let mut order: Vec<usize> = (0..circuit.num_qubits()).collect();
    order.sort_by(|&a, &b| activity[b].cmp(&activity[a]).then(a.cmp(&b)));
    order.into_iter().map(Q::from_index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::Qubit;

    fn star_circuit() -> Circuit {
        // q0 entangles with everyone — Bernstein-Vazirani-like pattern
        let mut c = Circuit::new(4);
        c.cnot(Qubit(1), Qubit(0));
        c.cnot(Qubit(2), Qubit(0));
        c.cnot(Qubit(3), Qubit(0));
        c
    }

    #[test]
    fn interaction_counts_are_symmetric() {
        let ig = InteractionGraph::of(&star_circuit());
        for i in 0..4u32 {
            for j in 0..4u32 {
                assert_eq!(ig.count(Qubit(i), Qubit(j)), ig.count(Qubit(j), Qubit(i)));
            }
        }
    }

    #[test]
    fn star_degrees() {
        let ig = InteractionGraph::of(&star_circuit());
        assert_eq!(ig.degree(Qubit(0)), 3);
        assert_eq!(ig.degree(Qubit(1)), 1);
    }

    #[test]
    fn pairs_sorted_by_count() {
        let mut c = Circuit::new(3);
        c.cnot(Qubit(1), Qubit(2));
        c.cnot(Qubit(1), Qubit(2));
        c.cnot(Qubit(0), Qubit(1));
        let ig = InteractionGraph::of(&c);
        let pairs = ig.pairs();
        assert_eq!(pairs[0], (Qubit(1), Qubit(2), 2));
        assert_eq!(pairs[1], (Qubit(0), Qubit(1), 1));
    }

    #[test]
    fn swaps_do_not_count_as_interaction() {
        let mut c = Circuit::new(2);
        c.swap(Qubit(0), Qubit(1));
        let ig = InteractionGraph::of(&c);
        assert_eq!(ig.count(Qubit(0), Qubit(1)), 0);
    }

    #[test]
    fn activity_full_window() {
        let act = qubit_activity(&star_circuit(), usize::MAX);
        assert_eq!(act, vec![3, 1, 1, 1]);
    }

    #[test]
    fn activity_respects_layer_window() {
        // star circuit serializes on q0: one CNOT per layer
        let act = qubit_activity(&star_circuit(), 2);
        assert_eq!(act, vec![2, 1, 1, 0]);
    }

    #[test]
    fn activity_order_puts_hub_first() {
        let order = qubits_by_activity(&star_circuit(), usize::MAX);
        assert_eq!(order[0], Qubit(0));
        // ties broken by index
        assert_eq!(&order[1..], &[Qubit(1), Qubit(2), Qubit(3)]);
    }

    #[test]
    fn zero_window_means_zero_activity() {
        let act = qubit_activity(&star_circuit(), 0);
        assert_eq!(act, vec![0; 4]);
    }
}
