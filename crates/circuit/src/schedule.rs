//! ASAP time scheduling of a circuit.
//!
//! Assigns each gate a start/end time given per-kind durations (layered
//! execution: a layer lasts as long as its slowest member). The
//! coherence model and any latency analysis consume this.

use crate::circuit::{Circuit, QubitId};
use crate::gate::Gate;
use crate::layers::Layers;

/// Durations (in nanoseconds) used to time a schedule. A SWAP lasts
/// three two-qubit gates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateTimes {
    /// Single-qubit gate duration.
    pub one_qubit_ns: f64,
    /// CNOT duration.
    pub two_qubit_ns: f64,
    /// Readout duration.
    pub readout_ns: f64,
}

impl Default for GateTimes {
    /// IBM-Q20-era pulse lengths (matches
    /// `quva_device::GateDurations::default`).
    fn default() -> Self {
        GateTimes {
            one_qubit_ns: 50.0,
            two_qubit_ns: 300.0,
            readout_ns: 3500.0,
        }
    }
}

impl GateTimes {
    /// The duration of one gate under these times (barriers are
    /// instantaneous).
    pub fn duration_of<Q: QubitId>(&self, gate: &Gate<Q>) -> f64 {
        match gate {
            Gate::OneQubit { .. } => self.one_qubit_ns,
            Gate::Cnot { .. } => self.two_qubit_ns,
            Gate::Swap { .. } => 3.0 * self.two_qubit_ns,
            Gate::Measure { .. } => self.readout_ns,
            Gate::Barrier { .. } => 0.0,
        }
    }
}

/// A timed, layered schedule of a circuit.
///
/// # Examples
///
/// ```
/// use quva_circuit::{Circuit, GateTimes, Qubit, Schedule};
///
/// let mut c = Circuit::new(2);
/// c.h(Qubit(0));
/// c.cnot(Qubit(0), Qubit(1));
///
/// let s = Schedule::asap(&c, GateTimes::default());
/// assert_eq!(s.start_of(0), 0.0);
/// assert_eq!(s.start_of(1), 50.0);       // waits for the H
/// assert_eq!(s.total_duration_ns(), 350.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    times: GateTimes,
    /// Per gate index: (layer, start time). Barriers get their layer's
    /// start with zero duration.
    start: Vec<f64>,
    duration: Vec<f64>,
    total: f64,
    num_qubits: usize,
    /// Per qubit: (first gate start, last gate end, busy time), gates
    /// only (measurements excluded from the window, as in the coherence
    /// model).
    windows: Vec<QubitWindow>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct QubitWindow {
    first_start: f64,
    last_end: f64,
    busy: f64,
    used: bool,
}

impl Schedule {
    /// Builds the ASAP layered schedule of `circuit`.
    pub fn asap<Q: QubitId>(circuit: &Circuit<Q>, times: GateTimes) -> Self {
        let layers = Layers::of(circuit);
        let n_gates = circuit.len();
        let mut start = vec![0.0; n_gates];
        let mut duration = vec![0.0; n_gates];
        let mut windows = vec![
            QubitWindow {
                first_start: f64::INFINITY,
                last_end: 0.0,
                busy: 0.0,
                used: false
            };
            circuit.num_qubits()
        ];
        let mut t = 0.0;
        for li in 0..layers.len() {
            let layer = layers.layer(li);
            let layer_dur = layer
                .iter()
                .map(|&g| times.duration_of(&circuit.gates()[g]))
                .fold(0.0, f64::max);
            for &g in layer {
                let gate = &circuit.gates()[g];
                start[g] = t;
                duration[g] = times.duration_of(gate);
                if gate.is_measurement() || gate.is_barrier() {
                    continue;
                }
                for q in gate.qubits() {
                    let w = &mut windows[q.index()];
                    w.used = true;
                    w.first_start = w.first_start.min(t);
                    w.last_end = w.last_end.max(t + layer_dur);
                    w.busy += duration[g];
                }
            }
            t += layer_dur;
        }
        Schedule {
            times,
            start,
            duration,
            total: t,
            num_qubits: circuit.num_qubits(),
            windows,
        }
    }

    /// The gate times used.
    pub fn times(&self) -> GateTimes {
        self.times
    }

    /// Start time of gate `i` (program order), nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn start_of(&self, i: usize) -> f64 {
        self.start[i]
    }

    /// End time of gate `i`, nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn end_of(&self, i: usize) -> f64 {
        self.start[i] + self.duration[i]
    }

    /// Total wall-clock duration of the program.
    pub fn total_duration_ns(&self) -> f64 {
        self.total
    }

    /// Idle time of qubit `q` between its first and last gate
    /// (measurements excluded), nanoseconds; zero for unused qubits.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn idle_ns(&self, q: usize) -> f64 {
        let w = self.windows[q];
        if !w.used {
            return 0.0;
        }
        (w.last_end - w.first_start - w.busy).max(0.0)
    }

    /// Active window of qubit `q`: nanoseconds between its first gate
    /// start and last gate end (measurements excluded); zero for unused
    /// qubits. `window_ns == busy_ns + idle_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn window_ns(&self, q: usize) -> f64 {
        let w = self.windows[q];
        if !w.used {
            return 0.0;
        }
        (w.last_end - w.first_start).max(0.0)
    }

    /// Busy (actively gated) time of qubit `q`, nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn busy_ns(&self, q: usize) -> f64 {
        self.windows[q].busy
    }

    /// Whether qubit `q` participates in any gate.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn is_used(&self, q: usize) -> bool {
        self.windows[q].used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::{Cbit, Qubit};

    fn times() -> GateTimes {
        GateTimes {
            one_qubit_ns: 100.0,
            two_qubit_ns: 400.0,
            readout_ns: 1000.0,
        }
    }

    #[test]
    fn serial_gates_accumulate_time() {
        let mut c = Circuit::new(1);
        c.h(Qubit(0)).x(Qubit(0)).z(Qubit(0));
        let s = Schedule::asap(&c, times());
        assert_eq!(s.start_of(0), 0.0);
        assert_eq!(s.start_of(1), 100.0);
        assert_eq!(s.start_of(2), 200.0);
        assert_eq!(s.total_duration_ns(), 300.0);
    }

    #[test]
    fn layer_lasts_as_long_as_slowest_member() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0)); // 100ns, layer 0
        c.cnot(Qubit(1), Qubit(2)); // 400ns, layer 0
        c.h(Qubit(0)); // layer 1 starts after the slow CNOT
        let s = Schedule::asap(&c, times());
        assert_eq!(s.start_of(2), 400.0);
    }

    #[test]
    fn swap_lasts_three_cnots() {
        let mut c = Circuit::new(2);
        c.swap(Qubit(0), Qubit(1));
        let s = Schedule::asap(&c, times());
        assert_eq!(s.end_of(0), 1200.0);
        assert_eq!(s.total_duration_ns(), 1200.0);
    }

    #[test]
    fn idle_time_measures_waiting() {
        // q1 is gated early, then waits for q0's chain
        let mut c = Circuit::new(2);
        c.h(Qubit(1));
        c.h(Qubit(0));
        c.h(Qubit(0));
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        let s = Schedule::asap(&c, times());
        // q1: window 0..700 (h at 0..100, cnot at 300..700), busy 500
        assert_eq!(s.idle_ns(1), 200.0);
        assert_eq!(s.busy_ns(1), 500.0);
        assert_eq!(s.idle_ns(0), 0.0);
    }

    #[test]
    fn unused_qubit_has_no_window() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0));
        let s = Schedule::asap(&c, times());
        assert!(!s.is_used(2));
        assert_eq!(s.idle_ns(2), 0.0);
        assert_eq!(s.busy_ns(2), 0.0);
    }

    #[test]
    fn measurements_do_not_extend_windows() {
        let mut c = Circuit::new(1);
        c.h(Qubit(0));
        c.measure(Qubit(0), Cbit(0));
        let s = Schedule::asap(&c, times());
        assert_eq!(s.idle_ns(0), 0.0);
        // but they do extend the total program duration
        assert_eq!(s.total_duration_ns(), 1100.0);
    }

    #[test]
    fn empty_circuit() {
        let c: Circuit = Circuit::new(2);
        let s = Schedule::asap(&c, GateTimes::default());
        assert_eq!(s.total_duration_ns(), 0.0);
    }

    #[test]
    fn default_times_match_device_defaults() {
        let t = GateTimes::default();
        assert_eq!(t.one_qubit_ns, 50.0);
        assert_eq!(t.two_qubit_ns, 300.0);
        assert_eq!(t.readout_ns, 3500.0);
    }
}
