//! Qubit and classical-bit index newtypes.
//!
//! The compiler distinguishes *program* qubits (named by the source
//! program) from *physical* qubits (locations on the device). Mixing the
//! two is the classic qubit-mapping bug, so each gets its own newtype.

use std::fmt;

/// A program (logical) qubit, as named by the source circuit.
///
/// # Examples
///
/// ```
/// use quva_circuit::Qubit;
///
/// let q = Qubit(3);
/// assert_eq!(q.index(), 3);
/// assert_eq!(q.to_string(), "q3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Qubit(pub u32);

impl Qubit {
    /// Returns the raw index, convenient for indexing slices.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for Qubit {
    fn from(value: u32) -> Self {
        Qubit(value)
    }
}

/// A physical qubit: a location on the target device.
///
/// Produced by the mapper; a routed circuit addresses these, not
/// [`Qubit`]s.
///
/// # Examples
///
/// ```
/// use quva_circuit::PhysQubit;
///
/// let p = PhysQubit(14);
/// assert_eq!(p.index(), 14);
/// assert_eq!(p.to_string(), "Q14");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysQubit(pub u32);

impl PhysQubit {
    /// Returns the raw index, convenient for indexing slices.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PhysQubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

impl From<u32> for PhysQubit {
    fn from(value: u32) -> Self {
        PhysQubit(value)
    }
}

/// A classical bit receiving a measurement outcome.
///
/// # Examples
///
/// ```
/// use quva_circuit::Cbit;
///
/// assert_eq!(Cbit(0).to_string(), "c0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cbit(pub u32);

impl Cbit {
    /// Returns the raw index, convenient for indexing slices.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Cbit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for Cbit {
    fn from(value: u32) -> Self {
        Cbit(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_display_and_index() {
        assert_eq!(Qubit(0).to_string(), "q0");
        assert_eq!(Qubit(19).index(), 19);
    }

    #[test]
    fn phys_qubit_display_and_index() {
        assert_eq!(PhysQubit(7).to_string(), "Q7");
        assert_eq!(PhysQubit(7).index(), 7);
    }

    #[test]
    fn cbit_display() {
        assert_eq!(Cbit(2).to_string(), "c2");
        assert_eq!(Cbit(2).index(), 2);
    }

    #[test]
    fn from_u32_conversions() {
        assert_eq!(Qubit::from(5), Qubit(5));
        assert_eq!(PhysQubit::from(5), PhysQubit(5));
        assert_eq!(Cbit::from(5), Cbit(5));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Qubit(1) < Qubit(2));
        assert!(PhysQubit(0) < PhysQubit(10));
    }
}
