//! Peephole circuit optimization.
//!
//! NISQ reliability is a direct function of gate count, so removing
//! gates *is* an error-mitigation pass: every cancelled CNOT is ~1 % of
//! failure probability back. The optimizer applies, to fixpoint:
//!
//! * cancellation of adjacent self-inverse pairs (X·X, Y·Y, Z·Z, H·H,
//!   CX·CX, SWAP·SWAP) and inverse pairs (S·S†, T·T†);
//! * merging of consecutive same-axis rotations (Rz(a)·Rz(b) → Rz(a+b)),
//!   dropping the result when the merged angle is ≈ 0 (mod 2π);
//! * removal of explicit identity gates.
//!
//! "Adjacent" means adjacent on the qubit's own timeline: gates on other
//! qubits may sit in between as long as no intervening gate touches the
//! pair's qubits.

use crate::circuit::{Circuit, QubitId};
use crate::gate::{Gate, OneQubitKind};

/// Statistics of one optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizeStats {
    /// Gates removed by pair cancellation.
    pub cancelled: usize,
    /// Rotations merged into a predecessor.
    pub merged_rotations: usize,
    /// Identity gates dropped.
    pub identities_removed: usize,
}

impl OptimizeStats {
    /// Total gates eliminated.
    pub fn total_removed(&self) -> usize {
        self.cancelled + self.merged_rotations + self.identities_removed
    }
}

/// Optimizes a circuit to fixpoint; returns the new circuit and what was
/// removed.
///
/// # Examples
///
/// ```
/// use quva_circuit::{optimize, Circuit, Qubit};
///
/// let mut c = Circuit::new(2);
/// c.h(Qubit(0));
/// c.h(Qubit(0));              // cancels
/// c.cnot(Qubit(0), Qubit(1));
/// c.rz(0.3, Qubit(1));
/// c.rz(-0.3, Qubit(1));       // merges to zero and vanishes
///
/// let (opt, stats) = optimize(&c);
/// assert_eq!(opt.len(), 1);   // only the CNOT survives
/// assert_eq!(stats.total_removed(), 4);
/// ```
pub fn optimize<Q: QubitId>(circuit: &Circuit<Q>) -> (Circuit<Q>, OptimizeStats) {
    let mut gates: Vec<Option<Gate<Q>>> = circuit.iter().cloned().map(Some).collect();
    let mut stats = OptimizeStats::default();
    loop {
        let before = stats;
        drop_identities(&mut gates, &mut stats);
        cancel_pairs(circuit.num_qubits(), &mut gates, &mut stats);
        merge_rotations(circuit.num_qubits(), &mut gates, &mut stats);
        if stats == before {
            break;
        }
    }
    let mut out = Circuit::with_cbits(circuit.num_qubits(), circuit.num_cbits());
    out.extend(gates.into_iter().flatten());
    (out, stats)
}

fn drop_identities<Q: QubitId>(gates: &mut [Option<Gate<Q>>], stats: &mut OptimizeStats) {
    for slot in gates.iter_mut() {
        if matches!(
            slot,
            Some(Gate::OneQubit {
                kind: OneQubitKind::I,
                ..
            })
        ) {
            *slot = None;
            stats.identities_removed += 1;
        }
    }
}

/// Whether two gates cancel to the identity.
fn cancels<Q: QubitId>(a: &Gate<Q>, b: &Gate<Q>) -> bool {
    use OneQubitKind as K;
    match (a, b) {
        (Gate::OneQubit { kind: ka, qubit: qa }, Gate::OneQubit { kind: kb, qubit: qb }) if qa == qb => {
            matches!(
                (ka, kb),
                (K::X, K::X)
                    | (K::Y, K::Y)
                    | (K::Z, K::Z)
                    | (K::H, K::H)
                    | (K::S, K::Sdg)
                    | (K::Sdg, K::S)
                    | (K::T, K::Tdg)
                    | (K::Tdg, K::T)
            )
        }
        (
            Gate::Cnot {
                control: c1,
                target: t1,
            },
            Gate::Cnot {
                control: c2,
                target: t2,
            },
        ) => c1 == c2 && t1 == t2,
        (Gate::Swap { a: a1, b: b1 }, Gate::Swap { a: a2, b: b2 }) => {
            (a1 == a2 && b1 == b2) || (a1 == b2 && b1 == a2)
        }
        _ => false,
    }
}

/// The next gate after `start` that shares a qubit with `qubits`;
/// returns its index, or `None` if nothing downstream touches them.
fn next_on_qubits<Q: QubitId>(gates: &[Option<Gate<Q>>], start: usize, qubits: &[Q]) -> Option<usize> {
    gates
        .iter()
        .enumerate()
        .skip(start + 1)
        .filter_map(|(j, g)| g.as_ref().map(|g| (j, g)))
        .find(|(_, g)| g.qubits().iter().any(|q| qubits.contains(q)))
        .map(|(j, _)| j)
}

fn cancel_pairs<Q: QubitId>(_n: usize, gates: &mut [Option<Gate<Q>>], stats: &mut OptimizeStats) {
    for i in 0..gates.len() {
        let Some(gate) = gates[i].clone() else { continue };
        if gate.is_measurement() || gate.is_barrier() {
            continue;
        }
        let qubits = gate.qubits();
        let Some(j) = next_on_qubits(gates, i, &qubits) else {
            continue;
        };
        let Some(other) = gates[j].clone() else { continue };
        // a cancellation is only sound if the successor acts on exactly
        // the same qubit set (a one-qubit gate slipping between the CX
        // pair's qubits would already have been caught by next_on_qubits)
        if cancels(&gate, &other) && other.qubits().len() == qubits.len() {
            gates[i] = None;
            gates[j] = None;
            stats.cancelled += 2;
        }
    }
}

fn merge_rotations<Q: QubitId>(_n: usize, gates: &mut [Option<Gate<Q>>], stats: &mut OptimizeStats) {
    use OneQubitKind as K;
    for i in 0..gates.len() {
        let Some(Gate::OneQubit { kind, qubit }) = gates[i].clone() else {
            continue;
        };
        let Some(angle_a) = kind.angle() else { continue };
        let Some(j) = next_on_qubits(gates, i, &[qubit]) else {
            continue;
        };
        let Some(Gate::OneQubit {
            kind: kind_b,
            qubit: qb,
        }) = gates[j].clone()
        else {
            continue;
        };
        debug_assert_eq!(qubit, qb);
        let same_axis = matches!(
            (&kind, &kind_b),
            (K::Rx(_), K::Rx(_)) | (K::Ry(_), K::Ry(_)) | (K::Rz(_), K::Rz(_))
        );
        if !same_axis {
            continue;
        }
        let Some(angle_b) = kind_b.angle() else { continue };
        let merged = angle_a + angle_b;
        let merged_kind = match kind {
            K::Rx(_) => K::Rx(merged),
            K::Ry(_) => K::Ry(merged),
            K::Rz(_) => K::Rz(merged),
            _ => unreachable!("same_axis guarantees a rotation"),
        };
        gates[i] = None;
        stats.merged_rotations += 1;
        // drop the merged gate entirely if it is a full turn
        let reduced = merged.rem_euclid(2.0 * std::f64::consts::PI);
        if reduced.abs() < 1e-12 || (reduced - 2.0 * std::f64::consts::PI).abs() < 1e-12 {
            gates[j] = None;
            stats.merged_rotations += 1;
        } else {
            gates[j] = Some(Gate::OneQubit {
                kind: merged_kind,
                qubit,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::{Cbit, Qubit};

    #[test]
    fn double_h_cancels() {
        let mut c = Circuit::new(1);
        c.h(Qubit(0)).h(Qubit(0));
        let (opt, stats) = optimize(&c);
        assert!(opt.is_empty());
        assert_eq!(stats.cancelled, 2);
    }

    #[test]
    fn double_cnot_cancels() {
        let mut c = Circuit::new(2);
        c.cnot(Qubit(0), Qubit(1)).cnot(Qubit(0), Qubit(1));
        let (opt, _) = optimize(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn reversed_cnot_does_not_cancel() {
        let mut c = Circuit::new(2);
        c.cnot(Qubit(0), Qubit(1)).cnot(Qubit(1), Qubit(0));
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 2);
    }

    #[test]
    fn swap_orientation_cancels_both_ways() {
        let mut c = Circuit::new(2);
        c.swap(Qubit(0), Qubit(1)).swap(Qubit(1), Qubit(0));
        let (opt, _) = optimize(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn intervening_gate_blocks_cancellation() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).x(Qubit(0)).h(Qubit(0));
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn unrelated_qubit_does_not_block() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).x(Qubit(1)).h(Qubit(0));
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 1); // only x q1 survives
    }

    #[test]
    fn one_qubit_gate_blocks_cnot_pair() {
        // H on the target between the two CNOTs: not cancellable
        let mut c = Circuit::new(2);
        c.cnot(Qubit(0), Qubit(1)).h(Qubit(1)).cnot(Qubit(0), Qubit(1));
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn s_sdg_and_t_tdg_cancel() {
        let mut c = Circuit::new(1);
        c.s(Qubit(0)).sdg(Qubit(0)).t(Qubit(0)).tdg(Qubit(0));
        let (opt, _) = optimize(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn rotations_merge() {
        let mut c = Circuit::new(1);
        c.rz(0.25, Qubit(0)).rz(0.5, Qubit(0));
        let (opt, stats) = optimize(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(stats.merged_rotations, 1);
        match &opt.gates()[0] {
            Gate::OneQubit {
                kind: OneQubitKind::Rz(a),
                ..
            } => assert!((a - 0.75).abs() < 1e-12),
            g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn opposite_rotations_vanish() {
        let mut c = Circuit::new(1);
        c.rx(1.1, Qubit(0)).rx(-1.1, Qubit(0));
        let (opt, _) = optimize(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn mixed_axes_do_not_merge() {
        let mut c = Circuit::new(1);
        c.rx(0.3, Qubit(0)).rz(0.3, Qubit(0));
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 2);
    }

    #[test]
    fn identities_removed() {
        let mut c = Circuit::new(1);
        c.one(OneQubitKind::I, Qubit(0)).x(Qubit(0));
        let (opt, stats) = optimize(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(stats.identities_removed, 1);
    }

    #[test]
    fn fixpoint_cascades() {
        // H X X H: inner XX cancels, then outer HH cancels
        let mut c = Circuit::new(1);
        c.h(Qubit(0)).x(Qubit(0)).x(Qubit(0)).h(Qubit(0));
        let (opt, stats) = optimize(&c);
        assert!(opt.is_empty());
        assert_eq!(stats.cancelled, 4);
    }

    #[test]
    fn measurements_and_barriers_survive() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.barrier_all();
        c.measure(Qubit(0), Cbit(0));
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn measurement_blocks_cancellation() {
        let mut c = Circuit::new(1);
        c.h(Qubit(0)).measure(Qubit(0), Cbit(0)).h(Qubit(0));
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn preserves_register_sizes() {
        let mut c = Circuit::with_cbits(3, 2);
        c.h(Qubit(0)).h(Qubit(0));
        let (opt, _) = optimize(&c);
        assert_eq!(opt.num_qubits(), 3);
        assert_eq!(opt.num_cbits(), 2);
    }
}
